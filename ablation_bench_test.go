package daspos

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// CMS-style shared derivation train versus independent per-group passes
// (§3.2's "extensive use of common data formats"), the two simulation
// fidelity tiers, and the cost of pileup on reconstruction.

import (
	"bytes"

	"testing"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
	"daspos/internal/skim"
)

// groupDerivations are four group formats sharing one AOD input.
func groupDerivations() []skim.Derivation {
	return []skim.Derivation{
		{Name: "MUON", Selection: skim.Selection{Cuts: []skim.Cut{{Variable: "n_muons", Op: skim.OpGE, Value: 1}}},
			Slim: skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}}},
		{Name: "EGAMMA", Selection: skim.Selection{Cuts: []skim.Cut{{Variable: "n_photons", Op: skim.OpGE, Value: 1}}},
			Slim: skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjPhoton, datamodel.ObjElectron}}},
		{Name: "JET", Selection: skim.Selection{Cuts: []skim.Cut{{Variable: "n_jets", Op: skim.OpGE, Value: 1}}},
			Slim: skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjJet}}},
		{Name: "MET", Selection: skim.Selection{Cuts: []skim.Cut{{Variable: "met", Op: skim.OpGT, Value: 25}}},
			Slim: skim.SlimPolicy{MinCandidatePt: 10}},
	}
}

// BenchmarkAblationDerivation compares the shared train (one pass over the
// input, CMS-style) against running each derivation as its own pass
// (decentralized). With in-memory events the deserialization cost is the
// shared part, so each "independent" pass re-reads the input file.
func BenchmarkAblationDerivation(b *testing.B) {
	f := sharedFixtures(b)
	var aod []*datamodel.Event
	for _, e := range f.recoEvents {
		aod = append(aod, e.SlimToAOD())
	}
	var buf bytes.Buffer
	if _, err := datamodel.WriteEvents(&buf, datamodel.TierAOD, aod); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.Run("shared-train", func(b *testing.B) {
		train := skim.Train{Name: "prod", Derivations: groupDerivations()}
		for i := 0; i < b.N; i++ {
			events, err := decodeAOD(encoded)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := train.Run(events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("independent-passes", func(b *testing.B) {
		ders := groupDerivations()
		for i := 0; i < b.N; i++ {
			for _, d := range ders {
				events, err := decodeAOD(encoded) // each group re-reads the input
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := d.Run(events); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func decodeAOD(data []byte) ([]*datamodel.Event, error) {
	_, events, err := datamodel.ReadEvents(bytes.NewReader(data))
	return events, err
}

// BenchmarkAblationSimFidelity contrasts the per-event cost of the two
// simulation tiers on identical events.
func BenchmarkAblationSimFidelity(b *testing.B) {
	det := detector.Standard()
	gen := generator.NewQCDDijet(generator.DefaultConfig(4))
	events := generator.GenerateN(gen, 32)
	b.Run("fullsim", func(b *testing.B) {
		fs := sim.NewFullSim(det, 4)
		for i := 0; i < b.N; i++ {
			_ = fs.Simulate(events[i%len(events)])
		}
	})
	b.Run("fastsim", func(b *testing.B) {
		fs := sim.NewFastSim(4)
		for i := 0; i < b.N; i++ {
			_ = fs.Simulate(events[i%len(events)])
		}
	})
}

// BenchmarkAblationPileup measures reconstruction cost against pileup: the
// resource-evolution pressure behind the paper's back-end migration risk.
func BenchmarkAblationPileup(b *testing.B) {
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, 5); err != nil {
		b.Fatal(err)
	}
	snap := db.Snapshot("t", 1)
	for _, mu := range []float64{0, 10, 30} {
		b.Run(pileupLabel(mu), func(b *testing.B) {
			cfg := generator.DefaultConfig(5)
			cfg.PileupMu = mu
			gen := generator.NewDrellYanZ(cfg)
			full := sim.NewFullSim(det, 5)
			raws := make([]*rawdata.Event, 8)
			for i := range raws {
				raws[i] = rawdata.Digitize(1, full.Simulate(gen.Generate()))
			}
			rec := reco.New(det)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rec.Reconstruct(raws[i%len(raws)], snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func pileupLabel(mu float64) string {
	switch {
	case mu == 0:
		return "mu0"
	case mu == 10:
		return "mu10"
	default:
		return "mu30"
	}
}
