package rivet

import (
	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/hist"
	"daspos/internal/units"
)

// Built-in preserved analyses. Each mirrors the kind of measurement the
// paper's Level 2 discussion expects the framework to capture: a Z
// lineshape, a W transverse-mass measurement, inclusive jet spectra, a
// diphoton resonance search, and a charged-multiplicity soft-QCD
// measurement. Registering them at init makes the catalogue available to
// every consumer (RECAST bridge, benchmarks, examples) without wiring.

func init() {
	Register("DASPOS_2013_ZMUMU", func() Analysis { return &zMuMu{} })
	Register("DASPOS_2013_WLNU", func() Analysis { return &wLNu{} })
	Register("DASPOS_2013_JETS", func() Analysis { return &incJets{} })
	Register("DASPOS_2013_DIPHOTON", func() Analysis { return &diphoton{} })
	Register("DASPOS_2013_MINBIAS", func() Analysis { return &minBias{} })
}

// zMuMu measures the dimuon invariant-mass lineshape around the Z pole:
// the canonical standard-candle analysis.
type zMuMu struct {
	mass, ptZ *hist.H1D
}

func (*zMuMu) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_ZMUMU", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200001",
		Summary:   "Z -> mumu lineshape: dimuon invariant mass (60-120 GeV) and Z pT",
	}
}

func (a *zMuMu) Init(ctx *Context) {
	a.mass = ctx.BookH1D("m_mumu", 60, 60, 120)
	a.ptZ = ctx.BookH1D("pt_z", 40, 0, 80)
}

func (a *zMuMu) Analyze(ctx *Context, ev *hepmc.Event) {
	pairs := OppositeSignPairs{PDG: units.PDGMuon, MinPt: 10, MaxAbsEta: 2.5}.Apply(ev)
	if len(pairs) == 0 {
		return
	}
	z := pairs[0].Plus.P.Add(pairs[0].Minus.P)
	a.mass.FillW(z.M(), ctx.Weight)
	a.ptZ.FillW(z.Pt(), ctx.Weight)
}

func (a *zMuMu) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.mass.Scale(1 / sw)
		a.ptZ.Scale(1 / sw)
	}
}

// wLNu measures the lepton-missing transverse mass in W events.
type wLNu struct {
	mt, ptLep *hist.H1D
}

func (*wLNu) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_WLNU", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200002",
		Summary:   "W -> l nu: transverse mass and lepton pT at truth level",
	}
}

func (a *wLNu) Init(ctx *Context) {
	a.mt = ctx.BookH1D("mt", 50, 0, 150)
	a.ptLep = ctx.BookH1D("pt_lep", 40, 0, 100)
}

func (a *wLNu) Analyze(ctx *Context, ev *hepmc.Event) {
	leps := IdentifiedFinalState{
		PDGs: []int{units.PDGElectron, units.PDGMuon}, MinPt: 20, MaxAbsEta: 2.5,
	}.Apply(ev)
	if len(leps) == 0 {
		return
	}
	lead := leps[0]
	for _, l := range leps[1:] {
		if l.P.Pt() > lead.P.Pt() {
			lead = l
		}
	}
	metPt, metPhi := (MissingMomentum{}).Apply(ev)
	if metPt < 20 {
		return
	}
	miss := fourvec.PtEtaPhiM(metPt, 0, metPhi, 0)
	a.mt.FillW(fourvec.TransverseMass(lead.P, miss), ctx.Weight)
	a.ptLep.FillW(lead.P.Pt(), ctx.Weight)
}

func (a *wLNu) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.mt.Scale(1 / sw)
		a.ptLep.Scale(1 / sw)
	}
}

// incJets measures inclusive jet multiplicity and the leading-jet pT
// spectrum.
type incJets struct {
	njets, ptLead *hist.H1D
}

func (*incJets) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_JETS", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200003",
		Summary:   "Inclusive cone jets: multiplicity and leading-jet pT",
	}
}

func (a *incJets) Init(ctx *Context) {
	a.njets = ctx.BookH1D("n_jets", 10, 0, 10)
	a.ptLead = ctx.BookH1D("pt_lead", 48, 20, 500)
}

func (a *incJets) Analyze(ctx *Context, ev *hepmc.Event) {
	jets := ConeJets{R: 0.4, MinJetPt: 20, MinParticlePt: 0.2, MaxAbsEta: 3.0}.Apply(ev)
	a.njets.FillW(float64(len(jets)), ctx.Weight)
	if len(jets) > 0 {
		a.ptLead.FillW(jets[0].P.Pt(), ctx.Weight)
	}
}

func (a *incJets) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.njets.Scale(1 / sw)
		a.ptLead.Scale(1 / sw)
	}
}

// diphoton measures the diphoton invariant mass: the narrow-resonance
// search shape (Higgs hunt).
type diphoton struct {
	mass *hist.H1D
}

func (*diphoton) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_DIPHOTON", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200004",
		Summary:   "Diphoton invariant mass (100-160 GeV) for narrow-resonance searches",
	}
}

func (a *diphoton) Init(ctx *Context) {
	a.mass = ctx.BookH1D("m_gg", 60, 100, 160)
}

func (a *diphoton) Analyze(ctx *Context, ev *hepmc.Event) {
	gams := IdentifiedFinalState{PDGs: []int{units.PDGPhoton}, MinPt: 15, MaxAbsEta: 2.5}.Apply(ev)
	if len(gams) < 2 {
		return
	}
	// Two leading photons.
	lead, sub := gams[0], gams[1]
	if sub.P.Pt() > lead.P.Pt() {
		lead, sub = sub, lead
	}
	for _, g := range gams[2:] {
		if g.P.Pt() > lead.P.Pt() {
			lead, sub = g, lead
		} else if g.P.Pt() > sub.P.Pt() {
			sub = g
		}
	}
	a.mass.FillW(fourvec.InvariantMass(lead.P, sub.P), ctx.Weight)
}

func (a *diphoton) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.mass.Scale(1 / sw)
	}
}

// minBias measures charged multiplicity and pT in soft events: the
// QCD-parameter use case RIVET was built for.
type minBias struct {
	nch, pt *hist.H1D
}

func (*minBias) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_MINBIAS", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200005",
		Summary:   "Charged-particle multiplicity and pT spectrum in minimum-bias events",
	}
}

func (a *minBias) Init(ctx *Context) {
	a.nch = ctx.BookH1D("n_ch", 60, 0, 60)
	a.pt = ctx.BookH1D("pt_ch", 50, 0, 5)
}

func (a *minBias) Analyze(ctx *Context, ev *hepmc.Event) {
	charged := ChargedFinalState{MinPt: 0.1, MaxAbsEta: 2.5}.Apply(ev)
	a.nch.FillW(float64(len(charged)), ctx.Weight)
	for _, p := range charged {
		a.pt.FillW(p.P.Pt(), ctx.Weight)
	}
}

func (a *minBias) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.nch.Scale(1 / sw)
		a.pt.Scale(1 / sw)
	}
}
