package rivet

import (
	"math"
	"sort"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
)

// Projections are the standard toolkit analyses share — "a series of
// standard tools ... exploited to replicate analysis cuts and procedures
// within the RIVET framework". Each is a pure function of the event, so
// preserved analyses compose them without hidden state.

// FinalState selects stable particles within acceptance.
type FinalState struct {
	// MinPt in GeV; 0 keeps everything.
	MinPt float64
	// MaxAbsEta bounds |η|; 0 means unbounded.
	MaxAbsEta float64
}

// Apply returns the selected particles.
func (fs FinalState) Apply(ev *hepmc.Event) []hepmc.Particle {
	var out []hepmc.Particle
	for _, p := range ev.Particles {
		if !p.IsFinal() {
			continue
		}
		if fs.MinPt > 0 && p.P.Pt() < fs.MinPt {
			continue
		}
		if fs.MaxAbsEta > 0 && math.Abs(p.P.Eta()) > fs.MaxAbsEta {
			continue
		}
		out = append(out, p)
	}
	return out
}

// ChargedFinalState selects stable charged particles within acceptance.
type ChargedFinalState struct {
	MinPt     float64
	MaxAbsEta float64
}

// Apply returns the selected charged particles.
func (cfs ChargedFinalState) Apply(ev *hepmc.Event) []hepmc.Particle {
	base := FinalState{MinPt: cfs.MinPt, MaxAbsEta: cfs.MaxAbsEta}.Apply(ev)
	out := base[:0]
	for _, p := range base {
		if units.IsCharged(p.PDG) {
			out = append(out, p)
		}
	}
	return out
}

// IdentifiedFinalState selects stable particles of the given |PDG| codes.
type IdentifiedFinalState struct {
	PDGs      []int
	MinPt     float64
	MaxAbsEta float64
}

// Apply returns the selected particles.
func (ifs IdentifiedFinalState) Apply(ev *hepmc.Event) []hepmc.Particle {
	base := FinalState{MinPt: ifs.MinPt, MaxAbsEta: ifs.MaxAbsEta}.Apply(ev)
	var out []hepmc.Particle
	for _, p := range base {
		for _, pdg := range ifs.PDGs {
			if p.PDG == pdg || p.PDG == -pdg {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// MissingMomentum computes the event's invisible transverse momentum.
type MissingMomentum struct{}

// Apply returns (pT, φ) of the missing momentum.
func (MissingMomentum) Apply(ev *hepmc.Event) (pt, phi float64) {
	return ev.MissingPt()
}

// Jet is a truth-level cone jet.
type Jet struct {
	P fourvec.Vec
	// Constituents is the number of particles clustered in.
	Constituents int
}

// ConeJets clusters visible final-state particles into cones: the greedy
// seeded-cone algorithm (an anti-kT stand-in adequate for truth-level
// spectra).
type ConeJets struct {
	// R is the cone radius.
	R float64
	// MinJetPt drops jets below this pT.
	MinJetPt float64
	// MinParticlePt drops input particles below this pT.
	MinParticlePt float64
	// MaxAbsEta bounds the input acceptance.
	MaxAbsEta float64
}

// Apply returns jets sorted by decreasing pT.
func (cj ConeJets) Apply(ev *hepmc.Event) []Jet {
	r := cj.R
	if r <= 0 {
		r = 0.4
	}
	var inputs []fourvec.Vec
	for _, p := range ev.Particles {
		if !p.IsFinal() || units.IsNeutrino(p.PDG) {
			continue
		}
		if abs(p.PDG) == units.PDGMuon {
			continue // muons are not jet constituents
		}
		if cj.MinParticlePt > 0 && p.P.Pt() < cj.MinParticlePt {
			continue
		}
		if cj.MaxAbsEta > 0 && math.Abs(p.P.Eta()) > cj.MaxAbsEta {
			continue
		}
		inputs = append(inputs, p.P)
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Pt() > inputs[j].Pt() })
	used := make([]bool, len(inputs))
	var jets []Jet
	for i := range inputs {
		if used[i] {
			continue
		}
		seed := inputs[i]
		jet := Jet{P: seed, Constituents: 1}
		used[i] = true
		for j := i + 1; j < len(inputs); j++ {
			if used[j] {
				continue
			}
			if fourvec.DeltaR(seed, inputs[j]) < r {
				jet.P = jet.P.Add(inputs[j])
				jet.Constituents++
				used[j] = true
			}
		}
		if jet.P.Pt() >= cj.MinJetPt {
			jets = append(jets, jet)
		}
	}
	sort.Slice(jets, func(i, j int) bool { return jets[i].P.Pt() > jets[j].P.Pt() })
	return jets
}

// OppositeSignPairs returns all opposite-charge pairs of the given lepton
// species, ordered by decreasing pair pT.
type OppositeSignPairs struct {
	PDG       int
	MinPt     float64
	MaxAbsEta float64
}

// Pair is a dilepton candidate.
type Pair struct {
	Plus, Minus hepmc.Particle
}

// Mass returns the pair's invariant mass.
func (p Pair) Mass() float64 { return fourvec.InvariantMass(p.Plus.P, p.Minus.P) }

// Apply returns the selected pairs.
func (osp OppositeSignPairs) Apply(ev *hepmc.Event) []Pair {
	leps := IdentifiedFinalState{PDGs: []int{osp.PDG}, MinPt: osp.MinPt, MaxAbsEta: osp.MaxAbsEta}.Apply(ev)
	var plus, minus []hepmc.Particle
	for _, l := range leps {
		if units.Charge(l.PDG) > 0 {
			plus = append(plus, l)
		} else if units.Charge(l.PDG) < 0 {
			minus = append(minus, l)
		}
	}
	var out []Pair
	for _, p := range plus {
		for _, m := range minus {
			out = append(out, Pair{Plus: p, Minus: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Plus.P.Add(out[i].Minus.P).Pt() > out[j].Plus.P.Add(out[j].Minus.P).Pt()
	})
	return out
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
