package rivet

import (
	"math"
	"testing"

	"daspos/internal/fourvec"
	"daspos/internal/generator"
	"daspos/internal/hepmc"
	"daspos/internal/units"
)

func TestRegistryListsBuiltins(t *testing.T) {
	names := List()
	if len(names) < 5 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, want := range []string{"DASPOS_2013_ZMUMU", "DASPOS_2013_WLNU", "DASPOS_2013_JETS", "DASPOS_2013_DIPHOTON", "DASPOS_2013_MINBIAS"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("List not sorted")
		}
	}
}

func TestMetadataComplete(t *testing.T) {
	for _, name := range List() {
		a, err := NewAnalysis(name)
		if err != nil {
			t.Fatal(err)
		}
		m := a.Metadata()
		if m.Name != name {
			t.Errorf("%s: metadata name %q", name, m.Name)
		}
		if m.Summary == "" || m.Experiment == "" || m.Year == 0 {
			t.Errorf("%s: incomplete metadata %+v", name, m)
		}
	}
}

func TestUnknownAnalysis(t *testing.T) {
	if _, err := NewAnalysis("NOPE"); err == nil {
		t.Fatal("unknown analysis instantiated")
	}
	if _, err := NewRun("NOPE"); err == nil {
		t.Fatal("run with unknown analysis")
	}
	if _, err := NewRun(); err == nil {
		t.Fatal("empty run accepted")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("DASPOS_2013_ZMUMU", func() Analysis { return &zMuMu{} })
}

func TestZMuMuPeak(t *testing.T) {
	run, err := NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(1))
	for i := 0; i < 3000; i++ {
		if err := run.Process(g.Generate()); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}
	hs := run.Histograms()
	if len(hs) != 2 {
		t.Fatalf("histograms: %d", len(hs))
	}
	mass := hs[0]
	if mass.Name != "DASPOS_2013_ZMUMU/m_mumu" {
		t.Fatalf("name %s", mass.Name)
	}
	peak := mass.BinCenter(mass.MaxBin())
	if math.Abs(peak-91.2) > 2 {
		t.Fatalf("Z peak at %v", peak)
	}
	// Events are half μμ: integral per event ~ 0.4-0.6 after /sumW.
	if integ := mass.Integral(); integ < 0.2 || integ > 0.8 {
		t.Fatalf("normalized integral %v", integ)
	}
	if err := run.Finalize(); err == nil {
		t.Fatal("double finalize accepted")
	}
	if err := run.Process(g.Generate()); err == nil {
		t.Fatal("process after finalize accepted")
	}
}

func TestWTransverseMassEndpoint(t *testing.T) {
	run, _ := NewRun("DASPOS_2013_WLNU")
	g := generator.NewWLepNu(generator.DefaultConfig(2))
	for i := 0; i < 3000; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	mt := run.Histograms()[0]
	if mt.Entries < 300 {
		t.Fatalf("too few mT entries: %d", mt.Entries)
	}
	// The Jacobian edge: most weight below mW, falling sharply above.
	below, above := 0.0, 0.0
	for i := 0; i < mt.NBins; i++ {
		if mt.BinCenter(i) < 85 {
			below += mt.SumW[i]
		} else {
			above += mt.SumW[i]
		}
	}
	if below < 5*above {
		t.Fatalf("mT endpoint washed out: below=%v above=%v", below, above)
	}
}

func TestJetsSpectrumFalls(t *testing.T) {
	run, _ := NewRun("DASPOS_2013_JETS")
	g := generator.NewQCDDijet(generator.DefaultConfig(3))
	for i := 0; i < 1000; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	njets, ptLead := run.Histograms()[0], run.Histograms()[1]
	if njets.Integral() == 0 || ptLead.Integral() == 0 {
		t.Fatal("empty jet histograms")
	}
	// A falling spectrum: first populated decade outweighs the last.
	lo, hi := 0.0, 0.0
	for i := 0; i < ptLead.NBins; i++ {
		if ptLead.BinCenter(i) < 100 {
			lo += ptLead.SumW[i]
		}
		if ptLead.BinCenter(i) > 300 {
			hi += ptLead.SumW[i]
		}
	}
	if lo < 5*hi {
		t.Fatalf("jet spectrum not falling: lo=%v hi=%v", lo, hi)
	}
}

func TestDiphotonPeak(t *testing.T) {
	run, _ := NewRun("DASPOS_2013_DIPHOTON")
	g := generator.NewHiggsDiphoton(generator.DefaultConfig(4))
	for i := 0; i < 1500; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	m := run.Histograms()[0]
	peak := m.BinCenter(m.MaxBin())
	if math.Abs(peak-125.25) > 2 {
		t.Fatalf("diphoton peak at %v", peak)
	}
}

func TestMultiAnalysisRun(t *testing.T) {
	run, err := NewRun("DASPOS_2013_MINBIAS", "DASPOS_2013_JETS")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewMinBias(generator.DefaultConfig(5))
	for i := 0; i < 200; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	if len(run.Histograms()) != 4 {
		t.Fatalf("histograms: %d", len(run.Histograms()))
	}
}

func TestExportValidateRoundTrip(t *testing.T) {
	// The preservation loop: run → export reference → independent re-run →
	// validate against reference.
	runA, _ := NewRun("DASPOS_2013_ZMUMU")
	gA := generator.NewDrellYanZ(generator.DefaultConfig(10))
	for i := 0; i < 4000; i++ {
		_ = runA.Process(gA.Generate())
	}
	_ = runA.Finalize()
	reference, err := runA.ExportYODA()
	if err != nil {
		t.Fatal(err)
	}

	runB, _ := NewRun("DASPOS_2013_ZMUMU")
	gB := generator.NewDrellYanZ(generator.DefaultConfig(99)) // independent sample
	for i := 0; i < 4000; i++ {
		_ = runB.Process(gB.Generate())
	}
	_ = runB.Finalize()
	results, err := runB.Validate(reference)
	if err != nil {
		t.Fatal(err)
	}
	if !AllCompatible(results, 0.001) {
		for _, r := range results {
			t.Logf("%s: chi2/ndf=%v p=%v missing=%v", r.Histogram, r.Chi2.Reduced(), r.Chi2.PValue, r.MissingReference)
		}
		t.Fatal("independent rerun not compatible with reference")
	}
}

func TestValidateDetectsWrongPhysics(t *testing.T) {
	runA, _ := NewRun("DASPOS_2013_ZMUMU")
	gA := generator.NewDrellYanZ(generator.DefaultConfig(11))
	for i := 0; i < 3000; i++ {
		_ = runA.Process(gA.Generate())
	}
	_ = runA.Finalize()
	reference, _ := runA.ExportYODA()

	// A Z' at 100 GeV faking the Z sample must fail validation.
	runB, _ := NewRun("DASPOS_2013_ZMUMU")
	gB := generator.NewZPrime(generator.DefaultConfig(12), 100)
	for i := 0; i < 3000; i++ {
		_ = runB.Process(gB.Generate())
	}
	_ = runB.Finalize()
	results, err := runB.Validate(reference)
	if err != nil {
		t.Fatal(err)
	}
	if AllCompatible(results, 0.001) {
		t.Fatal("wrong physics passed validation")
	}
}

func TestValidateMissingReference(t *testing.T) {
	run, _ := NewRun("DASPOS_2013_MINBIAS")
	g := generator.NewMinBias(generator.DefaultConfig(13))
	for i := 0; i < 50; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	results, err := run.Validate([]byte{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.MissingReference {
			t.Fatal("missing reference not flagged")
		}
	}
	if AllCompatible(results, 0.05) {
		t.Fatal("missing references counted as compatible")
	}
	if _, err := run.Validate([]byte("BEGIN DASPOS_H1D /x\ngarbage\n")); err == nil {
		t.Fatal("corrupt reference accepted")
	}
}

func TestProjections(t *testing.T) {
	g := generator.NewDrellYanZ(generator.DefaultConfig(14))
	ev := g.Generate()
	all := FinalState{}.Apply(ev)
	cut := FinalState{MinPt: 1, MaxAbsEta: 2.5}.Apply(ev)
	if len(cut) >= len(all) {
		t.Fatal("acceptance cut removed nothing")
	}
	charged := ChargedFinalState{}.Apply(ev)
	for _, p := range charged {
		if !units.IsCharged(p.PDG) {
			t.Fatal("neutral particle in charged final state")
		}
	}
	mus := IdentifiedFinalState{PDGs: []int{units.PDGMuon}}.Apply(ev)
	for _, p := range mus {
		if p.PDG != units.PDGMuon && p.PDG != -units.PDGMuon {
			t.Fatal("non-muon in identified final state")
		}
	}
}

func TestOppositeSignPairs(t *testing.T) {
	g := generator.NewDrellYanZ(generator.DefaultConfig(15))
	found := false
	for i := 0; i < 20 && !found; i++ {
		ev := g.Generate()
		pairs := OppositeSignPairs{PDG: units.PDGMuon, MinPt: 5}.Apply(ev)
		for _, p := range pairs {
			if units.Charge(p.Plus.PDG) <= 0 || units.Charge(p.Minus.PDG) >= 0 {
				t.Fatal("pair charges wrong")
			}
			if p.Mass() > 60 && p.Mass() < 120 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no Z-mass pair found in 20 events")
	}
}

func TestConeJetsExcludeMuonsAndNeutrinos(t *testing.T) {
	e := hepmc.NewEvent(0, 0)
	pv := e.AddVertex(0, 0, 0, 0)
	e.AddParticle(units.PDGMuon, hepmc.StatusFinal, vec(50, 0, 0), pv, 0)
	e.AddParticle(units.PDGNuMu, hepmc.StatusFinal, vec(50, 0, 0.1), pv, 0)
	e.AddParticle(units.PDGPiPlus, hepmc.StatusFinal, vec(30, 0, 1.5), pv, 0)
	jets := ConeJets{R: 0.4, MinJetPt: 10}.Apply(e)
	if len(jets) != 1 {
		t.Fatalf("jets: %d", len(jets))
	}
	if math.Abs(jets[0].P.Pt()-30) > 1e-9 {
		t.Fatalf("jet pt %v includes muon or neutrino", jets[0].P.Pt())
	}
}

func vec(pt, eta, phi float64) fourvec.Vec { return fourvec.PtEtaPhiM(pt, eta, phi, 0.1) }

func BenchmarkZMuMuAnalyze(b *testing.B) {
	run, _ := NewRun("DASPOS_2013_ZMUMU")
	g := generator.NewDrellYanZ(generator.DefaultConfig(1))
	events := generator.GenerateN(g, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.Process(events[i%len(events)])
	}
}

func BenchmarkConeJets(b *testing.B) {
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	events := generator.GenerateN(g, 32)
	proj := ConeJets{R: 0.4, MinJetPt: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = proj.Apply(events[i%len(events)])
	}
}
