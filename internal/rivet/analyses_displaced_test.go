package rivet

import (
	"math"
	"testing"

	"daspos/internal/generator"
	"daspos/internal/hist"
)

func TestV0MassPeaks(t *testing.T) {
	run, err := NewRun("DASPOS_2013_V0MASS")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewV0(generator.DefaultConfig(31))
	for i := 0; i < 3000; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	hs := run.Histograms()
	ks, lambda, flight := hs[0], hs[1], hs[2]
	if ks.Entries == 0 || lambda.Entries == 0 {
		t.Fatalf("empty V0 histograms: ks=%d lambda=%d", ks.Entries, lambda.Entries)
	}
	if peak := ks.BinCenter(ks.MaxBin()); math.Abs(peak-0.4976) > 0.01 {
		t.Fatalf("K_S peak at %v", peak)
	}
	if peak := lambda.BinCenter(lambda.MaxBin()); math.Abs(peak-1.1157) > 0.01 {
		t.Fatalf("Lambda peak at %v", peak)
	}
	// K_S flight distance: ctau=26.8mm boosted by gamma~2-10; the mean
	// must be centimetres, not microns or metres.
	if flight.Mean() < 10 || flight.Mean() > 150 {
		t.Fatalf("K_S mean flight %v mm", flight.Mean())
	}
}

func TestDLifetimeMeasurement(t *testing.T) {
	run, err := NewRun("DASPOS_2013_DLIFETIME")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewDZero(generator.DefaultConfig(32))
	for i := 0; i < 5000; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	tProper, mass := run.Histograms()[0], run.Histograms()[1]
	if tProper.Entries < 4000 {
		t.Fatalf("proper-time entries: %d", tProper.Entries)
	}
	// The preserved measurement: tau(D0) = 0.41 ps. The binned-mean
	// estimator has a small overflow-truncation bias; 15% tolerance.
	tau := FitExponentialLifetime(tProper)
	if math.Abs(tau-0.4101)/0.4101 > 0.15 {
		t.Fatalf("fitted lifetime %v ps, want ~0.41", tau)
	}
	if peak := mass.BinCenter(mass.MaxBin()); math.Abs(peak-1.8648) > 0.02 {
		t.Fatalf("D0 mass peak at %v", peak)
	}
}

func TestDisplacedAnalysesIgnoreOtherProcesses(t *testing.T) {
	// Z events contain no V0s or D0s: the analyses must stay empty, not
	// fill garbage.
	run, _ := NewRun("DASPOS_2013_V0MASS", "DASPOS_2013_DLIFETIME")
	g := generator.NewDrellYanZ(generator.DefaultConfig(33))
	for i := 0; i < 100; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	for _, h := range run.Histograms() {
		if h.Entries != 0 {
			t.Fatalf("%s filled %d entries from Z events", h.Name, h.Entries)
		}
	}
}

func TestFitExponentialLifetime(t *testing.T) {
	h := hist.NewH1D("t", 100, 0, 10)
	// Discretized exponential with mean 1.0 (fine binning keeps the
	// binned-mean estimator nearly unbiased over this range).
	for i := 0; i < 100; i++ {
		c := h.BinCenter(i)
		h.FillW(c, math.Exp(-c))
	}
	tau := FitExponentialLifetime(h)
	if math.Abs(tau-1.0) > 0.05 {
		t.Fatalf("tau %v", tau)
	}
	if FitExponentialLifetime(hist.NewH1D("e", 10, 0, 1)) != 0 {
		t.Fatal("empty histogram lifetime not 0")
	}
}
