// Package rivet implements the RIVET-style analysis-preservation
// framework the paper examines in §2.3: analyses are plugins over
// generator-level (HepMC) events, written against a standard toolkit of
// projections, registered in a public catalogue, and distributed together
// with the reference data they were validated against. "Once an analysis
// is put into RIVET, anyone can examine the analysis code and the reduced
// data provided for comparisons" — here, anyone can list the registry,
// run a preserved analysis on fresh Monte Carlo, and χ²-compare the
// output against the archived reference histograms.
package rivet

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"daspos/internal/hepmc"
	"daspos/internal/hist"
	"daspos/internal/stats"
)

// Metadata describes a preserved analysis: the catalogue entry a future
// user reads before running it.
type Metadata struct {
	// Name is the registry key, conventionally EXPERIMENT_YEAR_INSPIREID.
	Name string `json:"name"`
	// Experiment and Year locate the original measurement.
	Experiment string `json:"experiment"`
	Year       int    `json:"year"`
	// InspireID links to the literature record (the INSPIRE/HepData
	// cross-linking the paper describes).
	InspireID string `json:"inspire_id,omitempty"`
	// Summary is a one-paragraph description of what is measured.
	Summary string `json:"summary"`
	// References are literature pointers.
	References []string `json:"references,omitempty"`
}

// Analysis is the plugin interface. Implementations must be stateless
// between runs except for histograms booked through the Context.
type Analysis interface {
	// Metadata returns the catalogue entry.
	Metadata() Metadata
	// Init books histograms.
	Init(ctx *Context)
	// Analyze processes one event.
	Analyze(ctx *Context, ev *hepmc.Event)
	// Finalize normalizes or post-processes the booked histograms.
	Finalize(ctx *Context)
}

// Context carries per-analysis state through a run: histogram booking and
// the current event weight.
type Context struct {
	analysis string
	histos   map[string]*hist.H1D
	order    []string
	// Weight is the current event's weight, set by the runner before each
	// Analyze call.
	Weight float64
	// sumW accumulates total processed weight for normalization.
	sumW   float64
	events int
}

// BookH1D books (or returns the already-booked) histogram under the
// analysis's namespace.
func (c *Context) BookH1D(name string, bins int, lo, hi float64) *hist.H1D {
	if h, ok := c.histos[name]; ok {
		return h
	}
	h := hist.NewH1D(c.analysis+"/"+name, bins, lo, hi)
	c.histos[name] = h
	c.order = append(c.order, name)
	return h
}

// Histogram returns a booked histogram by its short name.
func (c *Context) Histogram(name string) (*hist.H1D, bool) {
	h, ok := c.histos[name]
	return h, ok
}

// SumW returns the total event weight processed so far: the Finalize-time
// normalization denominator.
func (c *Context) SumW() float64 { return c.sumW }

// Events returns the number of events processed.
func (c *Context) Events() int { return c.events }

// factory builds a fresh Analysis instance.
type factory func() Analysis

var (
	registryMu sync.RWMutex
	registry   = make(map[string]factory)
)

// Register adds an analysis to the global catalogue. It panics on
// duplicate names — collisions in a preservation registry are programming
// errors, not runtime conditions.
func Register(name string, f func() Analysis) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rivet: duplicate analysis %q", name))
	}
	registry[name] = f
}

// List returns the sorted names of all registered analyses.
func List() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewAnalysis instantiates a registered analysis.
func NewAnalysis(name string) (Analysis, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rivet: unknown analysis %q", name)
	}
	return f(), nil
}

// Run executes one or more analyses over an event stream.
type Run struct {
	analyses  []Analysis
	contexts  []*Context
	finalized bool
}

// NewRun instantiates the named analyses and initializes their contexts.
func NewRun(names ...string) (*Run, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("rivet: run with no analyses")
	}
	r := &Run{}
	for _, n := range names {
		a, err := NewAnalysis(n)
		if err != nil {
			return nil, err
		}
		ctx := &Context{analysis: a.Metadata().Name, histos: make(map[string]*hist.H1D)}
		a.Init(ctx)
		r.analyses = append(r.analyses, a)
		r.contexts = append(r.contexts, ctx)
	}
	return r, nil
}

// Process feeds one event to every analysis.
func (r *Run) Process(ev *hepmc.Event) error {
	if r.finalized {
		return fmt.Errorf("rivet: run already finalized")
	}
	w := ev.Weight
	if w == 0 {
		w = 1
	}
	for i, a := range r.analyses {
		ctx := r.contexts[i]
		ctx.Weight = w
		ctx.sumW += w
		ctx.events++
		a.Analyze(ctx, ev)
	}
	return nil
}

// Finalize runs every analysis's Finalize and locks the run.
func (r *Run) Finalize() error {
	if r.finalized {
		return fmt.Errorf("rivet: run already finalized")
	}
	for i, a := range r.analyses {
		a.Finalize(r.contexts[i])
	}
	r.finalized = true
	return nil
}

// Histograms returns every analysis's booked histograms in booking order.
func (r *Run) Histograms() []*hist.H1D {
	var out []*hist.H1D
	for _, ctx := range r.contexts {
		for _, name := range ctx.order {
			out = append(out, ctx.histos[name])
		}
	}
	return out
}

// ExportYODA serializes the run's histograms in the archival text format:
// the reference-data payload that travels with a preserved analysis.
func (r *Run) ExportYODA() ([]byte, error) {
	var buf bytes.Buffer
	if err := hist.WriteAll(&buf, r.Histograms()...); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ValidationResult is the outcome of comparing a fresh run against
// archived reference data.
type ValidationResult struct {
	Histogram string
	Chi2      stats.Chi2Result
	// MissingReference marks run histograms with no archived counterpart.
	MissingReference bool
}

// Validate compares the run's histograms against reference data in the
// archival text format. Shape comparison: both sides are normalized to
// unit area before the χ² with per-bin errors, so differing sample sizes
// do not fail validation.
func (r *Run) Validate(reference []byte) ([]ValidationResult, error) {
	refs, err := hist.ReadAll(bytes.NewReader(reference))
	if err != nil {
		return nil, fmt.Errorf("rivet: reading reference data: %w", err)
	}
	byName := make(map[string]*hist.H1D, len(refs))
	for _, h := range refs {
		byName[h.Name] = h
	}
	var out []ValidationResult
	for _, h := range r.Histograms() {
		ref, ok := byName[h.Name]
		if !ok {
			out = append(out, ValidationResult{Histogram: h.Name, MissingReference: true})
			continue
		}
		a := h.Clone()
		b := ref.Clone()
		a.Normalize(1)
		b.Normalize(1)
		res, err := stats.Chi2WithErrors(a.Values(), a.Errors(), b.Values(), b.Errors())
		if err != nil {
			return nil, fmt.Errorf("rivet: comparing %s: %w", h.Name, err)
		}
		out = append(out, ValidationResult{Histogram: h.Name, Chi2: res})
	}
	return out, nil
}

// AllCompatible reports whether every validated histogram is compatible
// with its reference at significance alpha and none lacked a reference.
func AllCompatible(results []ValidationResult, alpha float64) bool {
	for _, r := range results {
		if r.MissingReference || !r.Chi2.Compatible(alpha) {
			return false
		}
	}
	return len(results) > 0
}
