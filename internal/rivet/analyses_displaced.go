package rivet

import (
	"math"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/hist"
	"daspos/internal/units"
)

// Displaced-decay analyses: the ALICE V0-finder and LHCb D-lifetime
// physics from Table 1's master-class column, preserved as framework
// analyses. Both depend on the event record keeping decay-vertex
// positions — the property the HepMC-style format guarantees and
// simplified outreach formats usually drop.

func init() {
	Register("DASPOS_2013_V0MASS", func() Analysis { return &v0Mass{} })
	Register("DASPOS_2013_DLIFETIME", func() Analysis { return &dLifetime{} })
}

// v0Mass reconstructs K_S → π⁺π⁻ and Λ → pπ⁻ invariant masses from decay
// products of displaced vertices.
type v0Mass struct {
	ksMass, lambdaMass, flightKS *hist.H1D
}

func (*v0Mass) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_V0MASS", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200006",
		Summary:   "V0 reconstruction: K_S and Lambda invariant masses and the K_S flight distance",
	}
}

func (a *v0Mass) Init(ctx *Context) {
	a.ksMass = ctx.BookH1D("m_ks", 50, 0.42, 0.58)
	a.lambdaMass = ctx.BookH1D("m_lambda", 50, 1.08, 1.16)
	a.flightKS = ctx.BookH1D("flight_ks", 40, 0, 200)
}

func (a *v0Mass) Analyze(ctx *Context, ev *hepmc.Event) {
	for _, p := range ev.Particles {
		if p.Status != hepmc.StatusDecayed {
			continue
		}
		isKS := abs(p.PDG) == units.PDGKZeroShort
		isLambda := abs(p.PDG) == units.PDGLambda
		if !isKS && !isLambda {
			continue
		}
		kids := ev.Children(p.Barcode)
		if len(kids) != 2 {
			continue
		}
		m := fourvec.InvariantMass(kids[0].P, kids[1].P)
		if isKS {
			a.ksMass.FillW(m, ctx.Weight)
			if prod, dec := ev.Vertex(p.ProdVertex), ev.Vertex(p.EndVertex); prod != nil && dec != nil {
				dx, dy, dz := dec.X-prod.X, dec.Y-prod.Y, dec.Z-prod.Z
				a.flightKS.FillW(math.Sqrt(dx*dx+dy*dy+dz*dz), ctx.Weight)
			}
		} else {
			a.lambdaMass.FillW(m, ctx.Weight)
		}
	}
}

func (a *v0Mass) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.ksMass.Scale(1 / sw)
		a.lambdaMass.Scale(1 / sw)
		a.flightKS.Scale(1 / sw)
	}
}

// dLifetime measures the D⁰ proper decay time from the flight vector and
// momentum: t = m·L/(p·c), the LHCb master-class measurement.
type dLifetime struct {
	properTime, mass *hist.H1D
}

func (*dLifetime) Metadata() Metadata {
	return Metadata{
		Name: "DASPOS_2013_DLIFETIME", Experiment: "DASPOS-GPD", Year: 2013,
		InspireID: "1200007",
		Summary:   "D0 proper decay time from displaced K pi vertices, and the K pi invariant mass",
	}
}

func (a *dLifetime) Init(ctx *Context) {
	// Proper time in picoseconds; tau(D0) ~ 0.41 ps.
	a.properTime = ctx.BookH1D("t_proper_ps", 50, 0, 3)
	a.mass = ctx.BookH1D("m_kpi", 50, 1.7, 2.05)
}

func (a *dLifetime) Analyze(ctx *Context, ev *hepmc.Event) {
	for _, p := range ev.Particles {
		if p.Status != hepmc.StatusDecayed || abs(p.PDG) != units.PDGDZero {
			continue
		}
		prod, dec := ev.Vertex(p.ProdVertex), ev.Vertex(p.EndVertex)
		if prod == nil || dec == nil {
			continue
		}
		dx, dy, dz := dec.X-prod.X, dec.Y-prod.Y, dec.Z-prod.Z
		flight := math.Sqrt(dx*dx + dy*dy + dz*dz) // mm
		mom := p.P.P()
		if mom <= 0 {
			continue
		}
		// t_proper = m L / (p c); c in mm/ns, result converted to ps.
		tNs := p.P.M() * flight / (mom * units.SpeedOfLight)
		a.properTime.FillW(tNs*1e3, ctx.Weight)
		kids := ev.Children(p.Barcode)
		if len(kids) == 2 {
			a.mass.FillW(fourvec.InvariantMass(kids[0].P, kids[1].P), ctx.Weight)
		}
	}
}

func (a *dLifetime) Finalize(ctx *Context) {
	if sw := ctx.SumW(); sw > 0 {
		a.properTime.Scale(1 / sw)
		a.mass.Scale(1 / sw)
	}
}

// FitExponentialLifetime extracts a lifetime estimate (same unit as the
// histogram axis) from an exponential-decay histogram via the maximum-
// likelihood estimator on binned data: the mean of the distribution with
// the fit restricted to bins above the first (to reduce threshold bias).
func FitExponentialLifetime(h *hist.H1D) float64 {
	var sumW, sumWT float64
	for i := 0; i < h.NBins; i++ {
		sumW += h.SumW[i]
		sumWT += h.SumW[i] * h.BinCenter(i)
	}
	if sumW == 0 {
		return 0
	}
	return sumWT / sumW
}
