package fourvec

import (
	"math"
	"testing"
	"testing/quick"

	"daspos/internal/xrand"
)

const eps = 1e-9

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPtEtaPhiMRoundTrip(t *testing.T) {
	cases := []struct{ pt, eta, phi, m float64 }{
		{25, 0.5, 1.2, 0.105},
		{100, -2.1, -3.0, 0},
		{3, 0, 0, 1.87},
		{50, 2.4, math.Pi, 91.2},
	}
	for _, c := range cases {
		v := PtEtaPhiM(c.pt, c.eta, c.phi, c.m)
		if !approx(v.Pt(), c.pt, eps) {
			t.Errorf("pt: got %v want %v", v.Pt(), c.pt)
		}
		if !approx(v.Eta(), c.eta, 1e-9) {
			t.Errorf("eta: got %v want %v", v.Eta(), c.eta)
		}
		if math.Abs(DeltaPhi(v.Phi(), c.phi)) > 1e-9 {
			t.Errorf("phi: got %v want %v", v.Phi(), c.phi)
		}
		if !approx(v.M(), c.m, 1e-7) {
			t.Errorf("m: got %v want %v", v.M(), c.m)
		}
	}
}

func TestMassInvarianceUnderBoost(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 1000; i++ {
		v := PtEtaPhiM(r.Range(1, 200), r.Range(-3, 3), r.Range(-math.Pi, math.Pi), r.Range(0, 100))
		bx, by, bz := r.Range(-0.6, 0.6), r.Range(-0.6, 0.6), r.Range(-0.6, 0.6)
		if bx*bx+by*by+bz*bz >= 1 {
			continue
		}
		w := v.Boost(bx, by, bz)
		if !approx(w.M(), v.M(), 1e-6) {
			t.Fatalf("mass not invariant: %v -> %v", v.M(), w.M())
		}
	}
}

func TestBoostToRestFrame(t *testing.T) {
	v := PtEtaPhiM(40, 1.3, 0.4, 91.2)
	bx, by, bz := v.BoostVector()
	rest := v.Boost(-bx, -by, -bz)
	if rest.P() > 1e-6 {
		t.Fatalf("rest-frame momentum not zero: %v", rest.P())
	}
	if !approx(rest.E, v.M(), 1e-9) {
		t.Fatalf("rest-frame energy %v != mass %v", rest.E, v.M())
	}
}

func TestBoostRoundTrip(t *testing.T) {
	v := PtEtaPhiM(17, -0.8, 2.2, 5.3)
	w := v.Boost(0.3, -0.2, 0.5).Boost(-0.3, 0.2, -0.5)
	// Boosts do not commute in general but boost+inverse along the same
	// axis set differs; use the exact inverse: boost by -β of the boosted
	// frame. Here we only check the composition is near-identity for small
	// rapidity, so use a single-axis case instead.
	_ = w
	u := v.Boost(0, 0, 0.6).Boost(0, 0, -0.6)
	if !approx(u.Px, v.Px, 1e-9) || !approx(u.Pz, v.Pz, 1e-9) || !approx(u.E, v.E, 1e-9) {
		t.Fatalf("z-boost round trip failed: %v vs %v", u, v)
	}
}

func TestSuperluminalBoostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("boost with β>=1 did not panic")
		}
	}()
	Vec{E: 1}.Boost(1, 0, 0)
}

func TestDotIsM2(t *testing.T) {
	v := PtEtaPhiM(33, 0.2, -1.1, 4.4)
	if !approx(v.Dot(v), v.M2(), 1e-9) {
		t.Fatalf("v·v=%v != M²=%v", v.Dot(v), v.M2())
	}
}

func TestDeltaPhiWrap(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0.1, -0.1, 0.2},
		{3.1, -3.1, 3.1 + 3.1 - 2*math.Pi},
		{-3.1, 3.1, 2*math.Pi - 6.2},
		{math.Pi, 0, math.Pi},
		{0, 0, 0},
	}
	for _, c := range cases {
		got := DeltaPhi(c.a, c.b)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("DeltaPhi(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
		if got <= -math.Pi || got > math.Pi+1e-12 {
			t.Errorf("DeltaPhi out of range: %v", got)
		}
	}
}

func TestDeltaPhiAlwaysInRange(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		// Physical azimuths are bounded; fold the generated values into a
		// generous but finite window so a-b cannot overflow.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		d := DeltaPhi(a, b)
		return d > -math.Pi-1e-9 && d <= math.Pi+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRSymmetric(t *testing.T) {
	a := PtEtaPhiM(10, 1, 0.5, 0)
	b := PtEtaPhiM(20, -0.5, 2.5, 0)
	if !approx(DeltaR(a, b), DeltaR(b, a), eps) {
		t.Fatal("DeltaR not symmetric")
	}
	if DeltaR(a, a) > 1e-12 {
		t.Fatal("DeltaR(a,a) != 0")
	}
}

func TestInvariantMassZPeak(t *testing.T) {
	// Two back-to-back leptons from a Z at rest reconstruct the Z mass.
	const mz = 91.1876
	l1 := PxPyPzE(mz/2, 0, 0, mz/2)
	l2 := PxPyPzE(-mz/2, 0, 0, mz/2)
	if !approx(InvariantMass(l1, l2), mz, 1e-9) {
		t.Fatalf("Z mass: %v", InvariantMass(l1, l2))
	}
	if InvariantMass() != 0 {
		t.Fatal("empty invariant mass must be 0")
	}
}

func TestTransverseMassEndpoint(t *testing.T) {
	// mT is maximal (= 2*pT for symmetric back-to-back) at Δφ = π and zero
	// when the lepton and missing vectors are parallel.
	l := PtEtaPhiM(40, 0, 0, 0)
	nuBack := PtEtaPhiM(40, 0, math.Pi, 0)
	nuPar := PtEtaPhiM(40, 0, 0, 0)
	if !approx(TransverseMass(l, nuBack), 80, 1e-9) {
		t.Fatalf("back-to-back mT: %v", TransverseMass(l, nuBack))
	}
	if TransverseMass(l, nuPar) > 1e-9 {
		t.Fatalf("parallel mT: %v", TransverseMass(l, nuPar))
	}
}

func TestEtaRapidityMasslessAgree(t *testing.T) {
	v := PtEtaPhiM(35, 1.7, 0.2, 0)
	if !approx(v.Eta(), v.Rapidity(), 1e-9) {
		t.Fatalf("massless eta %v != rapidity %v", v.Eta(), v.Rapidity())
	}
}

func TestEdgeVectors(t *testing.T) {
	var zero Vec
	if zero.Pt() != 0 || zero.M() != 0 || zero.Eta() != 0 || zero.Phi() != 0 {
		t.Fatal("zero vector accessors must all be 0")
	}
	beam := PxPyPzE(0, 0, 100, 100)
	if !math.IsInf(beam.Eta(), 1) {
		t.Fatalf("beam-axis eta: %v", beam.Eta())
	}
	if beam.Theta() != 0 {
		t.Fatalf("beam-axis theta: %v", beam.Theta())
	}
}

func TestNegBalances(t *testing.T) {
	v := PtEtaPhiM(12, 0.3, 1.0, 0)
	sum := v.Add(v.Neg())
	if sum.Pt() > 1e-12 {
		t.Fatalf("v + Neg(v) has pT %v", sum.Pt())
	}
}

func TestAddSubScale(t *testing.T) {
	a := PxPyPzE(1, 2, 3, 10)
	b := PxPyPzE(4, 5, 6, 20)
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("add/sub: %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4, 6, 20}) {
		t.Fatalf("scale: %v", got)
	}
}

func TestMtClamp(t *testing.T) {
	v := Vec{Pz: 10, E: 5} // unphysical, E < |pz|
	if v.Mt() != 0 {
		t.Fatalf("Mt must clamp to 0, got %v", v.Mt())
	}
	if v.M() != 0 {
		t.Fatalf("M must clamp to 0, got %v", v.M())
	}
}

func TestBetaGamma(t *testing.T) {
	v := PtEtaPhiM(3, 0, 0, 4)
	bg := v.Beta() * v.Gamma()
	if !approx(bg, v.P()/v.M(), 1e-9) {
		t.Fatalf("βγ=%v != p/m=%v", bg, v.P()/v.M())
	}
	if g := (Vec{Px: 1, E: 1}).Gamma(); !math.IsInf(g, 1) {
		t.Fatalf("massless gamma: %v", g)
	}
}

func BenchmarkPtEtaPhiM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PtEtaPhiM(25, 0.5, 1.2, 0.105)
	}
}

func BenchmarkDeltaR(b *testing.B) {
	v1 := PtEtaPhiM(10, 1, 0.5, 0)
	v2 := PtEtaPhiM(20, -0.5, 2.5, 0)
	for i := 0; i < b.N; i++ {
		_ = DeltaR(v1, v2)
	}
}
