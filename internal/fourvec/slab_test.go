package fourvec

import (
	"math"
	"math/rand"
	"testing"
)

func randomVecs(rng *rand.Rand, n int) []Vec {
	vs := make([]Vec, n)
	for i := range vs {
		pt := math.Exp(rng.Float64()*6 - 1) // 0.37 .. 150 GeV, log-flat
		eta := rng.Float64()*6 - 3
		phi := rng.Float64()*2*math.Pi - math.Pi
		m := rng.Float64() * 5
		vs[i] = PtEtaPhiM(pt, eta, phi, m)
	}
	return vs
}

// TestSlabDeriveBitIdentical pins the slab contract: every cached column
// is bit-for-bit what the scalar Vec methods produce, so swapping a
// scalar loop for a slab can never change a downstream decision.
func TestSlabDeriveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vs := randomVecs(rng, 257)
	s := NewSlab(8) // force growth past the initial capacity
	for _, v := range vs {
		s.Append(v)
	}
	s.Derive()
	for i, v := range vs {
		if got := s.At(i); got != v {
			t.Fatalf("At(%d) = %v, want %v", i, got, v)
		}
		if s.Pt(i) != v.Pt() || s.Eta(i) != v.Eta() || s.Phi(i) != v.Phi() {
			t.Fatalf("derived columns at %d differ from Vec: (%v,%v,%v) vs (%v,%v,%v)",
				i, s.Pt(i), s.Eta(i), s.Phi(i), v.Pt(), v.Eta(), v.Phi())
		}
	}
}

// TestSlabDeltaRBitIdentical checks the cached-column cone metric against
// the scalar DeltaR for every pair, including the φ wrap-around region.
func TestSlabDeltaRBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vs := randomVecs(rng, 64)
	// Stress the ±π seam explicitly.
	vs = append(vs, PtEtaPhiM(10, 0.5, math.Pi-1e-9, 0), PtEtaPhiM(10, 0.5, -math.Pi+1e-9, 0))
	s := NewSlab(len(vs))
	for _, v := range vs {
		s.Append(v)
	}
	s.Derive()
	for i := range vs {
		for j := range vs {
			if got, want := s.DeltaR(i, j), DeltaR(vs[i], vs[j]); got != want {
				t.Fatalf("DeltaR(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestSlabSumMatchesVecAdd: Sum accumulates in index order, exactly like a
// scalar Add fold over the same slice.
func TestSlabSumMatchesVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	vs := randomVecs(rng, 100)
	s := NewSlab(0)
	var want Vec
	for _, v := range vs {
		s.Append(v)
		want = want.Add(v)
	}
	if got := s.Sum(); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

// TestSlabMutationInvalidatesDerived: Set/ScaleAll must force a re-derive,
// and the re-derived columns match scalar recomputation.
func TestSlabMutationInvalidatesDerived(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	vs := randomVecs(rng, 16)
	s := NewSlab(len(vs))
	for _, v := range vs {
		s.Append(v)
	}
	s.Derive()

	repl := PtEtaPhiM(42, -1.2, 0.3, 0.105)
	s.Set(3, repl)
	s.Derive()
	if s.Pt(3) != repl.Pt() || s.Eta(3) != repl.Eta() || s.Phi(3) != repl.Phi() {
		t.Fatal("Set did not invalidate derived columns")
	}

	s.ScaleAll(1.07)
	s.Derive()
	for i, v := range vs {
		if i == 3 {
			v = repl
		}
		scaled := v.Scale(1.07)
		if s.Pt(i) != scaled.Pt() || s.Eta(i) != scaled.Eta() || s.Phi(i) != scaled.Phi() {
			t.Fatalf("ScaleAll columns at %d stale", i)
		}
	}
}

// TestSlabResetKeepsZeroAlloc: a slab reused across events settles to zero
// steady-state allocations once every column has grown to working size.
func TestSlabResetKeepsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	vs := randomVecs(rng, 128)
	s := NewSlab(0)
	fill := func() {
		s.Reset()
		for _, v := range vs {
			s.Append(v)
		}
		s.Derive()
	}
	fill() // warm up capacity
	if allocs := testing.AllocsPerRun(20, fill); allocs != 0 {
		t.Fatalf("warm slab refill allocates %v per run", allocs)
	}
}
