package fourvec

import "math"

// Slab is a struct-of-arrays batch of four-vectors: columnar Px/Py/Pz/E
// plus optionally derived pt/η/φ columns. It is the batch-processing
// counterpart of Vec for the hot kinematics loops in simulation and
// reconstruction — the O(n²) cone and matching loops there spend their
// time in Pt/Eta/Phi transcendentals recomputed per *pair*; a slab
// computes each column once per *object* and the pair loops read cached
// columns.
//
// Bit-compatibility is a contract, not an accident: every derived column
// is computed by exactly the code Vec uses (Pt = math.Hypot, Eta =
// math.Asinh(pz/pt), Phi = math.Atan2), so replacing a scalar loop with a
// slab never changes a single output bit — the determinism e2e relies on
// that.
//
// A slab is scratch memory: Reset keeps capacity, so a per-worker slab
// reused across events reaches zero steady-state allocations.
type Slab struct {
	Px, Py, Pz, E []float64

	pt, eta, phi []float64
	derived      bool
}

// NewSlab returns a slab with capacity for n vectors before growing.
func NewSlab(n int) *Slab {
	return &Slab{
		Px: make([]float64, 0, n), Py: make([]float64, 0, n),
		Pz: make([]float64, 0, n), E: make([]float64, 0, n),
	}
}

// Len returns the number of vectors in the slab.
func (s *Slab) Len() int { return len(s.Px) }

// Reset empties the slab, keeping its capacity.
func (s *Slab) Reset() {
	s.Px, s.Py, s.Pz, s.E = s.Px[:0], s.Py[:0], s.Pz[:0], s.E[:0]
	s.pt, s.eta, s.phi = s.pt[:0], s.eta[:0], s.phi[:0]
	s.derived = false
}

// Append adds one vector. Derived columns are invalidated.
func (s *Slab) Append(v Vec) {
	s.Px = append(s.Px, v.Px)
	s.Py = append(s.Py, v.Py)
	s.Pz = append(s.Pz, v.Pz)
	s.E = append(s.E, v.E)
	s.derived = false
}

// At returns the i-th vector.
func (s *Slab) At(i int) Vec { return Vec{s.Px[i], s.Py[i], s.Pz[i], s.E[i]} }

// Set overwrites the i-th vector in place. Derived columns are
// invalidated.
func (s *Slab) Set(i int, v Vec) {
	s.Px[i], s.Py[i], s.Pz[i], s.E[i] = v.Px, v.Py, v.Pz, v.E
	s.derived = false
}

// Derive computes the pt/η/φ columns, one transcendental pass over the
// slab, using exactly Vec's formulas. It is idempotent until the slab is
// mutated.
func (s *Slab) Derive() {
	if s.derived {
		return
	}
	n := s.Len()
	s.pt = grow(s.pt, n)
	s.eta = grow(s.eta, n)
	s.phi = grow(s.phi, n)
	for i := 0; i < n; i++ {
		v := Vec{s.Px[i], s.Py[i], s.Pz[i], s.E[i]}
		s.pt[i] = v.Pt()
		s.eta[i] = v.Eta()
		s.phi[i] = v.Phi()
	}
	s.derived = true
}

func grow(col []float64, n int) []float64 {
	if cap(col) < n {
		return make([]float64, n)
	}
	return col[:n]
}

// Pt returns the cached transverse momentum of vector i (Derive first).
func (s *Slab) Pt(i int) float64 { return s.pt[i] }

// Eta returns the cached pseudorapidity of vector i (Derive first).
func (s *Slab) Eta(i int) float64 { return s.eta[i] }

// Phi returns the cached azimuth of vector i (Derive first).
func (s *Slab) Phi(i int) float64 { return s.phi[i] }

// DeltaR returns the cone metric between vectors i and j from the cached
// columns: bit-identical to DeltaR(s.At(i), s.At(j)), without the four
// transcendentals per pair.
func (s *Slab) DeltaR(i, j int) float64 {
	return DeltaREtaPhi(s.eta[i], s.phi[i], s.eta[j], s.phi[j])
}

// Sum returns the component-wise sum of all vectors, accumulated in index
// order — the same order (and therefore the same floating-point result)
// as summing with Vec.Add over a slice.
func (s *Slab) Sum() Vec {
	var out Vec
	for i := range s.Px {
		out.Px += s.Px[i]
		out.Py += s.Py[i]
		out.Pz += s.Pz[i]
		out.E += s.E[i]
	}
	return out
}

// ScaleAll multiplies every vector by k in place — the columnar form of
// applying Vec.Scale per event object (an energy calibration, a smearing
// factor). Derived columns are invalidated.
func (s *Slab) ScaleAll(k float64) {
	for i := range s.Px {
		s.Px[i] *= k
		s.Py[i] *= k
		s.Pz[i] *= k
		s.E[i] *= k
	}
	s.derived = false
}

// DeltaREtaPhi is DeltaR over pre-computed (η, φ) pairs: exactly the same
// arithmetic as DeltaR(a, b) once a and b's angles are known. It exists so
// batch code caching angle columns gets bit-identical cone decisions.
func DeltaREtaPhi(eta1, phi1, eta2, phi2 float64) float64 {
	dEta := eta1 - eta2
	dPhi := DeltaPhi(phi1, phi2)
	return math.Sqrt(dEta*dEta + dPhi*dPhi)
}
