// Package fourvec implements relativistic four-vector kinematics: the
// Lorentz-vector algebra that every layer of the DASPOS substrate — event
// generation, detector simulation, reconstruction, and preserved analyses —
// shares for describing particle momenta and positions.
//
// Conventions follow standard collider practice: the z axis is the beam
// axis, pT is the transverse momentum, η the pseudorapidity, φ the azimuth
// in (-π, π], and the metric signature is (+,-,-,-) so that M² = E² - |p|².
// Energies and momenta are in GeV, distances in millimetres.
package fourvec

import (
	"fmt"
	"math"
)

// Vec is a four-vector (Px, Py, Pz, E) in GeV. The zero value is the null
// vector and is ready to use.
type Vec struct {
	Px, Py, Pz, E float64
}

// PxPyPzE builds a four-vector from its Cartesian components.
func PxPyPzE(px, py, pz, e float64) Vec { return Vec{px, py, pz, e} }

// PtEtaPhiM builds a four-vector from collider coordinates: transverse
// momentum, pseudorapidity, azimuth, and invariant mass.
func PtEtaPhiM(pt, eta, phi, m float64) Vec {
	px := pt * math.Cos(phi)
	py := pt * math.Sin(phi)
	pz := pt * math.Sinh(eta)
	e := math.Sqrt(pt*pt + pz*pz + m*m)
	return Vec{px, py, pz, e}
}

// PtEtaPhiE builds a four-vector from transverse momentum, pseudorapidity,
// azimuth, and energy.
func PtEtaPhiE(pt, eta, phi, e float64) Vec {
	px := pt * math.Cos(phi)
	py := pt * math.Sin(phi)
	pz := pt * math.Sinh(eta)
	return Vec{px, py, pz, e}
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	return Vec{v.Px + w.Px, v.Py + w.Py, v.Pz + w.Pz, v.E + w.E}
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	return Vec{v.Px - w.Px, v.Py - w.Py, v.Pz - w.Pz, v.E - w.E}
}

// Scale returns the four-vector with all components multiplied by k.
func (v Vec) Scale(k float64) Vec {
	return Vec{k * v.Px, k * v.Py, k * v.Pz, k * v.E}
}

// Neg returns the spatial reflection (-p, E). It is the momentum an
// object must carry to balance v transversely and longitudinally.
func (v Vec) Neg() Vec { return Vec{-v.Px, -v.Py, -v.Pz, v.E} }

// Pt returns the transverse momentum sqrt(px²+py²).
func (v Vec) Pt() float64 { return math.Hypot(v.Px, v.Py) }

// P returns the magnitude of the three-momentum.
func (v Vec) P() float64 {
	return math.Sqrt(v.Px*v.Px + v.Py*v.Py + v.Pz*v.Pz)
}

// M2 returns the invariant mass squared E² - |p|². It may be (slightly)
// negative for spacelike vectors or through floating-point cancellation.
func (v Vec) M2() float64 {
	return v.E*v.E - v.Px*v.Px - v.Py*v.Py - v.Pz*v.Pz
}

// M returns the invariant mass, with negative M² clamped to zero.
func (v Vec) M() float64 {
	m2 := v.M2()
	if m2 <= 0 {
		return 0
	}
	return math.Sqrt(m2)
}

// Mt returns the transverse mass sqrt(E² - pz²), clamped at zero.
func (v Vec) Mt() float64 {
	mt2 := v.E*v.E - v.Pz*v.Pz
	if mt2 <= 0 {
		return 0
	}
	return math.Sqrt(mt2)
}

// Eta returns the pseudorapidity. For a vector along the beam axis it
// returns ±Inf with the sign of pz.
func (v Vec) Eta() float64 {
	pt := v.Pt()
	if pt == 0 {
		if v.Pz == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, v.Pz)))
	}
	return math.Asinh(v.Pz / pt)
}

// Rapidity returns the true rapidity ½ ln((E+pz)/(E-pz)).
func (v Vec) Rapidity() float64 {
	if v.E <= math.Abs(v.Pz) {
		return math.Inf(int(math.Copysign(1, v.Pz)))
	}
	return 0.5 * math.Log((v.E+v.Pz)/(v.E-v.Pz))
}

// Phi returns the azimuthal angle in (-π, π].
func (v Vec) Phi() float64 {
	if v.Px == 0 && v.Py == 0 {
		return 0
	}
	return math.Atan2(v.Py, v.Px)
}

// Theta returns the polar angle from the beam axis in [0, π].
func (v Vec) Theta() float64 {
	p := v.P()
	if p == 0 {
		return 0
	}
	return math.Acos(v.Pz / p)
}

// Beta returns |p|/E, the particle's speed in units of c.
func (v Vec) Beta() float64 {
	if v.E == 0 {
		return 0
	}
	return v.P() / v.E
}

// Gamma returns the Lorentz factor E/M. For massless vectors it returns +Inf.
func (v Vec) Gamma() float64 {
	m := v.M()
	if m == 0 {
		return math.Inf(1)
	}
	return v.E / m
}

// BoostVector returns the velocity three-vector (βx, βy, βz) of the frame in
// which v is at rest.
func (v Vec) BoostVector() (bx, by, bz float64) {
	if v.E == 0 {
		return 0, 0, 0
	}
	return v.Px / v.E, v.Py / v.E, v.Pz / v.E
}

// Boost applies a Lorentz boost with velocity (bx, by, bz). Boosting a
// rest-frame vector by p.BoostVector() transports it to the lab frame.
func (v Vec) Boost(bx, by, bz float64) Vec {
	b2 := bx*bx + by*by + bz*bz
	if b2 >= 1 {
		panic(fmt.Sprintf("fourvec: superluminal boost β²=%v", b2))
	}
	gamma := 1 / math.Sqrt(1-b2)
	bp := bx*v.Px + by*v.Py + bz*v.Pz
	var gamma2 float64
	if b2 > 0 {
		gamma2 = (gamma - 1) / b2
	}
	return Vec{
		Px: v.Px + gamma2*bp*bx + gamma*bx*v.E,
		Py: v.Py + gamma2*bp*by + gamma*by*v.E,
		Pz: v.Pz + gamma2*bp*bz + gamma*bz*v.E,
		E:  gamma * (v.E + bp),
	}
}

// Dot returns the Minkowski inner product v·w = EᵥE𝓌 - pᵥ·p𝓌.
func (v Vec) Dot(w Vec) float64 {
	return v.E*w.E - v.Px*w.Px - v.Py*w.Py - v.Pz*w.Pz
}

// String renders the vector in collider coordinates for diagnostics.
func (v Vec) String() string {
	return fmt.Sprintf("(pt=%.3f eta=%.3f phi=%.3f m=%.3f)", v.Pt(), v.Eta(), v.Phi(), v.M())
}

// DeltaPhi returns the signed azimuthal separation φ1-φ2 wrapped to (-π, π].
func DeltaPhi(phi1, phi2 float64) float64 {
	d := math.Mod(phi1-phi2, 2*math.Pi)
	switch {
	case d > math.Pi:
		d -= 2 * math.Pi
	case d <= -math.Pi:
		d += 2 * math.Pi
	}
	return d
}

// DeltaR returns the angular separation sqrt(Δη² + Δφ²) between two vectors,
// the standard cone metric for jet clustering and object matching.
func DeltaR(a, b Vec) float64 {
	dEta := a.Eta() - b.Eta()
	dPhi := DeltaPhi(a.Phi(), b.Phi())
	return math.Sqrt(dEta*dEta + dPhi*dPhi)
}

// InvariantMass returns the invariant mass of the system formed by the given
// vectors. With no arguments it returns 0.
func InvariantMass(vs ...Vec) float64 {
	var sum Vec
	for _, v := range vs {
		sum = sum.Add(v)
	}
	return sum.M()
}

// TransverseMass returns the transverse mass of a visible particle and a
// missing transverse momentum vector: the W-mass estimator
// sqrt(2 pT^l pT^miss (1 - cos Δφ)).
func TransverseMass(lepton, missing Vec) float64 {
	dphi := DeltaPhi(lepton.Phi(), missing.Phi())
	mt2 := 2 * lepton.Pt() * missing.Pt() * (1 - math.Cos(dphi))
	if mt2 <= 0 {
		return 0
	}
	return math.Sqrt(mt2)
}
