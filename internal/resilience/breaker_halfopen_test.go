package resilience

import (
	"errors"
	"testing"
	"time"
)

// TestHalfOpenAdmitsExactlyOneProbe pins the half-open admission
// contract the cluster client depends on: with the default MaxProbes of
// one, the elapsed open interval admits exactly one probe, and every
// further call is rejected (and counted) until that probe reports back.
// Without this bound, a recovering node would be hammered by the full
// retry fan-in the moment its open interval elapsed.
func TestHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newTestBreaker(1, time.Second, clk)
	b.Failure() // trip
	clk.advance(time.Second)

	if !b.Allow() {
		t.Fatal("elapsed interval did not admit a probe")
	}
	// The probe is in flight and unreported: no matter how many callers
	// pile up, none may pass.
	for i := 0; i < 5; i++ {
		if b.Allow() {
			t.Fatalf("call %d admitted while the probe slot is occupied", i)
		}
	}
	rejectedWhileProbing := b.Stats().Rejected
	if rejectedWhileProbing < 5 {
		t.Fatalf("rejections while probing = %d, want >= 5", rejectedWhileProbing)
	}

	// The probe succeeds: the breaker closes and admission is unbounded
	// again.
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Success()
	}
}

// TestHalfOpenTransientFailureReopens pins that a transient failure
// during the half-open probe re-opens the breaker immediately — the
// classification does not matter to the breaker, only the outcome: a
// probe that failed for any reason means the node is not back yet, and
// the full open interval must elapse again before the next probe.
func TestHalfOpenTransientFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newTestBreaker(1, time.Second, clk)
	boom := MarkTransient(errors.New("still flapping"))

	b.Failure()
	clk.advance(time.Second)

	// Drive the probe through Do so the path under test is the one the
	// cluster client actually uses.
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("probe error not passed through: %v", err)
	}
	if b.State() != Open {
		t.Fatalf("state after failed transient probe = %v, want open", b.State())
	}
	// Re-opened means a fresh full interval: a call right now is
	// rejected with ErrOpen, not admitted as another probe.
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("call after re-open = %v, want ErrOpen", err)
	}
	// Half the interval is still not enough.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before the re-opened interval elapsed")
	}
	// The full interval admits the next probe, and this time recovery
	// sticks.
	clk.advance(500 * time.Millisecond)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("recovered probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state after recovered probe = %v, want closed", b.State())
	}
	if opens := b.Stats().Opens; opens != 2 {
		t.Fatalf("lifetime opens = %d, want 2 (initial trip + probe re-open)", opens)
	}
}
