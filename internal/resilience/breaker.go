package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's admission mode.
type BreakerState int

const (
	// Closed admits every call; consecutive failures are counted.
	Closed BreakerState = iota
	// Open rejects every call until the open interval elapses.
	Open
	// HalfOpen admits a limited number of probe calls; their outcome
	// decides between re-closing and re-opening.
	HalfOpen
)

// String renders the state for logs and status reports.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ErrOpen is returned (wrapped, transient) when the breaker rejects a call.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig tunes a Breaker. The zero value gets sane defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker. Values < 1 mean 5.
	FailureThreshold int
	// OpenInterval is how long the breaker stays open before admitting a
	// half-open probe. Values <= 0 mean 1s.
	OpenInterval time.Duration
	// ProbeSuccesses is how many consecutive half-open probes must
	// succeed to re-close. Values < 1 mean 1.
	ProbeSuccesses int
	// MaxProbes bounds concurrent half-open probes. Values < 1 mean 1.
	MaxProbes int
	// Now is a test hook for the clock; nil means time.Now.
	Now func() time.Time
}

// Breaker is a circuit breaker: closed → open after FailureThreshold
// consecutive failures, open → half-open after OpenInterval, half-open →
// closed after ProbeSuccesses successful probes (or back to open on any
// probe failure). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu            sync.Mutex
	state         BreakerState
	failures      int // consecutive failures while closed
	probeSuccess  int // consecutive successes while half-open
	probesInUse   int // admitted, unreported probes while half-open
	openedAt      time.Time
	opens         uint64 // lifetime count of closed/half-open → open trips
	rejected      uint64 // calls rejected while open
	totalFailures uint64
	totalSuccess  uint64
}

// NewBreaker returns a breaker with the given config (zero fields get
// defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold < 1 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenInterval <= 0 {
		cfg.OpenInterval = time.Second
	}
	if cfg.ProbeSuccesses < 1 {
		cfg.ProbeSuccesses = 1
	}
	if cfg.MaxProbes < 1 {
		cfg.MaxProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed, admitting probes when the open
// interval has elapsed. Every admitted call must be reported back through
// Success or Failure, or half-open probe slots leak.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenInterval {
			b.rejected++
			return false
		}
		// Open interval elapsed: become half-open and admit this call
		// as the first probe.
		b.state = HalfOpen
		b.probeSuccess = 0
		b.probesInUse = 1
		return true
	default: // HalfOpen
		if b.probesInUse >= b.cfg.MaxProbes {
			b.rejected++
			return false
		}
		b.probesInUse++
		return true
	}
}

// Success reports a successful call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.totalSuccess++
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		if b.probesInUse > 0 {
			b.probesInUse--
		}
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.ProbeSuccesses {
			b.state = Closed
			b.failures = 0
			b.probeSuccess = 0
			b.probesInUse = 0
		}
	}
}

// Failure reports a failed call.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.totalFailures++
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		// A failed probe re-opens immediately.
		b.trip()
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.opens++
	b.failures = 0
	b.probeSuccess = 0
	b.probesInUse = 0
}

// Record forwards an operation outcome: nil counts as success, anything
// else as failure.
func (b *Breaker) Record(err error) {
	if err == nil {
		b.Success()
	} else {
		b.Failure()
	}
}

// State returns the current admission mode (Open may lazily read as Open
// even when the next Allow would admit a probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time counters snapshot.
type BreakerStats struct {
	State     BreakerState
	Opens     uint64 // times the breaker tripped open
	Rejected  uint64 // calls rejected while open / probe-saturated
	Failures  uint64
	Successes uint64
}

// Stats snapshots the lifetime counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State: b.state, Opens: b.opens, Rejected: b.rejected,
		Failures: b.totalFailures, Successes: b.totalSuccess,
	}
}

// Do guards op with the breaker: rejected calls return ErrOpen (marked
// transient — the service may recover), admitted calls are recorded.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return MarkTransient(ErrOpen)
	}
	err := op()
	b.Record(err)
	return err
}
