// Package resilience provides the failure-handling primitives the
// preservation services share: an error taxonomy (transient vs permanent),
// context-aware retry with exponential backoff and deterministic jitter,
// per-attempt deadlines, and a circuit breaker with probe admission.
//
// Preservation is a sustained-operations problem, not a one-shot copy: the
// Appendix-A maturity tables rate experiments on *surviving* failure
// ("disaster recovery plans are routinely tested and shown to be
// effective"), and the ROADMAP's production-scale north star means every
// cross-service call — replica copies, conditions lookups, RECAST back-end
// runs — must assume the other side can be slow, down, or lying. The
// policies here are deterministic on purpose: jitter is drawn from a
// seeded xrand stream so chaos tests replay bit-identically.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"daspos/internal/xrand"
)

// Class partitions errors by how a caller should react.
type Class int

const (
	// Unknown is an unclassified error: the policy decides whether to
	// retry it (Policy.RetryUnknown).
	Unknown Class = iota
	// Transient errors are expected to heal on their own: timeouts,
	// dropped connections, injected faults. Retrying is worthwhile.
	Transient
	// Permanent errors will not improve with repetition: validation
	// failures, missing packages, fixity mismatches on the only copy.
	Permanent
)

// String renders the class for logs and attempt histories.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	default:
		return "unknown"
	}
}

// classified wraps an error with its class while preserving the chain.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// MarkTransient tags an error as transient. A nil error stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Transient}
}

// MarkPermanent tags an error as permanent. A nil error stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Permanent}
}

// Classify returns the innermost explicit class in the error chain.
// Context cancellation and deadline expiry classify as transient: the
// operation may succeed under a fresh deadline, and the retry loop itself
// stops when its own context is done.
func Classify(err error) Class {
	if err == nil {
		return Unknown
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return Transient
	}
	return Unknown
}

// IsTransient reports whether the error is explicitly transient (or a
// deadline/cancellation, which retry under a fresh attempt may cure).
func IsTransient(err error) bool { return Classify(err) == Transient }

// IsPermanent reports whether the error is explicitly permanent.
func IsPermanent(err error) bool { return Classify(err) == Permanent }

// Policy describes a retry schedule. The zero value is usable: it means
// one attempt, no backoff — resilience off.
type Policy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values < 1 behave as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized, in [0, 1]: the
	// delay becomes d*(1-Jitter) + d*Jitter*2*u for uniform u — full
	// jitter at 1, none at 0. Deterministic via Seed.
	Jitter float64
	// Seed seeds the jitter stream so schedules replay exactly.
	Seed uint64
	// AttemptTimeout bounds each attempt with its own deadline; 0 means
	// the attempt inherits the caller's context unchanged.
	AttemptTimeout time.Duration
	// RetryUnknown retries unclassified errors too. Off by default so a
	// policy never loops on validation errors nobody thought to mark.
	RetryUnknown bool
	// Sleep is a test hook replacing the real inter-attempt sleep. It
	// must honour ctx cancellation. Nil means a timer-backed sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each failed attempt before the backoff
	// sleep (1-based attempt number, the error, the chosen delay).
	OnRetry func(attempt int, err error, delay time.Duration)
}

// attempts returns the effective attempt budget.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the deterministic delay before attempt n+1 given the
// jitter stream rng (attempt is 1-based: Backoff(1, rng) follows the first
// failure). Exposed so tests can table-drive the schedule.
func (p Policy) Backoff(attempt int, rng *xrand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d = d*(1-j) + d*j*2*rng.Float64()
	}
	return time.Duration(d)
}

// Schedule materializes the full backoff sequence a policy would sleep
// through if every attempt failed — the schedule chaos tests assert on.
func (p Policy) Schedule() []time.Duration {
	rng := xrand.New(p.Seed)
	n := p.attempts()
	out := make([]time.Duration, 0, n-1)
	for a := 1; a < n; a++ {
		out = append(out, p.Backoff(a, rng))
	}
	return out
}

// ExhaustedError reports that a retry loop ran out of attempts. The last
// error is wrapped, so errors.Is/As reach through it.
type ExhaustedError struct {
	Attempts int
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("resilience: %d attempts exhausted: %v", e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs op under the policy: transient errors (and unknown ones, when
// RetryUnknown is set) are retried with backoff until the attempt budget is
// spent; permanent errors and context cancellation abort immediately. Each
// attempt runs under its own deadline when AttemptTimeout is set. The
// returned error is nil on success, the permanent error as-is, or an
// *ExhaustedError wrapping the last failure.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	rng := xrand.New(p.Seed)
	doSleep := p.Sleep
	if doSleep == nil {
		doSleep = sleep
	}
	n := p.attempts()
	var last error
	for attempt := 1; attempt <= n; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		actx := ctx
		if p.AttemptTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
			err := op(actx)
			cancel()
			last = err
		} else {
			last = op(actx)
		}
		if last == nil {
			return nil
		}
		switch Classify(last) {
		case Permanent:
			return last
		case Unknown:
			if !p.RetryUnknown {
				return last
			}
		}
		if attempt == n {
			break
		}
		d := p.Backoff(attempt, rng)
		// A server that said when to come back (Retry-After on a 429/503,
		// a breaker's open interval) knows better than our backoff curve:
		// never knock earlier than invited.
		if hint, ok := RetryAfter(last); ok && hint > d {
			d = hint
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, last, d)
		}
		if err := doSleep(ctx, d); err != nil {
			return err
		}
	}
	return &ExhaustedError{Attempts: n, Last: last}
}
