package resilience

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Deadline propagation helpers. A client's deadline must travel with its
// request — through the HTTP hop as a relative budget header, and through
// the service as a context deadline — so every layer (admission, queue,
// backend, archive fetch) can refuse or abandon work that can no longer be
// delivered in time. The wire format is a *relative* budget in
// milliseconds rather than an absolute instant, so it survives clock skew
// between requester and service.

// EncodeBudget renders a remaining time budget as a header value
// (integer milliseconds, rounded up so a positive budget never encodes to
// zero). Non-positive budgets encode to "0": already expired.
func EncodeBudget(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	return strconv.FormatInt(int64(ms), 10)
}

// DecodeBudget parses a budget header value back to a duration.
func DecodeBudget(s string) (time.Duration, error) {
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("resilience: malformed deadline budget %q: %w", s, err)
	}
	if ms < 0 {
		return 0, fmt.Errorf("resilience: negative deadline budget %q", s)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// RemainingBudget reports the time left until the context's deadline,
// measured from now. The second return is false when the context carries
// no deadline.
func RemainingBudget(ctx context.Context, now time.Time) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return dl.Sub(now), true
}

// retryHinter is implemented by errors that carry the server's own advice
// on when to try again — an HTTP 429/503 Retry-After, a breaker's
// remaining open interval.
type retryHinter interface {
	RetryAfterHint() time.Duration
}

// hintedError attaches a retry-after hint to an error while preserving the
// chain (and, through it, the transient/permanent classification).
type hintedError struct {
	err  error
	hint time.Duration
}

func (h *hintedError) Error() string                 { return h.err.Error() }
func (h *hintedError) Unwrap() error                 { return h.err }
func (h *hintedError) RetryAfterHint() time.Duration { return h.hint }

// WithRetryAfter attaches a retry-after hint to an error. A nil error
// stays nil; a non-positive hint attaches nothing.
func WithRetryAfter(err error, hint time.Duration) error {
	if err == nil || hint <= 0 {
		return err
	}
	return &hintedError{err: err, hint: hint}
}

// RetryAfter extracts the innermost retry-after hint from an error chain.
// It reports 0, false when no layer offered one.
func RetryAfter(err error) (time.Duration, bool) {
	for err != nil {
		if h, ok := err.(retryHinter); ok {
			return h.RetryAfterHint(), true
		}
		err = errors.Unwrap(err)
	}
	return 0, false
}
