package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// limiterClock is a hand-cranked clock for deterministic limiter schedules.
type limiterClock struct{ t time.Time }

func (c *limiterClock) now() time.Time          { return c.t }
func (c *limiterClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBucket(rate, burst float64) (*TokenBucket, *limiterClock) {
	clk := &limiterClock{t: time.Unix(1000, 0)}
	tb := NewTokenBucket(rate, burst)
	tb.SetClock(clk.now)
	return tb, clk
}

func TestTokenBucketBurstThenMetered(t *testing.T) {
	tb, clk := newTestBucket(10, 3) // 10/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := tb.Take(); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := tb.Take()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 100ms]", retry)
	}
	// After exactly one token's worth of time, one take succeeds and the
	// next is refused again.
	clk.advance(100 * time.Millisecond)
	if ok, _ := tb.Take(); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := tb.Take(); ok {
		t.Fatal("second take admitted after a one-token refill")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb, clk := newTestBucket(100, 2)
	if ok, _ := tb.Take(); !ok {
		t.Fatal("initial take refused")
	}
	// A long idle period must not bank more than burst.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := tb.Take(); !ok {
			t.Fatalf("take %d refused after idle refill", i)
		}
	}
	if got := tb.Tokens(); got >= 1 {
		t.Fatalf("tokens = %v after draining burst, want < 1", got)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb, _ := newTestBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if ok, retry := tb.Take(); !ok || retry != 0 {
			t.Fatalf("unlimited bucket refused take %d", i)
		}
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 250 * time.Millisecond, 30 * time.Second} {
		got, err := DecodeBudget(EncodeBudget(d))
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("round trip %v -> %v", d, got)
		}
	}
	// Sub-millisecond budgets round up, never to zero.
	if EncodeBudget(10*time.Microsecond) != "1" {
		t.Fatalf("sub-ms budget encoded to %q, want 1", EncodeBudget(10*time.Microsecond))
	}
	if EncodeBudget(-time.Second) != "0" {
		t.Fatal("expired budget must encode to 0")
	}
	if _, err := DecodeBudget("banana"); err == nil {
		t.Fatal("malformed budget accepted")
	}
	if _, err := DecodeBudget("-5"); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestRemainingBudget(t *testing.T) {
	now := time.Unix(2000, 0)
	if _, ok := RemainingBudget(context.Background(), now); ok {
		t.Fatal("background context reported a deadline")
	}
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(3*time.Second))
	defer cancel()
	d, ok := RemainingBudget(ctx, now)
	if !ok || d != 3*time.Second {
		t.Fatalf("remaining = %v %v, want 3s true", d, ok)
	}
}

func TestRetryAfterHintPreservesClassification(t *testing.T) {
	base := MarkTransient(errors.New("throttled"))
	hinted := WithRetryAfter(base, 2*time.Second)
	if !IsTransient(hinted) {
		t.Fatal("hint wrapper lost the transient classification")
	}
	if d, ok := RetryAfter(hinted); !ok || d != 2*time.Second {
		t.Fatalf("hint = %v %v, want 2s true", d, ok)
	}
	if _, ok := RetryAfter(base); ok {
		t.Fatal("unhinted error reported a hint")
	}
	if WithRetryAfter(nil, time.Second) != nil {
		t.Fatal("nil error grew a hint")
	}
	if got := WithRetryAfter(base, 0); got != base {
		t.Fatal("zero hint wrapped the error")
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	// The server's 2s hint must override the policy's 1ms backoff.
	var slept []time.Duration
	pol := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	}
	calls := 0
	err := Retry(context.Background(), pol, func(context.Context) error {
		calls++
		if calls < 3 {
			return WithRetryAfter(MarkTransient(errors.New("throttled")), 2*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d != 2*time.Second {
			t.Fatalf("sleep %d = %v, want the server's 2s hint", i, d)
		}
	}
}
