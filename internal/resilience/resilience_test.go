package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"daspos/internal/xrand"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Unknown},
		{"plain", base, Unknown},
		{"transient", MarkTransient(base), Transient},
		{"permanent", MarkPermanent(base), Permanent},
		{"wrapped transient", errorsWrap(MarkTransient(base)), Transient},
		{"deadline", context.DeadlineExceeded, Transient},
		{"canceled", context.Canceled, Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !errors.Is(MarkTransient(base), base) {
		t.Error("MarkTransient broke the error chain")
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Error("marking nil must stay nil")
	}
}

func errorsWrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
		want []time.Duration
	}{
		{
			name: "no backoff configured",
			pol:  Policy{MaxAttempts: 3},
			want: []time.Duration{0, 0},
		},
		{
			name: "pure exponential",
			pol:  Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond},
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond,
				40 * time.Millisecond, 80 * time.Millisecond,
			},
		},
		{
			name: "custom multiplier",
			pol:  Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 3},
			want: []time.Duration{time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond},
		},
		{
			name: "capped",
			pol:  Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond,
				25 * time.Millisecond, 25 * time.Millisecond,
			},
		},
		{
			name: "single attempt sleeps never",
			pol:  Policy{MaxAttempts: 1, BaseDelay: time.Second},
			want: []time.Duration{},
		},
	}
	for _, tc := range cases {
		got := tc.pol.Schedule()
		if len(got) != len(tc.want) {
			t.Errorf("%s: schedule length %d, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: delay[%d] = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	pol := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Seed: 42}
	a := pol.Schedule()
	b := pol.Schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter 0.5 keeps each delay within [0.5d, 1.5d] of the raw value.
	rng := xrand.New(99)
	raw := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond}
	for i, d := range a {
		lo := time.Duration(float64(raw.Backoff(i+1, rng)) * 0.5)
		hi := time.Duration(float64(raw.Backoff(i+1, rng)) * 1.5)
		_ = lo
		_ = hi
		if d <= 0 {
			t.Fatalf("jittered delay %d not positive: %v", i, d)
		}
	}
	other := pol
	other.Seed = 43
	c := other.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// fastSleep records requested delays without sleeping.
func fastSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*log = append(*log, d)
		return ctx.Err()
	}
}

func TestRetryTransientEventuallySucceeds(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Sleep: fastSleep(&slept),
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestRetryPermanentAbortsImmediately(t *testing.T) {
	calls := 0
	perm := errors.New("bad request")
	err := Retry(context.Background(), Policy{MaxAttempts: 5}, func(context.Context) error {
		calls++
		return MarkPermanent(perm)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, perm) {
		t.Fatalf("lost the permanent error: %v", err)
	}
}

func TestRetryUnknownRespectsPolicy(t *testing.T) {
	plain := errors.New("unclassified")
	for _, tc := range []struct {
		retryUnknown bool
		wantCalls    int
	}{{false, 1}, {true, 3}} {
		calls := 0
		var slept []time.Duration
		err := Retry(context.Background(), Policy{
			MaxAttempts: 3, RetryUnknown: tc.retryUnknown, Sleep: fastSleep(&slept),
		}, func(context.Context) error {
			calls++
			return plain
		})
		if calls != tc.wantCalls {
			t.Errorf("RetryUnknown=%v: calls = %d, want %d", tc.retryUnknown, calls, tc.wantCalls)
		}
		if !errors.Is(err, plain) {
			t.Errorf("RetryUnknown=%v: lost the error: %v", tc.retryUnknown, err)
		}
	}
}

func TestRetryExhaustion(t *testing.T) {
	flaky := errors.New("still down")
	var slept []time.Duration
	err := Retry(context.Background(), Policy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: fastSleep(&slept),
	}, func(context.Context) error {
		return MarkTransient(flaky)
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError, got %v", err)
	}
	if ex.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", ex.Attempts)
	}
	if !errors.Is(err, flaky) {
		t.Fatal("exhausted error does not wrap the last failure")
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{
		MaxAttempts: 10, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancel while "sleeping"
			return ctx.Err()
		},
	}, func(context.Context) error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls after cancel = %d, want 1", calls)
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	var sawDeadline bool
	err := Retry(context.Background(), Policy{
		MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDeadline {
		t.Fatal("attempt did not run under a deadline")
	}
}

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, open time.Duration, clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold, OpenInterval: open, Now: clk.now,
	})
}

func TestBreakerStateTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newTestBreaker(3, time.Second, clk)

	type step struct {
		name      string
		act       func()
		wantState BreakerState
		wantAllow *bool // nil = skip allow check
	}
	yes, no := true, false
	steps := []step{
		{"starts closed", func() {}, Closed, &yes},
		{"failure 1", b.Failure, Closed, &yes},
		{"failure 2", b.Failure, Closed, &yes},
		{"failure 3 trips", b.Failure, Open, &no},
		{"success while open ignored for state", b.Success, Open, &no},
		{"still open before interval", func() { clk.advance(999 * time.Millisecond) }, Open, &no},
		// advance past interval: next Allow admits a probe and flips to half-open.
		{"interval elapsed", func() { clk.advance(2 * time.Millisecond) }, Open, nil},
	}
	for _, s := range steps {
		s.act()
		if got := b.State(); got != s.wantState {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.wantState)
		}
		if s.wantAllow != nil {
			// Every admission in this table happens while closed, so no
			// probe bookkeeping needs balancing.
			if got := b.Allow(); got != *s.wantAllow {
				t.Fatalf("%s: Allow = %v, want %v", s.name, got, *s.wantAllow)
			}
		}
	}

	// The elapsed interval admits exactly one probe.
	if !b.Allow() {
		t.Fatal("probe not admitted after open interval")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// Next interval: probe succeeds, breaker closes.
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe not admitted after second interval")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}

	st := b.Stats()
	if st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
	if st.Rejected == 0 {
		t.Fatal("no rejections counted while open")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newTestBreaker(3, time.Second, clk)
	b.Failure()
	b.Failure()
	b.Success() // breaks the streak
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("three consecutive failures did not trip")
	}
}

func TestBreakerProbeSuccessesConfig(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1, OpenInterval: time.Second, ProbeSuccesses: 2,
		MaxProbes: 2, Now: clk.now,
	})
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold 1 did not trip")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("first probe rejected")
	}
	b.Success()
	if b.State() != HalfOpen {
		t.Fatal("closed after one probe success; wants two")
	}
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("two probe successes did not close the breaker")
	}
}

func TestBreakerDo(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newTestBreaker(1, time.Minute, clk)
	boom := errors.New("down")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do did not pass through the op error: %v", err)
	}
	err := b.Do(func() error { return nil })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Do = %v, want ErrOpen", err)
	}
	if !IsTransient(err) {
		t.Fatal("ErrOpen should classify transient")
	}
}
