package resilience

import (
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter: tokens accrue at Rate per second
// up to Burst, and each admitted call spends one. It is the per-tenant
// admission primitive of the RECAST front door — a tenant that floods
// spends its burst and is then metered down to its sustained rate, while
// every other tenant's bucket is untouched.
//
// The clock is injectable so admission schedules replay deterministically
// in tests; production buckets run on time.Now. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket. Rate values <= 0 mean an unlimited
// bucket (every Take admits); burst values < 1 mean 1.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

// SetClock replaces the bucket's clock — the test hook that makes refill
// schedules reproducible.
func (tb *TokenBucket) SetClock(now func() time.Time) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.now = now
	tb.last = time.Time{}
}

// refillLocked accrues tokens for the time elapsed since the last call.
func (tb *TokenBucket) refillLocked(now time.Time) {
	if tb.last.IsZero() {
		tb.last = now
		return
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
}

// Take spends one token when available. When the bucket is empty it
// reports false and how long the caller should wait before the next token
// exists — the Retry-After the front door sends with a 429.
func (tb *TokenBucket) Take() (ok bool, retryAfter time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.rate <= 0 {
		return true, 0
	}
	tb.refillLocked(tb.now())
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	deficit := 1 - tb.tokens
	return false, time.Duration(deficit / tb.rate * float64(time.Second))
}

// Tokens reports the current token count (after refill) — a status-page
// observable, not an admission decision.
func (tb *TokenBucket) Tokens() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.rate <= 0 {
		return tb.burst
	}
	tb.refillLocked(tb.now())
	return tb.tokens
}
