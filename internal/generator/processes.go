package generator

import (
	"math"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
	"daspos/internal/xrand"
)

// MinBias generates soft inelastic pp collisions: the pileup and
// underlying-event workhorse, and the "generic tracks" sample some ALICE
// master classes analyse.
type MinBias struct{ base }

// NewMinBias returns a minimum-bias generator.
func NewMinBias(cfg Config) *MinBias {
	return &MinBias{newBase(cfg, ProcMinBias)}
}

// Generate produces one soft event with charged multiplicity drawn from a
// Poisson around the soft mean.
func (g *MinBias) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	g.addSoftParticles(e, pv, g.rng.Poisson(25), 0.5)
	return g.finish(e, pv)
}

// QCDDijet generates two back-to-back jets with a steeply falling pT
// spectrum, fragmented into collimated hadrons — the dominant background
// process every preserved search analysis must model.
type QCDDijet struct {
	base
	// PtMin and PtMax bound the leading-parton transverse momentum (GeV).
	PtMin, PtMax float64
	// SpectrumIndex is the power-law exponent of the parton pT spectrum.
	SpectrumIndex float64
}

// NewQCDDijet returns a dijet generator with an LHC-like falling spectrum.
func NewQCDDijet(cfg Config) *QCDDijet {
	return &QCDDijet{base: newBase(cfg, ProcQCDDijet), PtMin: 25, PtMax: 800, SpectrumIndex: 4.2}
}

// Generate produces one dijet event.
func (g *QCDDijet) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	pt := g.rng.PowerLaw(g.SpectrumIndex, g.PtMin, g.PtMax)
	eta1 := g.rng.Range(-2.5, 2.5)
	phi1 := g.rng.Range(-math.Pi, math.Pi)
	// Second parton approximately balances the first, with kT smearing.
	eta2 := g.rng.Gauss(-eta1*0.3, 1.0)
	phi2 := phi1 + math.Pi + g.rng.Gauss(0, 0.15)
	pt2 := pt * g.rng.Range(0.85, 1.0)
	g.fragmentJet(e, pv, fourvec.PtEtaPhiM(pt, eta1, phi1, 0))
	g.fragmentJet(e, pv, fourvec.PtEtaPhiM(pt2, eta2, phi2, 0))
	return g.finish(e, pv)
}

// fragmentJet splits a parton's momentum into a collimated spray of
// detector-stable hadrons attached to vtx. The longitudinal splitting is a
// crude Lund-inspired z sampling; the transverse spread is Gaussian around
// the jet axis. Energy is conserved up to the last (residual) hadron.
func (b *base) fragmentJet(e *hepmc.Event, vtx int, parton fourvec.Vec) {
	remaining := parton.P()
	axisEta, axisPhi := parton.Eta(), parton.Phi()
	const minHadron = 0.25
	for remaining > minHadron {
		z := b.rng.Range(0.1, 0.6)
		pmag := z * remaining
		if remaining-pmag < minHadron {
			pmag = remaining
		}
		remaining -= pmag
		pdg := units.PDGPiPlus
		switch {
		case b.rng.Bool(0.10):
			pdg = units.PDGKPlus
		case b.rng.Bool(0.06):
			pdg = units.PDGProton
		case b.rng.Bool(0.25):
			pdg = units.PDGPhoton // stand-in for pi0 -> gamma gamma
		}
		if units.Charge(pdg) != 0 && b.rng.Bool(0.5) {
			pdg = -pdg
		}
		eta := axisEta + b.rng.Gauss(0, 0.08)
		phi := axisPhi + b.rng.Gauss(0, 0.08)
		m := units.Mass(pdg)
		// Convert |p| to pT given eta: |p| = pT cosh(eta).
		pt := pmag / math.Cosh(eta)
		p := fourvec.PtEtaPhiM(pt, eta, phi, m)
		e.AddParticle(pdg, hepmc.StatusFinal, p, vtx, 0)
	}
}

// resonanceMass draws a Breit–Wigner mass constrained above the decay
// threshold: the Cauchy tail otherwise reaches below 2·m(daughter) once in
// tens of thousands of draws and closes the decay.
func (b *base) resonanceMass(pole, width, minMass float64) float64 {
	for {
		if m := b.rng.BreitWigner(pole, width); m > minMass {
			return m
		}
	}
}

// DrellYanZ generates pp → Z/γ* → ℓℓ with a Breit–Wigner line shape: the
// canonical outreach "Z path" measurement and the standard candle every
// experiment's analysis-preservation tutorial reconstructs.
type DrellYanZ struct {
	base
	// ElectronFraction is the probability of the ee final state; the
	// remainder decays to µµ.
	ElectronFraction float64
}

// NewDrellYanZ returns a Z generator with equal ee/µµ branching.
func NewDrellYanZ(cfg Config) *DrellYanZ {
	return &DrellYanZ{base: newBase(cfg, ProcDrellYanZ), ElectronFraction: 0.5}
}

// Generate produces one Z event.
func (g *DrellYanZ) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	pz, _ := units.Lookup(units.PDGZ)
	lep := units.PDGMuon
	if g.rng.Bool(g.ElectronFraction) {
		lep = units.PDGElectron
	}
	mass := g.resonanceMass(pz.Mass, 2.4952, 2*units.Mass(lep)+0.01)
	v := resonanceKinematics(g.rng, mass, 6.0)
	dv := e.AddVertex(vertexOf(e, pv))
	zbc := e.AddParticle(units.PDGZ, hepmc.StatusDecayed, v, pv, dv)
	_ = zbc
	ml := units.Mass(lep)
	d1, d2 := twoBodyDecay(g.rng, v, ml, ml)
	e.AddParticle(lep, hepmc.StatusFinal, d1, dv, 0)
	e.AddParticle(-lep, hepmc.StatusFinal, d2, dv, 0)
	return g.finish(e, pv)
}

// WLepNu generates pp → W → ℓν: the outreach "W path" and the canonical
// missing-momentum use case.
type WLepNu struct{ base }

// NewWLepNu returns a W generator.
func NewWLepNu(cfg Config) *WLepNu {
	return &WLepNu{newBase(cfg, ProcWLepNu)}
}

// Generate produces one W event with equal e/µ branching and both charges.
func (g *WLepNu) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	pw, _ := units.Lookup(units.PDGW)
	mass := g.resonanceMass(pw.Mass, 2.085, units.Mass(units.PDGTau)+0.01)
	v := resonanceKinematics(g.rng, mass, 7.0)
	lep := units.PDGMuon
	nu := units.PDGNuMu
	if g.rng.Bool(0.5) {
		lep, nu = units.PDGElectron, units.PDGNuE
	}
	wpdg := units.PDGW
	if g.rng.Bool(0.5) {
		// W- → ℓ- ν̄
		wpdg = -units.PDGW
	} else {
		// W+ → ℓ+ ν: the charged anti-lepton carries the negated PDG code.
		lep = -lep
	}
	if wpdg < 0 {
		nu = -nu
	}
	dv := e.AddVertex(vertexOf(e, pv))
	e.AddParticle(wpdg, hepmc.StatusDecayed, v, pv, dv)
	d1, d2 := twoBodyDecay(g.rng, v, units.Mass(lep), 0)
	e.AddParticle(lep, hepmc.StatusFinal, d1, dv, 0)
	e.AddParticle(nu, hepmc.StatusFinal, d2, dv, 0)
	return g.finish(e, pv)
}

// HiggsDiphoton generates pp → H → γγ on a small continuum: the "Higgs
// hunt" outreach exercise and a narrow-resonance search benchmark.
type HiggsDiphoton struct{ base }

// NewHiggsDiphoton returns an H→γγ generator.
func NewHiggsDiphoton(cfg Config) *HiggsDiphoton {
	return &HiggsDiphoton{newBase(cfg, ProcHiggsDiphoton)}
}

// Generate produces one H→γγ event.
func (g *HiggsDiphoton) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	ph, _ := units.Lookup(units.PDGHiggs)
	mass := g.rng.Gauss(ph.Mass, 0.004) // natural width is negligible
	v := resonanceKinematics(g.rng, mass, 8.0)
	dv := e.AddVertex(vertexOf(e, pv))
	e.AddParticle(units.PDGHiggs, hepmc.StatusDecayed, v, pv, dv)
	d1, d2 := twoBodyDecay(g.rng, v, 0, 0)
	e.AddParticle(units.PDGPhoton, hepmc.StatusFinal, d1, dv, 0)
	e.AddParticle(units.PDGPhoton, hepmc.StatusFinal, d2, dv, 0)
	return g.finish(e, pv)
}

// DZero generates D⁰ → K⁻π⁺ with a displaced decay vertex from the
// exponential proper-lifetime distribution: the LHCb "D lifetime" master
// class (Table 1) depends on reconstructing exactly this flight distance.
type DZero struct{ base }

// NewDZero returns a D⁰ generator.
func NewDZero(cfg Config) *DZero {
	return &DZero{newBase(cfg, ProcDZero)}
}

// Generate produces one D⁰ event.
func (g *DZero) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	pd, _ := units.Lookup(units.PDGDZero)
	pt := g.rng.PowerLaw(3.5, 2, 40)
	eta := g.rng.Range(2.0, 4.5) // forward, LHCb-like
	phi := g.rng.Range(-math.Pi, math.Pi)
	pdg := units.PDGDZero
	k, pi := -units.PDGKPlus, units.PDGPiPlus
	if g.rng.Bool(0.5) {
		pdg, k, pi = -pdg, -k, -pi
	}
	v := fourvec.PtEtaPhiM(pt, eta, phi, pd.Mass)
	x, y, z, tt := decayVertexFor(g.rng, v, *e.Vertex(pv), pd.Lifetime)
	dv := e.AddVertex(x, y, z, tt)
	e.AddParticle(pdg, hepmc.StatusDecayed, v, pv, dv)
	d1, d2 := twoBodyDecay(g.rng, v, units.Mass(k), units.Mass(pi))
	e.AddParticle(k, hepmc.StatusFinal, d1, dv, 0)
	e.AddParticle(pi, hepmc.StatusFinal, d2, dv, 0)
	return g.finish(e, pv)
}

// V0 generates K_S → π⁺π⁻ and Λ → pπ⁻ decays with centimetre-scale flight
// distances: the ALICE "V0 finder" master class of Table 1.
type V0 struct {
	base
	// LambdaFraction is the probability of producing a Λ instead of a K_S.
	LambdaFraction float64
}

// NewV0 returns a V0 generator with a 30% Λ admixture.
func NewV0(cfg Config) *V0 {
	return &V0{base: newBase(cfg, ProcV0), LambdaFraction: 0.3}
}

// Generate produces one event containing a single reconstructible V0.
func (g *V0) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	var pdg, d1pdg, d2pdg int
	if g.rng.Bool(g.LambdaFraction) {
		pdg, d1pdg, d2pdg = units.PDGLambda, units.PDGProton, -units.PDGPiPlus
		if g.rng.Bool(0.5) {
			pdg, d1pdg, d2pdg = -pdg, -d1pdg, -d2pdg
		}
	} else {
		pdg, d1pdg, d2pdg = units.PDGKZeroShort, units.PDGPiPlus, -units.PDGPiPlus
	}
	sp, _ := units.Lookup(pdg)
	pt := g.rng.PowerLaw(3.0, 0.5, 10)
	eta := g.rng.Range(-0.9, 0.9) // central, ALICE-like
	phi := g.rng.Range(-math.Pi, math.Pi)
	v := fourvec.PtEtaPhiM(pt, eta, phi, sp.Mass)
	x, y, z, tt := decayVertexFor(g.rng, v, *e.Vertex(pv), sp.Lifetime)
	dv := e.AddVertex(x, y, z, tt)
	e.AddParticle(pdg, hepmc.StatusDecayed, v, pv, dv)
	da, db := twoBodyDecay(g.rng, v, units.Mass(d1pdg), units.Mass(d2pdg))
	e.AddParticle(d1pdg, hepmc.StatusFinal, da, dv, 0)
	e.AddParticle(d2pdg, hepmc.StatusFinal, db, dv, 0)
	return g.finish(e, pv)
}

// ZPrime generates a hypothetical heavy dilepton resonance — the "new
// physics model" a theorist submits through RECAST to test against a
// preserved search analysis.
type ZPrime struct {
	base
	// Mass and Width define the resonance; both in GeV.
	Mass, Width float64
}

// NewZPrime returns a Z′→µµ generator at the given pole mass with a 3%
// relative width.
func NewZPrime(cfg Config, mass float64) *ZPrime {
	return &ZPrime{base: newBase(cfg, ProcZPrime), Mass: mass, Width: 0.03 * mass}
}

// Generate produces one Z′→µµ event.
func (g *ZPrime) Generate() *hepmc.Event {
	e, pv := g.newEvent()
	mass := g.resonanceMass(g.Mass, g.Width, 2*units.Mass(units.PDGMuon)+0.01)
	v := resonanceKinematics(g.rng, mass, 10.0)
	dv := e.AddVertex(vertexOf(e, pv))
	e.AddParticle(units.PDGZPrime, hepmc.StatusDecayed, v, pv, dv)
	ml := units.Mass(units.PDGMuon)
	d1, d2 := twoBodyDecay(g.rng, v, ml, ml)
	e.AddParticle(units.PDGMuon, hepmc.StatusFinal, d1, dv, 0)
	e.AddParticle(-units.PDGMuon, hepmc.StatusFinal, d2, dv, 0)
	return g.finish(e, pv)
}

// resonanceKinematics draws lab-frame kinematics for a produced resonance
// of the given mass: an exponential pT spectrum with the given mean and a
// Gaussian rapidity plateau.
func resonanceKinematics(rng *xrand.Rand, mass, meanPt float64) fourvec.Vec {
	pt := rng.Exp(meanPt)
	y := rng.Gauss(0, 1.4)
	phi := rng.Range(-math.Pi, math.Pi)
	// Convert rapidity to the longitudinal momentum for this mass and pT.
	mt := math.Sqrt(mass*mass + pt*pt)
	pz := mt * math.Sinh(y)
	e := mt * math.Cosh(y)
	return fourvec.PxPyPzE(pt*math.Cos(phi), pt*math.Sin(phi), pz, e)
}

// vertexOf returns the coordinates of a vertex barcode, for co-locating
// prompt decay vertices with the primary vertex.
func vertexOf(e *hepmc.Event, barcode int) (x, y, z, t float64) {
	v := e.Vertex(barcode)
	return v.X, v.Y, v.Z, v.T
}
