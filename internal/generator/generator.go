// Package generator implements the toy Monte Carlo event generators that
// stand in for PYTHIA/HERWIG-class programs in the DASPOS substrate. The
// paper's preservation workflows all start from generated events: RIVET
// consumes them at truth level, RECAST pushes them through full simulation
// and reconstruction, and the outreach master classes are built from the
// same processes (W/Z/Higgs for ATLAS/CMS, D-lifetime for LHCb, V0s for
// ALICE).
//
// The physics is deliberately parametric — Breit–Wigner resonances,
// power-law QCD spectra, exponential decay lengths, simplified
// fragmentation — but every process produces a structurally complete
// HepMC-style event graph with beams, intermediate resonances, displaced
// decay vertices, and a soft underlying event, so the downstream workflow
// code exercises the same code paths as with a real generator.
package generator

import (
	"fmt"
	"io"
	"math"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
	"daspos/internal/xrand"
)

// Process identifiers recorded in each event's ProcessID field.
const (
	ProcMinBias = iota + 1
	ProcQCDDijet
	ProcDrellYanZ
	ProcWLepNu
	ProcHiggsDiphoton
	ProcDZero
	ProcV0
	ProcZPrime
)

// ProcessName returns the catalogue name for a process ID.
func ProcessName(id int) string {
	switch id {
	case ProcMinBias:
		return "minbias"
	case ProcQCDDijet:
		return "qcd-dijet"
	case ProcDrellYanZ:
		return "drell-yan-z"
	case ProcWLepNu:
		return "w-lepnu"
	case ProcHiggsDiphoton:
		return "higgs-diphoton"
	case ProcDZero:
		return "dzero"
	case ProcV0:
		return "v0"
	case ProcZPrime:
		return "zprime"
	default:
		return fmt.Sprintf("process(%d)", id)
	}
}

// Config holds generator-wide settings. The zero value is not useful; use
// DefaultConfig as a starting point.
type Config struct {
	// Seed determines the full event stream; identical Config values
	// reproduce identical samples on any platform.
	Seed uint64
	// BeamEnergy is the per-beam energy in GeV (6500 for 13 TeV running).
	BeamEnergy float64
	// PileupMu is the mean number of additional soft interactions overlaid
	// on each hard-scatter event. Zero disables pileup.
	PileupMu float64
	// VertexSpreadZ is the Gaussian spread of the primary-vertex z
	// position in mm (the luminous-region length).
	VertexSpreadZ float64
}

// DefaultConfig returns LHC-like running conditions at 13 TeV.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, BeamEnergy: 6500, PileupMu: 0, VertexSpreadZ: 45}
}

// Generator produces a stream of events for one physics process.
type Generator interface {
	// Name returns the process catalogue name.
	Name() string
	// ProcessID returns the catalogue identifier stamped on events.
	ProcessID() int
	// Generate returns the next event in the stream.
	Generate() *hepmc.Event
}

// New constructs the generator for a process ID with the given config. It
// returns an error for unknown processes. Model-dependent processes use
// their default parameters; use the specific constructors to vary them.
func New(process int, cfg Config) (Generator, error) {
	switch process {
	case ProcMinBias:
		return NewMinBias(cfg), nil
	case ProcQCDDijet:
		return NewQCDDijet(cfg), nil
	case ProcDrellYanZ:
		return NewDrellYanZ(cfg), nil
	case ProcWLepNu:
		return NewWLepNu(cfg), nil
	case ProcHiggsDiphoton:
		return NewHiggsDiphoton(cfg), nil
	case ProcDZero:
		return NewDZero(cfg), nil
	case ProcV0:
		return NewV0(cfg), nil
	case ProcZPrime:
		return NewZPrime(cfg, 1000), nil
	default:
		return nil, fmt.Errorf("generator: unknown process %d", process)
	}
}

// base carries the machinery shared by all processes.
type base struct {
	cfg    Config
	rng    *xrand.Rand
	next   int
	procID int
	name   string
}

func newBase(cfg Config, procID int) base {
	// Mix the process ID into the seed so different processes built from
	// the same Config do not share streams.
	r := xrand.New(cfg.Seed ^ (uint64(procID) * 0x9e3779b97f4a7c15))
	return base{cfg: cfg, rng: r, procID: procID, name: ProcessName(procID)}
}

func (b *base) Name() string   { return b.name }
func (b *base) ProcessID() int { return b.procID }

// newEvent starts an event with beams and a primary vertex, returning the
// event and the primary-vertex barcode.
func (b *base) newEvent() (*hepmc.Event, int) {
	e := hepmc.NewEvent(b.next, b.procID)
	b.next++
	z := b.rng.Gauss(0, b.cfg.VertexSpreadZ)
	pv := e.AddVertex(b.rng.Gauss(0, 0.02), b.rng.Gauss(0, 0.02), z, 0)
	eb := b.cfg.BeamEnergy
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, eb, eb), 0, pv)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, -eb, eb), 0, pv)
	return e, pv
}

// finish overlays the underlying event and optional pileup, then validates.
func (b *base) finish(e *hepmc.Event, pv int) *hepmc.Event {
	b.addSoftParticles(e, pv, b.rng.Poisson(12), 0.55)
	if b.cfg.PileupMu > 0 {
		n := b.rng.Poisson(b.cfg.PileupMu)
		for i := 0; i < n; i++ {
			z := b.rng.Gauss(0, b.cfg.VertexSpreadZ)
			puv := e.AddVertex(b.rng.Gauss(0, 0.02), b.rng.Gauss(0, 0.02), z, 0)
			b.addSoftParticles(e, puv, b.rng.Poisson(8), 0.5)
		}
	}
	if err := e.Validate(); err != nil {
		// A generator that emits an invalid graph is a programming error,
		// not a runtime condition the caller can handle.
		panic(err)
	}
	return e
}

// addSoftParticles attaches n soft charged pions (with a kaon admixture)
// to the given vertex: the generic soft-QCD activity of a pp collision.
func (b *base) addSoftParticles(e *hepmc.Event, vtx int, n int, meanPt float64) {
	for i := 0; i < n; i++ {
		pdg := units.PDGPiPlus
		if b.rng.Bool(0.12) {
			pdg = units.PDGKPlus
		}
		if b.rng.Bool(0.5) {
			pdg = -pdg
		}
		pt := b.rng.Exp(meanPt) + 0.1
		eta := b.rng.Range(-4, 4)
		phi := b.rng.Range(-math.Pi, math.Pi)
		p := fourvec.PtEtaPhiM(pt, eta, phi, units.Mass(pdg))
		e.AddParticle(pdg, hepmc.StatusFinal, p, vtx, 0)
	}
}

// twoBodyDecay decays a parent four-vector into two daughters of masses m1
// and m2, isotropically in the parent rest frame, then boosts to the lab.
// It panics if the decay is kinematically closed (parent mass < m1+m2).
func twoBodyDecay(rng *xrand.Rand, parent fourvec.Vec, m1, m2 float64) (fourvec.Vec, fourvec.Vec) {
	m := parent.M()
	if m < m1+m2 {
		panic(fmt.Sprintf("generator: closed decay: M=%v < %v+%v", m, m1, m2))
	}
	// Momentum of each daughter in the rest frame (Källén function).
	term := (m*m - (m1+m2)*(m1+m2)) * (m*m - (m1-m2)*(m1-m2))
	p := math.Sqrt(term) / (2 * m)
	cosTheta := rng.Range(-1, 1)
	sinTheta := math.Sqrt(1 - cosTheta*cosTheta)
	phi := rng.Range(-math.Pi, math.Pi)
	px := p * sinTheta * math.Cos(phi)
	py := p * sinTheta * math.Sin(phi)
	pz := p * cosTheta
	d1 := fourvec.PxPyPzE(px, py, pz, math.Sqrt(p*p+m1*m1))
	d2 := fourvec.PxPyPzE(-px, -py, -pz, math.Sqrt(p*p+m2*m2))
	bx, by, bz := parent.BoostVector()
	return d1.Boost(bx, by, bz), d2.Boost(bx, by, bz)
}

// decayVertexFor propagates an unstable particle from its production point
// and returns the lab-frame decay position and time, drawn from the
// exponential proper-lifetime distribution. lifetime is the mean proper
// lifetime in ns.
func decayVertexFor(rng *xrand.Rand, p fourvec.Vec, prod hepmc.Vertex, lifetime float64) (x, y, z, t float64) {
	tau := rng.Exp(lifetime) // proper time, ns
	gamma := p.Gamma()
	labT := tau * gamma
	beta := p.Beta()
	dist := beta * units.SpeedOfLight * labT // mm
	pm := p.P()
	if pm == 0 {
		return prod.X, prod.Y, prod.Z, prod.T + labT
	}
	return prod.X + dist*p.Px/pm,
		prod.Y + dist*p.Py/pm,
		prod.Z + dist*p.Pz/pm,
		prod.T + labT
}

// GenerateN runs gen for n events and returns the sample.
func GenerateN(gen Generator, n int) []*hepmc.Event {
	out := make([]*hepmc.Event, n)
	for i := range out {
		out[i] = gen.Generate()
	}
	return out
}

// EventSource adapts gen to the pull contract of a streaming source
// (eventflow.Source): successive calls return the next event of an
// n-event sample, then io.EOF. Generators are stateful, so the returned
// function must be driven from a single goroutine — exactly what a
// pipeline source guarantees.
func EventSource(gen Generator, n int) func() (*hepmc.Event, error) {
	i := 0
	return func() (*hepmc.Event, error) {
		if i >= n {
			return nil, io.EOF
		}
		i++
		return gen.Generate(), nil
	}
}
