package generator

import (
	"io"
	"math"
	"testing"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
)

func allProcesses() []int {
	return []int{ProcMinBias, ProcQCDDijet, ProcDrellYanZ, ProcWLepNu,
		ProcHiggsDiphoton, ProcDZero, ProcV0, ProcZPrime}
}

func TestNewKnowsAllProcesses(t *testing.T) {
	cfg := DefaultConfig(1)
	for _, id := range allProcesses() {
		g, err := New(id, cfg)
		if err != nil {
			t.Fatalf("process %d: %v", id, err)
		}
		if g.ProcessID() != id {
			t.Fatalf("process id mismatch: %d vs %d", g.ProcessID(), id)
		}
		if g.Name() != ProcessName(id) {
			t.Fatalf("name mismatch for %d", id)
		}
	}
	if _, err := New(999, cfg); err == nil {
		t.Fatal("unknown process accepted")
	}
}

func TestAllProcessesProduceValidGraphs(t *testing.T) {
	cfg := DefaultConfig(7)
	for _, id := range allProcesses() {
		g, _ := New(id, cfg)
		for i := 0; i < 50; i++ {
			e := g.Generate()
			if err := e.Validate(); err != nil {
				t.Fatalf("%s event %d: %v", g.Name(), i, err)
			}
			if e.ProcessID != id {
				t.Fatalf("%s: wrong process id on event", g.Name())
			}
			if len(e.FinalState()) == 0 {
				t.Fatalf("%s: empty final state", g.Name())
			}
			// Beams are always the first two particles.
			if e.Particles[0].Status != hepmc.StatusBeam || e.Particles[1].Status != hepmc.StatusBeam {
				t.Fatalf("%s: beams missing", g.Name())
			}
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := DefaultConfig(42)
	g1, _ := New(ProcDrellYanZ, cfg)
	g2, _ := New(ProcDrellYanZ, cfg)
	for i := 0; i < 20; i++ {
		a, b := g1.Generate(), g2.Generate()
		if len(a.Particles) != len(b.Particles) {
			t.Fatalf("event %d: graph sizes differ", i)
		}
		for j := range a.Particles {
			if a.Particles[j] != b.Particles[j] {
				t.Fatalf("event %d particle %d differs", i, j)
			}
		}
	}
}

func TestProcessesHaveIndependentStreams(t *testing.T) {
	cfg := DefaultConfig(42)
	z, _ := New(ProcDrellYanZ, cfg)
	w, _ := New(ProcWLepNu, cfg)
	ez, ew := z.Generate(), w.Generate()
	// Same seed, different process: primary vertices must differ.
	if ez.Vertices[0].Z == ew.Vertices[0].Z {
		t.Fatal("processes share RNG streams")
	}
}

func TestZMassPeak(t *testing.T) {
	g := NewDrellYanZ(DefaultConfig(3))
	var masses []float64
	for i := 0; i < 2000; i++ {
		e := g.Generate()
		var leps []fourvec.Vec
		for _, p := range e.FinalState() {
			if abs(p.PDG) == units.PDGMuon || abs(p.PDG) == units.PDGElectron {
				leps = append(leps, p.P)
			}
		}
		if len(leps) != 2 {
			t.Fatalf("event %d: %d leptons", i, len(leps))
		}
		masses = append(masses, fourvec.InvariantMass(leps[0], leps[1]))
	}
	med := median(masses)
	if math.Abs(med-91.19) > 0.5 {
		t.Fatalf("Z mass median %v", med)
	}
}

func TestZLeptonFlavourMix(t *testing.T) {
	g := NewDrellYanZ(DefaultConfig(4))
	ee := 0
	const n = 1000
	for i := 0; i < n; i++ {
		e := g.Generate()
		for _, p := range e.FinalState() {
			if p.PDG == units.PDGElectron {
				ee++
				break
			}
		}
	}
	frac := float64(ee) / n
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("electron fraction %v", frac)
	}
}

func TestWHasNeutrinoAndMissingPt(t *testing.T) {
	g := NewWLepNu(DefaultConfig(5))
	for i := 0; i < 200; i++ {
		e := g.Generate()
		pt, _ := e.MissingPt()
		if pt <= 0 {
			t.Fatalf("event %d: no missing pt", i)
		}
		// Lepton + neutrino must reconstruct near the W mass.
		var lep, nu fourvec.Vec
		found := 0
		for _, p := range e.FinalState() {
			switch {
			case units.IsNeutrino(p.PDG):
				nu = p.P
				found++
			case abs(p.PDG) == units.PDGMuon || abs(p.PDG) == units.PDGElectron:
				if p.P.Pt() > 5 {
					lep = p.P
					found++
				}
			}
		}
		if found < 2 {
			t.Fatalf("event %d: lepton or neutrino missing", i)
		}
		m := fourvec.InvariantMass(lep, nu)
		if m < 50 || m > 120 {
			t.Fatalf("event %d: lep-nu mass %v", i, m)
		}
	}
}

func TestWChargeConservation(t *testing.T) {
	g := NewWLepNu(DefaultConfig(6))
	for i := 0; i < 300; i++ {
		e := g.Generate()
		var w *hepmc.Particle
		for j := range e.Particles {
			if abs(e.Particles[j].PDG) == units.PDGW {
				w = &e.Particles[j]
			}
		}
		if w == nil {
			t.Fatal("no W in event")
		}
		var q float64
		for _, c := range e.Children(w.Barcode) {
			q += units.Charge(c.PDG)
		}
		if math.Abs(q-units.Charge(w.PDG)) > 1e-9 {
			t.Fatalf("event %d: W charge %v, decay charge %v", i, units.Charge(w.PDG), q)
		}
	}
}

func TestHiggsDiphotonMass(t *testing.T) {
	g := NewHiggsDiphoton(DefaultConfig(8))
	var masses []float64
	for i := 0; i < 500; i++ {
		e := g.Generate()
		// The soft underlying event emits no photons in this process, so
		// the only photons present are the Higgs daughters.
		var gams []fourvec.Vec
		for _, p := range e.FinalState() {
			if p.PDG == units.PDGPhoton {
				gams = append(gams, p.P)
			}
		}
		if len(gams) != 2 {
			t.Fatalf("event %d: %d photons", i, len(gams))
		}
		masses = append(masses, fourvec.InvariantMass(gams[0], gams[1]))
	}
	med := median(masses)
	if math.Abs(med-125.25) > 0.3 {
		t.Fatalf("Higgs mass median %v", med)
	}
}

func TestDZeroDisplacedVertex(t *testing.T) {
	g := NewDZero(DefaultConfig(9))
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		e := g.Generate()
		var d *hepmc.Particle
		for j := range e.Particles {
			if abs(e.Particles[j].PDG) == units.PDGDZero {
				d = &e.Particles[j]
			}
		}
		if d == nil || d.EndVertex == 0 {
			t.Fatal("no decayed D0")
		}
		pv, dvtx := e.Vertex(d.ProdVertex), e.Vertex(d.EndVertex)
		dx, dy, dz := dvtx.X-pv.X, dvtx.Y-pv.Y, dvtx.Z-pv.Z
		flight := math.Sqrt(dx*dx + dy*dy + dz*dz)
		// Lab flight = beta*gamma*c*tau_proper; check consistency with the
		// particle's boost for this event's drawn proper time.
		sum += flight / (d.P.Beta() * d.P.Gamma())
	}
	// The mean proper decay length must match c*tau(D0) ≈ 0.123 mm.
	ctau := units.SpeedOfLight * 4.101e-4
	got := sum / n
	if math.Abs(got-ctau)/ctau > 0.1 {
		t.Fatalf("mean proper decay length %v mm, want ~%v", got, ctau)
	}
}

func TestV0MassAndFlight(t *testing.T) {
	g := NewV0(DefaultConfig(10))
	ks, lam := 0, 0
	for i := 0; i < 1000; i++ {
		e := g.Generate()
		var v0 *hepmc.Particle
		for j := range e.Particles {
			if p := &e.Particles[j]; abs(p.PDG) == units.PDGKZeroShort || abs(p.PDG) == units.PDGLambda {
				v0 = p
			}
		}
		if v0 == nil {
			t.Fatal("no V0")
		}
		kids := e.Children(v0.Barcode)
		if len(kids) != 2 {
			t.Fatalf("V0 children: %d", len(kids))
		}
		m := fourvec.InvariantMass(kids[0].P, kids[1].P)
		if math.Abs(m-v0.P.M()) > 1e-6 {
			t.Fatalf("V0 daughters mass %v vs parent %v", m, v0.P.M())
		}
		if abs(v0.PDG) == units.PDGKZeroShort {
			ks++
		} else {
			lam++
		}
	}
	if ks == 0 || lam == 0 {
		t.Fatalf("species mix degenerate: ks=%d lambda=%d", ks, lam)
	}
}

func TestZPrimeMassScales(t *testing.T) {
	for _, mass := range []float64{500, 1500, 3000} {
		g := NewZPrime(DefaultConfig(11), mass)
		var masses []float64
		for i := 0; i < 300; i++ {
			e := g.Generate()
			var mus []fourvec.Vec
			for _, p := range e.FinalState() {
				if abs(p.PDG) == units.PDGMuon && p.P.Pt() > 20 {
					mus = append(mus, p.P)
				}
			}
			if len(mus) >= 2 {
				masses = append(masses, fourvec.InvariantMass(mus[0], mus[1]))
			}
		}
		med := median(masses)
		if math.Abs(med-mass)/mass > 0.05 {
			t.Fatalf("Z'(%v) median mass %v", mass, med)
		}
	}
}

func TestDijetBackToBack(t *testing.T) {
	g := NewQCDDijet(DefaultConfig(12))
	for i := 0; i < 100; i++ {
		e := g.Generate()
		// Sum visible momentum in the transverse plane: dijets roughly
		// balance, so |sum pT| must be well below the scalar sum.
		var sum fourvec.Vec
		scalar := 0.0
		for _, p := range e.FinalState() {
			if units.IsNeutrino(p.PDG) {
				continue
			}
			sum = sum.Add(p.P)
			scalar += p.P.Pt()
		}
		if scalar < 40 {
			t.Fatalf("event %d: too little activity (%v)", i, scalar)
		}
		if sum.Pt() > 0.5*scalar {
			t.Fatalf("event %d: momentum imbalance %v of %v", i, sum.Pt(), scalar)
		}
	}
}

func TestPileupOverlay(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.PileupMu = 20
	g := NewDrellYanZ(cfg)
	nv, np := 0, 0
	const n = 50
	for i := 0; i < n; i++ {
		e := g.Generate()
		nv += len(e.Vertices)
		np += len(e.FinalState())
	}
	meanV := float64(nv) / n
	if meanV < 15 {
		t.Fatalf("mean vertices %v with mu=20", meanV)
	}
	cfg2 := DefaultConfig(13)
	g2 := NewDrellYanZ(cfg2)
	np2 := 0
	for i := 0; i < n; i++ {
		np2 += len(g2.Generate().FinalState())
	}
	if np <= np2 {
		t.Fatalf("pileup did not add particles: %d vs %d", np, np2)
	}
}

func TestGenerateN(t *testing.T) {
	g := NewMinBias(DefaultConfig(14))
	evts := GenerateN(g, 25)
	if len(evts) != 25 {
		t.Fatalf("got %d events", len(evts))
	}
	for i, e := range evts {
		if e.Number != i {
			t.Fatalf("event numbering broken at %d: %d", i, e.Number)
		}
	}
}

func TestTwoBodyDecayConservation(t *testing.T) {
	g := NewDrellYanZ(DefaultConfig(15))
	parent := fourvec.PtEtaPhiM(37, 0.7, -1.2, 91.2)
	d1, d2 := twoBodyDecay(g.rng, parent, 0.105, 0.105)
	sum := d1.Add(d2)
	if math.Abs(sum.Px-parent.Px) > 1e-9 || math.Abs(sum.E-parent.E) > 1e-9 {
		t.Fatalf("four-momentum not conserved: %v vs %v", sum, parent)
	}
}

func TestTwoBodyDecayClosedPanics(t *testing.T) {
	g := NewDrellYanZ(DefaultConfig(16))
	defer func() {
		if recover() == nil {
			t.Fatal("closed decay did not panic")
		}
	}()
	twoBodyDecay(g.rng, fourvec.PtEtaPhiM(10, 0, 0, 1), 5, 5)
}

func TestProcessNameUnknown(t *testing.T) {
	if ProcessName(12345) != "process(12345)" {
		t.Fatalf("unknown name: %s", ProcessName(12345))
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func BenchmarkDrellYanZ(b *testing.B) {
	g := NewDrellYanZ(DefaultConfig(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Generate()
	}
}

func BenchmarkQCDDijet(b *testing.B) {
	g := NewQCDDijet(DefaultConfig(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Generate()
	}
}

func BenchmarkMinBiasWithPileup(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.PileupMu = 30
	g := NewMinBias(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Generate()
	}
}

func TestEventSource(t *testing.T) {
	next := EventSource(NewDrellYanZ(DefaultConfig(3)), 5)
	var nums []int
	for {
		ev, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		nums = append(nums, ev.Number)
	}
	if len(nums) != 5 {
		t.Fatalf("source yielded %d events, want 5", len(nums))
	}
	for i, n := range nums {
		if n != i {
			t.Fatalf("event %d has number %d", i, n)
		}
	}
	if _, err := next(); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}
