package eventflow

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// intSource returns a source function yielding 0..n-1.
func intSource(n int) func() (int, error) {
	i := 0
	return func() (int, error) {
		if i >= n {
			return 0, io.EOF
		}
		v := i
		i++
		return v, nil
	}
}

func TestOrderPreservedAcrossWorkerCounts(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(context.Background(), "order", Options{BatchSize: 7, Depth: 3})
		s := Source(p, "ints", intSource(n))
		// Perturb completion order: early batches sleep longest.
		m := Map(s, "square", workers, func(v int) (int, bool, error) {
			if v < 40 && v%7 == 0 {
				time.Sleep(time.Duration(40-v) * 100 * time.Microsecond)
			}
			return v * v, true, nil
		})
		c := Collect(m, "collect")
		if err := p.Wait(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(c.Items) != n {
			t.Fatalf("workers=%d: got %d items", workers, len(c.Items))
		}
		for i, v := range c.Items {
			if v != i*i {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestFilterDropsEvents(t *testing.T) {
	p := New(context.Background(), "filter", Options{BatchSize: 8})
	s := Source(p, "ints", intSource(100))
	m := Map(s, "evens", 4, func(v int) (int, bool, error) {
		return v, v%2 == 0, nil
	})
	c := Collect(m, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 50 {
		t.Fatalf("got %d events, want 50", len(c.Items))
	}
	for i, v := range c.Items {
		if v != 2*i {
			t.Fatalf("item %d = %d, want %d", i, v, 2*i)
		}
	}
	rep := p.Report()
	if rep.Stages[1].EventsIn != 100 || rep.Stages[1].EventsOut != 50 {
		t.Fatalf("stage counters in=%d out=%d", rep.Stages[1].EventsIn, rep.Stages[1].EventsOut)
	}
}

func TestPerWorkerState(t *testing.T) {
	// Each worker gets its own accumulator; the per-worker factory must be
	// called exactly once per worker and only used from one goroutine.
	const workers = 4
	var made atomic.Int64
	p := New(context.Background(), "state", Options{BatchSize: 4})
	s := Source(p, "ints", intSource(64))
	m := MapWorkers(s, "tag", workers, func(w int) func(int) (int, bool, error) {
		made.Add(1)
		calls := 0 // worker-private state, no synchronization needed
		return func(v int) (int, bool, error) {
			calls++
			_ = calls
			return v, true, nil
		}
	})
	c := Collect(m, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if made.Load() != workers {
		t.Fatalf("factory called %d times, want %d", made.Load(), workers)
	}
	if len(c.Items) != 64 {
		t.Fatalf("got %d items", len(c.Items))
	}
}

func TestErrorShortCircuits(t *testing.T) {
	sentinel := errors.New("boom")
	p := New(context.Background(), "err", Options{BatchSize: 2})
	s := Source(p, "ints", intSource(10000))
	m := Map(s, "explode", 3, func(v int) (int, bool, error) {
		if v == 21 {
			return 0, false, sentinel
		}
		return v, true, nil
	})
	var seen atomic.Int64
	Sink(m, "count", func(int) error {
		seen.Add(1)
		return nil
	})
	err := p.Wait()
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
	// The sink must not have consumed the whole stream: the failure
	// cancelled the pipeline long before the source's 10000 events.
	if n := seen.Load(); n >= 10000 {
		t.Fatalf("sink saw all %d events despite failure", n)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	sentinel := errors.New("bad read")
	p := New(context.Background(), "srcerr", Options{})
	i := 0
	s := Source(p, "ints", func() (int, error) {
		if i == 5 {
			return 0, sentinel
		}
		i++
		return i, nil
	})
	Sink(s, "drain", func(int) error { return nil })
	if err := p.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	sentinel := errors.New("disk full")
	p := New(context.Background(), "sinkerr", Options{BatchSize: 4})
	s := Source(p, "ints", intSource(1000))
	Sink(s, "write", func(v int) error {
		if v == 10 {
			return sentinel
		}
		return nil
	})
	if err := p.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestEmptySource(t *testing.T) {
	p := New(context.Background(), "empty", Options{})
	s := Source(p, "none", intSource(0))
	m := Map(s, "noop", 4, func(v int) (int, bool, error) { return v, true, nil })
	c := Collect(m, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 0 {
		t.Fatalf("got %d items from empty source", len(c.Items))
	}
}

func TestInFlightBounded(t *testing.T) {
	// A deliberately slow sink backs the whole pipeline up; the parallel
	// stage must never hold more than workers+depth batches in flight.
	const workers, depth = 4, 2
	p := New(context.Background(), "bound", Options{BatchSize: 4, Depth: depth})
	s := Source(p, "ints", intSource(400))
	m := Map(s, "fast", workers, func(v int) (int, bool, error) { return v, true, nil })
	Sink(m, "slow", func(v int) error {
		if v%16 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	var stage StageReport
	for _, st := range rep.Stages {
		if st.Name == "fast" {
			stage = st
		}
	}
	if stage.MaxInFlight == 0 {
		t.Fatal("no in-flight batches recorded")
	}
	if stage.MaxInFlight > workers+depth {
		t.Fatalf("peak in-flight %d exceeds pool depth %d", stage.MaxInFlight, workers+depth)
	}
}

func TestReportCounters(t *testing.T) {
	p := New(context.Background(), "report", Options{BatchSize: 10})
	s := Source(p, "ints", intSource(95))
	m := Map(s, "id", 2, func(v int) (int, bool, error) { return v, true, nil })
	Sink(m, "drain", func(int) error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Pipeline != "report" || len(rep.Stages) != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	src := rep.Stages[0]
	if src.EventsOut != 95 || src.Batches != 10 {
		t.Fatalf("source counters: %+v", src)
	}
	sink := rep.Stages[2]
	if sink.EventsIn != 95 {
		t.Fatalf("sink counters: %+v", sink)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

// settleGoroutines polls until the goroutine count drops to at most want,
// tolerating the runtime's own lingering helpers.
func settleGoroutines(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancellationDrainsCleanly(t *testing.T) {
	// Mid-stream context cancellation must unwind every node — source,
	// dispatcher, workers, reorderer, sink — with no goroutine left
	// blocked on a channel. Run under -race this is also the shutdown
	// data-race check.
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		p := New(ctx, "cancel", Options{BatchSize: 4, Depth: 2})
		released := make(chan struct{})
		var once atomic.Bool
		s := Source(p, "ticks", func() (int, error) {
			return 0, nil // infinite stream
		})
		m := Map(s, "slow", 4, func(v int) (int, bool, error) {
			if once.CompareAndSwap(false, true) {
				close(released) // pipeline is demonstrably mid-stream
			}
			time.Sleep(50 * time.Microsecond)
			return v, true, nil
		})
		Sink(m, "drain", func(int) error { return nil })
		<-released
		cancel()
		if err := p.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: Wait = %v, want context.Canceled", round, err)
		}
	}
	after := settleGoroutines(t, before)
	// Allow a little slack for runtime-internal goroutines, but a leaked
	// pipeline (7+ goroutines per round, 5 rounds) is far outside it.
	if after > before+3 {
		t.Fatalf("goroutines did not settle: before=%d after=%d", before, after)
	}
}

func TestExternalCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(ctx, "dead", Options{})
	s := Source(p, "ints", intSource(100))
	Sink(s, "drain", func(int) error { return nil })
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(workers int) string {
		p := New(context.Background(), "det", Options{BatchSize: 3})
		s := Source(p, "ints", intSource(100))
		m := Map(s, "hash", workers, func(v int) (string, bool, error) {
			return fmt.Sprintf("%03d", v*7%100), v%3 != 0, nil
		})
		c := Collect(m, "collect")
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, s := range c.Items {
			out += s
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 5, 9} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d output differs from sequential", w)
		}
	}
}

func TestSinkBatchSeesOrderedWholeBatches(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 4} {
		p := New(context.Background(), "sinkbatch", Options{BatchSize: 9, Depth: 2})
		s := Source(p, "ints", intSource(n))
		m := Map(s, "double", workers, func(v int) (int, bool, error) { return 2 * v, true, nil })
		var got []int
		var calls int
		SinkBatch(m, "drain", func(items []int) error {
			calls++
			if len(items) == 0 {
				return errors.New("empty batch delivered")
			}
			got = append(got, items...)
			return nil
		})
		if err := p.Wait(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d items", workers, len(got))
		}
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, v, 2*i)
			}
		}
		if want := (n + 8) / 9; calls != want {
			t.Fatalf("workers=%d: %d sink calls, want %d", workers, calls, want)
		}
	}
}

func TestSinkBatchErrorPropagates(t *testing.T) {
	p := New(context.Background(), "sinkbatch-err", Options{BatchSize: 4, Depth: 2})
	s := Source(p, "ints", intSource(50))
	boom := errors.New("bank full")
	SinkBatch(s, "drain", func(items []int) error {
		if items[0] >= 20 {
			return boom
		}
		return nil
	})
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped sink error, got %v", err)
	}
}
