package eventflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"daspos/internal/resilience"
)

// flakyOnce fails transiently exactly once per listed value, across all
// workers and restarts — the transient-fault model a supervised stage
// must absorb without perturbing output order.
type flakyOnce struct {
	mu     sync.Mutex
	failOn map[int]bool
	fails  int
}

func newFlakyOnce(values ...int) *flakyOnce {
	f := &flakyOnce{failOn: make(map[int]bool)}
	for _, v := range values {
		f.failOn[v] = true
	}
	return f
}

func (f *flakyOnce) hit(v int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOn[v] {
		delete(f.failOn, v)
		f.fails++
		return resilience.MarkTransient(fmt.Errorf("flaky value %d", v))
	}
	return nil
}

func TestSupervisedStageAbsorbsTransientFailures(t *testing.T) {
	const n = 300
	for _, workers := range []int{1, 4} {
		flaky := newFlakyOnce(3, 77, 151, 298)
		p := New(context.Background(), "supervised", Options{BatchSize: 8, StageRetries: 8})
		s := Source(p, "ints", intSource(n))
		m := Map(s, "square", workers, func(v int) (int, bool, error) {
			if err := flaky.hit(v); err != nil {
				return 0, false, err
			}
			return v * v, true, nil
		})
		c := Collect(m, "collect")
		if err := p.Wait(); err != nil {
			t.Fatalf("workers=%d: supervised stage failed: %v", workers, err)
		}
		if len(c.Items) != n {
			t.Fatalf("workers=%d: got %d items, want %d", workers, len(c.Items), n)
		}
		for i, v := range c.Items {
			if v != i*i {
				t.Fatalf("workers=%d: order lost at %d: %d != %d", workers, i, v, i*i)
			}
		}
		if flaky.fails != 4 {
			t.Fatalf("workers=%d: %d transient failures injected, want 4", workers, flaky.fails)
		}
		rep := p.Report()
		var restarts int64
		for _, st := range rep.Stages {
			if st.Name == "square" {
				restarts = st.Restarts
			}
		}
		if restarts != 4 {
			t.Fatalf("workers=%d: report restarts = %d, want 4", workers, restarts)
		}
	}
}

// TestSupervisedRestartRebuildsWorkerState proves a restarted worker gets
// fresh per-worker state from newFn — the dead worker is replaced, not
// revived.
func TestSupervisedRestartRebuildsWorkerState(t *testing.T) {
	var built sync.Map // worker → construction count
	flaky := newFlakyOnce(10)
	p := New(context.Background(), "rebuild", Options{BatchSize: 4, StageRetries: 2})
	s := Source(p, "ints", intSource(40))
	m := MapWorkers(s, "stateful", 2, func(worker int) func(int) (int, bool, error) {
		n, _ := built.LoadOrStore(worker, new(int))
		*n.(*int)++
		return func(v int) (int, bool, error) {
			if err := flaky.hit(v); err != nil {
				return 0, false, err
			}
			return v + 1, true, nil
		}
	})
	c := Collect(m, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 40 {
		t.Fatalf("got %d items", len(c.Items))
	}
	total := 0
	built.Range(func(_, v any) bool { total += *v.(*int); return true })
	if total != 3 { // 2 initial workers + 1 restart
		t.Fatalf("newFn invoked %d times, want 3", total)
	}
}

func TestSupervisionBudgetExhaustionFails(t *testing.T) {
	// Every event fails transiently forever: the budget runs dry and the
	// pipeline must surface the transient error instead of spinning.
	p := New(context.Background(), "exhaust", Options{BatchSize: 4, StageRetries: 3})
	s := Source(p, "ints", intSource(20))
	m := Map(s, "doomed", 2, func(v int) (int, bool, error) {
		return 0, false, resilience.MarkTransient(errors.New("always down"))
	})
	Collect(m, "collect")
	err := p.Wait()
	if err == nil {
		t.Fatal("exhausted supervision budget did not fail the pipeline")
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("surfaced error lost its class: %v", err)
	}
}

func TestSupervisionOffAndPermanentErrorsFailFast(t *testing.T) {
	// Default options: supervision off, transient errors fail immediately.
	p := New(context.Background(), "off", Options{BatchSize: 4})
	s := Source(p, "ints", intSource(10))
	m := Map(s, "flaky", 1, func(v int) (int, bool, error) {
		return 0, false, resilience.MarkTransient(errors.New("blip"))
	})
	Collect(m, "collect")
	if err := p.Wait(); err == nil {
		t.Fatal("unsupervised transient error did not fail the pipeline")
	}

	// Permanent errors are never retried, whatever the budget.
	calls := 0
	p2 := New(context.Background(), "perm", Options{BatchSize: 4, StageRetries: 100})
	s2 := Source(p2, "ints", intSource(10))
	m2 := Map(s2, "broken", 1, func(v int) (int, bool, error) {
		calls++
		return 0, false, resilience.MarkPermanent(errors.New("validation"))
	})
	Collect(m2, "collect")
	if err := p2.Wait(); err == nil {
		t.Fatal("permanent error did not fail the pipeline")
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if rep := p2.Report(); rep.Stages[1].Restarts != 0 {
		t.Fatalf("restarts counted for a permanent failure: %d", rep.Stages[1].Restarts)
	}
}
