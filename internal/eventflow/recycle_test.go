package eventflow

import (
	"context"
	"io"
	"reflect"
	"testing"
)

// TestPoolCountersSteadyState drives a long stream and checks the
// recycler is actually recycling: hits dominate, and misses stay bounded
// by the stage's in-flight window instead of growing with event count.
func TestPoolCountersSteadyState(t *testing.T) {
	const n = 10_000
	p := New(context.Background(), "pool", Options{BatchSize: 16, Depth: 2})
	src := Source(p, "src", intSource(n))
	doubled := Map(src, "double", 4, func(v int) (int, bool, error) { return 2 * v, true, nil })
	sum := 0
	Sink(doubled, "sum", func(v int) error { sum += v; return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1); sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
	for _, st := range p.Report().Stages {
		if st.Name == "sum" {
			continue // sinks produce nothing, so they pool nothing
		}
		total := st.PoolHits + st.PoolMisses
		if total == 0 {
			t.Fatalf("stage %s: recycler never used", st.Name)
		}
		// Misses happen while the pool is cold and whenever sync.Pool
		// exercises its right to drop items (under the race detector it
		// deliberately drops ~25% of puts), so assert a ratio rather than
		// an absolute bound: a working recycler serves the clear majority
		// of batches from the pool.
		if st.PoolHits < 2*st.PoolMisses {
			t.Errorf("stage %s: hits %d vs misses %d over %d batches — recycler ineffective",
				st.Name, st.PoolHits, st.PoolMisses, total)
		}
	}
}

// TestIllegalRetentionIsPoisoned is the ownership-rule golden test: a
// stage that keeps a reference to its input container past the handoff
// must observe deterministically cleared data (the recycler zeroes every
// container it takes back), never silently stale-but-plausible values.
// The companion path — copying the items out before returning — survives
// intact. Run under -race in CI, this also asserts the clear itself does
// not race with a legal reader.
func TestIllegalRetentionIsPoisoned(t *testing.T) {
	type payload struct{ v int }

	var stolen [][]*payload // illegally retained input containers
	var cloned [][]*payload // the legal path: copied before return

	const n = 64
	p := New(context.Background(), "alias", Options{BatchSize: 8, Depth: 2})
	vals := make([]*payload, n)
	for i := range vals {
		vals[i] = &payload{v: i + 1}
	}
	i := 0
	src := Source(p, "src", func() (*payload, error) {
		if i >= n {
			return nil, io.EOF
		}
		v := vals[i]
		i++
		return v, nil
	})
	out := MapBatches(src, "steal", 1, func(_ int) func([]*payload, []*payload) ([]*payload, error) {
		return func(in []*payload, out []*payload) ([]*payload, error) {
			stolen = append(stolen, in) //daspos:retain-ok — deliberate steal: this test asserts the poisoning
			legal := make([]*payload, len(in))
			copy(legal, in) // legal: items copied out of the container
			cloned = append(cloned, legal)
			return append(out, in...), nil
		}
	})
	Sink(out, "drain", func(*payload) error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	// Every stolen container must have been poisoned: fully cleared, not
	// holding the original pointers. (The first container a fresh pool
	// hands out is recycled as soon as the stage returns, so even the
	// first batch is cleared by pipeline end.)
	for bi, s := range stolen {
		for j, got := range s {
			if got != nil {
				t.Fatalf("stolen batch %d slot %d still readable (%v): retention was not poisoned", bi, j, got)
			}
		}
	}
	// The cloned copies survive with exactly the source values.
	var flat []*payload
	for _, c := range cloned {
		flat = append(flat, c...)
	}
	if !reflect.DeepEqual(flat, vals) {
		t.Fatal("legally copied items were damaged")
	}
}

// TestRecycledContainersAreCleanOnReuse guards the other half of the
// poisoning contract: a container handed out by the pool carries nothing
// from its previous trip (len 0 and zeroed to capacity), so stale
// pointers can never resurface in a later batch.
func TestRecycledContainersAreCleanOnReuse(t *testing.T) {
	st := &stageStats{}
	sp := &slicePool[*int]{st: st}
	items, box := sp.get(4)
	x := 7
	items = append(items, &x, &x, &x)
	sp.put(items, box)
	got, _ := sp.get(4)
	if len(got) != 0 {
		t.Fatalf("recycled container has len %d", len(got))
	}
	full := got[:cap(got)]
	for i, v := range full {
		if v != nil {
			t.Fatalf("recycled container slot %d not cleared", i)
		}
	}
	if st.poolHits.Load() != 1 || st.poolMisses.Load() != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", st.poolHits.Load(), st.poolMisses.Load())
	}
}
