package eventflow

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// stageStats is the live counter block for one node. Everything is atomic
// because workers, dispatcher, and reorderer touch it concurrently.
type stageStats struct {
	name    string
	workers int

	eventsIn  atomic.Int64
	eventsOut atomic.Int64
	batches   atomic.Int64
	busy      atomic.Int64 // cumulative nanoseconds inside user functions

	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	restarts atomic.Int64

	// poolHits/poolMisses meter the stage's container recycler: a hit is a
	// batch served from a drained container returned upstream, a miss is a
	// fresh allocation. Steady state should be all hits — misses after
	// warm-up mean containers are leaking out of the loop (a stage
	// retaining what it should have cloned, or a consumer dropping batches
	// on a cancellation path).
	poolHits   atomic.Int64
	poolMisses atomic.Int64
}

// tryRestart claims one worker restart from the stage's budget, reporting
// false once the budget is spent. The counter only moves forward, so a
// burst of concurrent failures can never over-grant.
func (s *stageStats) tryRestart(budget int64) bool {
	for {
		n := s.restarts.Load()
		if n >= budget {
			return false
		}
		if s.restarts.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (p *Pipeline) addStage(name string, workers int) *stageStats {
	st := &stageStats{name: name, workers: workers}
	p.mu.Lock()
	p.stages = append(p.stages, st)
	p.mu.Unlock()
	return st
}

// noteInFlight tracks the number of batches dispatched but not yet emitted
// in order, keeping the high-water mark.
func (s *stageStats) noteInFlight(delta int64) {
	n := s.inFlight.Add(delta)
	for {
		max := s.maxInFlight.Load()
		if n <= max || s.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

// StageReport is one stage's counters at the end of a run.
type StageReport struct {
	// Name and Workers identify the node and its pool size.
	Name    string
	Workers int
	// EventsIn and EventsOut count events entering and leaving the stage;
	// the difference is what the stage dropped (trigger rejects, skim
	// cuts). Sources have no EventsIn, sinks no EventsOut.
	EventsIn  int64
	EventsOut int64
	// Batches is the number of batches processed.
	Batches int64
	// Busy is the cumulative wall time spent inside the stage's user
	// function, summed over workers; Busy/Wall is the stage's effective
	// parallelism.
	Busy time.Duration
	// MaxInFlight is the peak number of batches held by the stage at once
	// (dispatched but not yet emitted in order). Bounded by
	// Workers + Options.Depth: the substrate's memory guarantee.
	MaxInFlight int64
	// Restarts counts supervised worker restarts after transient batch
	// failures (Options.StageRetries).
	Restarts int64
	// PoolHits and PoolMisses meter the stage's batch-container recycler:
	// hits are containers reused from the drained-batch pool, misses are
	// fresh allocations. After warm-up (the first MaxInFlight batches are
	// misses by construction) the stream should run on hits alone; misses
	// growing with event count mean containers are escaping the loop.
	PoolHits   int64
	PoolMisses int64
}

// Report is the whole pipeline's execution summary.
type Report struct {
	// Pipeline is the name given to New.
	Pipeline string
	// Wall is the elapsed time from construction to Wait returning.
	Wall time.Duration
	// Stages appear in assembly order.
	Stages []StageReport
}

// Report snapshots the pipeline's counters. Call it after Wait.
func (p *Pipeline) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	wall := p.wall
	if !p.waited {
		wall = time.Since(p.started) //daspos:wallclock-ok — live-report metric only
	}
	r := Report{Pipeline: p.name, Wall: wall}
	for _, st := range p.stages {
		r.Stages = append(r.Stages, StageReport{
			Name:        st.name,
			Workers:     st.workers,
			EventsIn:    st.eventsIn.Load(),
			EventsOut:   st.eventsOut.Load(),
			Batches:     st.batches.Load(),
			Busy:        time.Duration(st.busy.Load()),
			MaxInFlight: st.maxInFlight.Load(),
			Restarts:    st.restarts.Load(),
			PoolHits:    st.poolHits.Load(),
			PoolMisses:  st.poolMisses.Load(),
		})
	}
	return r
}

// String renders the report as an aligned text block, one line per stage.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s: wall %v\n", r.Pipeline, r.Wall.Round(time.Microsecond))
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "  %-14s workers=%d in=%d out=%d batches=%d busy=%v maxInFlight=%d restarts=%d recycle=%d/%d\n",
			s.Name, s.Workers, s.EventsIn, s.EventsOut, s.Batches,
			s.Busy.Round(time.Microsecond), s.MaxInFlight, s.Restarts,
			s.PoolHits, s.PoolMisses)
	}
	return b.String()
}
