// Package eventflow is the streaming event-flow substrate underneath the
// processing chain: the paper's "nested levels of processing" (§3.2)
// realized as pipeline stages connected by bounded channels of
// sequence-tagged batches instead of whole-tier in-memory slices.
//
// A pipeline is assembled from three kinds of node:
//
//   - a Source pulls events one at a time from a producer (a generator, a
//     file reader) and packs them into batches on a single goroutine;
//   - a stage (Map / MapWorkers) transforms events with a pool of workers,
//     preserving stream order by reordering completed batches on their
//     sequence tags before emitting them downstream;
//   - a Sink consumes the ordered stream on a single goroutine (a file
//     writer, an accumulator).
//
// Memory stays bounded end to end: every inter-stage channel has a fixed
// capacity and every parallel stage holds at most workers+depth batches in
// flight (a token is acquired before a batch is dispatched and released
// only once the batch has been emitted in order). The first error anywhere
// cancels the shared context and short-circuits the whole pipeline; every
// goroutine selects on that context, so cancellation drains cleanly with
// no leaks. Per-stage counters (events in/out, batches, busy time, peak
// batches in flight) accumulate into a Report for the pipeline tables the
// executables print.
//
// Determinism is a contract, not an accident: stage functions must depend
// only on their input event (per-event random streams are derived with
// xrand.ForEvent), and because batch order is preserved, a pipeline's
// output is byte-identical at any worker count.
package eventflow

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"daspos/internal/resilience"
)

// Options tunes a pipeline. The zero value selects the defaults.
type Options struct {
	// BatchSize is the number of events packed into one batch (default 32).
	// Larger batches amortize channel traffic; smaller ones bound latency
	// and memory per stage.
	BatchSize int
	// Depth is the capacity of every inter-stage channel, and the slack
	// beyond the worker count in each parallel stage's in-flight bound
	// (default 2).
	Depth int
	// StageRetries supervises stage workers: a worker whose function
	// fails a batch with a transient error (per the internal/resilience
	// taxonomy) is restarted — fresh per-worker state from the stage's
	// newFn — and the batch re-applied. The budget is per stage, shared
	// across its workers; once spent, or on any permanent/unclassified
	// error, the pipeline fails as usual. Batch ordering is unaffected
	// because the retried batch keeps its sequence tag. Default 0:
	// supervision off.
	StageRetries int
}

const (
	defaultBatchSize = 32
	defaultDepth     = 2
)

// Pipeline owns the shared control state of one assembled pipeline: the
// cancellation context, the first error, the goroutine accounting, and the
// per-stage counters.
type Pipeline struct {
	name         string
	batchSize    int
	depth        int
	stageRetries int

	ctx    context.Context
	cancel context.CancelFunc

	wg sync.WaitGroup

	mu      sync.Mutex
	failErr error
	stages  []*stageStats
	started time.Time
	waited  bool
	wall    time.Duration
}

// New returns an empty pipeline bound to ctx. Cancelling ctx stops every
// node; Wait then returns the context's error.
func New(ctx context.Context, name string, opts Options) *Pipeline {
	if opts.BatchSize <= 0 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.Depth <= 0 {
		opts.Depth = defaultDepth
	}
	pctx, cancel := context.WithCancel(ctx)
	return &Pipeline{
		name:         name,
		batchSize:    opts.BatchSize,
		depth:        opts.Depth,
		stageRetries: opts.StageRetries,
		ctx:          pctx,
		cancel:       cancel,
		started:      time.Now(), //daspos:wallclock-ok — pipeline wall-time metric only
	}
}

// Wait blocks until every node has finished and returns the first error
// (nil on clean completion, the context error on external cancellation).
// It must be called exactly once, after the pipeline is fully assembled.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	err := p.failErr
	if !p.waited {
		p.waited = true
		p.wall = time.Since(p.started) //daspos:wallclock-ok — stage-report metric only
	}
	p.mu.Unlock()
	ctxErr := p.ctx.Err()
	p.cancel()
	if err != nil {
		return err
	}
	if ctxErr != nil {
		return ctxErr
	}
	return nil
}

// fail records the first error and cancels the pipeline so every other
// node unwinds.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.mu.Unlock()
	p.cancel()
}

// spawn runs fn on a tracked goroutine, routing its error into fail.
func (p *Pipeline) spawn(fn func() error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := fn(); err != nil {
			p.fail(err)
		}
	}()
}

// batch is one sequence-tagged unit of flow. Stages preserve seq (empty
// batches still travel) so a downstream reorderer can restore stream order
// by counting. The box pointer, when set, is the sync.Pool token of the
// items container: it travels with the batch so the consumer can return
// the drained container upstream without boxing a slice header (which
// would itself allocate on every Put).
type batch[T any] struct {
	seq   int
	items []T
	box   *[]T
}

// slicePool recycles batch item containers between a producing stage and
// whoever drains its stream. Ownership handoff, not copying: the producer
// gets a container, fills it, and sends it downstream; the consumer drains
// it and puts it back. put clears the container's full capacity before
// pooling it — that releases pointers for the GC, and it deterministically
// poisons any reference a stage illegally retained past the handoff, so
// the ownership rule ("a stage that retains data must Clone") fails loudly
// in tests instead of corrupting silently.
type slicePool[T any] struct {
	pool sync.Pool
	st   *stageStats
}

// get returns an empty container, recycled when the pool has one (a hit)
// and freshly allocated otherwise (a miss). The returned box is the pool
// token to hand back with the container.
func (sp *slicePool[T]) get(capacity int) ([]T, *[]T) {
	if v, ok := sp.pool.Get().(*[]T); ok {
		sp.st.poolHits.Add(1)
		return (*v)[:0], v
	}
	sp.st.poolMisses.Add(1)
	items := make([]T, 0, capacity)
	return items, &items
}

// put clears and pools a drained container.
func (sp *slicePool[T]) put(items []T, box *[]T) {
	if box == nil {
		return
	}
	full := items[:cap(items)]
	clear(full)
	*box = full[:0]
	sp.pool.Put(box)
}

// Stream is a typed, ordered flow of batches out of one node. The pool is
// owned by the producing stage; the stream's single consumer returns
// drained containers through it.
type Stream[T any] struct {
	p    *Pipeline
	ch   chan batch[T]
	pool *slicePool[T]
}

// recycle returns a drained batch's container to the producing stage's
// pool. Callers must be done with the container (though not necessarily
// with the elements it held — those were copied out or carry their own
// ownership).
func (s *Stream[T]) recycle(b batch[T]) {
	if s.pool != nil {
		s.pool.put(b.items, b.box)
	}
}

// Source starts the pipeline's producer: next is called repeatedly on a
// single goroutine and its events are packed into batches. Returning
// io.EOF ends the stream cleanly; any other error aborts the pipeline.
func Source[T any](p *Pipeline, name string, next func() (T, error)) *Stream[T] {
	st := p.addStage(name, 1)
	pool := &slicePool[T]{st: st}
	out := make(chan batch[T], p.depth)
	p.spawn(func() error {
		defer close(out)
		seq := 0
		items, box := pool.get(p.batchSize)
		flush := func() bool {
			if len(items) == 0 {
				return true
			}
			b := batch[T]{seq: seq, items: items, box: box}
			seq++
			st.batches.Add(1)
			st.eventsOut.Add(int64(len(items)))
			select {
			case out <- b:
			case <-p.ctx.Done():
				return false
			}
			items, box = pool.get(p.batchSize)
			return true
		}
		for {
			if p.ctx.Err() != nil {
				return nil
			}
			start := time.Now() //daspos:wallclock-ok — per-stage busy metric only
			v, err := next()
			st.busy.Add(int64(time.Since(start))) //daspos:wallclock-ok
			if err == io.EOF {
				flush()
				return nil
			}
			if err != nil {
				return fmt.Errorf("eventflow: source %s: %w", name, err)
			}
			items = append(items, v)
			if len(items) >= p.batchSize {
				if !flush() {
					return nil
				}
			}
		}
	})
	return &Stream[T]{p: p, ch: out, pool: pool}
}

// Map adds a stage applying fn to every event with the given number of
// workers, preserving stream order. fn returns the transformed event and a
// keep flag; keep=false drops the event from the stream (a trigger or skim
// decision). fn must be safe for concurrent use when workers > 1 and must
// depend only on its input event, or determinism across worker counts is
// lost.
func Map[In, Out any](s *Stream[In], name string, workers int, fn func(In) (Out, bool, error)) *Stream[Out] {
	return MapWorkers(s, name, workers, func(int) func(In) (Out, bool, error) { return fn })
}

// MapWorkers is Map for stages whose transform carries per-worker state (a
// reconstructor instance, a scratch buffer): newFn is invoked once per
// worker and each returned function is only ever called from that worker's
// goroutine.
func MapWorkers[In, Out any](s *Stream[In], name string, workers int, newFn func(worker int) func(In) (Out, bool, error)) *Stream[Out] {
	return MapBatches(s, name, workers, func(worker int) func([]In, []Out) ([]Out, error) {
		fn := newFn(worker)
		return func(in []In, out []Out) ([]Out, error) {
			for _, v := range in {
				o, keep, err := fn(v)
				if err != nil {
					return out, err
				}
				if keep {
					out = append(out, o)
				}
			}
			return out, nil
		}
	})
}

// MapBatches is the batch-granularity stage underneath Map and MapWorkers,
// exposed for transforms that want to amortize work across a whole batch —
// a decoder filling one arena per batch, an encoder sharing one scratch
// buffer. newFn is invoked once per worker; the returned function receives
// the input items and an empty output container (recycled, with whatever
// capacity its previous trip accumulated) and returns the filled container.
//
// Ownership: the stage owns `in` only for the duration of the call — the
// container is recycled and cleared as soon as the function returns, so
// retaining `in` (or any sub-slice of it) is illegal and shows up as
// zeroed data. Elements may be carried over into `out` freely (values are
// copied; pointed-to data keeps its own ownership — a function that
// retains pointed-to data beyond its stage must Clone it). The function
// must return `out` (possibly grown), never `in` itself.
func MapBatches[In, Out any](s *Stream[In], name string, workers int, newFn func(worker int) func(in []In, out []Out) ([]Out, error)) *Stream[Out] {
	p := s.p
	if workers < 1 {
		workers = 1
	}
	st := p.addStage(name, workers)
	pool := &slicePool[Out]{st: st}

	apply := func(fn func([]In, []Out) ([]Out, error), b batch[In]) (batch[Out], error) {
		start := time.Now() //daspos:wallclock-ok — per-stage busy metric only
		items, box := pool.get(len(b.items))
		outItems, err := fn(b.items, items)
		st.busy.Add(int64(time.Since(start))) //daspos:wallclock-ok
		if err != nil {
			pool.put(outItems, box)
			return batch[Out]{}, fmt.Errorf("eventflow: stage %s: %w", name, err)
		}
		ob := batch[Out]{seq: b.seq, items: outItems, box: box}
		st.batches.Add(1)
		st.eventsIn.Add(int64(len(b.items)))
		st.eventsOut.Add(int64(len(outItems)))
		// The input container is drained: hand it back upstream.
		s.recycle(b)
		return ob, nil
	}

	// supervised applies one batch, restarting the worker on transient
	// failure: the dead worker's function is rebuilt with newFn (fresh
	// per-worker state) and the batch re-applied under its original
	// sequence tag, so the retry is invisible to downstream ordering. The
	// restart budget is stage-wide; exhausting it surfaces the error.
	supervised := func(worker int, fn *func([]In, []Out) ([]Out, error), b batch[In]) (batch[Out], error) {
		for {
			ob, err := apply(*fn, b)
			if err == nil {
				return ob, nil
			}
			if !resilience.IsTransient(err) || !st.tryRestart(int64(p.stageRetries)) {
				return batch[Out]{}, err
			}
			*fn = newFn(worker)
		}
	}

	out := make(chan batch[Out], p.depth)
	if workers == 1 {
		fn := newFn(0)
		p.spawn(func() error {
			defer close(out)
			for b := range s.ch {
				ob, err := supervised(0, &fn, b)
				if err != nil {
					return err
				}
				select {
				case out <- ob:
				case <-p.ctx.Done():
					return nil
				}
			}
			return nil
		})
		return &Stream[Out]{p: p, ch: out, pool: pool}
	}

	// Parallel stage: dispatcher → worker pool → reorderer. The token
	// channel bounds the batches in flight (dispatched but not yet emitted
	// in order) to workers+depth, which is what keeps memory bounded when
	// one slow batch holds up emission.
	bound := workers + p.depth
	jobs := make(chan batch[In])
	results := make(chan batch[Out], bound)
	tokens := make(chan struct{}, bound)

	p.spawn(func() error { // dispatcher
		defer close(jobs)
		for b := range s.ch {
			select {
			case tokens <- struct{}{}:
			case <-p.ctx.Done():
				return nil
			}
			st.noteInFlight(1)
			select {
			case jobs <- b:
			case <-p.ctx.Done():
				return nil
			}
		}
		return nil
	})

	var workerWG sync.WaitGroup
	workerWG.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		fn := newFn(w)
		p.spawn(func() error {
			defer workerWG.Done()
			for b := range jobs {
				ob, err := supervised(w, &fn, b)
				if err != nil {
					return err
				}
				select {
				case results <- ob:
				case <-p.ctx.Done():
					return nil
				}
			}
			return nil
		})
	}
	p.spawn(func() error { // closes results once the pool drains
		workerWG.Wait()
		close(results)
		return nil
	})

	p.spawn(func() error { // reorderer
		defer close(out)
		// Completed batches wait in a ring indexed by sequence number.
		// The token bound guarantees every outstanding seq lies in
		// [next, next+bound), so slots never collide — and unlike a map,
		// the ring is two fixed allocations for the stage's lifetime,
		// which is what keeps the merge's cost flat as workers grow.
		ring := make([]batch[Out], bound)
		full := make([]bool, bound)
		next := 0
		for ob := range results {
			slot := ob.seq % bound
			ring[slot], full[slot] = ob, true
			for full[next%bound] {
				i := next % bound
				b := ring[i]
				ring[i], full[i] = batch[Out]{}, false
				next++
				select {
				case out <- b:
				case <-p.ctx.Done():
					return nil
				}
				st.noteInFlight(-1)
				// A token was acquired for every dispatched batch, so this
				// receive never blocks.
				<-tokens
			}
		}
		return nil
	})
	return &Stream[Out]{p: p, ch: out, pool: pool}
}

// Sink terminates the stream: fn is called for every event, in stream
// order, on a single goroutine.
func Sink[T any](s *Stream[T], name string, fn func(T) error) {
	SinkBatch(s, name, func(items []T) error {
		for _, v := range items {
			if err := fn(v); err != nil {
				return err
			}
		}
		return nil
	})
}

// SinkBatch terminates the stream with a consumer that receives whole
// in-order batches. Batch granularity lets a sink amortize per-call
// overhead — one writer lock, one buffer reservation, one syscall per
// batch instead of per event — which is what the single-pass artifact
// writers downstream want.
func SinkBatch[T any](s *Stream[T], name string, fn func([]T) error) {
	p := s.p
	st := p.addStage(name, 1)
	p.spawn(func() error {
		for b := range s.ch {
			start := time.Now() //daspos:wallclock-ok — per-stage busy metric only
			err := fn(b.items)
			st.busy.Add(int64(time.Since(start))) //daspos:wallclock-ok
			if err != nil {
				return fmt.Errorf("eventflow: sink %s: %w", name, err)
			}
			st.batches.Add(1)
			st.eventsIn.Add(int64(len(b.items)))
			// The sink consumed the batch: its container goes back upstream.
			// A sink that retained the slice (rather than copying items out)
			// violates the ownership rule and will observe cleared data —
			// deliberately, and deterministically.
			s.recycle(b)
		}
		return nil
	})
}

// Collected holds a Collect sink's accumulated events. Items must not be
// read before the pipeline's Wait has returned.
type Collected[T any] struct {
	Items []T
}

// Collect terminates the stream into an ordered in-memory slice — the
// bridge back to slice-shaped callers (and deliberately the only place the
// substrate materializes a whole stream).
func Collect[T any](s *Stream[T], name string) *Collected[T] {
	c := &Collected[T]{}
	Sink(s, name, func(v T) error {
		c.Items = append(c.Items, v)
		return nil
	})
	return c
}
