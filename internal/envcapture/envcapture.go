// Package envcapture captures and reasons about the software environment
// of a preserved workflow. The paper identifies environment rot as the
// central RECAST-class risk: "the full experimental code base must be
// migrated to new computing platforms when such transitions become
// necessary. The entire set of processes must be kept functioning."
//
// A Manifest records the platform and the transitive closure of packages a
// workflow needs. A Registry models the available package universe
// (versions and their platform support), so the archive can answer the
// question that matters decades later: does this capsule still run here,
// and if not, what is the smallest upgrade plan that makes it run?
package envcapture

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Platform identifies an execution environment generation.
type Platform struct {
	OS      string `json:"os"`
	Arch    string `json:"arch"`
	Runtime string `json:"runtime"`
}

// String renders the platform triple.
func (p Platform) String() string { return p.OS + "/" + p.Arch + "/" + p.Runtime }

// PkgRef names one package at one version.
type PkgRef struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// String renders name@version.
func (r PkgRef) String() string { return r.Name + "@" + r.Version }

// Package is one entry of the package universe.
type Package struct {
	PkgRef
	// Deps are the package's direct dependencies.
	Deps []PkgRef `json:"deps,omitempty"`
	// Platforms lists the platforms this exact version runs on.
	Platforms []Platform `json:"platforms"`
}

// SupportsPlatform reports whether the package runs on p.
func (pkg Package) SupportsPlatform(p Platform) bool {
	for _, q := range pkg.Platforms {
		if q == p {
			return true
		}
	}
	return false
}

// Registry is the package universe: every known (name, version) with its
// dependencies and platform support.
type Registry struct {
	pkgs map[string]map[string]Package // name -> version -> package
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{pkgs: make(map[string]map[string]Package)}
}

// Add registers a package version. Re-adding the same version replaces it.
func (r *Registry) Add(p Package) {
	byVersion, ok := r.pkgs[p.Name]
	if !ok {
		byVersion = make(map[string]Package)
		r.pkgs[p.Name] = byVersion
	}
	byVersion[p.Version] = p
}

// Get resolves a package version.
func (r *Registry) Get(ref PkgRef) (Package, bool) {
	p, ok := r.pkgs[ref.Name][ref.Version]
	return p, ok
}

// Versions returns the sorted versions known for a package name.
func (r *Registry) Versions(name string) []string {
	var out []string
	for v := range r.pkgs[name] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Closure computes the transitive dependency closure of the roots,
// deterministic (sorted by name then version). Unknown packages are an
// error: an unresolvable dependency means the environment cannot be
// captured faithfully.
func (r *Registry) Closure(roots ...PkgRef) ([]Package, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[PkgRef]int)
	var out []Package
	var walk func(ref PkgRef) error
	walk = func(ref PkgRef) error {
		switch state[ref] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("envcapture: dependency cycle through %s", ref)
		}
		pkg, ok := r.Get(ref)
		if !ok {
			return fmt.Errorf("envcapture: unknown package %s", ref)
		}
		state[ref] = visiting
		for _, dep := range pkg.Deps {
			if err := walk(dep); err != nil {
				return err
			}
		}
		state[ref] = done
		out = append(out, pkg)
		return nil
	}
	for _, root := range roots {
		if err := walk(root); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}

// Manifest is the captured environment of one preserved workflow.
type Manifest struct {
	// Workflow names what this environment serves.
	Workflow string   `json:"workflow"`
	Platform Platform `json:"platform"`
	// Roots are the directly required packages; Packages is their full
	// closure.
	Roots    []PkgRef  `json:"roots"`
	Packages []Package `json:"packages"`
}

// Capture builds a manifest for the given roots on a platform, verifying
// that every package in the closure supports the platform.
func Capture(reg *Registry, workflow string, platform Platform, roots ...PkgRef) (*Manifest, error) {
	closure, err := reg.Closure(roots...)
	if err != nil {
		return nil, err
	}
	for _, p := range closure {
		if !p.SupportsPlatform(platform) {
			return nil, fmt.Errorf("envcapture: %s does not support %s", p.PkgRef, platform)
		}
	}
	return &Manifest{Workflow: workflow, Platform: platform, Roots: roots, Packages: closure}, nil
}

// Digest returns the manifest's content address: two captures of the same
// environment hash identically.
func (m *Manifest) Digest() (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Encode serializes the manifest for archiving.
func (m *Manifest) Encode() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// Decode parses an archived manifest.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("envcapture: parsing manifest: %w", err)
	}
	return &m, nil
}

// PackageBytes estimates the capsule footprint: total declared package
// count (the RIVET-vs-RECAST "light vs heavy" proxy before payload sizes).
func (m *Manifest) PackageCount() int { return len(m.Packages) }

// MigrationAction describes one step of a migration plan.
type MigrationAction struct {
	Package PkgRef `json:"package"`
	// NewVersion is the version to upgrade to; empty means the package
	// already supports the target platform unchanged.
	NewVersion string `json:"new_version,omitempty"`
}

// MigrationReport is the outcome of planning a platform migration.
type MigrationReport struct {
	Target Platform `json:"target"`
	// Unchanged packages run on the target as-is.
	Unchanged []PkgRef `json:"unchanged,omitempty"`
	// Upgrades lists required version changes.
	Upgrades []MigrationAction `json:"upgrades,omitempty"`
	// Blocked lists packages with no version supporting the target: the
	// capsule cannot be migrated without them being ported.
	Blocked []PkgRef `json:"blocked,omitempty"`
}

// OK reports whether the migration can proceed.
func (r MigrationReport) OK() bool { return len(r.Blocked) == 0 }

// PlanMigration computes what it takes to move a manifest to a new
// platform: for each package, keep it if the pinned version supports the
// target, otherwise pick the lowest newer-sorting version that does, and
// flag it blocked when none exists. This is the maintenance cost the paper
// attributes to "closed" full-stack preservation.
func PlanMigration(reg *Registry, m *Manifest, target Platform) MigrationReport {
	rep := MigrationReport{Target: target}
	for _, pkg := range m.Packages {
		if pkg.SupportsPlatform(target) {
			rep.Unchanged = append(rep.Unchanged, pkg.PkgRef)
			continue
		}
		upgraded := false
		for _, v := range reg.Versions(pkg.Name) {
			cand, _ := reg.Get(PkgRef{Name: pkg.Name, Version: v})
			if v > pkg.Version && cand.SupportsPlatform(target) {
				rep.Upgrades = append(rep.Upgrades, MigrationAction{Package: pkg.PkgRef, NewVersion: v})
				upgraded = true
				break
			}
		}
		if !upgraded {
			rep.Blocked = append(rep.Blocked, pkg.PkgRef)
		}
	}
	return rep
}

// ApplyMigration produces the migrated manifest from a plan. It fails if
// the plan is blocked.
func ApplyMigration(reg *Registry, m *Manifest, rep MigrationReport) (*Manifest, error) {
	if !rep.OK() {
		return nil, fmt.Errorf("envcapture: migration to %s blocked by %d packages", rep.Target, len(rep.Blocked))
	}
	upgrade := make(map[PkgRef]string, len(rep.Upgrades))
	for _, u := range rep.Upgrades {
		upgrade[u.Package] = u.NewVersion
	}
	roots := make([]PkgRef, len(m.Roots))
	for i, root := range m.Roots {
		if v, ok := upgrade[root]; ok {
			roots[i] = PkgRef{Name: root.Name, Version: v}
		} else {
			roots[i] = root
		}
	}
	// Re-capture on the target platform: upgraded roots may pull new
	// dependency versions, and the capture re-verifies support.
	return Capture(reg, m.Workflow, rep.Target, roots...)
}
