package envcapture

import (
	"strings"
	"testing"
)

func TestClosureResolvesTransitively(t *testing.T) {
	reg := StandardRegistry()
	closure, err := reg.Closure(PkgRef{"recast-backend", "0.7"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]string{}
	for _, p := range closure {
		names[p.Name] = p.Version
	}
	for _, want := range []string{"recast-backend", "daspos-generator", "daspos-fullsim", "daspos-reco", "cond-client", "histlib", "hepmc-io"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("closure missing %s: %v", want, names)
		}
	}
	// Deterministic: re-running yields the same sorted order.
	again, _ := reg.Closure(PkgRef{"recast-backend", "0.7"})
	for i := range closure {
		if closure[i].PkgRef != again[i].PkgRef {
			t.Fatal("closure not deterministic")
		}
	}
}

func TestClosureUnknownPackage(t *testing.T) {
	reg := StandardRegistry()
	if _, err := reg.Closure(PkgRef{"warp-drive", "1.0"}); err == nil {
		t.Fatal("unknown package resolved")
	}
	if _, err := reg.Closure(PkgRef{"histlib", "9.99"}); err == nil {
		t.Fatal("unknown version resolved")
	}
}

func TestClosureDetectsCycle(t *testing.T) {
	reg := NewRegistry()
	reg.Add(Package{PkgRef: PkgRef{"a", "1"}, Deps: []PkgRef{{"b", "1"}}, Platforms: nil})
	reg.Add(Package{PkgRef: PkgRef{"b", "1"}, Deps: []PkgRef{{"a", "1"}}, Platforms: nil})
	if _, err := reg.Closure(PkgRef{"a", "1"}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestCaptureVerifiesPlatformSupport(t *testing.T) {
	reg := StandardRegistry()
	_, cur, next := StandardPlatforms()
	m, err := Capture(reg, "reco-pass", cur, PkgRef{"daspos-reco", "3.2.1"})
	if err != nil {
		t.Fatal(err)
	}
	if m.PackageCount() < 3 {
		t.Fatalf("closure too small: %d", m.PackageCount())
	}
	// reco 3.2.1 was never ported to the next platform generation.
	if _, err := Capture(reg, "reco-pass", next, PkgRef{"daspos-reco", "3.2.1"}); err == nil {
		t.Fatal("capture on unsupported platform succeeded")
	}
}

func TestManifestDigestStable(t *testing.T) {
	reg := StandardRegistry()
	_, cur, _ := StandardPlatforms()
	m1, err := Capture(reg, "w", cur, PkgRef{"rivet-lite", "1.2"})
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := Capture(reg, "w", cur, PkgRef{"rivet-lite", "1.2"})
	d1, err := m1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := m2.Digest()
	if d1 != d2 {
		t.Fatal("same environment, different digests")
	}
	m3, _ := Capture(reg, "w", cur, PkgRef{"daspos-fastsim", "0.9.2"})
	d3, _ := m3.Digest()
	if d3 == d1 {
		t.Fatal("different environments, same digest")
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	reg := StandardRegistry()
	_, cur, _ := StandardPlatforms()
	m, _ := Capture(reg, "w", cur, PkgRef{"rivet-lite", "1.2"})
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workflow != m.Workflow || got.PackageCount() != m.PackageCount() {
		t.Fatal("round trip lost content")
	}
	gd, _ := got.Digest()
	md, _ := m.Digest()
	if gd != md {
		t.Fatal("digest changed through serialization")
	}
	if _, err := Decode([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestPlanMigrationUpgrades(t *testing.T) {
	reg := StandardRegistry()
	_, cur, next := StandardPlatforms()
	m, err := Capture(reg, "recast-capsule", cur, PkgRef{"recast-backend", "0.7"})
	if err != nil {
		t.Fatal(err)
	}
	rep := PlanMigration(reg, m, next)
	if !rep.OK() {
		t.Fatalf("migration blocked: %+v", rep.Blocked)
	}
	if len(rep.Upgrades) == 0 {
		t.Fatal("no upgrades planned although pinned versions are unsupported")
	}
	upgraded := map[string]string{}
	for _, u := range rep.Upgrades {
		upgraded[u.Package.Name] = u.NewVersion
	}
	if upgraded["daspos-reco"] != "3.3.0" {
		t.Fatalf("reco upgrade: %v", upgraded)
	}
	if upgraded["recast-backend"] != "0.8" {
		t.Fatalf("backend upgrade: %v", upgraded)
	}
}

func TestPlanMigrationBlocked(t *testing.T) {
	reg := NewRegistry()
	old, cur, _ := StandardPlatforms()
	reg.Add(Package{PkgRef: PkgRef{"legacy", "1.0"}, Platforms: []Platform{old}})
	m, err := Capture(reg, "w", old, PkgRef{"legacy", "1.0"})
	if err != nil {
		t.Fatal(err)
	}
	rep := PlanMigration(reg, m, cur)
	if rep.OK() || len(rep.Blocked) != 1 {
		t.Fatalf("blocked migration not detected: %+v", rep)
	}
	if _, err := ApplyMigration(reg, m, rep); err == nil {
		t.Fatal("blocked migration applied")
	}
}

func TestApplyMigrationProducesRunnableManifest(t *testing.T) {
	reg := StandardRegistry()
	_, cur, next := StandardPlatforms()
	m, _ := Capture(reg, "recast-capsule", cur, PkgRef{"recast-backend", "0.7"})
	rep := PlanMigration(reg, m, next)
	migrated, err := ApplyMigration(reg, m, rep)
	if err != nil {
		t.Fatal(err)
	}
	if migrated.Platform != next {
		t.Fatalf("platform %v", migrated.Platform)
	}
	for _, p := range migrated.Packages {
		if !p.SupportsPlatform(next) {
			t.Fatalf("migrated manifest contains unsupported %s", p.PkgRef)
		}
	}
	// The light capsule needs no upgrades at all — the paper's RIVET
	// portability claim.
	light, _ := Capture(reg, "rivet-capsule", cur, PkgRef{"rivet-lite", "1.2"})
	lightRep := PlanMigration(reg, light, next)
	if len(lightRep.Upgrades) != 0 || !lightRep.OK() {
		t.Fatalf("light capsule migration not free: %+v", lightRep)
	}
}

func TestLightVsHeavyFootprint(t *testing.T) {
	// Experiment R1's environment half: the RECAST capsule's closure is
	// strictly larger than the RIVET capsule's.
	reg := StandardRegistry()
	_, cur, _ := StandardPlatforms()
	heavy, _ := Capture(reg, "recast", cur, PkgRef{"recast-backend", "0.7"})
	light, _ := Capture(reg, "rivet", cur, PkgRef{"rivet-lite", "1.2"})
	if heavy.PackageCount() <= light.PackageCount() {
		t.Fatalf("heavy (%d) not larger than light (%d)", heavy.PackageCount(), light.PackageCount())
	}
}

func TestRegistryVersions(t *testing.T) {
	reg := StandardRegistry()
	vs := reg.Versions("daspos-reco")
	if len(vs) != 2 || vs[0] != "3.2.1" || vs[1] != "3.3.0" {
		t.Fatalf("versions: %v", vs)
	}
	if len(reg.Versions("nope")) != 0 {
		t.Fatal("phantom versions")
	}
}
