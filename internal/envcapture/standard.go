package envcapture

// StandardPlatforms returns the platform generations the archive has seen:
// the succession of computing environments the paper's migration risk is
// about.
func StandardPlatforms() (old, current, next Platform) {
	return Platform{OS: "slc5", Arch: "x86_64", Runtime: "gcc4.3"},
		Platform{OS: "slc6", Arch: "x86_64", Runtime: "gcc4.8"},
		Platform{OS: "centos7", Arch: "x86_64", Runtime: "gcc8"}
}

// StandardRegistry returns the package universe of the toy experiment
// stack: the generator, simulation, reconstruction, and analysis releases
// the workflows pin, with realistic platform-support gaps (old releases
// were never ported forward).
func StandardRegistry() *Registry {
	old, cur, next := StandardPlatforms()
	all := []Platform{old, cur, next}
	oldOnly := []Platform{old}
	curOnly := []Platform{old, cur}
	reg := NewRegistry()
	add := func(name, version string, platforms []Platform, deps ...PkgRef) {
		reg.Add(Package{PkgRef: PkgRef{Name: name, Version: version}, Deps: deps, Platforms: platforms})
	}
	add("histlib", "5.34", curOnly)
	add("histlib", "6.10", all)
	add("hepmc-io", "1.0", all)
	add("cond-client", "2.1", oldOnly)
	add("cond-client", "2.4", all)
	add("daspos-generator", "2.0", all, PkgRef{"hepmc-io", "1.0"})
	add("daspos-fullsim", "1.4.0", curOnly,
		PkgRef{"hepmc-io", "1.0"}, PkgRef{"cond-client", "2.4"})
	add("daspos-fullsim", "1.5.0", all,
		PkgRef{"hepmc-io", "1.0"}, PkgRef{"cond-client", "2.4"})
	add("daspos-fastsim", "0.9.2", all, PkgRef{"hepmc-io", "1.0"})
	add("daspos-reco", "3.2.1", curOnly,
		PkgRef{"cond-client", "2.4"}, PkgRef{"histlib", "6.10"})
	add("daspos-reco", "3.3.0", all,
		PkgRef{"cond-client", "2.4"}, PkgRef{"histlib", "6.10"})
	add("rivet-lite", "1.2", all, PkgRef{"hepmc-io", "1.0"}, PkgRef{"histlib", "6.10"})
	add("recast-backend", "0.7", curOnly,
		PkgRef{"daspos-generator", "2.0"},
		PkgRef{"daspos-fullsim", "1.4.0"},
		PkgRef{"daspos-reco", "3.2.1"})
	add("recast-backend", "0.8", all,
		PkgRef{"daspos-generator", "2.0"},
		PkgRef{"daspos-fullsim", "1.5.0"},
		PkgRef{"daspos-reco", "3.3.0"})
	return reg
}
