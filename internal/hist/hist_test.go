package hist

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"daspos/internal/xrand"
)

func TestFillBasics(t *testing.T) {
	h := NewH1D("m", 10, 0, 100)
	h.Fill(5)
	h.Fill(15)
	h.Fill(15)
	h.Fill(-1)
	h.Fill(100) // hi edge is exclusive
	h.Fill(250)
	if h.SumW[0] != 1 || h.SumW[1] != 2 {
		t.Fatalf("bins: %v", h.SumW)
	}
	if h.Under != 1 {
		t.Fatalf("under %v", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("over %v", h.Over)
	}
	if h.Entries != 6 {
		t.Fatalf("entries %d", h.Entries)
	}
	if h.Integral() != 3 || h.IntegralAll() != 6 {
		t.Fatalf("integrals %v %v", h.Integral(), h.IntegralAll())
	}
}

func TestNaNGoesToOverflow(t *testing.T) {
	h := NewH1D("x", 4, 0, 1)
	h.Fill(math.NaN())
	if h.Over != 1 || h.Integral() != 0 {
		t.Fatalf("NaN handling: over=%v integral=%v", h.Over, h.Integral())
	}
}

func TestInvalidBinningPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid binning did not panic")
		}
	}()
	NewH1D("bad", 0, 0, 1)
}

func TestBinGeometry(t *testing.T) {
	h := NewH1D("x", 4, 0, 8)
	if h.BinWidth() != 2 {
		t.Fatalf("width %v", h.BinWidth())
	}
	if h.BinCenter(0) != 1 || h.BinCenter(3) != 7 {
		t.Fatalf("centers %v %v", h.BinCenter(0), h.BinCenter(3))
	}
	if h.BinIndex(0) != 0 || h.BinIndex(7.999) != 3 {
		t.Fatalf("indices %d %d", h.BinIndex(0), h.BinIndex(7.999))
	}
}

func TestBinIndexNeverOutOfRange(t *testing.T) {
	h := NewH1D("x", 7, -3, 11)
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		x = math.Mod(x, 100)
		i := h.BinIndex(x)
		return i >= 0 && i < h.NBins
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMoments(t *testing.T) {
	h := NewH1D("x", 100, 0, 10)
	h.FillW(2, 1)
	h.FillW(4, 3)
	// mean = (2 + 12)/4 = 3.5
	if math.Abs(h.Mean()-3.5) > 1e-12 {
		t.Fatalf("mean %v", h.Mean())
	}
	want := math.Sqrt((4+48)/4.0 - 3.5*3.5)
	if math.Abs(h.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev %v want %v", h.StdDev(), want)
	}
}

func TestScaleAndNormalize(t *testing.T) {
	h := NewH1D("x", 2, 0, 2)
	h.Fill(0.5)
	h.Fill(1.5)
	h.Fill(1.5)
	h.Scale(2)
	if h.Integral() != 6 {
		t.Fatalf("scaled integral %v", h.Integral())
	}
	if h.BinError(1) != math.Sqrt(8) {
		t.Fatalf("scaled error %v", h.BinError(1))
	}
	h.Normalize(1)
	if math.Abs(h.Integral()-1) > 1e-12 {
		t.Fatalf("normalized integral %v", h.Integral())
	}
	empty := NewH1D("e", 2, 0, 1)
	empty.Normalize(5) // must not panic or produce NaN
	if empty.Integral() != 0 {
		t.Fatal("empty normalize changed contents")
	}
}

func TestAddMerge(t *testing.T) {
	a := NewH1D("x", 4, 0, 4)
	b := NewH1D("x", 4, 0, 4)
	a.Fill(0.5)
	b.Fill(0.5)
	b.Fill(3.5)
	b.Fill(9)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.SumW[0] != 2 || a.SumW[3] != 1 || a.Over != 1 || a.Entries != 4 {
		t.Fatalf("merge result: %+v", a)
	}
	c := NewH1D("x", 5, 0, 4)
	if err := a.Add(c); err != ErrIncompatible {
		t.Fatalf("incompatible add: %v", err)
	}
}

func TestMergeEqualsSingleFill(t *testing.T) {
	// Property: filling one histogram equals merging two halves.
	r := xrand.New(5)
	whole := NewH1D("w", 20, -5, 5)
	h1 := NewH1D("w", 20, -5, 5)
	h2 := NewH1D("w", 20, -5, 5)
	for i := 0; i < 5000; i++ {
		x := r.Gauss(0, 2)
		w := r.Range(0.5, 1.5)
		whole.FillW(x, w)
		if i%2 == 0 {
			h1.FillW(x, w)
		} else {
			h2.FillW(x, w)
		}
	}
	if err := h1.Add(h2); err != nil {
		t.Fatal(err)
	}
	for i := range whole.SumW {
		if math.Abs(whole.SumW[i]-h1.SumW[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, whole.SumW[i], h1.SumW[i])
		}
	}
	if math.Abs(whole.Mean()-h1.Mean()) > 1e-9 {
		t.Fatalf("means differ: %v vs %v", whole.Mean(), h1.Mean())
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := NewH1D("x", 3, 0, 3)
	h.Fill(1.5)
	c := h.Clone()
	c.Fill(1.5)
	if h.SumW[1] != 1 || c.SumW[1] != 2 {
		t.Fatal("clone shares storage")
	}
}

func TestMaxBin(t *testing.T) {
	h := NewH1D("x", 5, 0, 5)
	h.Fill(2.5)
	h.Fill(2.5)
	h.Fill(4.5)
	if h.MaxBin() != 2 {
		t.Fatalf("maxbin %d", h.MaxBin())
	}
}

func TestYodaRoundTrip(t *testing.T) {
	r := xrand.New(9)
	h := NewH1D("mass_mumu", 60, 60, 120)
	h.Title = "Dimuon mass\nwith newline"
	for i := 0; i < 10000; i++ {
		h.FillW(r.BreitWigner(91.2, 2.5), r.Range(0.9, 1.1))
	}
	var buf bytes.Buffer
	if err := WriteH1D(&buf, h); err != nil {
		t.Fatal(err)
	}
	hs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 {
		t.Fatalf("got %d histograms", len(hs))
	}
	g := hs[0]
	if g.Name != h.Name || g.Title != h.Title || g.NBins != h.NBins {
		t.Fatalf("metadata mismatch: %+v", g)
	}
	if g.Entries != h.Entries || g.Under != h.Under || g.Over != h.Over {
		t.Fatalf("totals mismatch")
	}
	for i := range h.SumW {
		if g.SumW[i] != h.SumW[i] || g.SumW2[i] != h.SumW2[i] {
			t.Fatalf("bin %d not bit-exact: %v vs %v", i, g.SumW[i], h.SumW[i])
		}
	}
	if g.Mean() != h.Mean() || g.StdDev() != h.StdDev() {
		t.Fatalf("moments not preserved: %v/%v vs %v/%v", g.Mean(), g.StdDev(), h.Mean(), h.StdDev())
	}
}

func TestYodaMultipleBlocks(t *testing.T) {
	a := NewH1D("a", 2, 0, 1)
	b := NewH1D("b", 3, -1, 1)
	a.Fill(0.2)
	b.Fill(0)
	var buf bytes.Buffer
	if err := WriteAll(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n# trailing comment\n")
	hs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Name != "a" || hs[1].Name != "b" {
		t.Fatalf("blocks: %d", len(hs))
	}
}

func TestYodaRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"unterminated": "BEGIN DASPOS_H1D /x\nNBins=1 Lo=0 Hi=1\n0 0\n",
		"row count":    "BEGIN DASPOS_H1D /x\nNBins=2 Lo=0 Hi=1\n0 0\nEND DASPOS_H1D\n",
		"bad number":   "BEGIN DASPOS_H1D /x\nNBins=1 Lo=0 Hi=1\nzz 0\nEND DASPOS_H1D\n",
		"bad binning":  "BEGIN DASPOS_H1D /x\nNBins=1 Lo=5 Hi=1\nEND DASPOS_H1D\n",
		"data early":   "BEGIN DASPOS_H1D /x\n0 0\nEND DASPOS_H1D\n",
		"extra rows":   "BEGIN DASPOS_H1D /x\nNBins=1 Lo=0 Hi=1\n0 0\n1 1\nEND DASPOS_H1D\n",
		"bad row":      "BEGIN DASPOS_H1D /x\nNBins=1 Lo=0 Hi=1\n0 0 0\nEND DASPOS_H1D\n",
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestH2DBasics(t *testing.T) {
	h := NewH2D("grid", 4, 0, 4, 2, 0, 2)
	h.Fill(0.5, 0.5)
	h.Fill(3.5, 1.5)
	h.Fill(3.5, 1.5)
	h.Fill(-1, 0.5)
	if h.At(0, 0) != 1 {
		t.Fatalf("at(0,0)=%v", h.At(0, 0))
	}
	if h.At(3, 1) != 2 {
		t.Fatalf("at(3,1)=%v", h.At(3, 1))
	}
	if h.OutOfRange != 1 {
		t.Fatalf("oor %v", h.OutOfRange)
	}
	if h.Integral() != 3 {
		t.Fatalf("integral %v", h.Integral())
	}
	if h.XCenter(0) != 0.5 || h.YCenter(1) != 1.5 {
		t.Fatalf("centers %v %v", h.XCenter(0), h.YCenter(1))
	}
}

func TestH2DAdd(t *testing.T) {
	a := NewH2D("g", 2, 0, 2, 2, 0, 2)
	b := NewH2D("g", 2, 0, 2, 2, 0, 2)
	a.Fill(0.5, 0.5)
	b.Fill(0.5, 0.5)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 {
		t.Fatalf("merged %v", a.At(0, 0))
	}
	c := NewH2D("g", 3, 0, 2, 2, 0, 2)
	if err := a.Add(c); err != ErrIncompatible {
		t.Fatalf("incompatible: %v", err)
	}
}

func TestH2DInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewH2D("bad", 2, 0, 2, 0, 0, 2)
}

func BenchmarkFill(b *testing.B) {
	h := NewH1D("x", 100, 0, 100)
	for i := 0; i < b.N; i++ {
		h.Fill(float64(i % 100))
	}
}

func BenchmarkYodaWrite(b *testing.B) {
	h := NewH1D("x", 100, 0, 100)
	for i := 0; i < 100; i++ {
		h.Fill(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteH1D(&buf, h)
	}
}
