package hist

import (
	"math"
	"testing"

	"daspos/internal/xrand"
)

func TestProfileMeanAndSpread(t *testing.T) {
	p := NewProfile1D("eop", 4, 0, 4)
	r := xrand.New(1)
	// Bin 1 gets y ~ N(2, 0.5); bin 3 gets y ~ N(5, 1).
	for i := 0; i < 20000; i++ {
		p.Fill(1.5, r.Gauss(2, 0.5))
		p.Fill(3.5, r.Gauss(5, 1))
	}
	m1, ok := p.Mean(1)
	if !ok || math.Abs(m1-2) > 0.02 {
		t.Fatalf("bin1 mean %v", m1)
	}
	if s := p.Spread(1); math.Abs(s-0.5) > 0.02 {
		t.Fatalf("bin1 spread %v", s)
	}
	m3, _ := p.Mean(3)
	if math.Abs(m3-5) > 0.03 {
		t.Fatalf("bin3 mean %v", m3)
	}
	if _, ok := p.Mean(0); ok {
		t.Fatal("empty bin reported a mean")
	}
	if e := p.MeanError(1); e <= 0 || e > 0.01 {
		t.Fatalf("mean error %v", e)
	}
	if p.MeanError(0) != 0 || p.Spread(0) != 0 {
		t.Fatal("empty-bin errors not zero")
	}
}

func TestProfileOutOfRange(t *testing.T) {
	p := NewProfile1D("x", 2, 0, 1)
	p.Fill(-1, 5)
	p.Fill(2, 5)
	p.Fill(math.NaN(), 5)
	if p.OutOfRange != 3 {
		t.Fatalf("out of range: %d", p.OutOfRange)
	}
	if p.BinCenter(0) != 0.25 {
		t.Fatalf("center %v", p.BinCenter(0))
	}
}

func TestProfilePanicsOnBadBinning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewProfile1D("bad", 0, 0, 1)
}

func TestEfficiencyCurve(t *testing.T) {
	e := NewEfficiency("turnon", 10, 0, 100)
	r := xrand.New(2)
	// A turn-on: efficiency 0.2 below 50, 0.9 above.
	for i := 0; i < 50000; i++ {
		x := r.Range(0, 100)
		eff := 0.2
		if x >= 50 {
			eff = 0.9
		}
		e.Fill(x, r.Bool(eff))
	}
	lo, ok := e.At(2)
	if !ok || math.Abs(lo-0.2) > 0.03 {
		t.Fatalf("low bin eff %v", lo)
	}
	hi, _ := e.At(8)
	if math.Abs(hi-0.9) > 0.03 {
		t.Fatalf("high bin eff %v", hi)
	}
	if err := e.Error(2); err <= 0 || err > 0.02 {
		t.Fatalf("binomial error %v", err)
	}
	overall, ok := e.Overall()
	if !ok || math.Abs(overall-0.55) > 0.02 {
		t.Fatalf("overall %v", overall)
	}
}

func TestEfficiencyEdges(t *testing.T) {
	e := NewEfficiency("x", 2, 0, 1)
	e.Fill(-1, true)
	e.Fill(math.NaN(), true)
	if _, ok := e.At(0); ok {
		t.Fatal("out-of-range fills counted")
	}
	if _, ok := e.Overall(); ok {
		t.Fatal("empty overall reported")
	}
	if e.Error(0) != 0 {
		t.Fatal("empty-bin error not zero")
	}
	if e.BinCenter(1) != 0.75 {
		t.Fatalf("center %v", e.BinCenter(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad binning")
		}
	}()
	NewEfficiency("bad", 1, 2, 1)
}
