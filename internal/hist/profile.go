package hist

import (
	"fmt"
	"math"
)

// Profile1D is a profile histogram: per bin of x it accumulates the mean
// and spread of a second quantity y. Profiles are the standard calibration
// monitor (e.g. E/p versus η) and response-curve representation.
type Profile1D struct {
	Name   string
	NBins  int
	Lo, Hi float64
	// Per-bin accumulators: Σw, Σwy, Σwy².
	sumW, sumWY, sumWY2 []float64
	// OutOfRange counts dropped entries.
	OutOfRange int64
}

// NewProfile1D returns an empty profile with uniform binning on [lo, hi).
// It panics on invalid binning.
func NewProfile1D(name string, nbins int, lo, hi float64) *Profile1D {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("hist: invalid profile binning %q", name))
	}
	return &Profile1D{
		Name: name, NBins: nbins, Lo: lo, Hi: hi,
		sumW:   make([]float64, nbins),
		sumWY:  make([]float64, nbins),
		sumWY2: make([]float64, nbins),
	}
}

// FillW adds a (x, y) sample with weight w.
func (p *Profile1D) FillW(x, y, w float64) {
	if math.IsNaN(x) || math.IsNaN(y) || x < p.Lo || x >= p.Hi {
		p.OutOfRange++
		return
	}
	i := int(float64(p.NBins) * (x - p.Lo) / (p.Hi - p.Lo))
	if i >= p.NBins {
		i = p.NBins - 1
	}
	p.sumW[i] += w
	p.sumWY[i] += w * y
	p.sumWY2[i] += w * y * y
}

// Fill adds a unit-weight sample.
func (p *Profile1D) Fill(x, y float64) { p.FillW(x, y, 1) }

// BinCenter returns the centre of bin i.
func (p *Profile1D) BinCenter(i int) float64 {
	w := (p.Hi - p.Lo) / float64(p.NBins)
	return p.Lo + (float64(i)+0.5)*w
}

// Mean returns the mean y in bin i and whether the bin has entries.
func (p *Profile1D) Mean(i int) (float64, bool) {
	if p.sumW[i] == 0 {
		return 0, false
	}
	return p.sumWY[i] / p.sumW[i], true
}

// Spread returns the RMS spread of y in bin i.
func (p *Profile1D) Spread(i int) float64 {
	if p.sumW[i] == 0 {
		return 0
	}
	m := p.sumWY[i] / p.sumW[i]
	v := p.sumWY2[i]/p.sumW[i] - m*m
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// MeanError returns the statistical error on the bin mean (spread/√N for
// unit weights; the weighted generalization uses Σw as effective N).
func (p *Profile1D) MeanError(i int) float64 {
	if p.sumW[i] <= 0 {
		return 0
	}
	return p.Spread(i) / math.Sqrt(p.sumW[i])
}

// Efficiency accumulates pass/total counts per bin of x: the efficiency
// curve (e.g. trigger or reconstruction efficiency versus pT), with
// binomial uncertainties.
type Efficiency struct {
	Name   string
	NBins  int
	Lo, Hi float64
	Pass   []float64
	Total  []float64
}

// NewEfficiency returns an empty efficiency with uniform binning. It
// panics on invalid binning.
func NewEfficiency(name string, nbins int, lo, hi float64) *Efficiency {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("hist: invalid efficiency binning %q", name))
	}
	return &Efficiency{
		Name: name, NBins: nbins, Lo: lo, Hi: hi,
		Pass:  make([]float64, nbins),
		Total: make([]float64, nbins),
	}
}

// Fill records one trial at x. Out-of-range trials are dropped.
func (e *Efficiency) Fill(x float64, passed bool) {
	if math.IsNaN(x) || x < e.Lo || x >= e.Hi {
		return
	}
	i := int(float64(e.NBins) * (x - e.Lo) / (e.Hi - e.Lo))
	if i >= e.NBins {
		i = e.NBins - 1
	}
	e.Total[i]++
	if passed {
		e.Pass[i]++
	}
}

// BinCenter returns the centre of bin i.
func (e *Efficiency) BinCenter(i int) float64 {
	w := (e.Hi - e.Lo) / float64(e.NBins)
	return e.Lo + (float64(i)+0.5)*w
}

// At returns the efficiency in bin i and whether the bin has trials.
func (e *Efficiency) At(i int) (float64, bool) {
	if e.Total[i] == 0 {
		return 0, false
	}
	return e.Pass[i] / e.Total[i], true
}

// Error returns the binomial uncertainty sqrt(ε(1-ε)/N) in bin i.
func (e *Efficiency) Error(i int) float64 {
	if e.Total[i] == 0 {
		return 0
	}
	eff := e.Pass[i] / e.Total[i]
	return math.Sqrt(eff * (1 - eff) / e.Total[i])
}

// Overall returns the integrated efficiency across all bins.
func (e *Efficiency) Overall() (float64, bool) {
	var pass, total float64
	for i := range e.Total {
		pass += e.Pass[i]
		total += e.Total[i]
	}
	if total == 0 {
		return 0, false
	}
	return pass / total, true
}
