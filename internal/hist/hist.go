// Package hist implements the histogramming layer shared by the preserved
// analyses, the RIVET-style framework, and the benchmark harnesses: fixed-
// binning 1D and 2D histograms with weighted fills, under/overflow
// accounting, merging, and a YODA-like plain-text serialization so that
// archived reference data remains human-readable decades later — a core
// preservation requirement the paper attributes to RIVET's "light" format.
package hist

import (
	"errors"
	"fmt"
	"math"
)

// ErrIncompatible is returned when merging or comparing histograms whose
// binnings differ.
var ErrIncompatible = errors.New("hist: incompatible binning")

// H1D is a one-dimensional histogram with uniform binning on [Lo, Hi).
// Weighted fills accumulate both Σw and Σw² per bin so statistical
// uncertainties survive serialization.
type H1D struct {
	Name    string
	Title   string
	NBins   int
	Lo, Hi  float64
	SumW    []float64
	SumW2   []float64
	Under   float64 // Σw below Lo
	Over    float64 // Σw at or above Hi
	Entries int64
	// Moments of the filled values (not bin centres), for mean/stddev.
	sumWX, sumWX2, sumWAll float64
}

// NewH1D returns an empty histogram with nbins uniform bins on [lo, hi).
// It panics on a non-positive bin count or an empty range, which are
// programming errors.
func NewH1D(name string, nbins int, lo, hi float64) *H1D {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("hist: invalid binning %q: nbins=%d range=[%v,%v)", name, nbins, lo, hi))
	}
	return &H1D{
		Name:  name,
		NBins: nbins,
		Lo:    lo,
		Hi:    hi,
		SumW:  make([]float64, nbins),
		SumW2: make([]float64, nbins),
	}
}

// Fill adds one entry at x with unit weight.
func (h *H1D) Fill(x float64) { h.FillW(x, 1) }

// FillW adds one entry at x with weight w. NaN values are counted as
// overflow so that they remain visible in totals rather than vanishing.
func (h *H1D) FillW(x, w float64) {
	h.Entries++
	if math.IsNaN(x) {
		h.Over += w
		return
	}
	switch {
	case x < h.Lo:
		h.Under += w
	case x >= h.Hi:
		h.Over += w
	default:
		i := h.BinIndex(x)
		h.SumW[i] += w
		h.SumW2[i] += w * w
		h.sumWX += w * x
		h.sumWX2 += w * x * x
		h.sumWAll += w
	}
}

// BinIndex returns the bin index for an in-range x.
func (h *H1D) BinIndex(x float64) int {
	i := int(float64(h.NBins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= h.NBins {
		i = h.NBins - 1
	}
	return i
}

// BinCenter returns the centre of bin i.
func (h *H1D) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(h.NBins)
	return h.Lo + (float64(i)+0.5)*w
}

// BinWidth returns the uniform bin width.
func (h *H1D) BinWidth() float64 { return (h.Hi - h.Lo) / float64(h.NBins) }

// BinError returns the statistical uncertainty sqrt(Σw²) of bin i.
func (h *H1D) BinError(i int) float64 { return math.Sqrt(h.SumW2[i]) }

// Integral returns the total in-range weight.
func (h *H1D) Integral() float64 {
	s := 0.0
	for _, w := range h.SumW {
		s += w
	}
	return s
}

// IntegralAll returns the total weight including under/overflow.
func (h *H1D) IntegralAll() float64 { return h.Integral() + h.Under + h.Over }

// Mean returns the weighted mean of the in-range filled values.
func (h *H1D) Mean() float64 {
	if h.sumWAll == 0 {
		return 0
	}
	return h.sumWX / h.sumWAll
}

// StdDev returns the weighted standard deviation of the in-range filled
// values.
func (h *H1D) StdDev() float64 {
	if h.sumWAll == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumWX2/h.sumWAll - m*m
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// MaxBin returns the index of the highest bin; ties resolve to the lowest
// index. An empty histogram returns 0.
func (h *H1D) MaxBin() int {
	best := 0
	for i, w := range h.SumW {
		if w > h.SumW[best] {
			best = i
		}
	}
	return best
}

// Scale multiplies all bin contents (and errors accordingly) by k.
func (h *H1D) Scale(k float64) {
	for i := range h.SumW {
		h.SumW[i] *= k
		h.SumW2[i] *= k * k
	}
	h.Under *= k
	h.Over *= k
	h.sumWX *= k
	h.sumWX2 *= k
	h.sumWAll *= k
}

// Normalize scales the histogram so its in-range integral equals target.
// A histogram with zero integral is left unchanged.
func (h *H1D) Normalize(target float64) {
	integ := h.Integral()
	if integ == 0 {
		return
	}
	h.Scale(target / integ)
}

// CompatibleWith reports whether two histograms share a binning.
func (h *H1D) CompatibleWith(o *H1D) bool {
	return h.NBins == o.NBins && h.Lo == o.Lo && h.Hi == o.Hi
}

// Add merges another histogram with the same binning into h.
func (h *H1D) Add(o *H1D) error {
	if !h.CompatibleWith(o) {
		return ErrIncompatible
	}
	for i := range h.SumW {
		h.SumW[i] += o.SumW[i]
		h.SumW2[i] += o.SumW2[i]
	}
	h.Under += o.Under
	h.Over += o.Over
	h.Entries += o.Entries
	h.sumWX += o.sumWX
	h.sumWX2 += o.sumWX2
	h.sumWAll += o.sumWAll
	return nil
}

// Clone returns a deep copy.
func (h *H1D) Clone() *H1D {
	c := *h
	c.SumW = append([]float64(nil), h.SumW...)
	c.SumW2 = append([]float64(nil), h.SumW2...)
	return &c
}

// Values returns a copy of the bin contents, the form the χ² comparators
// consume.
func (h *H1D) Values() []float64 { return append([]float64(nil), h.SumW...) }

// Errors returns per-bin statistical uncertainties.
func (h *H1D) Errors() []float64 {
	out := make([]float64, h.NBins)
	for i := range out {
		out[i] = h.BinError(i)
	}
	return out
}

// H2D is a two-dimensional histogram with uniform binning, used for
// efficiency grids over model-parameter planes (the Les Houches /
// SUSY-scan use case).
type H2D struct {
	Name       string
	Title      string
	NX, NY     int
	XLo, XHi   float64
	YLo, YHi   float64
	SumW       []float64 // row-major: iy*NX + ix
	SumW2      []float64
	OutOfRange float64
	Entries    int64
}

// NewH2D returns an empty 2D histogram. It panics on invalid binning.
func NewH2D(name string, nx int, xlo, xhi float64, ny int, ylo, yhi float64) *H2D {
	if nx <= 0 || ny <= 0 || xhi <= xlo || yhi <= ylo {
		panic(fmt.Sprintf("hist: invalid 2D binning %q", name))
	}
	return &H2D{
		Name: name, NX: nx, NY: ny,
		XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		SumW:  make([]float64, nx*ny),
		SumW2: make([]float64, nx*ny),
	}
}

// FillW adds an entry at (x, y) with weight w; out-of-range entries
// accumulate in OutOfRange.
func (h *H2D) FillW(x, y, w float64) {
	h.Entries++
	if math.IsNaN(x) || math.IsNaN(y) ||
		x < h.XLo || x >= h.XHi || y < h.YLo || y >= h.YHi {
		h.OutOfRange += w
		return
	}
	ix := int(float64(h.NX) * (x - h.XLo) / (h.XHi - h.XLo))
	iy := int(float64(h.NY) * (y - h.YLo) / (h.YHi - h.YLo))
	if ix >= h.NX {
		ix = h.NX - 1
	}
	if iy >= h.NY {
		iy = h.NY - 1
	}
	idx := iy*h.NX + ix
	h.SumW[idx] += w
	h.SumW2[idx] += w * w
}

// Fill adds a unit-weight entry at (x, y).
func (h *H2D) Fill(x, y float64) { h.FillW(x, y, 1) }

// At returns the content of bin (ix, iy).
func (h *H2D) At(ix, iy int) float64 { return h.SumW[iy*h.NX+ix] }

// Integral returns the total in-range weight.
func (h *H2D) Integral() float64 {
	s := 0.0
	for _, w := range h.SumW {
		s += w
	}
	return s
}

// XCenter returns the x centre of column ix; YCenter the y centre of row iy.
func (h *H2D) XCenter(ix int) float64 {
	return h.XLo + (float64(ix)+0.5)*(h.XHi-h.XLo)/float64(h.NX)
}

// YCenter returns the y centre of row iy.
func (h *H2D) YCenter(iy int) float64 {
	return h.YLo + (float64(iy)+0.5)*(h.YHi-h.YLo)/float64(h.NY)
}

// Add merges another 2D histogram with identical binning.
func (h *H2D) Add(o *H2D) error {
	if h.NX != o.NX || h.NY != o.NY || h.XLo != o.XLo || h.XHi != o.XHi ||
		h.YLo != o.YLo || h.YHi != o.YHi {
		return ErrIncompatible
	}
	for i := range h.SumW {
		h.SumW[i] += o.SumW[i]
		h.SumW2[i] += o.SumW2[i]
	}
	h.OutOfRange += o.OutOfRange
	h.Entries += o.Entries
	return nil
}
