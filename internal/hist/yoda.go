package hist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The YODA-like text format: each histogram is a block
//
//	BEGIN DASPOS_H1D /name
//	Title=...
//	NBins=50 Lo=0 Hi=200
//	Under=0 Over=3 Entries=1204
//	# sumw sumw2
//	1.0 1.0
//	...
//	END DASPOS_H1D
//
// Values use %.17g so round-trips are bit-exact: an archived reference
// histogram re-read decades later must compare equal to the original.

const (
	h1dBegin = "BEGIN DASPOS_H1D"
	h1dEnd   = "END DASPOS_H1D"
)

// WriteH1D serializes one histogram to w in the archival text format.
func WriteH1D(w io.Writer, h *H1D) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s /%s\n", h1dBegin, h.Name)
	fmt.Fprintf(bw, "Title=%s\n", escapeLine(h.Title))
	fmt.Fprintf(bw, "NBins=%d Lo=%.17g Hi=%.17g\n", h.NBins, h.Lo, h.Hi)
	fmt.Fprintf(bw, "Under=%.17g Over=%.17g Entries=%d\n", h.Under, h.Over, h.Entries)
	fmt.Fprintf(bw, "Moments=%.17g %.17g %.17g\n", h.sumWX, h.sumWX2, h.sumWAll)
	fmt.Fprintln(bw, "# sumw sumw2")
	for i := range h.SumW {
		fmt.Fprintf(bw, "%.17g %.17g\n", h.SumW[i], h.SumW2[i])
	}
	fmt.Fprintln(bw, h1dEnd)
	return bw.Flush()
}

// WriteAll serializes several histograms back to back.
func WriteAll(w io.Writer, hs ...*H1D) error {
	for _, h := range hs {
		if err := WriteH1D(w, h); err != nil {
			return err
		}
	}
	return nil
}

func escapeLine(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

func unescapeLine(s string) string {
	s = strings.ReplaceAll(s, "\\n", "\n")
	return strings.ReplaceAll(s, "\\\\", "\\")
}

// ReadAll parses every histogram block in r. Unknown lines between blocks
// are ignored so the format can carry comments and future block types.
func ReadAll(r io.Reader) ([]*H1D, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var out []*H1D
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, h1dBegin) {
			continue
		}
		h, err := readBlock(sc, line)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func readBlock(sc *bufio.Scanner, header string) (*H1D, error) {
	name := strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(header, h1dBegin)), "/")
	h := &H1D{Name: name}
	bin := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == h1dEnd:
			if bin != h.NBins {
				return nil, fmt.Errorf("hist: block %q has %d rows, header says %d", name, bin, h.NBins)
			}
			return h, nil
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "Title="):
			h.Title = unescapeLine(strings.TrimPrefix(line, "Title="))
		case strings.HasPrefix(line, "NBins="):
			if _, err := fmt.Sscanf(line, "NBins=%d Lo=%g Hi=%g", &h.NBins, &h.Lo, &h.Hi); err != nil {
				return nil, fmt.Errorf("hist: bad binning line %q: %w", line, err)
			}
			if h.NBins <= 0 || h.Hi <= h.Lo {
				return nil, fmt.Errorf("hist: block %q has invalid binning", name)
			}
			h.SumW = make([]float64, h.NBins)
			h.SumW2 = make([]float64, h.NBins)
		case strings.HasPrefix(line, "Under="):
			if _, err := fmt.Sscanf(line, "Under=%g Over=%g Entries=%d", &h.Under, &h.Over, &h.Entries); err != nil {
				return nil, fmt.Errorf("hist: bad totals line %q: %w", line, err)
			}
		case strings.HasPrefix(line, "Moments="):
			if _, err := fmt.Sscanf(line, "Moments=%g %g %g", &h.sumWX, &h.sumWX2, &h.sumWAll); err != nil {
				return nil, fmt.Errorf("hist: bad moments line %q: %w", line, err)
			}
		default:
			if h.SumW == nil {
				return nil, fmt.Errorf("hist: data row before binning header in block %q", name)
			}
			if bin >= h.NBins {
				return nil, fmt.Errorf("hist: too many data rows in block %q", name)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("hist: bad data row %q in block %q", line, name)
			}
			w, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("hist: bad sumw in block %q: %w", name, err)
			}
			w2, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("hist: bad sumw2 in block %q: %w", name, err)
			}
			h.SumW[bin] = w
			h.SumW2[bin] = w2
			bin++
		}
	}
	return nil, fmt.Errorf("hist: unterminated block %q", name)
}
