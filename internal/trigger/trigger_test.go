package trigger

import (
	"strings"
	"testing"

	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/sim"
)

func simulate(t testing.TB, seed uint64, mk func(generator.Config) generator.Generator, n int) []*sim.Event {
	t.Helper()
	det := detector.Standard()
	fs := sim.NewFullSim(det, seed)
	g := mk(generator.DefaultConfig(seed))
	out := make([]*sim.Event, n)
	for i := range out {
		out[i] = fs.Simulate(g.Generate())
	}
	return out
}

func TestMenuValidate(t *testing.T) {
	if err := StandardMenu().Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Menu)) error {
		m := StandardMenu()
		f(m)
		return m.Validate()
	}
	if err := mutate(func(m *Menu) { m.Name = "" }); err == nil {
		t.Error("nameless menu validated")
	}
	if err := mutate(func(m *Menu) { m.Items = nil }); err == nil {
		t.Error("empty menu validated")
	}
	if err := mutate(func(m *Menu) { m.Items[0].Name = m.Items[1].Name }); err == nil {
		t.Error("duplicate item validated")
	}
	if err := mutate(func(m *Menu) { m.Items[0].Kind = "warp" }); err == nil {
		t.Error("unknown kind validated")
	}
	if err := mutate(func(m *Menu) { m.Items[0].Prescale = 0 }); err == nil {
		t.Error("zero prescale validated")
	}
	if err := mutate(func(m *Menu) { m.Items[0].Threshold = -5 }); err == nil {
		t.Error("negative threshold validated")
	}
	if err := mutate(func(m *Menu) {
		for i := 0; i < 70; i++ {
			m.Items = append(m.Items, Item{Name: strings.Repeat("x", i+1), Kind: KindJet, Prescale: 1})
		}
	}); err == nil {
		t.Error("65+ item menu validated")
	}
}

func TestMenuJSONRoundTrip(t *testing.T) {
	m := StandardMenu()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMenu(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Items) != len(m.Items) {
		t.Fatal("round trip changed menu")
	}
	if _, err := DecodeMenu([]byte("{bad")); err == nil {
		t.Fatal("garbage menu decoded")
	}
	if _, err := DecodeMenu([]byte(`{"name":"x","items":[{"name":"a","kind":"warp","prescale":1}]}`)); err == nil {
		t.Fatal("invalid menu decoded")
	}
}

func TestMuonTriggerFiresOnZEvents(t *testing.T) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(t, 1, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) }, 120)
	mu20, dimu := 0, 0
	for _, se := range events {
		d := trg.Evaluate(se)
		if d.Fired(trg.Menu(), "L1_MU20") {
			mu20++
		}
		if d.Fired(trg.Menu(), "L1_2MU5") {
			dimu++
		}
	}
	// Half the Z decays are dimuon with hard muons; both muon triggers
	// must fire often.
	if mu20 < 25 {
		t.Fatalf("L1_MU20 fired %d/120 on Z events", mu20)
	}
	if dimu < 20 {
		t.Fatalf("L1_2MU5 fired %d/120 on Z events", dimu)
	}
}

func TestEMTriggerFiresOnDiphoton(t *testing.T) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(t, 2, func(c generator.Config) generator.Generator { return generator.NewHiggsDiphoton(c) }, 80)
	em := 0
	for _, se := range events {
		if trg.Evaluate(se).Fired(trg.Menu(), "L1_EM25") {
			em++
		}
	}
	if em < 30 {
		t.Fatalf("L1_EM25 fired %d/80 on diphoton events", em)
	}
}

func TestMinBiasMostlyRejected(t *testing.T) {
	// The whole point of a trigger: soft events do not read out through
	// the unprescaled primaries.
	det := detector.Standard()
	menu := StandardMenu()
	// Drop the prescaled monitor so only primaries count.
	menu.Items = menu.Items[:5]
	trg := New(menu, det)
	events := simulate(t, 3, func(c generator.Config) generator.Generator { return generator.NewMinBias(c) }, 150)
	accepted := 0
	for _, se := range events {
		if trg.Evaluate(se).Accepted {
			accepted++
		}
	}
	if frac := float64(accepted) / 150; frac > 0.25 {
		t.Fatalf("min-bias accept fraction %v", frac)
	}
}

func TestJetTriggerFiresOnDijets(t *testing.T) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(t, 4, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) }, 100)
	jet := 0
	for _, se := range events {
		if trg.Evaluate(se).Fired(trg.Menu(), "L1_J80") {
			jet++
		}
	}
	if jet == 0 {
		t.Fatal("L1_J80 never fired on dijets")
	}
}

func TestPrescaleDeterministic(t *testing.T) {
	det := detector.Standard()
	run := func() []int {
		trg := New(StandardMenu(), det)
		events := simulate(t, 5, func(c generator.Config) generator.Generator { return generator.NewMinBias(c) }, 200)
		for _, se := range events {
			trg.Evaluate(se)
		}
		counts := make([]int, 0)
		for _, r := range trg.Rates() {
			counts = append(counts, r.Accepts)
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prescale counters not deterministic at item %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPrescaleReducesRate(t *testing.T) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(t, 6, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) }, 200)
	var rawSoft, keptSoft int
	idx := trg.Menu().ItemIndex("L1_MU3_PS")
	for _, se := range events {
		d := trg.Evaluate(se)
		if d.RawBits&(1<<uint(idx)) != 0 {
			rawSoft++
		}
		if d.Bits&(1<<uint(idx)) != 0 {
			keptSoft++
		}
	}
	if rawSoft == 0 {
		t.Fatal("soft muon item never fired raw")
	}
	// Prescale 50: the kept count must be close to raw/50.
	if keptSoft > rawSoft/25 {
		t.Fatalf("prescale ineffective: raw=%d kept=%d", rawSoft, keptSoft)
	}
}

func TestRatesTable(t *testing.T) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(t, 7, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) }, 50)
	for _, se := range events {
		trg.Evaluate(se)
	}
	rates := trg.Rates()
	if len(rates) != len(trg.Menu().Items) {
		t.Fatalf("rate rows: %d", len(rates))
	}
	if trg.Evaluated() != 50 {
		t.Fatalf("evaluated: %d", trg.Evaluated())
	}
	for _, r := range rates {
		if r.Fraction < 0 || r.Fraction > 1 {
			t.Fatalf("fraction %v for %s", r.Fraction, r.Item)
		}
	}
}

func TestNewPanicsOnInvalidMenu(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid menu accepted")
		}
	}()
	New(&Menu{}, detector.Standard())
}

func TestDecisionFiredUnknownItem(t *testing.T) {
	menu := StandardMenu()
	d := Decision{Bits: ^uint64(0)}
	if d.Fired(menu, "NOPE") {
		t.Fatal("unknown item fired")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	det := detector.Standard()
	trg := New(StandardMenu(), det)
	events := simulate(b, 1, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) }, 32)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = trg.Evaluate(events[i%len(events)])
	}
}
