// Package trigger implements the online event selection that gates the
// readout in every workflow the paper surveys: collision data only exists
// downstream because a trigger menu accepted it, so preserving an analysis
// faithfully means preserving the menu and its prescales alongside the
// data (the trigger configuration is among the "most important parts" the
// LHCb interview answer singles out).
//
// The trigger operates on level-1-style coarse quantities derived from the
// simulated detector response — muon-station stubs, calorimeter tower
// energies, energy sums — never on generator truth. Menus serialize to
// JSON; decisions are bit masks ordered by menu position, with
// deterministic prescale counters so a preserved run replays identically.
package trigger

import (
	"encoding/json"
	"fmt"
	"math"

	"daspos/internal/detector"
	"daspos/internal/fourvec"
	"daspos/internal/sim"
)

// Kind classifies trigger items.
type Kind string

// Item kinds.
const (
	// KindSingleMuon requires a muon-system stub with estimated pT above
	// threshold (GeV).
	KindSingleMuon Kind = "single-muon"
	// KindDiMuon requires two distinct stubs above threshold.
	KindDiMuon Kind = "di-muon"
	// KindSingleEM requires an ECal tower with ET above threshold.
	KindSingleEM Kind = "single-em"
	// KindJet requires any calorimeter tower with ET above threshold.
	KindJet Kind = "jet"
	// KindSumEt requires the scalar ET sum of all towers above threshold.
	KindSumEt Kind = "sum-et"
)

// Item is one line of a trigger menu.
type Item struct {
	Name      string  `json:"name"`
	Kind      Kind    `json:"kind"`
	Threshold float64 `json:"threshold_gev"`
	// Prescale keeps one of every N raw accepts; 1 keeps all. Zero is
	// invalid (a disabled item is removed from the menu, not prescaled to
	// zero, so archived menus state exactly what could fire).
	Prescale int `json:"prescale"`
}

// Menu is a complete, versioned trigger configuration.
type Menu struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Items   []Item `json:"items"`
}

// Validate checks menu invariants: non-empty, unique names, known kinds,
// positive prescales, at most 64 items (decisions are a uint64 mask).
func (m *Menu) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("trigger: menu without a name")
	}
	if len(m.Items) == 0 || len(m.Items) > 64 {
		return fmt.Errorf("trigger: menu %q has %d items (want 1-64)", m.Name, len(m.Items))
	}
	seen := make(map[string]bool, len(m.Items))
	for _, it := range m.Items {
		if it.Name == "" {
			return fmt.Errorf("trigger: menu %q has an unnamed item", m.Name)
		}
		if seen[it.Name] {
			return fmt.Errorf("trigger: menu %q duplicates item %q", m.Name, it.Name)
		}
		seen[it.Name] = true
		switch it.Kind {
		case KindSingleMuon, KindDiMuon, KindSingleEM, KindJet, KindSumEt:
		default:
			return fmt.Errorf("trigger: item %q has unknown kind %q", it.Name, it.Kind)
		}
		if it.Prescale < 1 {
			return fmt.Errorf("trigger: item %q has prescale %d", it.Name, it.Prescale)
		}
		if it.Threshold < 0 {
			return fmt.Errorf("trigger: item %q has negative threshold", it.Name)
		}
	}
	return nil
}

// Encode serializes the menu: the preservation artifact.
func (m *Menu) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// DecodeMenu parses and validates an archived menu.
func DecodeMenu(data []byte) (*Menu, error) {
	var m Menu
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("trigger: parsing menu: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ItemIndex returns the bit position of the named item, or -1.
func (m *Menu) ItemIndex(name string) int {
	for i, it := range m.Items {
		if it.Name == name {
			return i
		}
	}
	return -1
}

// StandardMenu returns the default physics menu: unprescaled primary
// triggers plus a prescaled soft muon for monitoring.
func StandardMenu() *Menu {
	return &Menu{
		Name:    "physics-2013",
		Version: "v4",
		Items: []Item{
			{Name: "L1_MU20", Kind: KindSingleMuon, Threshold: 20, Prescale: 1},
			{Name: "L1_2MU5", Kind: KindDiMuon, Threshold: 5, Prescale: 1},
			{Name: "L1_EM25", Kind: KindSingleEM, Threshold: 25, Prescale: 1},
			{Name: "L1_J80", Kind: KindJet, Threshold: 80, Prescale: 1},
			{Name: "L1_SUMET300", Kind: KindSumEt, Threshold: 300, Prescale: 1},
			{Name: "L1_MU3_PS", Kind: KindSingleMuon, Threshold: 3, Prescale: 50},
		},
	}
}

// Decision is one event's trigger outcome.
type Decision struct {
	// Bits has bit i set when menu item i fired after prescale.
	Bits uint64
	// RawBits has bit i set when item i fired before prescale.
	RawBits uint64
	// Accepted is true when any post-prescale bit is set: the event is
	// read out.
	Accepted bool
}

// Fired reports whether the named item passed (after prescale).
func (d Decision) Fired(menu *Menu, name string) bool {
	i := menu.ItemIndex(name)
	return i >= 0 && d.Bits&(1<<uint(i)) != 0
}

// Trigger evaluates a menu over simulated events. Prescale counters are
// per-item and deterministic; a Trigger instance represents one run's
// online state and is not safe for concurrent use.
type Trigger struct {
	menu     *Menu
	det      *detector.Detector
	counters []int
	// Counts accumulates per-item post-prescale accepts for rate tables.
	counts    []int
	evaluated int
}

// New returns a trigger for the menu over the given geometry. It panics on
// an invalid menu — menus are validated configuration, not runtime input.
func New(menu *Menu, det *detector.Detector) *Trigger {
	if err := menu.Validate(); err != nil {
		panic(err)
	}
	return &Trigger{
		menu: menu, det: det,
		counters: make([]int, len(menu.Items)),
		counts:   make([]int, len(menu.Items)),
	}
}

// Menu returns the trigger's menu.
func (t *Trigger) Menu() *Menu { return t.menu }

// Evaluate computes the decision for one simulated event.
func (t *Trigger) Evaluate(se *sim.Event) Decision {
	stubs := t.muonStubs(se)
	emMax, jetMax, sumEt := t.caloQuantities(se)
	var d Decision
	for i, it := range t.menu.Items {
		fired := false
		switch it.Kind {
		case KindSingleMuon:
			for _, pt := range stubs {
				if pt >= it.Threshold {
					fired = true
					break
				}
			}
		case KindDiMuon:
			n := 0
			for _, pt := range stubs {
				if pt >= it.Threshold {
					n++
				}
			}
			fired = n >= 2
		case KindSingleEM:
			fired = emMax >= it.Threshold
		case KindJet:
			fired = jetMax >= it.Threshold
		case KindSumEt:
			fired = sumEt >= it.Threshold
		}
		if !fired {
			continue
		}
		d.RawBits |= 1 << uint(i)
		t.counters[i]++
		if t.counters[i]%it.Prescale == 0 {
			d.Bits |= 1 << uint(i)
			t.counts[i]++
		}
	}
	d.Accepted = d.Bits != 0
	t.evaluated++
	return d
}

// muonStubs pairs hits across the two muon stations and estimates each
// stub's pT from the azimuthal bend between stations:
// Δφ ≈ 0.3·B·Δr / (2000·pT), inverted for pT.
func (t *Trigger) muonStubs(se *sim.Event) []float64 {
	muonLayers := t.det.LayersOf(detector.KindMuon)
	if len(muonLayers) < 2 {
		return nil
	}
	inner, outer := muonLayers[0], muonLayers[1]
	rIn := t.det.Layer(inner).Radius
	rOut := t.det.Layer(outer).Radius
	var innerHits, outerHits []sim.Hit
	for _, h := range se.MuonHits {
		switch h.Channel.Layer() {
		case inner:
			innerHits = append(innerHits, h)
		case outer:
			outerHits = append(outerHits, h)
		}
	}
	bendScale := 0.3 * t.det.BField * (rOut - rIn) / 2000 // GeV·rad
	var stubs []float64
	used := make([]bool, len(outerHits))
	for _, hi := range innerHits {
		bestJ, bestDPhi := -1, 0.3
		for j, ho := range outerHits {
			if used[j] {
				continue
			}
			// Stations must agree in z direction too.
			if (hi.Z > 0) != (ho.Z > 0) && math.Abs(hi.Z) > 500 {
				continue
			}
			dphi := math.Abs(fourvec.DeltaPhi(ho.Phi, hi.Phi))
			if dphi < bestDPhi {
				bestDPhi, bestJ = dphi, j
			}
		}
		if bestJ < 0 {
			continue
		}
		used[bestJ] = true
		pt := 200.0 // straighter than resolvable: saturate
		if bestDPhi > 1e-4 {
			pt = bendScale / bestDPhi
			if pt > 200 {
				pt = 200
			}
		}
		stubs = append(stubs, pt)
	}
	return stubs
}

// caloQuantities returns the highest ECal tower ET, the highest ET summed
// into a coarse jet region (the L1 jet window: ~0.5 rad in φ, ~1 unit of η
// equivalent in z), and the scalar ET sum.
func (t *Trigger) caloQuantities(se *sim.Event) (emMax, jetMax, sumEt float64) {
	const (
		nPhiRegions = 12
		nZRegions   = 10
	)
	type regionKey struct{ iphi, iz int }
	regions := make(map[regionKey]float64)
	for _, dep := range se.Deposits {
		li := dep.Channel.Layer()
		if li < 0 || li >= len(t.det.Layers) {
			continue
		}
		l := t.det.Layer(li)
		phi, z := l.CellCenter(dep.Channel.IPhi(), dep.Channel.IZ())
		theta := math.Atan2(l.Radius, z)
		et := dep.Energy * math.Sin(theta)
		sumEt += et
		if dep.EM && et > emMax {
			emMax = et
		}
		key := regionKey{
			iphi: int((phi + math.Pi) / (2 * math.Pi) * nPhiRegions),
			iz:   int((z + l.HalfLengthZ) / (2 * l.HalfLengthZ) * nZRegions),
		}
		regions[key] += et
	}
	for _, et := range regions {
		if et > jetMax {
			jetMax = et
		}
	}
	return emMax, jetMax, sumEt
}

// RateRow is one line of the rate table.
type RateRow struct {
	Item     string
	Prescale int
	Accepts  int
	// Fraction is accepts/evaluated.
	Fraction float64
}

// Rates returns the per-item accept statistics so far.
func (t *Trigger) Rates() []RateRow {
	out := make([]RateRow, len(t.menu.Items))
	for i, it := range t.menu.Items {
		frac := 0.0
		if t.evaluated > 0 {
			frac = float64(t.counts[i]) / float64(t.evaluated)
		}
		out[i] = RateRow{Item: it.Name, Prescale: it.Prescale, Accepts: t.counts[i], Fraction: frac}
	}
	return out
}

// Evaluated returns the number of events seen.
func (t *Trigger) Evaluated() int { return t.evaluated }
