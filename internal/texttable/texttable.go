// Package texttable renders aligned ASCII and Markdown tables. It is the
// presentation layer for every paper artifact DASPOS regenerates — Table 1
// (the outreach-infrastructure matrix), the Appendix-A maturity-rating
// tables, the data-sharing grid, and the tier-size and benchmark reports.
package texttable

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Align controls horizontal alignment of a column.
type Align int

const (
	// Left aligns cell text to the left edge (the default).
	Left Align = iota
	// Right aligns cell text to the right edge; use for numeric columns.
	Right
	// Center centers cell text.
	Center
)

// Table accumulates rows and renders them with aligned columns. The zero
// value is ready to use.
type Table struct {
	Title   string
	headers []string
	aligns  []Align
	rows    [][]string
	// MaxCellWidth wraps cells longer than this many runes; 0 disables
	// wrapping. Wrapping keeps wide qualitative matrices (Table 1) legible.
	MaxCellWidth int
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers, aligns: make([]Align, len(headers))}
}

// SetAlign sets the alignment for column i. Out-of-range columns are ignored.
func (t *Table) SetAlign(i int, a Align) *Table {
	if i >= 0 && i < len(t.aligns) {
		t.aligns[i] = a
	}
	return t
}

// AddRow appends a row. Cells are stringified with %v; missing cells render
// empty, extra cells are kept and widen the table.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// wrap splits s into lines of at most width runes, breaking on spaces where
// possible.
func wrap(s string, width int) []string {
	if width <= 0 || utf8.RuneCountInString(s) <= width {
		return []string{s}
	}
	var lines []string
	words := strings.Fields(s)
	if len(words) == 0 {
		return []string{s}
	}
	cur := words[0]
	for _, w := range words[1:] {
		if utf8.RuneCountInString(cur)+1+utf8.RuneCountInString(w) <= width {
			cur += " " + w
			continue
		}
		lines = append(lines, cur)
		cur = w
	}
	lines = append(lines, cur)
	// Hard-break any single word longer than width.
	var out []string
	for _, ln := range lines {
		for utf8.RuneCountInString(ln) > width {
			r := []rune(ln)
			out = append(out, string(r[:width]))
			ln = string(r[width:])
		}
		out = append(out, ln)
	}
	return out
}

// cellLines returns the wrapped lines of every cell in a row, normalized to
// the table's column count.
func (t *Table) cellLines(row []string, ncols int) [][]string {
	lines := make([][]string, ncols)
	for i := 0; i < ncols; i++ {
		var cell string
		if i < len(row) {
			cell = row[i]
		}
		lines[i] = wrap(cell, t.MaxCellWidth)
	}
	return lines
}

func (t *Table) ncols() int {
	n := len(t.headers)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

func pad(s string, width int, a Align) string {
	gap := width - utf8.RuneCountInString(s)
	if gap <= 0 {
		return s
	}
	switch a {
	case Right:
		return strings.Repeat(" ", gap) + s
	case Center:
		left := gap / 2
		return strings.Repeat(" ", left) + s + strings.Repeat(" ", gap-left)
	default:
		return s + strings.Repeat(" ", gap)
	}
}

func (t *Table) align(i int) Align {
	if i < len(t.aligns) {
		return t.aligns[i]
	}
	return Left
}

// String renders the table as an ASCII box drawing.
func (t *Table) String() string {
	ncols := t.ncols()
	if ncols == 0 {
		return ""
	}
	// Compute column widths over headers and wrapped cells.
	widths := make([]int, ncols)
	consider := func(row []string) {
		for i, lines := range t.cellLines(row, ncols) {
			for _, ln := range lines {
				if w := utf8.RuneCountInString(ln); w > widths[i] {
					widths[i] = w
				}
			}
		}
	}
	consider(t.headers)
	for _, r := range t.rows {
		consider(r)
	}

	var b strings.Builder
	sep := func() {
		b.WriteByte('+')
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}
	writeRow := func(row []string, aligned bool) {
		cl := t.cellLines(row, ncols)
		height := 1
		for _, lines := range cl {
			if len(lines) > height {
				height = len(lines)
			}
		}
		for h := 0; h < height; h++ {
			b.WriteByte('|')
			for i := 0; i < ncols; i++ {
				var cell string
				if h < len(cl[i]) {
					cell = cl[i][h]
				}
				a := Left
				if aligned {
					a = t.align(i)
				}
				b.WriteByte(' ')
				b.WriteString(pad(cell, widths[i], a))
				b.WriteString(" |")
			}
			b.WriteByte('\n')
		}
	}

	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	sep()
	if len(t.headers) > 0 {
		writeRow(t.headers, false)
		sep()
	}
	for _, r := range t.rows {
		writeRow(r, true)
	}
	sep()
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown. Cell wrapping is
// not applied; pipes inside cells are escaped.
func (t *Table) Markdown() string {
	ncols := t.ncols()
	if ncols == 0 {
		return ""
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteByte('|')
		for i := 0; i < ncols; i++ {
			var c string
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(esc(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.headers)
	b.WriteByte('|')
	for i := 0; i < ncols; i++ {
		switch t.align(i) {
		case Right:
			b.WriteString("---:|")
		case Center:
			b.WriteString(":--:|")
		default:
			b.WriteString("---|")
		}
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		row(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style comma-separated values with a
// header row. Cells containing commas, quotes, or newlines are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	field := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(field(c))
		}
		b.WriteByte('\n')
	}
	row(t.headers)
	for _, r := range t.rows {
		row(r)
	}
	return b.String()
}
