package texttable

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
	"unicode/utf8"
)

func TestBasicRender(t *testing.T) {
	tb := New("Name", "Value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 22)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Fatalf("render missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 3 separators + header + 2 rows = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	width := utf8.RuneCountInString(lines[0])
	for i, ln := range lines {
		if utf8.RuneCountInString(ln) != width {
			t.Fatalf("line %d width %d != %d:\n%s", i, utf8.RuneCountInString(ln), width, out)
		}
	}
}

func TestTitle(t *testing.T) {
	tb := New("A")
	tb.Title = "Table 1. Outreach"
	tb.AddRow("x")
	if !strings.HasPrefix(tb.String(), "Table 1. Outreach\n") {
		t.Fatal("title not rendered first")
	}
}

func TestRightAlign(t *testing.T) {
	tb := New("N", "Count")
	tb.SetAlign(1, Right)
	tb.AddRow("a", 5)
	tb.AddRow("b", 12345)
	out := tb.String()
	if !strings.Contains(out, "|     5 |") {
		t.Fatalf("right alignment not applied:\n%s", out)
	}
}

func TestCenterAlign(t *testing.T) {
	tb := New("Wide Header", "X")
	tb.SetAlign(0, Center)
	tb.AddRow("m", "y")
	out := tb.String()
	if !strings.Contains(out, "|      m      |") {
		t.Fatalf("center alignment not applied:\n%s", out)
	}
}

func TestMissingAndExtraCells(t *testing.T) {
	tb := New("A", "B")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "z") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestWrapping(t *testing.T) {
	tb := New("Feature", "Detail")
	tb.MaxCellWidth = 10
	tb.AddRow("fmt", "a very long description that must wrap across lines")
	out := tb.String()
	for _, ln := range strings.Split(out, "\n") {
		if utf8.RuneCountInString(ln) > 40 {
			t.Fatalf("line too long after wrap: %q", ln)
		}
	}
	if !strings.Contains(out, "very") || !strings.Contains(out, "lines") {
		t.Fatalf("wrapped content lost:\n%s", out)
	}
}

func TestWrapHardBreak(t *testing.T) {
	lines := wrap("abcdefghijklmnop", 5)
	for _, ln := range lines {
		if utf8.RuneCountInString(ln) > 5 {
			t.Fatalf("hard break failed: %q", ln)
		}
	}
	if strings.Join(lines, "") != "abcdefghijklmnop" {
		t.Fatalf("hard break lost content: %v", lines)
	}
}

func TestWrapPreservesContent(t *testing.T) {
	// Property: wrapping never loses or reorders non-space characters.
	strip := func(s string) string {
		return strings.Map(func(r rune) rune {
			if unicode.IsSpace(r) {
				return -1
			}
			return r
		}, s)
	}
	if err := quick.Check(func(words []string, width uint8) bool {
		var clean []string
		for _, w := range words {
			if sw := strip(w); sw != "" {
				clean = append(clean, sw)
			}
		}
		s := strings.Join(clean, " ")
		w := int(width%40) + 1
		return strip(strings.Join(wrap(s, w), "")) == strip(s)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTable(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Fatal("empty table should render empty")
	}
	if tb.Markdown() != "" {
		t.Fatal("empty markdown should render empty")
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("A", "B")
	tb.SetAlign(1, Right)
	tb.AddRow("x|y", 3)
	md := tb.Markdown()
	if !strings.Contains(md, `x\|y`) {
		t.Fatalf("pipe not escaped:\n%s", md)
	}
	if !strings.Contains(md, "---:|") {
		t.Fatalf("right-align marker missing:\n%s", md)
	}
	if !strings.HasPrefix(md, "| A | B |") {
		t.Fatalf("header row malformed:\n%s", md)
	}
}

func TestCSV(t *testing.T) {
	tb := New("name", "note")
	tb.AddRow("a,b", `say "hi"`)
	tb.AddRow("plain", "x")
	csv := tb.CSV()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\nplain,x\n"
	if csv != want {
		t.Fatalf("csv mismatch:\n got %q\nwant %q", csv, want)
	}
}

func TestNumRows(t *testing.T) {
	tb := New("A")
	if tb.NumRows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tb.AddRow(1).AddRow(2)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows=%d", tb.NumRows())
	}
}
