package queryserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
)

// RecordStore is where cache misses go for record bodies. The archive
// satisfies it directly; tests and chaos drills wrap it with slow or
// counting stores to prove the cache and singleflight actually shield it.
type RecordStore interface {
	Get(id string) (*hepdata.Record, error)
}

// Config configures a Server.
type Config struct {
	// Archive is the HepData record archive (listing + default store).
	Archive *hepdata.Archive
	// Catalog is the dataset catalogue; nil serves records only.
	Catalog *catalog.Catalog
	// Store overrides where cache misses fetch record bodies; nil uses
	// Archive.
	Store RecordStore
	// CacheSize bounds the record cache in entries (0 = 4096).
	CacheSize int
	// DefaultPage and MaxPage bound listing/search page sizes
	// (0 = 100 / 1000).
	DefaultPage int
	MaxPage     int
}

// Stats is the serving tier's counter snapshot — the stage report of the
// read path.
type Stats struct {
	Records     int        `json:"records"`
	Datasets    int        `json:"datasets"`
	IndexDocs   int        `json:"index_docs"`
	IndexTerms  int        `json:"index_terms"`
	Lookups     uint64     `json:"lookups"`
	Searches    uint64     `json:"searches"`
	Pages       uint64     `json:"pages"`
	Exports     uint64     `json:"exports"`
	NotModified uint64     `json:"not_modified"`
	Published   uint64     `json:"published"`
	Cache       CacheStats `json:"cache"`
}

// Server is the read tier over the archive and catalogue: inverted-index
// search, cached conditional-GET record serving, keyset-paginated
// listings, and streamed multi-format export. Safe for concurrent use;
// publishes may interleave with serving.
type Server struct {
	archive *hepdata.Archive
	cat     *catalog.Catalog
	store   RecordStore
	idx     *Index
	cache   *Cache

	defaultPage, maxPage int

	lookups     atomic.Uint64
	searches    atomic.Uint64
	pages       atomic.Uint64
	exports     atomic.Uint64
	notModified atomic.Uint64
	published   atomic.Uint64
}

// NewServer builds the serving tier, rebuilding the index deterministically
// from the stores' current contents.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Archive == nil {
		return nil, fmt.Errorf("queryserve: Config.Archive is required")
	}
	idx, err := Rebuild(cfg.Archive, cfg.Catalog)
	if err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		store = cfg.Archive
	}
	dp := cfg.DefaultPage
	if dp <= 0 {
		dp = 100
	}
	mp := cfg.MaxPage
	if mp <= 0 {
		mp = 1000
	}
	return &Server{
		archive:     cfg.Archive,
		cat:         cfg.Catalog,
		store:       store,
		idx:         idx,
		cache:       NewCache(cfg.CacheSize),
		defaultPage: dp,
		maxPage:     mp,
	}, nil
}

// Index exposes the inverted index (read-mostly; used by benchmarks and
// the CLI status report).
func (s *Server) Index() *Index { return s.idx }

// PublishRecord validates, archives, and incrementally indexes a record.
func (s *Server) PublishRecord(r *hepdata.Record) (etag string, err error) {
	etag, err = RecordETag(r)
	if err != nil {
		return "", err
	}
	if err := s.archive.Submit(r); err != nil {
		return "", err
	}
	if err := s.idx.AddRecord(r, etag); err != nil {
		return "", err
	}
	s.published.Add(1)
	return etag, nil
}

// PublishDataset registers a dataset (creating it, adding its files, and
// closing it when marked closed) and indexes it.
func (s *Server) PublishDataset(d *catalog.Dataset) (etag string, err error) {
	if s.cat == nil {
		return "", fmt.Errorf("queryserve: no catalog configured")
	}
	create := *d
	create.Files = nil
	closed := d.Closed
	create.Closed = false
	if err := s.cat.Create(create); err != nil {
		return "", err
	}
	for _, f := range d.Files {
		if err := s.cat.AddFile(d.Name, f); err != nil {
			return "", err
		}
	}
	if closed {
		if err := s.cat.Close(d.Name); err != nil {
			return "", err
		}
	}
	stored, ok := s.cat.Get(d.Name)
	if !ok {
		return "", fmt.Errorf("queryserve: dataset %q vanished after create", d.Name)
	}
	etag, err = DatasetETag(&stored)
	if err != nil {
		return "", err
	}
	if err := s.idx.AddDataset(&stored, etag); err != nil {
		return "", err
	}
	s.published.Add(1)
	return etag, nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Records:     s.archive.Len(),
		IndexDocs:   s.idx.Docs(),
		IndexTerms:  s.idx.Terms(),
		Lookups:     s.lookups.Load(),
		Searches:    s.searches.Load(),
		Pages:       s.pages.Load(),
		Exports:     s.exports.Load(),
		NotModified: s.notModified.Load(),
		Published:   s.published.Load(),
		Cache:       s.cache.Stats(),
	}
	if s.cat != nil {
		st.Datasets = s.cat.Len()
	}
	return st
}

// Handler returns the HTTP API:
//
//	GET  /healthz                     liveness
//	GET  /status                      counter snapshot (JSON)
//	GET  /records                     search (?q=, ?mode=and|or) or keyset
//	                                  listing (?limit=, ?cursor=)
//	GET  /records/{id}                record JSON (cached, ETag/304)
//	GET  /records/{id}/export         streamed export (?format=json|csv|yaml)
//	GET  /records/{id}/tables/{table} one table, streamed (?format=)
//	GET  /export                      bulk export of a search result set
//	GET  /datasets                    search/listing (?q=, ?tier=, ?limit=, ?cursor=)
//	GET  /datasets/{name...}          dataset JSON (ETag/304)
//	POST /records                     publish a submission
//	POST /datasets                    publish a dataset
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /records", s.handleRecords)
	mux.HandleFunc("POST /records", s.handlePublishRecord)
	mux.HandleFunc("GET /records/{id}", s.handleRecord)
	mux.HandleFunc("GET /records/{id}/export", s.handleRecordExport)
	mux.HandleFunc("GET /records/{id}/tables/{table}", s.handleTable)
	mux.HandleFunc("GET /export", s.handleBulkExport)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /datasets", s.handlePublishDataset)
	mux.HandleFunc("GET /datasets/{name...}", s.handleDataset)
	return mux
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// pageParams reads limit and cursor.
func (s *Server) pageParams(r *http.Request) (limit int, cur Cursor, anchored bool, err error) {
	limit = s.defaultPage
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 1 {
			return 0, Cursor{}, false, fmt.Errorf("bad limit %q", ls)
		}
		if limit > s.maxPage {
			limit = s.maxPage
		}
	}
	cs := r.URL.Query().Get("cursor")
	if cs != "" {
		cur, err = DecodeCursor(cs)
		if err != nil {
			return 0, Cursor{}, false, err
		}
		anchored = true
	}
	return limit, cur, anchored, nil
}

// searchResult is one row of a search/listing response.
type searchResult struct {
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	ETag  string `json:"etag"`
	Title string `json:"title,omitempty"`
	Score int32  `json:"score,omitempty"`
}

// searchResponse is the /records and /datasets page document.
type searchResponse struct {
	Results    []searchResult `json:"results"`
	NextCursor string         `json:"next_cursor,omitempty"`
	// Total is the full match count for ranked searches; listings leave it
	// zero (the walk does not know the end until it gets there).
	Total int `json:"total,omitempty"`
}

// conditional writes the page/entity response honoring If-None-Match: on a
// validator match it answers 304 with the ETag header and not a single
// body byte.
func (s *Server) conditional(w http.ResponseWriter, r *http.Request, etag, contentType string, body func() error) {
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	if err := body(); err != nil {
		// Headers are gone; all we can do is abort the stream so the client
		// sees a truncated response instead of a clean EOF.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// handleRecords serves ranked search (?q=) and the keyset listing walk.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	s.serveIndex(w, r, KindRecord)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil {
		httpError(w, http.StatusNotFound, "no dataset catalog configured")
		return
	}
	// Tier/metadata filters compile to index terms, so a filtered listing
	// is just a field search.
	q := r.URL.Query().Get("q")
	if tier := r.URL.Query().Get("tier"); tier != "" {
		q += " tier:" + tier
	}
	for _, m := range r.URL.Query()["meta"] {
		q += " meta:" + m
	}
	r2 := r.Clone(r.Context())
	qv := r2.URL.Query()
	qv.Set("q", strings.TrimSpace(q))
	r2.URL.RawQuery = qv.Encode()
	s.serveIndex(w, r2, KindDataset)
}

// serveIndex is the shared search/listing path for one document kind.
func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request, kind DocKind) {
	limit, cur, anchored, err := s.pageParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query().Get("q")
	mode, err := ParseMode(r.URL.Query().Get("mode"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := searchResponse{Results: []searchResult{}}
	if terms := ParseQuery(q); len(terms) > 0 {
		s.searches.Add(1)
		hits := s.idx.Search(terms, mode, int(kind))
		resp.Total = len(hits)
		page, next := pageHits(hits, cur, limit, anchored)
		for _, h := range page {
			resp.Results = append(resp.Results, searchResult{
				Kind: h.Kind.String(), Key: h.Key, ETag: h.ETag, Title: h.Title, Score: h.Score,
			})
		}
		resp.NextCursor = next
	} else {
		s.pages.Add(1)
		var keys []string
		if kind == KindRecord {
			keys = s.archive.IDsAfter(cur.Key, limit)
		} else {
			keys = s.cat.NamesAfter(cur.Key, limit)
		}
		for _, k := range keys {
			res := searchResult{Kind: kind.String(), Key: k}
			if d, ok := s.idx.Lookup(k); ok {
				res.ETag, res.Title = d.ETag, d.Title
			}
			resp.Results = append(resp.Results, res)
		}
		if len(keys) == limit {
			resp.NextCursor = Cursor{Key: keys[len(keys)-1]}.Encode()
		}
	}
	// The page ETag digests the result identities (key + content etag), so
	// it revalidates exactly when the page's contents are unchanged.
	parts := []string{q, strconv.Itoa(int(mode)), kind.String(), strconv.Itoa(limit), cur.Key, strconv.Itoa(int(cur.Score)), resp.NextCursor}
	for _, res := range resp.Results {
		parts = append(parts, res.Key, res.ETag)
	}
	etag := DerivedETag("page", parts...)
	s.conditional(w, r, etag, "application/json", func() error {
		return json.NewEncoder(w).Encode(resp)
	})
}

// recordEntry loads a record body through the cache; one miss fills every
// concurrent waiter.
func (s *Server) recordEntry(id string) (Entry, error) {
	ent, _, err := s.cache.Get("rec:"+id, func() (Entry, error) {
		rec, err := s.store.Get(id)
		if err != nil {
			return Entry{}, err
		}
		body, err := hepdata.EncodeRecord(rec)
		if err != nil {
			return Entry{}, err
		}
		body = append(body, '\n')
		return Entry{ETag: digestETag(body[:len(body)-1]), Body: body}, nil
	})
	return ent, err
}

func statusForStoreErr(err error) int {
	if errors.Is(err, hepdata.ErrNoRecord) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	s.lookups.Add(1)
	id := r.PathValue("id")
	ent, err := s.recordEntry(id)
	if err != nil {
		httpError(w, statusForStoreErr(err), err.Error())
		return
	}
	s.conditional(w, r, ent.ETag, "application/json", func() error {
		_, werr := w.Write(ent.Body)
		return werr
	})
}

func (s *Server) handleRecordExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format, err := ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The export validator derives from the indexed content digest, so a
	// revalidation answers 304 without touching the store at all.
	doc, ok := s.idx.Lookup(id)
	if !ok || doc.Kind != KindRecord {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%v: %s", hepdata.ErrNoRecord, id))
		return
	}
	s.exports.Add(1)
	etag := DerivedETag(doc.ETag, "export", string(format))
	s.conditional(w, r, etag, format.ContentType(), func() error {
		rec, err := s.store.Get(id)
		if err != nil {
			return err
		}
		return StreamRecord(w, rec, format)
	})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id, table := r.PathValue("id"), r.PathValue("table")
	format, err := ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	doc, ok := s.idx.Lookup(id)
	if !ok || doc.Kind != KindRecord {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%v: %s", hepdata.ErrNoRecord, id))
		return
	}
	rec, err := s.store.Get(id)
	if err != nil {
		httpError(w, statusForStoreErr(err), err.Error())
		return
	}
	var tab *hepdata.Table
	for i := range rec.Tables {
		if rec.Tables[i].Name == table {
			tab = &rec.Tables[i]
			break
		}
	}
	if tab == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("record %s has no table %q", id, table))
		return
	}
	s.exports.Add(1)
	etag := DerivedETag(doc.ETag, "table", table, string(format))
	s.conditional(w, r, etag, format.ContentType(), func() error {
		return StreamTable(w, rec, tab, format)
	})
}

func (s *Server) handleBulkExport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	terms := ParseQuery(q)
	if len(terms) == 0 {
		httpError(w, http.StatusBadRequest, "bulk export needs a query (?q=)")
		return
	}
	mode, err := ParseMode(r.URL.Query().Get("mode"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	format, err := ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.exports.Add(1)
	hits := s.idx.Search(terms, mode, int(KindRecord))
	keys := make([]string, len(hits))
	parts := []string{q, strconv.Itoa(int(mode)), string(format)}
	for i, h := range hits {
		keys[i] = h.Key
		parts = append(parts, h.Key, h.ETag)
	}
	etag := DerivedETag("bulk", parts...)
	s.conditional(w, r, etag, format.ContentType(), func() error {
		// Records stream one at a time from the store; only the key list —
		// not the record set — is ever resident.
		return StreamRecords(w, keys, s.store.Get, format)
	})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	s.lookups.Add(1)
	if s.cat == nil {
		httpError(w, http.StatusNotFound, "no dataset catalog configured")
		return
	}
	name := "/" + r.PathValue("name")
	d, ok := s.cat.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%v: %s", catalog.ErrNoDataset, name))
		return
	}
	etag, err := DatasetETag(&d)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.conditional(w, r, etag, "application/json", func() error {
		return json.NewEncoder(w).Encode(&d)
	})
}

func (s *Server) handlePublishRecord(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r, 8<<20)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec, err := hepdata.DecodeRecord(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	etag, err := s.PublishRecord(rec)
	if err != nil {
		httpError(w, publishStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"key": rec.ID(), "etag": etag})
}

func (s *Server) handlePublishDataset(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil {
		httpError(w, http.StatusNotFound, "no dataset catalog configured")
		return
	}
	data, err := readBody(w, r, 8<<20)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var d catalog.Dataset
	if err := json.Unmarshal(data, &d); err != nil {
		httpError(w, http.StatusBadRequest, "malformed dataset: "+err.Error())
		return
	}
	etag, err := s.PublishDataset(&d)
	if err != nil {
		httpError(w, publishStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"key": d.Name, "etag": etag})
}

func publishStatus(err error) int {
	if strings.Contains(err.Error(), "already") {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	// MaxBytesReader (not a bare LimitReader) closes the connection on an
	// oversized body, so a client cannot stream an unbounded payload.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return data, nil
}
