package queryserve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"daspos/internal/hepdata"
)

func TestStreamRecordCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamRecord(&buf, testRecord(0), FormatCSV); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Pinned row order: comment header, column header, one row per point.
	if !strings.HasPrefix(lines[0], "# record ins1000000") {
		t.Fatalf("header: %q", lines[0])
	}
	var rows []string
	for _, l := range lines {
		if l != "" && !strings.HasPrefix(l, "#") {
			rows = append(rows, l)
		}
	}
	if rows[0] != "xlo,x,xhi,y,err_total" {
		t.Fatalf("columns: %q", rows[0])
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[1] != "0,5,10,12.5,0.4" {
		t.Fatalf("row 1: %q", rows[1])
	}
	// Point with no uncertainties exports err_total 0, not empty.
	if rows[2] != "10,15,20,3.25,0" {
		t.Fatalf("row 2: %q", rows[2])
	}
}

func TestStreamRecordYAML(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamRecord(&buf, testRecord(1), FormatYAML); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"record: ins1000001", "tables:", "- table: Table1", "reactions:", "- P P --> W+ X", "points:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("yaml missing %q in:\n%s", want, out)
		}
	}
	// Strings needing quoting are quoted: the headers carry brackets.
	if !strings.Contains(out, `x_header: "PT [GEV]"`) {
		t.Fatalf("bracketed header not quoted:\n%s", out)
	}
}

func TestStreamRecordJSONRoundTrips(t *testing.T) {
	r := testRecord(2)
	var buf bytes.Buffer
	if err := StreamRecord(&buf, r, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var back hepdata.Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("stream output is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.InspireID != r.InspireID || len(back.Tables) != len(r.Tables) {
		t.Fatalf("round trip: %+v", back)
	}
	if len(back.Tables[0].Points) != 2 {
		t.Fatalf("points lost: %+v", back.Tables[0])
	}
}

func TestStreamRecordsBulk(t *testing.T) {
	recs := map[string]*hepdata.Record{}
	var keys []string
	for i := 0; i < 3; i++ {
		r := testRecord(i)
		k := "ins" + r.InspireID
		recs[k] = r
		keys = append(keys, k)
	}
	fetched := 0
	get := func(key string) (*hepdata.Record, error) {
		fetched++
		return recs[key], nil
	}
	var buf bytes.Buffer
	if err := StreamRecords(&buf, keys, get, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if fetched != 3 {
		t.Fatalf("fetched %d", fetched)
	}
	var arr []hepdata.Record
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("bulk JSON invalid: %v", err)
	}
	if len(arr) != 3 || arr[0].InspireID != "1000000" {
		t.Fatalf("bulk: %+v", arr)
	}
	// Empty key set is a valid empty array, not an error.
	buf.Reset()
	if err := StreamRecords(&buf, nil, get, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty bulk: %q", buf.String())
	}
}

func TestExportEdgeCases(t *testing.T) {
	// Zero-width bin, asymmetric-only error, empty error list.
	r := &hepdata.Record{
		InspireID: "7",
		Title:     "edge",
		Tables: []hepdata.Table{{
			Name: "T",
			Points: []hepdata.Point{
				{X: 1, XLo: 1, XHi: 1, Y: 2, Errors: []hepdata.Uncertainty{{Label: "sys", Plus: 0.3, Minus: -0.1}}},
				{X: 2, XLo: 1.5, XHi: 2.5, Y: 0},
			},
		}},
	}
	for _, f := range []Format{FormatJSON, FormatCSV, FormatYAML} {
		var buf bytes.Buffer
		if err := StreamRecord(&buf, r, f); err != nil {
			t.Fatalf("format %s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s wrote nothing", f)
		}
	}
	var buf bytes.Buffer
	if err := StreamRecord(&buf, r, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,1,1,2,") {
		t.Fatalf("zero-width bin row missing:\n%s", buf.String())
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"": FormatJSON, "json": FormatJSON, "csv": FormatCSV, "yaml": FormatYAML} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestExportEndpoint(t *testing.T) {
	srv, cs := newTestServer(t, 3)
	h := srv.Handler()

	w := doReq(t, h, "GET", "/records/ins1000000/export?format=csv", nil)
	if w.Code != 200 {
		t.Fatalf("export: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("content type: %q", ct)
	}
	etag := w.Header().Get("ETag")
	if etag == "" {
		t.Fatal("export has no validator")
	}
	reads := cs.reads.Load()
	// Conditional export revalidates from the index alone: 304, no body,
	// and no store read.
	w304 := doReq(t, h, "GET", "/records/ins1000000/export?format=csv", map[string]string{"If-None-Match": etag})
	if w304.Code != 304 || w304.Body.Len() != 0 {
		t.Fatalf("export 304: %d (%d bytes)", w304.Code, w304.Body.Len())
	}
	if cs.reads.Load() != reads {
		t.Fatal("export revalidation touched the store")
	}
	// Formats carry distinct validators.
	wj := doReq(t, h, "GET", "/records/ins1000000/export?format=json", nil)
	if wj.Header().Get("ETag") == etag {
		t.Fatal("csv and json exports share a validator")
	}
	// Single-table export.
	wt := doReq(t, h, "GET", "/records/ins1000000/tables/Table1?format=csv", nil)
	if wt.Code != 200 || !strings.Contains(wt.Body.String(), "xlo,x,xhi,y,err_total") {
		t.Fatalf("table export: %d %s", wt.Code, wt.Body)
	}
	if wm := doReq(t, h, "GET", "/records/ins1000000/tables/Nope", nil); wm.Code != 404 {
		t.Fatalf("missing table: %d", wm.Code)
	}
	// Bulk export streams a valid JSON array of all matches.
	wb := doReq(t, h, "GET", "/export?q=boson&format=json", nil)
	if wb.Code != 200 {
		t.Fatalf("bulk export: %d %s", wb.Code, wb.Body)
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(wb.Body.Bytes(), &arr); err != nil {
		t.Fatalf("bulk body: %v", err)
	}
	if len(arr) != 3 {
		t.Fatalf("bulk export matched %d", len(arr))
	}
	if w := doReq(t, h, "GET", "/records/ins1000000/export?format=xml", nil); w.Code != 400 {
		t.Fatalf("bad format: %d", w.Code)
	}
}
