package queryserve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"daspos/internal/hepdata"
)

// Streamed export: every format writes row by row through a small buffered
// writer, so exporting a thousand-record result set holds one point in
// memory at a time, never the set. Row order is pinned — tables in record
// order, points in table order — because export bytes feed ETags and
// conditional GETs; a nondeterministic row order would make every
// revalidation a miss.

// Format is an export encoding.
type Format string

// The supported export formats.
const (
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
	FormatYAML Format = "yaml"
)

// ParseFormat reads a format query value; empty defaults to JSON.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case "", FormatJSON:
		return FormatJSON, nil
	case FormatCSV:
		return FormatCSV, nil
	case FormatYAML:
		return FormatYAML, nil
	}
	return FormatJSON, fmt.Errorf("queryserve: unknown format %q (want json|csv|yaml)", s)
}

// ContentType returns the response MIME type for the format.
func (f Format) ContentType() string {
	switch f {
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatYAML:
		return "text/plain; charset=utf-8"
	default:
		return "application/json"
	}
}

// exportWriter wraps the response in a buffer sized for row-at-a-time
// writes. Close flushes and reports the buffered-write error — the
// closecheck contract: a dropped Flush error is a silently truncated
// export.
type exportWriter struct {
	*bufio.Writer
}

func newExportWriter(w io.Writer) exportWriter {
	return exportWriter{bufio.NewWriterSize(w, 16<<10)}
}

func (e exportWriter) Close() error { return e.Flush() }

// StreamRecord writes one record in the given format.
func StreamRecord(w io.Writer, r *hepdata.Record, f Format) error {
	ew := newExportWriter(w)
	if err := writeRecord(ew, r, f, true, true); err != nil {
		return err
	}
	return ew.Close()
}

// StreamTable writes one table of a record in the given format.
func StreamTable(w io.Writer, r *hepdata.Record, t *hepdata.Table, f Format) error {
	ew := newExportWriter(w)
	var err error
	switch f {
	case FormatCSV:
		err = writeTableCSV(ew, r.ID(), t)
	case FormatYAML:
		err = writeTableYAML(ew, r.ID(), t, "")
	default:
		err = writeTableJSON(ew, t, "")
	}
	if err != nil {
		return err
	}
	return ew.Close()
}

// StreamRecords writes a whole result set, fetching each record through
// get as it is reached — the bulk-export path. Only one record is resident
// at a time; the JSON form frames the set as an array, CSV and YAML
// concatenate per-record sections.
func StreamRecords(w io.Writer, keys []string, get func(id string) (*hepdata.Record, error), f Format) error {
	ew := newExportWriter(w)
	if f == FormatJSON {
		open := "[\n"
		if len(keys) == 0 {
			open = "["
		}
		if _, err := ew.WriteString(open); err != nil {
			return err
		}
	}
	for i, key := range keys {
		r, err := get(key)
		if err != nil {
			return fmt.Errorf("queryserve: export %s: %w", key, err)
		}
		if f == FormatJSON && i > 0 {
			if _, err := ew.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := writeRecord(ew, r, f, i == 0, false); err != nil {
			return err
		}
	}
	if f == FormatJSON {
		closeBracket := "\n]\n"
		if len(keys) == 0 {
			closeBracket = "]\n"
		}
		if _, err := ew.WriteString(closeBracket); err != nil {
			return err
		}
	}
	return ew.Close()
}

// writeRecord writes one record body in the format. For JSON the record
// streams table by table and point by point (standalone selects a trailing
// newline; array elements get separators from the caller).
func writeRecord(ew exportWriter, r *hepdata.Record, f Format, first, standalone bool) error {
	switch f {
	case FormatCSV:
		if !first {
			if err := ew.WriteByte('\n'); err != nil {
				return err
			}
		}
		for i := range r.Tables {
			if i > 0 {
				if err := ew.WriteByte('\n'); err != nil {
					return err
				}
			}
			if err := writeTableCSV(ew, r.ID(), &r.Tables[i]); err != nil {
				return err
			}
		}
		return nil
	case FormatYAML:
		if _, err := fmt.Fprintf(ew, "- record: %s\n  inspire_url: %s\n  title: %s\n  collaboration: %s\n  year: %d\n  tables:\n",
			r.ID(), r.InspireURL(), yamlString(r.Title), yamlString(r.Collaboration), r.Year); err != nil {
			return err
		}
		for i := range r.Tables {
			if err := writeTableYAML(ew, "", &r.Tables[i], "    "); err != nil {
				return err
			}
		}
		return nil
	default:
		return writeRecordJSON(ew, r, standalone)
	}
}

// writeRecordJSON streams the record as JSON without marshalling the whole
// record at once: headers first, then each table, then each point.
func writeRecordJSON(ew exportWriter, r *hepdata.Record, standalone bool) error {
	head := struct {
		InspireID     string `json:"inspire_id"`
		InspireURL    string `json:"inspire_url"`
		Title         string `json:"title"`
		Collaboration string `json:"collaboration"`
		Year          int    `json:"year"`
		Abstract      string `json:"abstract,omitempty"`
	}{r.InspireID, r.InspireURL(), r.Title, r.Collaboration, r.Year, r.Abstract}
	hb, err := json.Marshal(head)
	if err != nil {
		return err
	}
	// Open the object with the header fields, then splice in the tables.
	if _, err := ew.Write(hb[:len(hb)-1]); err != nil {
		return err
	}
	if _, err := ew.WriteString(`,"tables":[`); err != nil {
		return err
	}
	for i := range r.Tables {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, err := ew.WriteString(sep); err != nil {
			return err
		}
		if err := writeTableJSON(ew, &r.Tables[i], ""); err != nil {
			return err
		}
	}
	if _, err := ew.WriteString("]}"); err != nil {
		return err
	}
	if standalone {
		return ew.WriteByte('\n')
	}
	return nil
}

// writeTableJSON streams one table: header object, then points one line at
// a time.
func writeTableJSON(ew exportWriter, t *hepdata.Table, _ string) error {
	head := struct {
		Name        string   `json:"name"`
		Description string   `json:"description,omitempty"`
		XHeader     string   `json:"x_header"`
		YHeader     string   `json:"y_header"`
		Reactions   []string `json:"reactions,omitempty"`
		Observables []string `json:"observables,omitempty"`
	}{t.Name, t.Description, t.XHeader, t.YHeader, t.Reactions, t.Observables}
	hb, err := json.Marshal(head)
	if err != nil {
		return err
	}
	if _, err := ew.Write(hb[:len(hb)-1]); err != nil {
		return err
	}
	if _, err := ew.WriteString(`,"points":[`); err != nil {
		return err
	}
	for i := range t.Points {
		if i > 0 {
			if err := ew.WriteByte(','); err != nil {
				return err
			}
		}
		pb, err := json.Marshal(&t.Points[i])
		if err != nil {
			return err
		}
		if _, err := ew.Write(pb); err != nil {
			return err
		}
	}
	_, err = ew.WriteString("]}")
	return err
}

// writeTableCSV streams one table as commented CSV, one row per point,
// with the quadrature total error column the HepData CSV convention uses.
func writeTableCSV(ew exportWriter, recordID string, t *hepdata.Table) error {
	if _, err := fmt.Fprintf(ew, "# record %s table %s\n# x: %s  y: %s\nxlo,x,xhi,y,err_total\n",
		recordID, t.Name, t.XHeader, t.YHeader); err != nil {
		return err
	}
	for i := range t.Points {
		p := &t.Points[i]
		if _, err := fmt.Fprintf(ew, "%g,%g,%g,%g,%g\n", p.XLo, p.X, p.XHi, p.Y, p.TotalError()); err != nil {
			return err
		}
	}
	return nil
}

// writeTableYAML streams one table as the YAML-like text form, indented
// for nesting under a record entry.
func writeTableYAML(ew exportWriter, recordID string, t *hepdata.Table, indent string) error {
	if recordID != "" {
		if _, err := fmt.Fprintf(ew, "record: %s\n", recordID); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(ew, "%s- table: %s\n%s  x_header: %s\n%s  y_header: %s\n",
		indent, yamlString(t.Name), indent, yamlString(t.XHeader), indent, yamlString(t.YHeader)); err != nil {
		return err
	}
	for _, list := range []struct {
		key    string
		values []string
	}{{"reactions", t.Reactions}, {"observables", t.Observables}} {
		if len(list.values) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(ew, "%s  %s:\n", indent, list.key); err != nil {
			return err
		}
		for _, v := range list.values {
			if _, err := fmt.Fprintf(ew, "%s    - %s\n", indent, yamlString(v)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(ew, "%s  points:\n", indent); err != nil {
		return err
	}
	for i := range t.Points {
		p := &t.Points[i]
		if _, err := fmt.Fprintf(ew, "%s    - {xlo: %s, x: %s, xhi: %s, y: %s, err: %s}\n",
			indent, yfloat(p.XLo), yfloat(p.X), yfloat(p.XHi), yfloat(p.Y), yfloat(p.TotalError())); err != nil {
			return err
		}
	}
	return nil
}

func yfloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// yamlString keeps the text form parseable: values containing
// YAML-hostile characters or edge whitespace get JSON quoting, which a
// YAML reader accepts unchanged.
func yamlString(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, ":#{}[]\"\n") || s[0] == ' ' || s[len(s)-1] == ' ' {
		b, _ := json.Marshal(s)
		return string(b)
	}
	return s
}
