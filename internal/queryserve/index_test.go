package queryserve

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
	"daspos/internal/xrand"
)

// testRecord builds a deterministic record; i varies the discovery
// surface so records are distinguishable by search.
func testRecord(i int) *hepdata.Record {
	reactions := []string{"P P --> Z0 X", "P P --> W+ X", "P P --> ZPRIME X", "P P --> H0 X"}
	observables := []string{"DSIG/DPT", "SIG", "EFF", "DSIG/DM"}
	collabs := []string{"DASPOS-GPD", "ATLAS", "CMS"}
	return &hepdata.Record{
		InspireID:     fmt.Sprintf("%07d", 1000000+i),
		Title:         fmt.Sprintf("Measurement %d of boson production", i),
		Collaboration: collabs[i%len(collabs)],
		Year:          2010 + i%10,
		Abstract:      "Differential cross sections at the LHC.",
		Tables: []hepdata.Table{{
			Name:        "Table1",
			XHeader:     "PT [GEV]",
			YHeader:     "DSIG/DPT [PB/GEV]",
			Reactions:   []string{reactions[i%len(reactions)]},
			Observables: []string{observables[i%len(observables)]},
			Points: []hepdata.Point{
				{X: 5, XLo: 0, XHi: 10, Y: 12.5, Errors: []hepdata.Uncertainty{{Label: "stat", Plus: 0.4, Minus: 0.4}}},
				{X: 15, XLo: 10, XHi: 20, Y: 3.25},
			},
		}},
	}
}

func testDataset(i int) *catalog.Dataset {
	tiers := []string{"RAW", "AOD", "SKIM"}
	return &catalog.Dataset{
		Name:              fmt.Sprintf("/mc/sample%02d/%s/v%d", i, tiers[i%3], 1+i%4),
		Tier:              tiers[i%3],
		ProcessingVersion: fmt.Sprintf("v%d", 1+i%4),
		Metadata:          map[string]string{"campaign": fmt.Sprintf("mc%d", 20+i%3)},
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Measurement of the Z-boson PT at 7 TeV (2013)!")
	want := []string{"measurement", "of", "the", "boson", "pt", "at", "tev", "2013"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens %v want %v", got, want)
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("empty input tokenized to %v", toks)
	}
}

func TestParseQuery(t *testing.T) {
	terms := ParseQuery("reaction:PP-->Z0X boson obs:SIG meta:campaign=mc23 tier:AOD")
	want := []string{"meta:campaign=mc23", "obs:sig", "reaction:pp-->z0x", "t:boson", "tier:aod"}
	if !reflect.DeepEqual(terms, want) {
		t.Fatalf("terms %v want %v", terms, want)
	}
	if got := ParseQuery(""); len(got) != 0 {
		t.Fatalf("empty query parsed to %v", got)
	}
}

func TestSearchAndOr(t *testing.T) {
	x := NewIndex()
	for i := 0; i < 12; i++ {
		r := testRecord(i)
		etag, err := RecordETag(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := x.AddRecord(r, etag); err != nil {
			t.Fatal(err)
		}
	}
	// reaction cycles with period 4: records 2, 6, 10 carry ZPRIME.
	hits := x.Search(ParseQuery("reaction:PP-->ZPRIMEX"), And, -1)
	if len(hits) != 3 {
		t.Fatalf("zprime hits: %d", len(hits))
	}
	for i, want := range []string{"ins1000002", "ins1000006", "ins1000010"} {
		if hits[i].Key != want {
			t.Fatalf("hit %d = %s want %s (order must be deterministic)", i, hits[i].Key, want)
		}
	}
	// AND with a term nothing matches is empty.
	if got := x.Search(ParseQuery("reaction:PP-->ZPRIMEX warpdrive"), And, -1); len(got) != 0 {
		t.Fatalf("impossible AND matched %d", len(got))
	}
	// OR unions and ranks multi-term matches above single-term ones:
	// record 2 matches both the reaction field term and the year.
	or := x.Search(ParseQuery("reaction:PP-->ZPRIMEX year:2012"), Or, -1)
	if len(or) != 3 {
		t.Fatalf("or hits: %d", len(or))
	}
	if or[0].Key != "ins1000002" || or[0].Score <= or[1].Score {
		t.Fatalf("ranking: %+v", or)
	}
}

func TestSearchKindFilter(t *testing.T) {
	x := NewIndex()
	r := testRecord(0)
	etag, _ := RecordETag(r)
	if err := x.AddRecord(r, etag); err != nil {
		t.Fatal(err)
	}
	d := testDataset(0)
	de, _ := DatasetETag(d)
	if err := x.AddDataset(d, de); err != nil {
		t.Fatal(err)
	}
	// "mc" appears only in the dataset path; kind filters partition.
	if got := x.Search(ParseQuery("tier:RAW"), And, int(KindRecord)); len(got) != 0 {
		t.Fatalf("record-kind search matched dataset: %+v", got)
	}
	if got := x.Search(ParseQuery("tier:RAW"), And, int(KindDataset)); len(got) != 1 {
		t.Fatalf("dataset search: %+v", got)
	}
	if _, ok := x.Lookup("ins1000000"); !ok {
		t.Fatal("lookup missed")
	}
	if err := x.AddRecord(r, etag); err == nil {
		t.Fatal("duplicate index add accepted")
	}
}

// TestRebuildDeterministic pins the index rebuild contract: two rebuilds
// from the same stores dump byte-identically, and an index grown publish
// by publish in arbitrary order answers every query the same way.
func TestRebuildDeterministic(t *testing.T) {
	archive := hepdata.NewArchive()
	cat := catalog.New()
	var queries [][]string
	for i := 0; i < 20; i++ {
		if err := archive.Submit(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		d := testDataset(i)
		if err := cat.Create(*d); err != nil {
			t.Fatal(err)
		}
		queries = append(queries,
			ParseQuery("inspire:"+testRecord(i).InspireID),
			ParseQuery("tier:"+d.Tier),
			ParseQuery("boson measurement"),
		)
	}
	x1, err := Rebuild(archive, cat)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Rebuild(archive, cat)
	if err != nil {
		t.Fatal(err)
	}
	var d1, d2 bytes.Buffer
	if err := x1.Dump(&d1); err != nil {
		t.Fatal(err)
	}
	if err := x2.Dump(&d2); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Fatal("two rebuilds dumped differently")
	}

	// Incremental build in shuffled publish order.
	inc := NewIndex()
	order := xrand.New(7).Perm(20)
	for _, i := range order {
		r := testRecord(i)
		etag, _ := RecordETag(r)
		if err := inc.AddRecord(r, etag); err != nil {
			t.Fatal(err)
		}
		d := testDataset(i)
		de, _ := DatasetETag(d)
		if err := inc.AddDataset(d, de); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		for _, mode := range []Mode{And, Or} {
			a := x1.Search(q, mode, -1)
			b := inc.Search(q, mode, -1)
			if len(a) != len(b) {
				t.Fatalf("query %v mode %d: rebuild %d hits, incremental %d", q, mode, len(a), len(b))
			}
			for i := range a {
				if a[i].Key != b[i].Key || a[i].Score != b[i].Score || a[i].ETag != b[i].ETag {
					t.Fatalf("query %v hit %d: rebuild %+v incremental %+v", q, i, a[i], b[i])
				}
			}
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Score: 7, Key: "ins123"}, {Score: -1, Key: "/mc/a/AOD/v1"}} {
		got, err := DecodeCursor(c.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip %+v -> %+v", c, got)
		}
	}
	if _, err := DecodeCursor("!!not-base64!!"); err == nil {
		t.Fatal("garbage cursor decoded")
	}
	if _, err := DecodeCursor("djk"); err == nil { // valid base64, wrong layout
		t.Fatal("malformed cursor decoded")
	}
	// Cursor ordering: after means strictly later in (score desc, key asc).
	c := Cursor{Score: 5, Key: "m"}
	if c.After(5, "m") || c.After(5, "a") || c.After(6, "z") {
		t.Fatal("After admitted non-later positions")
	}
	if !c.After(5, "n") || !c.After(4, "a") {
		t.Fatal("After rejected later positions")
	}
}

func TestETagStability(t *testing.T) {
	r := testRecord(3)
	e1, err := RecordETag(r)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := RecordETag(testRecord(3))
	if e1 != e2 {
		t.Fatal("identical content produced different ETags")
	}
	if !strings.HasPrefix(e1, `"`) || !strings.HasSuffix(e1, `"`) {
		t.Fatalf("ETag not quoted: %s", e1)
	}
	mut := testRecord(3)
	mut.Title += "!"
	e3, _ := RecordETag(mut)
	if e3 == e1 {
		t.Fatal("content change kept the ETag")
	}
	if DerivedETag(e1, "export", "csv") == DerivedETag(e1, "export", "json") {
		t.Fatal("derivation params did not split the ETag")
	}
	if !etagMatches(e1, e1) || !etagMatches("*", e1) || !etagMatches(`W/`+e1+`, "zz"`, e1) {
		t.Fatal("etagMatches rejected a valid validator")
	}
	if etagMatches(`"other"`, e1) || etagMatches("", e1) {
		t.Fatal("etagMatches accepted a stale validator")
	}
}
