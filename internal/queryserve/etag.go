package queryserve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
)

// ETags are derived from content digests, never from mtimes or serving
// state: the ETag of a record is the sha256 of its canonical submission
// JSON, so it is identical on every node serving the same archived bytes,
// survives restarts and rebuilds, and changes exactly when the content
// does. Derived resources (exports, search pages) extend the content
// digest with the parameters that shape the response, so a format or query
// change busts caches while a re-request of the same bytes revalidates.

// RecordETag digests a record's canonical submission encoding.
func RecordETag(r *hepdata.Record) (string, error) {
	data, err := hepdata.EncodeRecord(r)
	if err != nil {
		return "", fmt.Errorf("queryserve: etag for %s: %w", r.ID(), err)
	}
	return digestETag(data), nil
}

// DatasetETag digests a dataset's canonical JSON encoding. encoding/json
// emits map keys in sorted order, so the metadata map cannot perturb the
// digest.
func DatasetETag(d *catalog.Dataset) (string, error) {
	data, err := json.Marshal(d)
	if err != nil {
		return "", fmt.Errorf("queryserve: etag for dataset %s: %w", d.Name, err)
	}
	return digestETag(data), nil
}

// DerivedETag extends a content ETag with the parameters of a derived
// response (an export format, a search shape), producing a new strong
// validator that changes when either the content or the derivation does.
func DerivedETag(base string, params ...string) string {
	h := sha256.New()
	h.Write([]byte(strings.Trim(base, `"`)))
	for _, p := range params {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return quoteDigest(h.Sum(nil))
}

func digestETag(data []byte) string {
	sum := sha256.Sum256(data)
	return quoteDigest(sum[:])
}

// quoteDigest renders a strong ETag: the first 16 digest bytes, hex, in
// the RFC 9110 quoted form.
func quoteDigest(sum []byte) string {
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatches implements the If-None-Match comparison: a literal "*"
// matches any current representation, otherwise any listed validator must
// equal the current one (weak prefixes are ignored for the byte-serving
// GET case).
func etagMatches(header, current string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		part = strings.TrimPrefix(part, "W/")
		if part == current {
			return true
		}
	}
	return false
}
