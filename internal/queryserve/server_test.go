package queryserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
)

// countingStore counts reads through to the archive and can hold them
// open, so tests can prove what the cache absorbed.
type countingStore struct {
	inner RecordStore
	reads atomic.Int64
	gate  chan struct{} // when non-nil, every read blocks until closed
}

func (c *countingStore) Get(id string) (*hepdata.Record, error) {
	c.reads.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.inner.Get(id)
}

func newTestServer(t *testing.T, nrecords int) (*Server, *countingStore) {
	t.Helper()
	archive := hepdata.NewArchive()
	cat := catalog.New()
	cs := &countingStore{inner: archive}
	srv, err := NewServer(Config{Archive: archive, Catalog: cat, Store: cs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nrecords; i++ {
		if _, err := srv.PublishRecord(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	return srv, cs
}

func doReq(t *testing.T, h http.Handler, method, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRecordConditionalGet(t *testing.T) {
	srv, cs := newTestServer(t, 4)
	h := srv.Handler()

	w := doReq(t, h, "GET", "/records/ins1000002", nil)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	etag := w.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("etag %q", etag)
	}
	var rec hepdata.Record
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.InspireID != "1000002" {
		t.Fatalf("record: %+v", rec)
	}

	// Conditional revalidation: 304, ETag echoed, zero body bytes.
	w304 := doReq(t, h, "GET", "/records/ins1000002", map[string]string{"If-None-Match": etag})
	if w304.Code != http.StatusNotModified {
		t.Fatalf("status %d", w304.Code)
	}
	if w304.Body.Len() != 0 {
		t.Fatalf("304 wrote %d body bytes", w304.Body.Len())
	}
	if w304.Header().Get("ETag") != etag {
		t.Fatal("304 lost the validator")
	}
	// A stale validator serves the full body again.
	wStale := doReq(t, h, "GET", "/records/ins1000002", map[string]string{"If-None-Match": `"stale"`})
	if wStale.Code != 200 || wStale.Body.Len() == 0 {
		t.Fatalf("stale revalidation: %d", wStale.Code)
	}
	// The two full bodies came from one store read: the second was a cache hit.
	if got := cs.reads.Load(); got != 1 {
		t.Fatalf("store reads: %d, want 1", got)
	}
	if srv.Stats().NotModified != 1 || srv.Stats().Cache.Hits < 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}

	if w := doReq(t, h, "GET", "/records/ins999", nil); w.Code != 404 {
		t.Fatalf("missing record: %d", w.Code)
	}
}

// TestStampedeSingleStoreRead is the acceptance-criteria stampede proof at
// the serving layer: N concurrent cold requests for one record perform
// exactly one store read, and every caller gets the full body.
func TestStampedeSingleStoreRead(t *testing.T) {
	srv, cs := newTestServer(t, 2)
	cs.gate = make(chan struct{})
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	bodies := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hts.URL + "/records/ins1000001")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var rec hepdata.Record
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				errs <- err
				return
			}
			bodies <- len(rec.Tables)
		}()
	}
	// Wait until the one fill is in flight and the rest have coalesced
	// behind it, then open the gate.
	for srv.Stats().Cache.Coalesced < n-1 {
		if cs.reads.Load() > 1 {
			t.Fatalf("multiple store reads in flight: %d", cs.reads.Load())
		}
	}
	close(cs.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := cs.reads.Load(); got != 1 {
		t.Fatalf("stampede of %d requests performed %d store reads, want exactly 1", n, got)
	}
	for i := 0; i < n; i++ {
		if nt := <-bodies; nt != 1 {
			t.Fatalf("caller %d saw %d tables", i, nt)
		}
	}
	st := srv.Stats()
	if st.Cache.Misses != 1 || st.Cache.Coalesced != n-1 {
		t.Fatalf("cache stats: %+v", st.Cache)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 12)
	h := srv.Handler()

	w := doReq(t, h, "GET", "/records?q=reaction:PP-->ZPRIMEX", nil)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 3 || len(resp.Results) != 3 {
		t.Fatalf("resp: %+v", resp)
	}
	if resp.Results[0].Key != "ins1000002" || resp.Results[0].ETag == "" {
		t.Fatalf("first hit: %+v", resp.Results[0])
	}
	// The page revalidates.
	etag := w.Header().Get("ETag")
	if w304 := doReq(t, h, "GET", "/records?q=reaction:PP-->ZPRIMEX", map[string]string{"If-None-Match": etag}); w304.Code != 304 || w304.Body.Len() != 0 {
		t.Fatalf("search 304: %d (%d bytes)", w304.Code, w304.Body.Len())
	}
	// Publishing a matching record changes the page ETag.
	extra := testRecord(14) // 14%4 == 2 -> ZPRIME reaction
	if _, err := srv.PublishRecord(extra); err != nil {
		t.Fatal(err)
	}
	if w2 := doReq(t, h, "GET", "/records?q=reaction:PP-->ZPRIMEX", map[string]string{"If-None-Match": etag}); w2.Code != 200 {
		t.Fatalf("stale search page served 304")
	}

	if w := doReq(t, h, "GET", "/records?q=zz&mode=bogus", nil); w.Code != 400 {
		t.Fatalf("bad mode: %d", w.Code)
	}
	if w := doReq(t, h, "GET", "/records?cursor=@@", nil); w.Code != 400 {
		t.Fatalf("bad cursor: %d", w.Code)
	}
}

func TestDatasetEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	for i := 0; i < 6; i++ {
		if _, err := srv.PublishDataset(testDataset(i)); err != nil {
			t.Fatal(err)
		}
	}
	h := srv.Handler()

	w := doReq(t, h, "GET", "/datasets?tier=AOD", nil)
	var resp searchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 { // i%3==1 -> AOD: datasets 1, 4
		t.Fatalf("AOD datasets: %+v", resp)
	}
	for _, res := range resp.Results {
		if res.Kind != "dataset" {
			t.Fatalf("kind: %+v", res)
		}
	}

	name := resp.Results[0].Key
	wd := doReq(t, h, "GET", "/datasets"+name, nil)
	if wd.Code != 200 {
		t.Fatalf("dataset get: %d %s", wd.Code, wd.Body)
	}
	var ds catalog.Dataset
	if err := json.Unmarshal(wd.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if ds.Name != name || ds.Tier != "AOD" {
		t.Fatalf("dataset: %+v", ds)
	}
	etag := wd.Header().Get("ETag")
	if w304 := doReq(t, h, "GET", "/datasets"+name, map[string]string{"If-None-Match": etag}); w304.Code != 304 || w304.Body.Len() != 0 {
		t.Fatalf("dataset 304: %d", w304.Code)
	}
	if w := doReq(t, h, "GET", "/datasets/mc/nope/AOD/v1", nil); w.Code != 404 {
		t.Fatalf("missing dataset: %d", w.Code)
	}
	// Metadata filter.
	wm := doReq(t, h, "GET", "/datasets?meta=campaign=mc21", nil)
	var mresp searchResponse
	if err := json.Unmarshal(wm.Body.Bytes(), &mresp); err != nil {
		t.Fatal(err)
	}
	if len(mresp.Results) != 2 { // i%3==1 -> mc21: datasets 1, 4
		t.Fatalf("meta filter: %+v", mresp)
	}
}

func TestPublishEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	body, err := hepdata.EncodeRecord(testRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hts.URL+"/records", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("publish status: %d", resp.StatusCode)
	}
	var pub map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	if pub["key"] != "ins1000000" || pub["etag"] == "" {
		t.Fatalf("publish response: %+v", pub)
	}
	// Duplicate is a conflict.
	resp2, err := http.Post(hts.URL+"/records", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 409 {
		t.Fatalf("duplicate publish: %d", resp2.StatusCode)
	}
	// Published record is immediately searchable and fetchable.
	w := doReq(t, srv.Handler(), "GET", "/records?q=inspire:1000000", nil)
	var sr searchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Total != 1 || sr.Results[0].ETag != pub["etag"] {
		t.Fatalf("post-publish search: %+v", sr)
	}

	dsBody, _ := json.Marshal(testDataset(2))
	resp3, err := http.Post(hts.URL+"/datasets", "application/json", strings.NewReader(string(dsBody)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 201 {
		t.Fatalf("dataset publish: %d", resp3.StatusCode)
	}
}

func TestStatusAndHealth(t *testing.T) {
	srv, _ := newTestServer(t, 3)
	h := srv.Handler()
	if w := doReq(t, h, "GET", "/healthz", nil); w.Code != 200 {
		t.Fatalf("healthz: %d", w.Code)
	}
	doReq(t, h, "GET", "/records/ins1000000", nil)
	doReq(t, h, "GET", "/records?q=boson", nil)
	w := doReq(t, h, "GET", "/status", nil)
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.IndexDocs != 3 || st.Lookups != 1 || st.Searches != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
