package queryserve

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Entry is one cached representation: the response body and the strong
// ETag that validates it. Entries are immutable once cached — the body
// slice is shared between all readers and must not be written.
type Entry struct {
	ETag string
	Body []byte
}

// CacheStats is the cache's counter snapshot for the stage report.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
}

// Cache is a sharded LRU with singleflight request coalescing: one miss
// runs the fill while every concurrent request for the same key waits on
// that one result, so a stampede onto a cold key costs exactly one store
// read. Sharding keeps the hot-path lock narrow — a lookup takes one
// shard's mutex for a map probe and two list splices.
type Cache struct {
	shards    []cacheShard
	perShard  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

const cacheShards = 16

// NewCache returns a cache bounded to capacity entries (rounded up to one
// per shard; capacity <= 0 selects a 4096-entry default).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + cacheShards - 1) / cacheShards
	c := &Cache{shards: make([]cacheShard, cacheShards), perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheNode)
		c.shards[i].inflight = make(map[string]*flight)
	}
	return c
}

type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*cacheNode
	inflight map[string]*flight
	// head is the most recently used node, tail the eviction candidate.
	head, tail *cacheNode
}

type cacheNode struct {
	key        string
	val        Entry
	prev, next *cacheNode
}

// flight is one in-progress fill; waiters block on done.
type flight struct {
	done chan struct{}
	val  Entry
	err  error
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the cached entry for key, running fill on a miss. Every
// concurrent Get for the same missing key waits for the single fill in
// flight and shares its result (counted as coalesced). A failed fill
// caches nothing; the error fans out to all waiters and the next Get
// retries. The returned hit flag reports whether the entry came from
// cache (true for coalesced waiters too: they consumed no store read).
func (c *Cache) Get(key string, fill func() (Entry, error)) (Entry, bool, error) {
	s := c.shard(key)
	s.mu.Lock()
	if n, ok := s.entries[key]; ok {
		s.moveFront(n)
		v := n.val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = fill()

	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		s.insert(key, f.val, c.perShard, &c.evictions)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Peek returns the entry without filling or promoting — for tests and the
// status endpoint.
func (c *Cache) Peek(key string) (Entry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return n.val, true
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// insert stores a filled entry, evicting from the cold end over capacity.
// Caller holds the shard lock.
func (s *cacheShard) insert(key string, val Entry, capacity int, evictions *atomic.Uint64) {
	if n, ok := s.entries[key]; ok { // lost a benign race: keep the newer value
		n.val = val
		s.moveFront(n)
		return
	}
	n := &cacheNode{key: key, val: val}
	s.entries[key] = n
	s.pushFront(n)
	for len(s.entries) > capacity && s.tail != nil {
		cold := s.tail
		s.unlink(cold)
		delete(s.entries, cold.key)
		evictions.Add(1)
	}
}

func (s *cacheShard) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *cacheShard) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *cacheShard) moveFront(n *cacheNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}
