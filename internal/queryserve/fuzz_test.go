package queryserve

import (
	"strings"
	"testing"

	"daspos/internal/hepdata"
)

// FuzzIndexSearchRoundTrip publishes a record built from fuzzed strings
// and checks the index round-trip invariant: every term the indexer
// derived from the record finds it again, in both AND and OR mode, and
// the hit carries the publish-time ETag.
func FuzzIndexSearchRoundTrip(f *testing.F) {
	f.Add("1234567", "Search for exotic resonances", "ATLAS", "P P --> ZPRIME X", "DSIG/DPT", 2015)
	f.Add("1", "", "", "", "", 0)
	f.Add("9999999", "Ünïcode & symbols: ++--", "DASPOS-GPD", "E+ E- --> HADRONS", "SIG", 1999)
	f.Add("42", strings.Repeat("boson ", 50), "CMS", "", "", 2030)
	f.Fuzz(func(t *testing.T, inspire, title, collab, reaction, obs string, year int) {
		if inspire == "" || strings.ContainsAny(inspire, " \x00") {
			t.Skip()
		}
		rec := &hepdata.Record{
			InspireID:     inspire,
			Title:         title,
			Collaboration: collab,
			Year:          year,
			Tables: []hepdata.Table{{
				Name:   "T1",
				Points: []hepdata.Point{{X: 1, Y: 2}},
			}},
		}
		if reaction != "" {
			rec.Tables[0].Reactions = []string{reaction}
		}
		if obs != "" {
			rec.Tables[0].Observables = []string{obs}
		}
		etag, err := RecordETag(rec)
		if err != nil {
			t.Skip() // records json.Marshal rejects aren't indexable
		}
		x := NewIndex()
		if err := x.AddRecord(rec, etag); err != nil {
			t.Fatalf("AddRecord: %v", err)
		}
		key := "ins" + inspire
		doc, ok := x.Lookup(key)
		if !ok {
			t.Fatalf("published record %q not in index", key)
		}
		if doc.ETag != etag {
			t.Fatalf("index ETag %q != publish ETag %q", doc.ETag, etag)
		}
		for _, term := range recordTerms(rec) {
			for _, mode := range []Mode{And, Or} {
				hits := x.Search([]string{term}, mode, -1)
				found := false
				for _, h := range hits {
					if h.Key == key {
						if h.ETag != etag {
							t.Fatalf("term %q: hit ETag mismatch", term)
						}
						found = true
					}
				}
				if !found {
					t.Fatalf("term %q derived from record but search missed it (mode %d)", term, mode)
				}
			}
		}
		// A term the record cannot contain never matches it alone.
		if hits := x.Search([]string{"t:zzzznothere"}, And, -1); len(hits) != 0 {
			t.Fatalf("phantom term matched: %+v", hits)
		}
	})
}
