package queryserve

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// Cursors implement keyset pagination: a cursor names the last result of
// the previous page by rank position — (score, key) for ranked search,
// (0, key) for key-ordered listings — never an offset. The next page is
// "everything strictly after that position", so pages stay stable while
// the corpus grows: documents are immutable and scores content-derived,
// which means a concurrent publish can only insert new positions, never
// move existing ones, and a walk sees every pre-existing document exactly
// once. The encoded form is opaque to clients and versioned so a future
// layout change can reject stale cursors loudly instead of misreading
// them.

// Cursor is a decoded pagination anchor.
type Cursor struct {
	Score int32
	Key   string
}

const cursorV1 = "v1"

// Encode renders the cursor in its opaque wire form.
func (c Cursor) Encode() string {
	raw := cursorV1 + "\x00" + strconv.FormatInt(int64(c.Score), 10) + "\x00" + c.Key
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// DecodeCursor parses a wire cursor; empty input is the zero anchor
// (start from the top).
func DecodeCursor(s string) (Cursor, error) {
	if s == "" {
		return Cursor{}, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Cursor{}, fmt.Errorf("queryserve: undecodable cursor: %w", err)
	}
	parts := strings.SplitN(string(raw), "\x00", 3)
	if len(parts) != 3 || parts[0] != cursorV1 {
		return Cursor{}, fmt.Errorf("queryserve: malformed cursor")
	}
	score, err := strconv.ParseInt(parts[1], 10, 32)
	if err != nil {
		return Cursor{}, fmt.Errorf("queryserve: malformed cursor score: %w", err)
	}
	return Cursor{Score: int32(score), Key: parts[2]}, nil
}

// After reports whether a hit at (score, key) sorts strictly after the
// cursor in result order (score desc, key asc).
func (c Cursor) After(score int32, key string) bool {
	if score != c.Score {
		return score < c.Score
	}
	return key > c.Key
}

// pageHits applies the cursor and page size to a ranked result list,
// returning the page and the next cursor ("" when the walk is done).
func pageHits(hits []Hit, cur Cursor, limit int, anchored bool) ([]Hit, string) {
	start := 0
	if anchored {
		// Binary search would need the full ordering relation; the list is
		// already sorted by (score desc, key asc), so scan to the first hit
		// after the anchor. Pages are bounded, result lists modest; the scan
		// is linear in results, not corpus.
		for start < len(hits) && !cur.After(hits[start].Score, hits[start].Key) {
			start++
		}
	}
	end := len(hits)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page := hits[start:end]
	next := ""
	if end < len(hits) && len(page) > 0 {
		last := page[len(page)-1]
		next = Cursor{Score: last.Score, Key: last.Key}.Encode()
	}
	return page, next
}
