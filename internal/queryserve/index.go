// Package queryserve is the read tier of the archive: the serving layer
// HEPData-style traffic lands on. It holds an inverted index with sorted
// posting lists over HepData records and catalogue datasets (search by
// reaction, observable, INSPIRE id, keyword, tier, version, metadata), a
// sharded LRU cache with singleflight request coalescing in front of the
// record store, and an HTTP API with conditional GETs (ETags derived from
// content digests), streamed multi-format export, and keyset pagination
// whose cursors stay stable under concurrent publishes.
package queryserve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
)

// DocKind distinguishes the two document classes the index serves.
type DocKind uint8

// The document kinds.
const (
	KindRecord DocKind = iota
	KindDataset
)

// String renders the kind for listings and cursors.
func (k DocKind) String() string {
	if k == KindDataset {
		return "dataset"
	}
	return "record"
}

// Doc is one indexed document: a HepData record or a catalogue dataset.
// The index stores only the discovery surface — key, content ETag, and a
// display title — never the body; bodies come from the record store
// through the cache.
type Doc struct {
	Kind  DocKind `json:"kind"`
	Key   string  `json:"key"`
	ETag  string  `json:"etag"`
	Title string  `json:"title,omitempty"`
}

// Hit is one ranked search result.
type Hit struct {
	Doc
	// Score ranks the hit: the sum of rarity weights of the query terms it
	// matched. Ties order by key, so a result page is total-ordered and a
	// cursor anchored on (score, key) is unambiguous.
	Score int32
}

// Mode selects the query combinator.
type Mode uint8

// The query modes: And requires every term, Or any.
const (
	And Mode = iota
	Or
)

// ParseMode reads a query-string mode value; empty defaults to And.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "and":
		return And, nil
	case "or":
		return Or, nil
	}
	return And, fmt.Errorf("queryserve: unknown mode %q (want and|or)", s)
}

// Index is the inverted index: for every term, the sorted list of internal
// doc ids that contain it. It is safe for concurrent use; searches run
// under a shared lock while publishes append. Doc ids are assigned in
// publish order, so posting lists stay sorted by construction — appending
// a new document only ever appends to lists.
type Index struct {
	mu       sync.RWMutex
	docs     []Doc
	byKey    map[string]int32
	postings map[string][]int32
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byKey:    make(map[string]int32),
		postings: make(map[string][]int32),
	}
}

// Docs returns the number of indexed documents.
func (x *Index) Docs() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.docs)
}

// Terms returns the number of distinct terms.
func (x *Index) Terms() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.postings)
}

// Tokenize lowercases the text and splits it into alphanumeric runs,
// dropping single-character fragments. It is the one tokenizer for both
// indexing and query parsing, so a term always round-trips: anything
// Tokenize emits at publish time, a query containing the same text
// searches for.
func Tokenize(s string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			if i-start > 1 {
				out = append(out, lower[start:i])
			}
			start = -1
		}
	}
	if start >= 0 && len(lower)-start > 1 {
		out = append(out, lower[start:])
	}
	return out
}

// canon collapses a field value to its exact-match form: lowercased with
// all whitespace removed, so "P P --> Z0 X" and "p p-->z0 x" name the same
// reaction term.
func canon(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), "")
}

// recordTerms derives the term set of a record. Field terms carry a
// namespace prefix ("reaction:", "obs:", "inspire:", "collab:", "year:");
// free text from the title, abstract, collaboration, table names, and
// reaction strings lands as bare tokens under "t:".
func recordTerms(r *hepdata.Record) []string {
	set := make(map[string]struct{})
	add := func(t string) {
		if t != "" {
			set[t] = struct{}{}
		}
	}
	addText := func(s string) {
		for _, tok := range Tokenize(s) {
			add("t:" + tok)
		}
	}
	add("inspire:" + strings.ToLower(r.InspireID))
	add("collab:" + canon(r.Collaboration))
	if r.Year != 0 {
		add("year:" + strconv.Itoa(r.Year))
	}
	addText(r.Title)
	addText(r.Abstract)
	addText(r.Collaboration)
	for i := range r.Tables {
		t := &r.Tables[i]
		addText(t.Name)
		for _, re := range t.Reactions {
			add("reaction:" + canon(re))
			addText(re)
		}
		for _, ob := range t.Observables {
			add("obs:" + canon(ob))
			addText(ob)
		}
	}
	return sortedTerms(set)
}

// datasetTerms derives the term set of a dataset: tier, processing
// version, conditions tag, parent, metadata key/value pairs, and the path
// segments of the dataset name as free tokens.
func datasetTerms(d *catalog.Dataset) []string {
	set := make(map[string]struct{})
	add := func(t string) {
		if t != "" {
			set[t] = struct{}{}
		}
	}
	add("tier:" + canon(d.Tier))
	if d.ProcessingVersion != "" {
		add("version:" + canon(d.ProcessingVersion))
	}
	if d.ConditionsTag != "" {
		add("conditions:" + canon(d.ConditionsTag))
	}
	if d.Parent != "" {
		add("parent:" + strings.ToLower(d.Parent))
	}
	for k, v := range d.Metadata {
		add("meta:" + canon(k) + "=" + canon(v))
	}
	for _, tok := range Tokenize(d.Name) {
		add("t:" + tok)
	}
	return sortedTerms(set)
}

func sortedTerms(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// AddRecord indexes a record under its content ETag. The record must not
// already be indexed.
func (x *Index) AddRecord(r *hepdata.Record, etag string) error {
	return x.add(Doc{Kind: KindRecord, Key: r.ID(), ETag: etag, Title: r.Title}, recordTerms(r))
}

// AddDataset indexes a dataset under its content ETag.
func (x *Index) AddDataset(d *catalog.Dataset, etag string) error {
	return x.add(Doc{Kind: KindDataset, Key: d.Name, ETag: etag, Title: d.Tier + " " + d.ProcessingVersion}, datasetTerms(d))
}

func (x *Index) add(doc Doc, terms []string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.byKey[doc.Key]; dup {
		return fmt.Errorf("queryserve: %s %q already indexed", doc.Kind, doc.Key)
	}
	id := int32(len(x.docs))
	x.docs = append(x.docs, doc)
	x.byKey[doc.Key] = id
	for _, t := range terms {
		x.postings[t] = append(x.postings[t], id)
	}
	return nil
}

// ParseQuery splits a query string into index terms. Whitespace-separated
// words that carry a field prefix ("reaction:p p-->z0 x" must be
// URL-encoded into one word; "tier:AOD", "meta:campaign=mc23") are kept as
// canonical field terms; everything else is tokenized into bare "t:"
// tokens. An empty result means "match nothing" for search — listings go
// through the keyset walk instead.
func ParseQuery(q string) []string {
	var terms []string
	for _, w := range strings.Fields(q) {
		if at := strings.IndexByte(w, ':'); at > 0 {
			field := strings.ToLower(w[:at])
			val := w[at+1:]
			switch field {
			case "inspire", "parent":
				terms = append(terms, field+":"+strings.ToLower(val))
				continue
			case "reaction", "obs", "collab", "tier", "version", "conditions", "year":
				terms = append(terms, field+":"+canon(val))
				continue
			case "meta":
				k, v, _ := strings.Cut(val, "=")
				terms = append(terms, "meta:"+canon(k)+"="+canon(v))
				continue
			}
		}
		for _, tok := range Tokenize(w) {
			terms = append(terms, "t:"+tok)
		}
	}
	sort.Strings(terms)
	return dedupeSorted(terms)
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// termWeight scores a matched term. Field terms (an exact reaction, an
// INSPIRE id, a tier) outrank free-text tokens. The weight depends only on
// the term itself — never on corpus statistics like document frequency —
// so a document's score for a fixed query is immutable once published,
// which is what keeps ranked-search pagination cursors stable while
// publishes land between pages.
func termWeight(t string) int32 {
	if strings.HasPrefix(t, "t:") {
		return 1
	}
	return 4
}

// Search runs the parsed terms through the index: And intersects the
// posting lists (galloping through the shortest), Or merges them counting
// matched weight. Results are ranked by (score desc, key asc) — a total
// order, so pagination cursors are unambiguous. kind restricts results to
// one document class; pass a negative value for both.
func (x *Index) Search(terms []string, mode Mode, kind int) []Hit {
	if len(terms) == 0 {
		return nil
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	var hits []Hit
	if mode == And {
		lists := make([][]int32, 0, len(terms))
		var score int32
		for _, t := range terms {
			p := x.postings[t]
			if len(p) == 0 {
				return nil // one empty list empties the intersection
			}
			score += termWeight(t)
			lists = append(lists, p)
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		for _, id := range intersect(lists) {
			hits = append(hits, Hit{Doc: x.docs[id], Score: score})
		}
	} else {
		scores := make(map[int32]int32)
		for _, t := range terms {
			p := x.postings[t]
			w := termWeight(t)
			for _, id := range p {
				scores[id] += w
			}
		}
		hits = make([]Hit, 0, len(scores))
		for id, s := range scores {
			hits = append(hits, Hit{Doc: x.docs[id], Score: s})
		}
	}
	if kind >= 0 {
		kept := hits[:0]
		for _, h := range hits {
			if h.Kind == DocKind(kind) {
				kept = append(kept, h)
			}
		}
		hits = kept
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Key < hits[j].Key
	})
	return hits
}

// intersect computes the intersection of sorted posting lists, seeded from
// the shortest list and advancing through the others by galloping binary
// search — sublinear in the long lists, which is where a big corpus spends
// its time.
func intersect(lists [][]int32) []int32 {
	out := append([]int32(nil), lists[0]...)
	for _, l := range lists[1:] {
		kept := out[:0]
		lo := 0
		for _, id := range out {
			at := lo + sort.Search(len(l)-lo, func(i int) bool { return l[lo+i] >= id })
			if at < len(l) && l[at] == id {
				kept = append(kept, id)
			}
			lo = at
			if lo >= len(l) {
				break
			}
		}
		out = kept
		if len(out) == 0 {
			break
		}
	}
	return out
}

// Lookup returns the indexed doc for a key.
func (x *Index) Lookup(key string) (Doc, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.byKey[key]
	if !ok {
		return Doc{}, false
	}
	return x.docs[id], true
}

// Rebuild constructs the index deterministically from the stores: records
// in sorted id order, then datasets in sorted name order. Two rebuilds
// over the same store contents produce byte-identical Dump output, and a
// rebuilt index answers every query identically to one grown publish by
// publish — the property the round-trip tests pin.
func Rebuild(archive *hepdata.Archive, cat *catalog.Catalog) (*Index, error) {
	x := NewIndex()
	if archive != nil {
		for _, id := range archive.IDs() {
			r, err := archive.Get(id)
			if err != nil {
				return nil, err
			}
			etag, err := RecordETag(r)
			if err != nil {
				return nil, err
			}
			if err := x.AddRecord(r, etag); err != nil {
				return nil, err
			}
		}
	}
	if cat != nil {
		for _, name := range cat.Names() {
			d, ok := cat.Get(name)
			if !ok {
				return nil, fmt.Errorf("queryserve: dataset %q vanished during rebuild", name)
			}
			etag, err := DatasetETag(&d)
			if err != nil {
				return nil, err
			}
			if err := x.AddDataset(&d, etag); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}

// Dump writes a deterministic textual image of the index — every doc in id
// order, every term in sorted order with its posting list — used to prove
// rebuild determinism and debug ranking.
func (x *Index) Dump(w io.Writer) error {
	x.mu.RLock()
	defer x.mu.RUnlock()
	for i, d := range x.docs {
		if _, err := fmt.Fprintf(w, "doc %d %s %s etag=%s\n", i, d.Kind, d.Key, d.ETag); err != nil {
			return err
		}
	}
	terms := make([]string, 0, len(x.postings))
	for t := range x.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		ids := x.postings[t]
		b := make([]string, len(ids))
		for i, id := range ids {
			b[i] = strconv.Itoa(int(id))
		}
		if _, err := fmt.Fprintf(w, "term %s -> %s\n", t, strings.Join(b, ",")); err != nil {
			return err
		}
	}
	return nil
}
