package queryserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func walkPages(t *testing.T, h http.Handler, base string, limit int) []string {
	t.Helper()
	var keys []string
	sep := "?"
	if strings.Contains(base, "?") {
		sep = "&"
	}
	cursor := ""
	for {
		target := fmt.Sprintf("%s%slimit=%d", base, sep, limit)
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		w := doReq(t, h, "GET", target, nil)
		if w.Code != 200 {
			t.Fatalf("page %q: status %d: %s", target, w.Code, w.Body)
		}
		var resp searchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		for _, r := range resp.Results {
			keys = append(keys, r.Key)
		}
		if resp.NextCursor == "" {
			return keys
		}
		cursor = resp.NextCursor
	}
}

func TestPaginationListing(t *testing.T) {
	srv, _ := newTestServer(t, 23)
	h := srv.Handler()
	keys := walkPages(t, h, "/records", 5)
	if len(keys) != 23 {
		t.Fatalf("walk returned %d keys", len(keys))
	}
	seen := map[string]bool{}
	prev := ""
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key %s returned twice", k)
		}
		seen[k] = true
		if k <= prev {
			t.Fatalf("listing out of order: %s after %s", k, prev)
		}
		prev = k
	}
}

func TestPaginationSearch(t *testing.T) {
	srv, _ := newTestServer(t, 30)
	h := srv.Handler()
	// Every record matches t:boson; page through the ranked results.
	keys := walkPages(t, h, "/records?q=boson", 7)
	if len(keys) != 30 {
		t.Fatalf("ranked walk returned %d keys", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("ranked walk repeated %s", k)
		}
		seen[k] = true
	}
	// A whole-set query in one page agrees with the paginated union.
	all := walkPages(t, h, "/records?q=boson", 100)
	if len(all) != 30 {
		t.Fatalf("single page: %d", len(all))
	}
	for i, k := range all {
		if keys[i] != k {
			t.Fatalf("page seams reordered results at %d: %s vs %s", i, keys[i], k)
		}
	}
}

// TestPaginationUnderConcurrentPublish is the acceptance-criteria walk: a
// paginated scan interleaved with publishes must return every record that
// existed before the walk started exactly once. Run with -race.
func TestPaginationUnderConcurrentPublish(t *testing.T) {
	const preexisting = 40
	srv, _ := newTestServer(t, preexisting)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	// Concurrent writer: a bounded burst of publishes interleaved with the
	// walks. Bounded, because every new key sorts after the walk cursor —
	// an unbounded writer would keep extending the tail the walk chases.
	const published = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 100+published; i++ {
			if _, err := srv.PublishRecord(testRecord(i)); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched()
		}
	}()

	walk := func(base string) map[string]int {
		counts := map[string]int{}
		sep := "?"
		if strings.Contains(base, "?") {
			sep = "&"
		}
		cursor := ""
		for {
			target := base + sep + "limit=3"
			if cursor != "" {
				target += "&cursor=" + cursor
			}
			resp, err := http.Get(hts.URL + target)
			if err != nil {
				t.Fatal(err)
			}
			var sr searchResponse
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range sr.Results {
				counts[r.Key]++
			}
			if sr.NextCursor == "" {
				return counts
			}
			cursor = sr.NextCursor
		}
	}

	listCounts := walk("/records")
	searchCounts := walk("/records?q=boson")
	wg.Wait()

	for i := 0; i < preexisting; i++ {
		id := "ins" + testRecord(i).InspireID
		if listCounts[id] != 1 {
			t.Fatalf("listing walk saw pre-existing %s %d times", id, listCounts[id])
		}
		if searchCounts[id] != 1 {
			t.Fatalf("search walk saw pre-existing %s %d times", id, searchCounts[id])
		}
	}
	for k, n := range listCounts {
		if n != 1 {
			t.Fatalf("listing walk repeated %s (%d times)", k, n)
		}
	}
	for k, n := range searchCounts {
		if n != 1 {
			t.Fatalf("search walk repeated %s (%d times)", k, n)
		}
	}
}
