package queryserve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	fills := 0
	get := func(key string) (Entry, bool) {
		ent, hit, err := c.Get(key, func() (Entry, error) {
			fills++
			return Entry{ETag: `"` + key + `"`, Body: []byte(key)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ent, hit
	}
	if _, hit := get("a"); hit {
		t.Fatal("cold get reported a hit")
	}
	if ent, hit := get("a"); !hit || string(ent.Body) != "a" {
		t.Fatalf("warm get: hit=%v body=%q", hit, ent.Body)
	}
	if fills != 1 {
		t.Fatalf("fills: %d", fills)
	}
	// Overflow one shard: keys colliding into the same shard evict LRU.
	var shardKeys []string
	target := c.shard("a")
	for i := 0; len(shardKeys) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == target {
			shardKeys = append(shardKeys, k)
		}
	}
	get(shardKeys[0])
	get(shardKeys[1]) // capacity 1 per shard: "a" and shardKeys[0] evicted
	if _, ok := c.Peek("a"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheFillErrorNotCached(t *testing.T) {
	c := NewCache(8)
	boom := errors.New("store down")
	if _, _, err := c.Get("k", func() (Entry, error) { return Entry{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err: %v", err)
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("failed fill got cached")
	}
	// Next get retries the fill.
	ent, _, err := c.Get("k", func() (Entry, error) { return Entry{Body: []byte("ok")}, nil })
	if err != nil || string(ent.Body) != "ok" {
		t.Fatalf("retry: %v %q", err, ent.Body)
	}
}

// TestCacheStampede is the singleflight proof at the cache layer: N
// concurrent misses on one key run exactly one fill; everyone else
// coalesces onto it.
func TestCacheStampede(t *testing.T) {
	c := NewCache(64)
	const n = 32
	var fills atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, _, err := c.Get("hot", func() (Entry, error) {
				fills.Add(1)
				<-release // hold the fill open so every goroutine piles up
				return Entry{ETag: `"h"`, Body: []byte("hot body")}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if string(ent.Body) != "hot body" {
				t.Errorf("body %q", ent.Body)
			}
		}()
	}
	// Let the herd arrive, then release the single fill.
	for c.Stats().Coalesced < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("stampede ran %d fills, want 1", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Fatalf("stats: %+v", st)
	}
}
