package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/node"
)

// seedBlobs pushes n distinct payloads through a store over the client
// and returns digest → payload.
func seedBlobs(t *testing.T, c *Client, n int) map[string][]byte {
	t.Helper()
	store := cas.NewStoreWith(c)
	out := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte(fmt.Sprintf("payload %02d ", i)), 64)
		d, err := store.Put(payload)
		if err != nil {
			t.Fatalf("seeding blob %d: %v", i, err)
		}
		out[d] = payload
	}
	return out
}

// assertFullyReplicated checks every digest has a verified copy on every
// owner.
func assertFullyReplicated(t *testing.T, tc *testCluster, c *Client, blobs map[string][]byte) {
	t.Helper()
	for d := range blobs {
		for _, id := range c.Owners(d) {
			comp, _, err := tc.nodeOf(t, id).Backend().GetBlob(d)
			if err != nil {
				t.Fatalf("owner %s missing %s: %v", id, d[:12], err)
			}
			if _, err := cas.DecodeBlob(d, comp); err != nil {
				t.Fatalf("owner %s holds corrupt %s: %v", id, d[:12], err)
			}
		}
	}
}

func TestSweepHealthyClusterConverges(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	blobs := seedBlobs(t, c, 20)

	rep, err := c.Sweep(context.Background())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if !rep.Converged() {
		t.Fatalf("healthy cluster did not read converged: %s", rep)
	}
	if rep.Digests != len(blobs) {
		t.Fatalf("sweep saw %d digests, want %d", rep.Digests, len(blobs))
	}
}

func TestSweepRepairsBitRot(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	blobs := seedBlobs(t, c, 15)

	// Rot one replica of five digests, on their first owners.
	rotted := 0
	for d := range blobs {
		if rotted == 5 {
			break
		}
		if err := tc.nodeOf(t, c.Owners(d)[0]).Corrupt(d); err != nil {
			t.Fatal(err)
		}
		rotted++
	}

	rep, err := c.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 5 {
		t.Fatalf("repaired %d replicas, want 5 (%s)", rep.Repaired, rep)
	}
	final, err := c.SweepUntilConverged(context.Background(), 5)
	if err != nil {
		t.Fatalf("convergence: %v (%s)", err, final)
	}
	assertFullyReplicated(t, tc, c, blobs)
}

func TestSweepRestoresLostNode(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	blobs := seedBlobs(t, c, 15)

	// Node 2 loses its disk: every blob it held is gone.
	lost := tc.nodes[2]
	held := len(lost.Backend().Digests())
	if held == 0 {
		t.Fatal("test premise broken: node 2 holds nothing")
	}
	for _, d := range lost.Backend().Digests() {
		lost.Backend().DeleteBlob(d)
	}

	final, err := c.SweepUntilConverged(context.Background(), 5)
	if err != nil {
		t.Fatalf("convergence after node wipe: %v (%s)", err, final)
	}
	assertFullyReplicated(t, tc, c, blobs)
	if got := len(lost.Backend().Digests()); got != held {
		t.Fatalf("wiped node re-replicated %d blobs, originally held %d", got, held)
	}
}

func TestSweepUnrecoverableWhenEveryCopyRots(t *testing.T) {
	tc := startCluster(t, 3)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	store := cas.NewStoreWith(c)
	d, err := store.Put(bytes.Repeat([]byte("last copy "), 64))
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range tc.nodes {
		if err := nd.Corrupt(d); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecoverable != 1 {
		t.Fatalf("unrecoverable = %d, want 1 (%s)", rep.Unrecoverable, rep)
	}
}

func TestJoinRebalancesOntoNewNode(t *testing.T) {
	tc := startCluster(t, 4)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	blobs := seedBlobs(t, c, 30)

	// A fifth node joins empty.
	nd := node.New("n4", cas.NewMemBackend())
	srv := httptest.NewServer(nd.Handler())
	t.Cleanup(srv.Close)
	tc.nodes = append(tc.nodes, nd)
	tc.servers = append(tc.servers, srv)
	tc.hosts = append(tc.hosts, srv.Listener.Addr().String())
	if err := c.AddNode(NodeInfo{ID: "n4", URL: srv.URL}); err != nil {
		t.Fatal(err)
	}

	final, err := c.SweepUntilConverged(context.Background(), 6)
	if err != nil {
		t.Fatalf("convergence after join: %v (%s)", err, final)
	}
	if got := len(nd.Backend().Digests()); got == 0 {
		t.Fatal("new node received nothing from rebalancing")
	}
	assertFullyReplicated(t, tc, c, blobs)

	// Copies stranded on former owners must have been trimmed: total
	// replicas across the cluster is exactly digests × RF.
	total := 0
	for _, n := range tc.nodes {
		total += len(n.Backend().Digests())
	}
	if total != len(blobs)*3 {
		t.Fatalf("cluster holds %d replicas, want %d (stranded copies not trimmed)", total, len(blobs)*3)
	}
}

func TestLeaveRestoresReplicationOnSurvivors(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	blobs := seedBlobs(t, c, 20)

	// Node 1 leaves the membership (its server keeps running, but it is
	// no longer part of the ring — a decommission, not a crash).
	c.RemoveNode("n1")
	tc.servers[1].Close()
	tc.nodes = append(tc.nodes[:1], tc.nodes[2:]...)
	tc.servers = append(tc.servers[:1], tc.servers[2:]...)
	tc.hosts = append(tc.hosts[:1], tc.hosts[2:]...)

	final, err := c.SweepUntilConverged(context.Background(), 6)
	if err != nil {
		t.Fatalf("convergence after leave: %v (%s)", err, final)
	}
	assertFullyReplicated(t, tc, c, blobs)
}

func TestSweepSkipsTrimWhileMemberUnreachable(t *testing.T) {
	tc := startCluster(t, 4)
	c := newClient(t, tc, Config{ReplicationFactor: 2})
	seedBlobs(t, c, 8)

	// Take one member down hard; the sweep must report it and must not
	// trim anything while the membership view is partial.
	tc.servers[3].Close()
	rep, err := c.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != "n3" {
		t.Fatalf("unreachable = %v, want [n3]", rep.Unreachable)
	}
	if rep.Removed != 0 {
		t.Fatalf("sweep trimmed %d copies with a member unreachable", rep.Removed)
	}
	if rep.Converged() {
		t.Fatal("sweep read converged with a member unreachable")
	}
}
