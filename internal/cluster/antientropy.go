package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"daspos/internal/cas"
)

// Anti-entropy: the background repair loop that makes the cluster
// converge back to full replication and 100% fixity after nodes die,
// partitions heal, or replicas rot. A sweep walks the digest keyspace in
// hex-prefix ranges, cross-checks fixity between the replicas of every
// digest (verification runs node-local, so a healthy cluster pays verdict
// traffic, not blob traffic), re-replicates every missing or corrupt copy
// from any healthy one, and — once a digest's owners are all healthy —
// trims copies stranded on non-owners by rebalancing.

// sweepRanges partitions the digest keyspace into the 16 hex-prefix
// ranges a sweep walks, each a half-open [start, end) pair (the last is
// unbounded above).
func sweepRanges() [][2]string {
	const hex = "0123456789abcdef"
	out := make([][2]string, 16)
	for i := 0; i < 16; i++ {
		start, end := "", ""
		if i > 0 {
			start = string(hex[i])
		}
		if i < 15 {
			end = string(hex[i+1])
		}
		out[i] = [2]string{start, end}
	}
	return out
}

// SweepReport summarizes one anti-entropy pass.
type SweepReport struct {
	// Digests is the size of the union keyspace this sweep saw.
	Digests int
	// Healthy counts digests whose whole replica set verified clean with
	// nothing to do.
	Healthy int
	// Repaired counts replica copies restored (missing re-replicated or
	// corrupt overwritten from a healthy copy).
	Repaired int
	// Removed counts stranded non-owner copies trimmed after their
	// digest's owners all verified healthy.
	Removed int
	// Unrecoverable counts digests with no healthy copy on any reachable
	// node — data loss unless an unreachable node still holds one.
	Unrecoverable int
	// Errors counts repair or verification attempts that failed this
	// pass (transient faults, unreachable owners); the next sweep tries
	// again.
	Errors int
	// Unreachable lists members that could not be listed, sorted.
	Unreachable []string
}

// Converged reports whether the pass proved the cluster fully replicated
// and fixity-clean: every member answered, every digest's replica set
// verified healthy, and the sweep changed nothing.
func (r SweepReport) Converged() bool {
	return len(r.Unreachable) == 0 &&
		r.Repaired == 0 && r.Removed == 0 &&
		r.Unrecoverable == 0 && r.Errors == 0 &&
		r.Healthy == r.Digests
}

// String renders the report for logs.
func (r SweepReport) String() string {
	return fmt.Sprintf("digests=%d healthy=%d repaired=%d removed=%d unrecoverable=%d errors=%d unreachable=%d",
		r.Digests, r.Healthy, r.Repaired, r.Removed, r.Unrecoverable, r.Errors, len(r.Unreachable))
}

// locate walks the keyspace ranges on every member and returns which
// nodes hold which digests, plus the members that could not be listed. It
// fails only when no member answered at all.
func (c *Client) locate(ctx context.Context) (map[string]map[string]bool, []string, error) {
	conns := c.allConns()
	located := make(map[string]map[string]bool)
	var unreachable []string
	reachable := 0
	for _, nc := range conns {
		ok := true
		var ds []string
		for _, rg := range sweepRanges() {
			page, err := c.listRange(ctx, nc, rg[0], rg[1])
			if err != nil {
				ok = false
				break
			}
			ds = append(ds, page...)
		}
		if !ok {
			unreachable = append(unreachable, nc.id)
			continue
		}
		reachable++
		for _, d := range ds {
			holders := located[d]
			if holders == nil {
				holders = make(map[string]bool)
				located[d] = holders
			}
			holders[nc.id] = true
		}
	}
	sort.Strings(unreachable)
	if reachable == 0 {
		return nil, unreachable, fmt.Errorf("cluster: sweep: no member reachable")
	}
	return located, unreachable, nil
}

// replicaState is one owner's verdict for one digest.
type replicaState int

const (
	replicaHealthy replicaState = iota
	replicaMissing
	replicaCorrupt
	replicaUnreachable
)

// inspect asks one owner for its verdict on one digest.
func (c *Client) inspect(ctx context.Context, nc *nodeConn, digest string) replicaState {
	v, err := c.verifyOn(ctx, nc, digest)
	switch {
	case err == nil && v.OK:
		return replicaHealthy
	case err == nil:
		return replicaCorrupt
	case errors.Is(err, cas.ErrNotFound):
		return replicaMissing
	default:
		return replicaUnreachable
	}
}

// Sweep runs one anti-entropy pass over the whole keyspace, fanning the
// per-digest work across workers. It returns the pass summary; the error
// is reserved for a sweep that could not even start (context dead, no
// member reachable).
func (c *Client) Sweep(ctx context.Context) (SweepReport, error) {
	var rep SweepReport
	located, unreachable, err := c.locate(ctx)
	if err != nil {
		return rep, err
	}
	rep.Unreachable = unreachable
	digests := make([]string, 0, len(located))
	for d := range located {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	rep.Digests = len(digests)
	// Trimming stranded copies is only safe when the whole membership
	// answered: an unreachable node may be the one holding the last good
	// replica of something.
	canRemove := len(unreachable) == 0

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > len(digests) {
		workers = len(digests)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	next := make(chan string)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for d := range next {
				local := c.sweepDigest(ctx, d, located[d], canRemove)
				mu.Lock()
				rep.Healthy += local.Healthy
				rep.Repaired += local.Repaired
				rep.Removed += local.Removed
				rep.Unrecoverable += local.Unrecoverable
				rep.Errors += local.Errors
				mu.Unlock()
			}
		}()
	}
feed:
	for _, d := range digests {
		select {
		case next <- d:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return rep, cerr
	}
	return rep, nil
}

// sweepDigest reconciles one digest's replica set. holders is the set of
// node IDs whose listings included the digest.
func (c *Client) sweepDigest(ctx context.Context, digest string, holders map[string]bool, canRemove bool) SweepReport {
	var rep SweepReport
	owners := c.ownerConns(digest)
	if len(owners) == 0 {
		rep.Errors++
		return rep
	}
	states := make([]replicaState, len(owners))
	blocked := false // an owner we could not interrogate
	var broken []*nodeConn
	srcOrder := make([]*nodeConn, 0, len(owners))
	for i, nc := range owners {
		states[i] = c.inspect(ctx, nc, digest)
		switch states[i] {
		case replicaHealthy:
			srcOrder = append(srcOrder, nc)
		case replicaMissing, replicaCorrupt:
			broken = append(broken, nc)
		case replicaUnreachable:
			blocked = true
		}
	}
	if len(broken) == 0 && !blocked {
		rep.Healthy++
		if canRemove {
			rep.merge(c.trimStrays(ctx, digest, holders, owners))
		}
		return rep
	}
	if blocked {
		rep.Errors++
	}
	if len(broken) == 0 {
		return rep
	}
	// No healthy owner: fall back to any non-owner still holding a copy
	// (stranded by an earlier membership) before declaring loss.
	if len(srcOrder) == 0 {
		ownerIDs := make(map[string]bool, len(owners))
		for _, nc := range owners {
			ownerIDs[nc.id] = true
		}
		for _, nc := range c.allConns() {
			if ownerIDs[nc.id] || !holders[nc.id] {
				continue
			}
			if c.inspect(ctx, nc, digest) == replicaHealthy {
				srcOrder = append(srcOrder, nc)
				break
			}
		}
	}
	if len(srcOrder) == 0 {
		if blocked {
			return rep // an unreachable node may still hold it; not loss yet
		}
		rep.Unrecoverable++
		return rep
	}
	var (
		comp    []byte
		logical int64
		fetched bool
	)
	for _, src := range srcOrder {
		var err error
		comp, logical, err = c.getFrom(ctx, src, digest)
		if err == nil {
			fetched = true
			break
		}
	}
	if !fetched {
		rep.Errors++
		return rep
	}
	for _, nc := range broken {
		if err := c.putTo(ctx, nc, digest, comp, logical); err != nil {
			rep.Errors++
		} else {
			rep.Repaired++
		}
	}
	return rep
}

// trimStrays deletes copies of a fully healthy digest from members that
// are no longer in its replica set — the shrink half of rebalancing.
func (c *Client) trimStrays(ctx context.Context, digest string, holders map[string]bool, owners []*nodeConn) SweepReport {
	var rep SweepReport
	ownerIDs := make(map[string]bool, len(owners))
	for _, nc := range owners {
		ownerIDs[nc.id] = true
	}
	for _, nc := range c.allConns() {
		if !holders[nc.id] || ownerIDs[nc.id] {
			continue
		}
		if err := c.deleteOn(ctx, nc, digest); err != nil {
			rep.Errors++
		} else {
			rep.Removed++
		}
	}
	return rep
}

// merge folds another per-digest report into this one.
func (r *SweepReport) merge(o SweepReport) {
	r.Healthy += o.Healthy
	r.Repaired += o.Repaired
	r.Removed += o.Removed
	r.Unrecoverable += o.Unrecoverable
	r.Errors += o.Errors
}

// SweepUntilConverged repeats Sweep until a pass proves the cluster
// healthy (see SweepReport.Converged) or the budget runs out. It returns
// the final report; non-convergence is an error carrying it.
func (c *Client) SweepUntilConverged(ctx context.Context, maxSweeps int) (SweepReport, error) {
	if maxSweeps < 1 {
		maxSweeps = 1
	}
	var last SweepReport
	for i := 0; i < maxSweeps; i++ {
		rep, err := c.Sweep(ctx)
		if err != nil {
			return rep, err
		}
		last = rep
		if rep.Converged() {
			return rep, nil
		}
	}
	return last, fmt.Errorf("cluster: anti-entropy did not converge after %d sweeps (%s)", maxSweeps, last)
}
