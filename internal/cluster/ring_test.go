package cluster

import (
	"fmt"
	"testing"
)

func ringWith(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func TestOwnersDeterministicAndOrderIndependent(t *testing.T) {
	a := ringWith("n1", "n2", "n3", "n4", "n5")
	b := ringWith("n5", "n3", "n1", "n4", "n2")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest-%d", i)
		oa, ob := a.Owners(key, 3), b.Owners(key, 3)
		if len(oa) != 3 || len(ob) != 3 {
			t.Fatalf("owner count: %d / %d, want 3", len(oa), len(ob))
		}
		seen := map[string]bool{}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: placement depends on insertion order: %v vs %v", key, oa, ob)
			}
			if seen[oa[j]] {
				t.Fatalf("key %q: duplicate owner %s", key, oa[j])
			}
			seen[oa[j]] = true
		}
	}
}

func TestOwnersCappedAtMembership(t *testing.T) {
	r := ringWith("n1", "n2")
	if got := r.Owners("k", 3); len(got) != 2 {
		t.Fatalf("owners on 2-node ring: %v, want 2 distinct", got)
	}
	if got := NewRing(0).Owners("k", 3); got != nil {
		t.Fatalf("owners on empty ring: %v, want nil", got)
	}
}

// TestRebalanceMovesBoundedFraction pins the consistent-hashing property
// that justifies the ring: adding a sixth node relocates roughly 1/6 of
// the keyspace, not half of it.
func TestRebalanceMovesBoundedFraction(t *testing.T) {
	const keys = 2000
	before := ringWith("n1", "n2", "n3", "n4", "n5")
	after := ringWith("n1", "n2", "n3", "n4", "n5")
	after.Add("n6")

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("digest-%d", i)
		if before.Owners(key, 1)[0] != after.Owners(key, 1)[0] {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.35 {
		t.Fatalf("adding one of six nodes moved %.0f%% of keys; consistent hashing broken", frac*100)
	}
	if moved == 0 {
		t.Fatal("new node received no keys")
	}
}

func TestLoadSpread(t *testing.T) {
	r := ringWith("n1", "n2", "n3", "n4", "n5")
	counts := map[string]int{}
	const keys = 5000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("digest-%d", i), 1)[0]]++
	}
	for n, c := range counts {
		frac := float64(c) / keys
		if frac < 0.08 || frac > 0.35 {
			t.Fatalf("node %s holds %.0f%% of the primary keyspace; spread too skewed", n, frac*100)
		}
	}
}

func TestRemoveRestoresPriorPlacementForSurvivors(t *testing.T) {
	r := ringWith("n1", "n2", "n3")
	key := "some-digest"
	ownersBefore := r.Owners(key, 2)
	r.Add("n4")
	r.Remove("n4")
	ownersAfter := r.Owners(key, 2)
	for i := range ownersBefore {
		if ownersBefore[i] != ownersAfter[i] {
			t.Fatalf("add+remove is not placement-neutral: %v vs %v", ownersBefore, ownersAfter)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}
