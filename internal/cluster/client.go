package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"daspos/internal/cas"
	"daspos/internal/node"
	"daspos/internal/resilience"
)

// NodeInfo names one storage node: a stable identity (what the ring
// hashes — it must survive restarts and address changes) and its current
// base URL.
type NodeInfo struct {
	ID  string
	URL string
}

// Config tunes a Client. Zero fields get defaults.
type Config struct {
	// Nodes is the initial membership.
	Nodes []NodeInfo
	// ReplicationFactor is how many nodes hold each blob. Values < 1
	// mean 3; capped at the member count during placement.
	ReplicationFactor int
	// WriteQuorum is how many replica acks a put needs. Values < 1 mean
	// a majority of the effective replication factor.
	WriteQuorum int
	// VNodes is the virtual-node count per member; < 1 selects the
	// default.
	VNodes int
	// Transport is the HTTP transport node traffic runs over — the hook
	// chaos tests inject network faults through. Nil means
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Retry is the per-node-operation retry policy. A zero policy gets a
	// small capped-backoff schedule; transient faults (network blips,
	// 5xx storms) are retried, everything else fails fast.
	Retry resilience.Policy
	// Breaker tunes the per-node circuit breakers that keep a dead or
	// partitioned node from stalling every operation.
	Breaker resilience.BreakerConfig
	// RequestTimeout bounds each HTTP attempt. Values <= 0 mean 10s.
	RequestTimeout time.Duration
}

// DefaultRetryPolicy is the per-node-operation retry schedule: a few
// quick, capped, jittered attempts. Deterministic via the seed, like every
// resilience policy in the tree.
func DefaultRetryPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 3,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      0.2,
	}
}

// nodeConn is the client's view of one member: identity, address, and the
// circuit breaker guarding calls to it.
type nodeConn struct {
	id      string
	base    string
	breaker *resilience.Breaker
}

// Client places blobs across the cluster. It implements cas.Backend, so a
// cas.Store (and therefore a whole archive) can sit directly on top of the
// network: compression and fixity stay in the store, placement and quorum
// live here, and the nodes stay dumb.
//
// The construction context bounds every operation issued through the
// cas.Backend interface (whose methods cannot take one); cancelling it
// renders the client inert.
type Client struct {
	ctx     context.Context
	httpc   *http.Client
	retry   resilience.Policy
	breaker resilience.BreakerConfig
	rf      int
	quorum  int // 0 = majority of effective RF
	ring    *Ring

	mu    sync.RWMutex
	conns map[string]*nodeConn
}

var _ cas.Backend = (*Client)(nil)

// New returns a client over the given membership. The context is retained:
// it is the lifetime of every backend operation the client issues.
func New(ctx context.Context, cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	rf := cfg.ReplicationFactor
	if rf < 1 {
		rf = 3
	}
	retry := cfg.Retry
	if retry.MaxAttempts == 0 && retry.BaseDelay == 0 {
		retry = DefaultRetryPolicy()
	}
	if retry.AttemptTimeout <= 0 {
		retry.AttemptTimeout = cfg.RequestTimeout
		if retry.AttemptTimeout <= 0 {
			retry.AttemptTimeout = 10 * time.Second
		}
	}
	c := &Client{
		ctx:     ctx,
		httpc:   &http.Client{Transport: cfg.Transport},
		retry:   retry,
		breaker: cfg.Breaker,
		rf:      rf,
		quorum:  cfg.WriteQuorum,
		ring:    NewRing(cfg.VNodes),
		conns:   make(map[string]*nodeConn),
	}
	for _, n := range cfg.Nodes {
		if err := c.addNode(n); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Client) addNode(n NodeInfo) error {
	if n.ID == "" || n.URL == "" {
		return fmt.Errorf("cluster: node needs both ID and URL (got %+v)", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.conns[n.ID]; dup {
		return fmt.Errorf("cluster: duplicate node ID %q", n.ID)
	}
	c.conns[n.ID] = &nodeConn{id: n.ID, base: n.URL, breaker: resilience.NewBreaker(c.breaker)}
	c.ring.Add(n.ID)
	return nil
}

// AddNode joins a node to the ring. Placement shifts immediately; the next
// anti-entropy sweep moves the blobs (rebalancing onto the newcomer and,
// once replicas are healthy, trimming copies that no longer belong).
func (c *Client) AddNode(n NodeInfo) error { return c.addNode(n) }

// RemoveNode leaves a node from the ring. Digests it owned get new owner
// sets; the next sweep restores the replication factor on the survivors.
// Removing an unknown ID is a no-op.
func (c *Client) RemoveNode(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.conns, id)
	c.ring.Remove(id)
}

// Nodes returns the sorted member IDs.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// Owners returns the digest's replica set under current membership, in
// preference order.
func (c *Client) Owners(digest string) []string {
	return c.ring.Owners(digest, c.rf)
}

// ownerConns resolves the replica set to live connections.
func (c *Client) ownerConns(digest string) []*nodeConn {
	ids := c.ring.Owners(digest, c.rf)
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*nodeConn, 0, len(ids))
	for _, id := range ids {
		if nc, ok := c.conns[id]; ok {
			out = append(out, nc)
		}
	}
	return out
}

// allConns snapshots every member connection, sorted by ID.
func (c *Client) allConns() []*nodeConn {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*nodeConn, 0, len(c.conns))
	for _, nc := range c.conns {
		out = append(out, nc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// writeQuorum returns the ack count a put over n replicas needs.
func (c *Client) writeQuorum(n int) int {
	q := c.quorum
	if q < 1 {
		q = n/2 + 1
	}
	if q > n {
		q = n
	}
	return q
}

// callResult is one settled HTTP exchange with a node.
type callResult struct {
	status int
	header http.Header
	body   []byte
}

// once performs a single HTTP exchange. Transport failures are transient
// (the resilience layer may retry them); responses — any status — settle
// the call.
func (c *Client) once(ctx context.Context, nc *nodeConn, method, path string, q url.Values, hdr http.Header, body []byte) (callResult, error) {
	u := nc.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return callResult{}, resilience.MarkPermanent(fmt.Errorf("cluster: building %s %s: %w", method, u, err))
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return callResult{}, resilience.MarkTransient(fmt.Errorf("cluster: node %s unreachable: %w", nc.id, err))
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return callResult{}, resilience.MarkTransient(fmt.Errorf("cluster: node %s: reading response: %w", nc.id, err))
	}
	return callResult{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// call runs one node operation under the breaker and the retry policy:
// transport errors and 5xx answers count against the node's health and
// are retried; any other status settles the call and reads as node
// health.
func (c *Client) call(ctx context.Context, nc *nodeConn, method, path string, q url.Values, hdr http.Header, body []byte) (callResult, error) {
	var out callResult
	err := resilience.Retry(ctx, c.retry, func(ctx context.Context) error {
		return nc.breaker.Do(func() error {
			res, err := c.once(ctx, nc, method, path, q, hdr, body)
			if err != nil {
				return err
			}
			if res.status >= 500 {
				return resilience.MarkTransient(fmt.Errorf("cluster: node %s: %s %s: HTTP %d: %s",
					nc.id, method, path, res.status, bytes.TrimSpace(res.body)))
			}
			out = res
			return nil
		})
	})
	return out, err
}

// putTo writes one stored-form blob to one node.
func (c *Client) putTo(ctx context.Context, nc *nodeConn, digest string, comp []byte, logical int64) error {
	hdr := http.Header{node.LogicalHeader: []string{strconv.FormatInt(logical, 10)}}
	res, err := c.call(ctx, nc, http.MethodPut, "/v1/blobs/"+digest, nil, hdr, comp)
	if err != nil {
		return err
	}
	switch res.status {
	case http.StatusNoContent, http.StatusOK, http.StatusCreated:
		return nil
	case http.StatusUnprocessableEntity:
		// The node's fixity gate refused our bytes: either our copy is
		// bad (permanent) or the wire mangled it (a retry may cure).
		// Transient keeps the quorum honest without giving up on a blip.
		return resilience.MarkTransient(fmt.Errorf("cluster: node %s refused %s: %s", nc.id, short(digest), bytes.TrimSpace(res.body)))
	default:
		return resilience.MarkPermanent(fmt.Errorf("cluster: node %s: put %s: unexpected HTTP %d", nc.id, short(digest), res.status))
	}
}

// getFrom reads one blob from one node and verifies it client-side, so a
// corrupt replica (at rest or on the wire) is detected here and the read
// can fall through to the next owner.
func (c *Client) getFrom(ctx context.Context, nc *nodeConn, digest string) (comp []byte, logical int64, err error) {
	res, err := c.call(ctx, nc, http.MethodGet, "/v1/blobs/"+digest, nil, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	switch res.status {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, 0, &cas.NotFoundError{Digest: digest}
	default:
		return nil, 0, resilience.MarkPermanent(fmt.Errorf("cluster: node %s: get %s: unexpected HTTP %d", nc.id, short(digest), res.status))
	}
	logical, perr := strconv.ParseInt(res.header.Get(node.LogicalHeader), 10, 64)
	if perr != nil {
		return nil, 0, resilience.MarkTransient(fmt.Errorf("cluster: node %s: get %s: bad %s header: %w", nc.id, short(digest), node.LogicalHeader, perr))
	}
	if _, derr := cas.DecodeBlob(digest, res.body); derr != nil {
		return nil, 0, derr
	}
	return res.body, logical, nil
}

// hasOn stats one blob on one node.
func (c *Client) hasOn(ctx context.Context, nc *nodeConn, digest string) (bool, error) {
	res, err := c.call(ctx, nc, http.MethodHead, "/v1/blobs/"+digest, nil, nil, nil)
	if err != nil {
		return false, err
	}
	return res.status == http.StatusOK, nil
}

// deleteOn removes one blob from one node.
func (c *Client) deleteOn(ctx context.Context, nc *nodeConn, digest string) error {
	_, err := c.call(ctx, nc, http.MethodDelete, "/v1/blobs/"+digest, nil, nil, nil)
	return err
}

// verifyOn asks one node for its local fixity verdict on one blob.
func (c *Client) verifyOn(ctx context.Context, nc *nodeConn, digest string) (node.VerifyResult, error) {
	res, err := c.call(ctx, nc, http.MethodGet, "/v1/verify/"+digest, nil, nil, nil)
	if err != nil {
		return node.VerifyResult{}, err
	}
	switch res.status {
	case http.StatusOK:
		var v node.VerifyResult
		if uerr := json.Unmarshal(res.body, &v); uerr != nil {
			return node.VerifyResult{}, resilience.MarkTransient(fmt.Errorf("cluster: node %s: verify %s: bad response: %w", nc.id, short(digest), uerr))
		}
		return v, nil
	case http.StatusNotFound:
		return node.VerifyResult{}, &cas.NotFoundError{Digest: digest}
	default:
		return node.VerifyResult{}, resilience.MarkPermanent(fmt.Errorf("cluster: node %s: verify %s: unexpected HTTP %d", nc.id, short(digest), res.status))
	}
}

// listRange lists one node's digests in the half-open range [start, end).
func (c *Client) listRange(ctx context.Context, nc *nodeConn, start, end string) ([]string, error) {
	q := url.Values{}
	if start != "" {
		q.Set("start", start)
	}
	if end != "" {
		q.Set("end", end)
	}
	res, err := c.call(ctx, nc, http.MethodGet, "/v1/digests", q, nil, nil)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, resilience.MarkPermanent(fmt.Errorf("cluster: node %s: digests: unexpected HTTP %d", nc.id, res.status))
	}
	var out []string
	if uerr := json.Unmarshal(res.body, &out); uerr != nil {
		return nil, resilience.MarkTransient(fmt.Errorf("cluster: node %s: digests: bad response: %w", nc.id, uerr))
	}
	return out, nil
}

// PutBlob implements cas.Backend: a quorum write across the digest's
// replica set. All replicas are written concurrently; the put succeeds
// once a write quorum acks, and anti-entropy later completes any replica
// a fault kept out of the quorum.
func (c *Client) PutBlob(digest string, comp []byte, logical int64) error {
	ctx := c.ctx
	owners := c.ownerConns(digest)
	if len(owners) == 0 {
		return resilience.MarkPermanent(fmt.Errorf("cluster: no nodes available for %s", short(digest)))
	}
	quorum := c.writeQuorum(len(owners))
	results := make(chan error, len(owners))
	for _, nc := range owners {
		go func(nc *nodeConn) { results <- c.putTo(ctx, nc, digest, comp, logical) }(nc)
	}
	acks := 0
	var firstErr error
	for range owners {
		if err := <-results; err == nil {
			acks++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if acks >= quorum {
		return nil
	}
	return resilience.MarkTransient(fmt.Errorf("cluster: write quorum not reached for %s: %d/%d acks (need %d): %w",
		short(digest), acks, len(owners), quorum, firstErr))
}

// GetBlob implements cas.Backend: replicas are tried in ring preference
// order, every read is verified client-side, and the first healthy copy
// wins. Owners that turned out missing or corrupt are repaired in place
// from the copy that was served (best-effort — the read already
// succeeded).
func (c *Client) GetBlob(digest string) ([]byte, int64, error) {
	ctx := c.ctx
	owners := c.ownerConns(digest)
	if len(owners) == 0 {
		return nil, 0, resilience.MarkPermanent(fmt.Errorf("cluster: no nodes available for %s", short(digest)))
	}
	var (
		firstErr    error
		broken      []*nodeConn
		allNotFound = true
	)
	for _, nc := range owners {
		comp, logical, err := c.getFrom(ctx, nc, digest)
		if err == nil {
			for _, b := range broken {
				_ = c.putTo(ctx, b, digest, comp, logical) // read-repair
			}
			return comp, logical, nil
		}
		if errors.Is(err, cas.ErrNotFound) || errors.Is(err, cas.ErrCorrupt) {
			broken = append(broken, nc)
		}
		if !errors.Is(err, cas.ErrNotFound) {
			allNotFound = false
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if allNotFound {
		return nil, 0, &cas.NotFoundError{Digest: digest}
	}
	return nil, 0, fmt.Errorf("cluster: no healthy replica of %s: %w", short(digest), firstErr)
}

// HasBlob implements cas.Backend: true when any owner has the blob. Node
// failures read as absence — the interface has no error channel, and a
// false negative only costs an idempotent re-put.
func (c *Client) HasBlob(digest string) bool {
	ctx := c.ctx
	for _, nc := range c.ownerConns(digest) {
		if ok, err := c.hasOn(ctx, nc, digest); err == nil && ok {
			return true
		}
	}
	return false
}

// DeleteBlob implements cas.Backend: best-effort delete on every member
// (not just owners — rebalancing may have left copies anywhere).
func (c *Client) DeleteBlob(digest string) {
	ctx := c.ctx
	for _, nc := range c.allConns() {
		_ = c.deleteOn(ctx, nc, digest)
	}
}

// Digests implements cas.Backend: the sorted union over every reachable
// member. Unreachable members are skipped — the audit-grade variant with
// error reporting is DigestsCtx.
func (c *Client) Digests() []string {
	ds, _, _ := c.DigestsCtx(c.ctx)
	return ds
}

// DigestsCtx returns the sorted digest union over every member, with the
// IDs of members that could not be listed. It fails only when no member
// is reachable at all.
func (c *Client) DigestsCtx(ctx context.Context) ([]string, []string, error) {
	located, unreachable, err := c.locate(ctx)
	if err != nil {
		return nil, unreachable, err
	}
	out := make([]string, 0, len(located))
	for d := range located {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, unreachable, nil
}

// NodeHealth is one member's health snapshot, as the cluster client sees
// it.
type NodeHealth struct {
	ID        string
	Reachable bool
	Blobs     int
	Breaker   resilience.BreakerStats
}

// Health polls every member, returning snapshots sorted by node ID.
func (c *Client) Health(ctx context.Context) []NodeHealth {
	conns := c.allConns()
	out := make([]NodeHealth, len(conns))
	var wg sync.WaitGroup
	wg.Add(len(conns))
	for i, nc := range conns {
		go func(i int, nc *nodeConn) {
			defer wg.Done()
			h := NodeHealth{ID: nc.id}
			if res, err := c.call(ctx, nc, http.MethodGet, "/v1/health", nil, nil, nil); err == nil && res.status == http.StatusOK {
				var doc node.Health
				if json.Unmarshal(res.body, &doc) == nil {
					h.Reachable = true
					h.Blobs = doc.Blobs
				}
			}
			h.Breaker = nc.breaker.Stats()
			out[i] = h
		}(i, nc)
	}
	wg.Wait()
	return out
}

// short truncates a digest for error messages.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
