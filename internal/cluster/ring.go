// Package cluster is the client side of the preservation network: it
// places content-addressed blobs across storage nodes with a consistent-
// hash ring, writes through replica quorums, falls back through replicas
// on reads (repairing what it finds broken), and runs the anti-entropy
// sweep that drives a damaged cluster back to full replication and 100%
// fixity.
//
// The design target is the DPHEP multi-site preservation model: the
// archive must survive the loss of any node, a network partition, and
// silent corruption of individual replicas — and converge back to health
// once the fault passes, without an operator replaying anything.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// defaultVNodes is the virtual-node count per physical node. Enough points
// that load and rebalance movement stay near 1/N without making ring
// rebuilds expensive.
const defaultVNodes = 64

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring: node identities are hashed onto a
// uint64 circle at vnodes points each, and a digest's replica set is the
// first N distinct nodes clockwise from the digest's own hash. Placement
// is a pure function of (node set, digest) — every client that knows the
// membership computes the same owners, with no coordination service.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []point // sorted by hash
	nodes  map[string]struct{}
}

// NewRing returns an empty ring; vnodes < 1 selects the default.
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// ringHash maps a string onto the circle. SHA-256 (truncated) rather than
// a light mixing hash: placement must be identical across every client
// binary for the life of the archive, so the hash is chosen for stability
// and spread, not speed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the sorted member identities.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owners returns the first n distinct nodes clockwise from the key's hash
// — the key's replica set, in preference order. Fewer than n members
// returns all of them.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
