package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"daspos/internal/cas"
	"daspos/internal/faults"
	"daspos/internal/node"
	"daspos/internal/resilience"
)

// testCluster is an in-process multi-node cluster for tests.
type testCluster struct {
	nodes   []*node.Node
	servers []*httptest.Server
	infos   []NodeInfo
	hosts   []string // host:port per node, the partition keys
}

func startCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		nd := node.New(fmt.Sprintf("n%d", i), cas.NewMemBackend())
		srv := httptest.NewServer(nd.Handler())
		t.Cleanup(srv.Close)
		tc.nodes = append(tc.nodes, nd)
		tc.servers = append(tc.servers, srv)
		tc.infos = append(tc.infos, NodeInfo{ID: nd.ID(), URL: srv.URL})
		tc.hosts = append(tc.hosts, srv.Listener.Addr().String())
	}
	return tc
}

// fastBreaker re-admits probes quickly so tests spend milliseconds, not
// seconds, waiting out open intervals.
func fastBreaker() resilience.BreakerConfig {
	return resilience.BreakerConfig{FailureThreshold: 3, OpenInterval: 20 * time.Millisecond}
}

func newClient(t *testing.T, tc *testCluster, cfg Config) *Client {
	t.Helper()
	cfg.Nodes = tc.infos
	if cfg.Breaker.OpenInterval == 0 {
		cfg.Breaker = fastBreaker()
	}
	c, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// holdersOf counts how many nodes hold a digest.
func (tc *testCluster) holdersOf(digest string) int {
	n := 0
	for _, nd := range tc.nodes {
		if nd.Backend().HasBlob(digest) {
			n++
		}
	}
	return n
}

func TestQuorumWriteReplicates(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	store := cas.NewStoreWith(c)

	payload := bytes.Repeat([]byte("replicate me "), 200)
	digest, err := store.Put(payload)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := tc.holdersOf(digest); got != 3 {
		t.Fatalf("blob on %d nodes, want replication factor 3", got)
	}
	got, err := store.Get(digest)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload round-trip mismatch")
	}
	owners := c.Owners(digest)
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
}

func TestWriteSucceedsWithOneOwnerDown(t *testing.T) {
	tc := startCluster(t, 5)
	inj := faults.NewNetInjector(11)
	c := newClient(t, tc, Config{ReplicationFactor: 3, Transport: &faults.Transport{Inj: inj}})
	store := cas.NewStoreWith(c)

	payload := []byte("written under partial failure")
	digest := cas.Digest(payload)
	owners := c.Owners(digest)
	// Partition the first owner: quorum is 2/3, so the put must succeed.
	inj.Partition(tc.hostOf(t, owners[0]))

	if _, err := store.Put(payload); err != nil {
		t.Fatalf("Put with one owner partitioned: %v", err)
	}
	if got := tc.holdersOf(digest); got != 2 {
		t.Fatalf("blob on %d nodes, want 2 (one owner cut off)", got)
	}
}

func TestWriteFailsBelowQuorum(t *testing.T) {
	tc := startCluster(t, 5)
	inj := faults.NewNetInjector(13)
	c := newClient(t, tc, Config{ReplicationFactor: 3, Transport: &faults.Transport{Inj: inj}})
	store := cas.NewStoreWith(c)

	payload := []byte("must not pretend durability")
	digest := cas.Digest(payload)
	owners := c.Owners(digest)
	inj.Partition(tc.hostOf(t, owners[0]), tc.hostOf(t, owners[1]))

	_, err := store.Put(payload)
	if err == nil {
		t.Fatal("Put acked below write quorum")
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("quorum failure should be transient (heals when the partition does): %v", err)
	}
}

func TestReadFallsThroughReplicasAndRepairs(t *testing.T) {
	tc := startCluster(t, 5)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	store := cas.NewStoreWith(c)

	payload := bytes.Repeat([]byte("read path "), 300)
	digest, err := store.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	owners := c.Owners(digest)
	// Rot the first replica and drop the second: the read must be served
	// by the third.
	if err := tc.nodeOf(t, owners[0]).Corrupt(digest); err != nil {
		t.Fatal(err)
	}
	tc.nodeOf(t, owners[1]).Backend().DeleteBlob(digest)

	got, err := store.Get(digest)
	if err != nil {
		t.Fatalf("Get with 2/3 replicas broken: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after replica fallback")
	}
	// Read-repair must have restored both broken owners in place.
	for _, id := range owners[:2] {
		comp, _, err := tc.nodeOf(t, id).Backend().GetBlob(digest)
		if err != nil {
			t.Fatalf("owner %s not re-replicated by read-repair: %v", id, err)
		}
		if _, err := cas.DecodeBlob(digest, comp); err != nil {
			t.Fatalf("owner %s repaired with corrupt bytes: %v", id, err)
		}
	}
}

func TestReadAllReplicasCorrupt(t *testing.T) {
	tc := startCluster(t, 3)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	store := cas.NewStoreWith(c)

	digest, err := store.Put(bytes.Repeat([]byte("doomed "), 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range tc.nodes {
		if err := nd.Corrupt(digest); err != nil {
			t.Fatal(err)
		}
	}
	_, err = store.Get(digest)
	if err == nil {
		t.Fatal("Get served a blob with every replica corrupt")
	}
	if !errors.Is(err, cas.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt in chain, got %v", err)
	}
}

func TestGetMissingIsNotFound(t *testing.T) {
	tc := startCluster(t, 3)
	c := newClient(t, tc, Config{ReplicationFactor: 2})
	_, _, err := c.GetBlob(cas.Digest([]byte("never stored")))
	if !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if c.HasBlob(cas.Digest([]byte("never stored"))) {
		t.Fatal("HasBlob true for absent digest")
	}
}

func TestBreakerIsolatesDeadNode(t *testing.T) {
	tc := startCluster(t, 3)
	inj := faults.NewNetInjector(17)
	c := newClient(t, tc, Config{
		ReplicationFactor: 3,
		Transport:         &faults.Transport{Inj: inj},
		Breaker:           resilience.BreakerConfig{FailureThreshold: 2, OpenInterval: time.Hour},
	})
	store := cas.NewStoreWith(c)
	inj.Partition(tc.hosts[0], tc.hosts[1], tc.hosts[2])
	// Enough failing traffic to trip every breaker.
	for i := 0; i < 3; i++ {
		_, _ = store.Put([]byte(fmt.Sprintf("doomed %d", i)))
	}
	for _, h := range c.Health(context.Background()) {
		if h.Breaker.Opens == 0 {
			t.Fatalf("node %s breaker never opened under sustained partition: %+v", h.ID, h.Breaker)
		}
		if h.Reachable {
			t.Fatalf("node %s reported reachable while partitioned", h.ID)
		}
	}
}

func TestHealthReportsBlobCounts(t *testing.T) {
	tc := startCluster(t, 3)
	c := newClient(t, tc, Config{ReplicationFactor: 3})
	store := cas.NewStoreWith(c)
	if _, err := store.Put([]byte("counted")); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, h := range c.Health(context.Background()) {
		if !h.Reachable {
			t.Fatalf("node %s unreachable in a healthy cluster", h.ID)
		}
		total += h.Blobs
	}
	if total != 3 {
		t.Fatalf("total replicas = %d, want 3", total)
	}
}

func TestDigestsUnion(t *testing.T) {
	tc := startCluster(t, 4)
	c := newClient(t, tc, Config{ReplicationFactor: 2})
	store := cas.NewStoreWith(c)
	want := map[string]bool{}
	for i := 0; i < 12; i++ {
		d, err := store.Put([]byte(fmt.Sprintf("blob %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want[d] = true
	}
	ds := c.Digests()
	if len(ds) != len(want) {
		t.Fatalf("union has %d digests, want %d", len(ds), len(want))
	}
	for _, d := range ds {
		if !want[d] {
			t.Fatalf("unexpected digest %s in union", d)
		}
	}
}

// hostOf maps a node ID to its listener host (the partition key).
func (tc *testCluster) hostOf(t *testing.T, id string) string {
	t.Helper()
	for i, nd := range tc.nodes {
		if nd.ID() == id {
			return tc.hosts[i]
		}
	}
	t.Fatalf("unknown node %s", id)
	return ""
}

// nodeOf maps a node ID to its Node.
func (tc *testCluster) nodeOf(t *testing.T, id string) *node.Node {
	t.Helper()
	for _, nd := range tc.nodes {
		if nd.ID() == id {
			return nd
		}
	}
	t.Fatalf("unknown node %s", id)
	return nil
}
