// Package reco implements the Reconstruction step of the paper's generic
// workflow (§3.2): "the application of pattern-recognition and
// local-maximum-finding algorithms that convert the raw binary data read
// out from the detector elements into recognizable objects", followed by
// the refinement of those objects into "candidate physics objects
// (electrons, muons, particle jets)".
//
// The chain is: unpack raw banks → find tracks (seeded helix following) →
// find vertices → cluster calorimeter cells → build candidates → compute
// missing transverse momentum. Reconstruction is the only workflow step
// with dense external dependencies: every call resolves calibration and
// alignment payloads through a conditions source, and the set of folders
// it touched is reported so the workflow engine can enumerate dependencies
// (experiment W2).
package reco

import (
	"fmt"
	"math"
	"sort"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/fourvec"
	"daspos/internal/rawdata"
)

// Source resolves conditions folders. Both *conditions.Snapshot (shippable
// text constants, ALICE-style) and *conditions.View (live database access)
// satisfy it — the two access patterns the workshop compared.
type Source interface {
	Lookup(folder string) (conditions.Payload, error)
}

// Config tunes the reconstruction algorithms. DefaultConfig returns the
// production values.
type Config struct {
	// SeedPhiTolerance is the maximum |Δφ| (rad) between a predicted and
	// observed hit when attaching hits to a track seed.
	SeedPhiTolerance float64
	// SeedZTolerance is the matching window in z (mm).
	SeedZTolerance float64
	// MinLayers is the minimum number of distinct layers on a track.
	MinLayers int
	// MinTrackPt drops tracks below this transverse momentum (GeV).
	MinTrackPt float64
	// ClusterSeedE and ClusterCellE are calorimeter clustering thresholds
	// (GeV): a seed cell must exceed the first, neighbours join above the
	// second.
	ClusterSeedE, ClusterCellE float64
	// JetConeR is the cone radius for jet building.
	JetConeR float64
	// JetMinPt drops jets below this pT (GeV).
	JetMinPt float64
	// VertexWindowZ is the z window (mm) for grouping tracks into vertices.
	VertexWindowZ float64
}

// DefaultConfig returns the production reconstruction configuration.
func DefaultConfig() Config {
	return Config{
		SeedPhiTolerance: 0.02,
		SeedZTolerance:   30,
		MinLayers:        5,
		MinTrackPt:       0.3,
		ClusterSeedE:     0.5,
		ClusterCellE:     0.1,
		JetConeR:         0.4,
		JetMinPt:         15,
		VertexWindowZ:    8,
	}
}

// Reconstructor converts raw events into RECO-tier events.
//
// A Reconstructor is single-goroutine state: the event-flow substrate
// creates one per worker (ParallelStage), which is what makes the scratch
// arenas below safe. Everything in scratch is reused across events, so a
// warm reconstructor stops allocating for unpacking, bookkeeping, and the
// kinematics columns of its inner loops.
type Reconstructor struct {
	det *detector.Detector
	cfg Config
	// Version identifies the reconstruction release; provenance records it
	// on every output.
	Version string
	// touched accumulates the conditions folders resolved by the last
	// Reconstruct call.
	touched []string

	// Per-event scratch, reused across Reconstruct calls. Nothing here may
	// escape into the output event — outputs are freshly built (or the
	// caller's arena's problem), scratch is this instance's.
	scrTrackerHits []hit
	scrMuonHits    []hit
	scrCells       []cell
	scrByLayer     map[int][]*hit
	scrZs          []float64
	scrIdx         []int
	scrUsedTrack   []bool
	scrUsedCluster []bool
	scrTaken       []bool
	scrRemaining   []int

	// Columnar kinematics for the pair loops: track momenta and cluster
	// vectors with pt/η/φ derived once per event instead of once per pair.
	trackKin   fourvec.Slab
	clusterKin fourvec.Slab
}

// New returns a reconstructor over the given geometry with the default
// configuration.
func New(det *detector.Detector) *Reconstructor {
	return NewWithConfig(det, DefaultConfig())
}

// NewWithConfig returns a reconstructor with explicit algorithm settings.
func NewWithConfig(det *detector.Detector, cfg Config) *Reconstructor {
	return &Reconstructor{det: det, cfg: cfg, Version: "reco-3.2.1"}
}

// TouchedFolders returns the conditions folders the last Reconstruct call
// resolved, in access order. The workflow engine records this census as
// the step's external dependencies.
func (r *Reconstructor) TouchedFolders() []string {
	return append([]string(nil), r.touched...)
}

// Folders returns the conditions folders every Reconstruct call resolves,
// in access order — the static form of the dependency census, used by
// streaming steps that never hold a single Reconstructor to interrogate.
func Folders() []string {
	return []string{
		conditions.FolderECalScale,
		conditions.FolderHCalScale,
		conditions.FolderTrackerAlign,
		conditions.FolderBeamspot,
		conditions.FolderMuonAlign,
	}
}

// ParallelStage returns a per-worker stage factory for the event-flow
// substrate: each worker gets its own Reconstructor (the touched-folder
// ledger is per-instance state), so any worker count reconstructs the
// stream safely. Reconstruction draws no random numbers, so parallel
// output is identical to sequential by construction.
func ParallelStage(det *detector.Detector, cfg Config, cond Source) func(worker int) func(*rawdata.Event) (*datamodel.Event, bool, error) {
	return func(int) func(*rawdata.Event) (*datamodel.Event, bool, error) {
		rec := NewWithConfig(det, cfg)
		return func(raw *rawdata.Event) (*datamodel.Event, bool, error) {
			ev, err := rec.Reconstruct(raw, cond)
			if err != nil {
				return nil, false, err
			}
			return ev, true, nil
		}
	}
}

// hit is an unpacked position measurement.
type hit struct {
	layer     int
	r, phi, z float64
	used      bool
}

// cell is an unpacked calorimeter reading.
type cell struct {
	layer    int
	iphi, iz int
	e        float64
	eta, phi float64
	em       bool
	used     bool
}

// Reconstruct runs the full chain on one raw event.
func (r *Reconstructor) Reconstruct(raw *rawdata.Event, cond Source) (*datamodel.Event, error) {
	r.touched = r.touched[:0]
	ecalScale, err := r.payload(cond, conditions.FolderECalScale)
	if err != nil {
		return nil, err
	}
	hcalScale, err := r.payload(cond, conditions.FolderHCalScale)
	if err != nil {
		return nil, err
	}
	if _, err := r.payload(cond, conditions.FolderTrackerAlign); err != nil {
		return nil, err
	}
	if _, err := r.payload(cond, conditions.FolderBeamspot); err != nil {
		return nil, err
	}
	if _, err := r.payload(cond, conditions.FolderMuonAlign); err != nil {
		return nil, err
	}

	out := &datamodel.Event{Run: raw.Run, Number: raw.Number, Tier: datamodel.TierRECO}

	trackerHits := r.unpackHits(&r.scrTrackerHits, raw.Bank(rawdata.PartTracker))
	muonHits := r.unpackHits(&r.scrMuonHits, raw.Bank(rawdata.PartMuon))
	cells := r.unpackCells(raw, ecalScale["scale"], hcalScale["scale"])

	out.Tracks = r.findTracks(trackerHits)
	out.Vertices = r.findVertices(out.Tracks)
	out.Clusters = r.cluster(cells)
	r.buildCandidates(out, muonHits)
	r.computeMET(out, cells)
	return out, nil
}

func (r *Reconstructor) payload(cond Source, folder string) (conditions.Payload, error) {
	p, err := cond.Lookup(folder)
	if err != nil {
		return nil, fmt.Errorf("reco: resolving %s: %w", folder, err)
	}
	r.touched = append(r.touched, folder)
	return p, nil
}

// unpackHits converts bank words to positioned hits via the channel grid,
// filling the given per-instance scratch slice.
func (r *Reconstructor) unpackHits(scratch *[]hit, bank *rawdata.Bank) []hit {
	if bank == nil {
		return nil
	}
	hits := (*scratch)[:0]
	defer func() { *scratch = hits }()
	for _, w := range bank.Words {
		li := w.Channel.Layer()
		if li < 0 || li >= len(r.det.Layers) {
			continue
		}
		l := r.det.Layer(li)
		phi, z := l.CellCenter(w.Channel.IPhi(), w.Channel.IZ())
		hits = append(hits, hit{layer: li, r: l.Radius, phi: phi, z: z})
	}
	return hits
}

// unpackCells converts calorimeter words to calibrated cells. The scale
// payloads correct the drifting response recorded in the conditions
// database.
func (r *Reconstructor) unpackCells(raw *rawdata.Event, ecalScale, hcalScale float64) []cell {
	if ecalScale <= 0 {
		ecalScale = 1
	}
	if hcalScale <= 0 {
		hcalScale = 1
	}
	out := r.scrCells[:0]
	defer func() { r.scrCells = out }()
	unpack := func(bank *rawdata.Bank, em bool, scale float64) {
		if bank == nil {
			return
		}
		for _, w := range bank.Words {
			li := w.Channel.Layer()
			if li < 0 || li >= len(r.det.Layers) {
				continue
			}
			l := r.det.Layer(li)
			phi, z := l.CellCenter(w.Channel.IPhi(), w.Channel.IZ())
			theta := math.Atan2(l.Radius, z)
			eta := -math.Log(math.Tan(theta / 2))
			out = append(out, cell{
				layer: li, iphi: w.Channel.IPhi(), iz: w.Channel.IZ(),
				e: rawdata.DecodeEnergy(w.ADC) / scale, eta: eta, phi: phi, em: em,
			})
		}
	}
	unpack(raw.Bank(rawdata.PartECal), true, ecalScale)
	unpack(raw.Bank(rawdata.PartHCal), false, hcalScale)
	return out
}

// findTracks runs seeded pattern recognition: a pair of hits on two inner
// pixel layers defines a helix hypothesis (φ(r) = φ0 − k·r in the
// small-angle regime). The hypothesis is refined progressively — after each
// layer's hit is attached, the line parameters are refit over everything
// collected so far — because a two-pixel seed alone extrapolates too
// coarsely over the metre-scale lever arm to the outer strips. Seeds are
// tried from several inner-layer pairs so a single missing pixel hit does
// not kill the track.
func (r *Reconstructor) findTracks(hits []hit) []datamodel.Track {
	trackerLayers := r.det.TrackerLayers()
	if len(trackerLayers) < 3 {
		return nil
	}
	if r.scrByLayer == nil {
		r.scrByLayer = make(map[int][]*hit)
	}
	byLayer := r.scrByLayer
	for k := range byLayer {
		byLayer[k] = byLayer[k][:0]
	}
	for i := range hits {
		byLayer[hits[i].layer] = append(byLayer[hits[i].layer], &hits[i])
	}
	seedPairs := [][2]int{
		{trackerLayers[0], trackerLayers[1]},
		{trackerLayers[0], trackerLayers[2]},
		{trackerLayers[1], trackerLayers[2]},
	}
	var tracks []datamodel.Track
	for _, pair := range seedPairs {
		for _, h1 := range byLayer[pair[0]] {
			if h1.used {
				continue
			}
			for _, h2 := range byLayer[pair[1]] {
				if h2.used || h1.used {
					continue
				}
				if collected, ok := r.followSeed(trackerLayers, byLayer, h1, h2); ok {
					if trk, ok := r.fitTrack(collected); ok {
						tracks = append(tracks, trk)
						for _, h := range collected {
							h.used = true
						}
						break // h1 consumed; next seed hit
					}
				}
			}
		}
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].P.Pt() > tracks[j].P.Pt() })
	return tracks
}

// followSeed grows a seed pair into a hit collection by predicting each
// further layer from a running least-squares refit.
func (r *Reconstructor) followSeed(trackerLayers []int, byLayer map[int][]*hit, h1, h2 *hit) ([]*hit, bool) {
	dr := h2.r - h1.r
	if dr <= 0 {
		return nil, false
	}
	dphi := wrapPhi(h2.phi - h1.phi)
	// Reject pairs more bent than the lowest-pT track of interest.
	if math.Abs(dphi/dr) > 0.3*r.det.BField/(2000*0.8*r.cfg.MinTrackPt) {
		return nil, false
	}
	collected := []*hit{h1, h2}
	haveLayer := map[int]bool{h1.layer: true, h2.layer: true}
	for _, li := range trackerLayers {
		if haveLayer[li] {
			continue
		}
		phi0, k, z0, zSlope, ok := fitLine(collected)
		if !ok {
			return nil, false
		}
		l := r.det.Layer(li)
		predPhi := phi0 - k*l.Radius
		predZ := z0 + zSlope*l.Radius
		// The tolerance widens with the extrapolation distance from the
		// outermost collected hit.
		outermost := collected[len(collected)-1].r
		tol := r.cfg.SeedPhiTolerance * (1 + (l.Radius-outermost)/200)
		var best *hit
		bestD := tol
		for _, h := range byLayer[li] {
			if h.used {
				continue
			}
			d := math.Abs(wrapPhi(h.phi - predPhi))
			if d < bestD && math.Abs(h.z-predZ) < r.cfg.SeedZTolerance {
				best, bestD = h, d
			}
		}
		if best != nil {
			collected = append(collected, best)
			haveLayer[li] = true
		}
	}
	if len(collected) < r.cfg.MinLayers {
		return nil, false
	}
	return collected, true
}

// fitLine least-squares fits φ(r) = φ0 − k·r and z(r) = z0 + s·r over hits.
func fitLine(hs []*hit) (phi0, k, z0, zSlope float64, ok bool) {
	n := float64(len(hs))
	ref := hs[0].phi
	var sr, srr, sphi, srphi, sz, srz float64
	for _, h := range hs {
		phi := ref + wrapPhi(h.phi-ref)
		sr += h.r
		srr += h.r * h.r
		sphi += phi
		srphi += h.r * phi
		sz += h.z
		srz += h.r * h.z
	}
	det := n*srr - sr*sr
	if det == 0 {
		return 0, 0, 0, 0, false
	}
	slopePhi := (n*srphi - sr*sphi) / det
	phi0 = (sphi*srr - sr*srphi) / det
	k = -slopePhi
	zSlope = (n*srz - sr*sz) / det
	z0 = (sz*srr - sr*srz) / det
	return phi0, k, z0, zSlope, true
}

// fitTrack converts the final line fit over the collected hits into a
// measured track.
func (r *Reconstructor) fitTrack(hs []*hit) (datamodel.Track, bool) {
	phi0, k, z0, zSlope, ok := fitLine(hs)
	if !ok {
		return datamodel.Track{}, false
	}
	var pt, charge float64
	if math.Abs(k) < 1e-7 {
		// Straight within resolution: saturate at the momentum scale where
		// curvature becomes unmeasurable.
		pt = 500
		charge = 1
	} else {
		charge = math.Copysign(1, k)
		pt = 0.3 * r.det.BField / (2000 * math.Abs(k))
	}
	if pt < r.cfg.MinTrackPt {
		return datamodel.Track{}, false
	}
	if pt > 2000 {
		pt = 2000
	}
	eta := math.Asinh(zSlope)
	p := fourvec.PtEtaPhiM(pt, eta, wrapPhi(phi0), 0.13957)
	// Residual-based fit quality.
	var chi2 float64
	for _, h := range hs {
		res := wrapPhi(h.phi - (phi0 - k*h.r))
		chi2 += res * res / (2e-4 * 2e-4)
	}
	return datamodel.Track{
		P: p, Charge: charge, Z0: z0, D0: 0,
		NHits: len(hs), Chi2: chi2 / float64(len(hs)),
	}, true
}

// findVertices histograms track z0 values and turns local clusters into
// vertices — the "local-maximum-finding" half of the paper's description.
func (r *Reconstructor) findVertices(tracks []datamodel.Track) []datamodel.VertexFit {
	if len(tracks) == 0 {
		return nil
	}
	zs := r.scrZs[:0]
	for _, t := range tracks {
		zs = append(zs, t.Z0)
	}
	r.scrZs = zs
	sort.Float64s(zs)
	var vertices []datamodel.VertexFit
	i := 0
	for i < len(zs) {
		j := i
		sum := 0.0
		for j < len(zs) && zs[j]-zs[i] < r.cfg.VertexWindowZ {
			sum += zs[j]
			j++
		}
		n := j - i
		if n >= 2 {
			mean := sum / float64(n)
			var chi2 float64
			for _, z := range zs[i:j] {
				chi2 += (z - mean) * (z - mean)
			}
			vertices = append(vertices, datamodel.VertexFit{
				Z: mean, NTracks: n, Chi2: chi2 / float64(n),
			})
		}
		i = j
	}
	sort.Slice(vertices, func(a, b int) bool { return vertices[a].NTracks > vertices[b].NTracks })
	return vertices
}

// cluster groups calorimeter cells around local maxima.
func (r *Reconstructor) cluster(cells []cell) []datamodel.Cluster {
	idx := growInts(&r.scrIdx, len(cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cells[idx[a]].e > cells[idx[b]].e })
	var clusters []datamodel.Cluster
	for _, i := range idx {
		seed := &cells[i]
		if seed.used || seed.e < r.cfg.ClusterSeedE {
			continue
		}
		seed.used = true
		sumE, sumEta, sumPhi := seed.e, seed.e*seed.eta, seed.e*seed.phi
		nCells := 1
		for j := range cells {
			c := &cells[j]
			if c.used || c.layer != seed.layer || c.e < r.cfg.ClusterCellE {
				continue
			}
			if absInt(c.iphi-seed.iphi) <= 1 && absInt(c.iz-seed.iz) <= 1 {
				c.used = true
				sumE += c.e
				sumEta += c.e * c.eta
				sumPhi += c.e * c.phi
				nCells++
			}
		}
		clusters = append(clusters, datamodel.Cluster{
			E: sumE, Eta: sumEta / sumE, Phi: sumPhi / sumE,
			EM: seed.em, NCells: nCells,
		})
	}
	return clusters
}

// buildCandidates refines tracks and clusters into candidate physics
// objects: muons (track + muon-system match), electrons (track + EM
// cluster with E/p near 1), photons (unmatched EM cluster), and cone jets.
//
// The pair loops here — isolation cones, track-cluster matching, jet
// cones — run on columnar kinematics: the track momenta and cluster
// vectors are loaded into fourvec.Slabs and their pt/η/φ derived once per
// event, so the O(n²) comparisons read cached columns instead of
// recomputing four transcendentals per pair. The slab columns are
// produced by exactly the Vec methods the scalar loops called, so every
// cone decision (and therefore every output bit) is unchanged.
func (r *Reconstructor) buildCandidates(out *datamodel.Event, muonHits []hit) {
	usedTrack := growBools(&r.scrUsedTrack, len(out.Tracks))
	usedCluster := growBools(&r.scrUsedCluster, len(out.Clusters))

	tk := &r.trackKin
	tk.Reset()
	for i := range out.Tracks {
		tk.Append(out.Tracks[i].P)
	}
	tk.Derive()

	// Cluster vectors, shared by the electron/photon matching and the jet
	// cones: both sections previously rebuilt PtEtaPhiE per pair visit.
	ck := &r.clusterKin
	ck.Reset()
	for i := range out.Clusters {
		c := &out.Clusters[i]
		ck.Append(fourvec.PtEtaPhiE(c.E/math.Cosh(c.Eta), c.Eta, c.Phi, c.E))
	}
	ck.Derive()

	// Muons: extrapolate each track's helix to the chamber radius and
	// demand a hit near the predicted crossing.
	for ti, t := range out.Tracks {
		if tk.Pt(ti) < 3 {
			continue
		}
		rho := tk.Pt(ti) / (0.3 * r.det.BField) * 1000 // mm
		trkPhi, trkEta := tk.Phi(ti), tk.Eta(ti)
		matched := false
		for _, mh := range muonHits {
			arg := mh.r / (2 * rho)
			if arg >= 1 {
				continue // track curls up before the chambers
			}
			predPhi := trkPhi - t.Charge*math.Asin(arg)
			if math.Abs(wrapPhi(mh.phi-predPhi)) < 0.05 &&
				math.Abs(mh.z-(t.Z0+mh.r*math.Sinh(trkEta))) < 500 {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		usedTrack[ti] = true
		out.Candidates = append(out.Candidates, datamodel.Candidate{
			Type:   datamodel.ObjMuon,
			P:      fourvec.PtEtaPhiM(tk.Pt(ti), trkEta, trkPhi, 0.10566),
			Charge: t.Charge, Quality: qualityFromChi2(t.Chi2),
			Isolation: r.trackIsolation(tk, ti),
		})
	}

	// Electrons and photons from EM clusters.
	for ci, c := range out.Clusters {
		if !c.EM || c.E < 2 {
			continue
		}
		cv := ck.At(ci)
		cEta, cPhi := ck.Eta(ci), ck.Phi(ci)
		bestTrack := -1
		bestDR := 0.1
		for ti := range out.Tracks {
			if usedTrack[ti] || tk.Pt(ti) < 2 {
				continue
			}
			if dr := fourvec.DeltaREtaPhi(tk.Eta(ti), tk.Phi(ti), cEta, cPhi); dr < bestDR {
				bestDR, bestTrack = dr, ti
			}
		}
		if bestTrack >= 0 {
			t := out.Tracks[bestTrack]
			eOverP := c.E / t.P.P()
			if eOverP > 0.7 && eOverP < 1.5 {
				usedTrack[bestTrack] = true
				usedCluster[ci] = true
				out.Candidates = append(out.Candidates, datamodel.Candidate{
					Type: datamodel.ObjElectron, P: cv, Charge: t.Charge,
					Quality:   qualityFromChi2(t.Chi2),
					Isolation: r.trackIsolation(tk, bestTrack),
				})
				continue
			}
		}
		if c.E > 5 {
			usedCluster[ci] = true
			out.Candidates = append(out.Candidates, datamodel.Candidate{
				Type: datamodel.ObjPhoton, P: cv, Quality: 0.9,
			})
		}
	}

	// Jets: greedy cones over remaining clusters, on the cached cluster
	// columns.
	remaining := r.scrRemaining[:0]
	for ci := range out.Clusters {
		if !usedCluster[ci] {
			remaining = append(remaining, ci)
		}
	}
	r.scrRemaining = remaining
	sort.Slice(remaining, func(a, b int) bool {
		return out.Clusters[remaining[a]].E > out.Clusters[remaining[b]].E
	})
	taken := growBools(&r.scrTaken, len(out.Clusters))
	for _, seedIdx := range remaining {
		if taken[seedIdx] {
			continue
		}
		jetP := ck.At(seedIdx)
		seedEta, seedPhi := ck.Eta(seedIdx), ck.Phi(seedIdx)
		taken[seedIdx] = true
		for _, ci := range remaining {
			if taken[ci] {
				continue
			}
			if fourvec.DeltaREtaPhi(seedEta, seedPhi, ck.Eta(ci), ck.Phi(ci)) < r.cfg.JetConeR {
				jetP = jetP.Add(ck.At(ci))
				taken[ci] = true
			}
		}
		if jetP.Pt() >= r.cfg.JetMinPt {
			out.Candidates = append(out.Candidates, datamodel.Candidate{
				Type: datamodel.ObjJet, P: jetP, Quality: 0.8,
			})
		}
	}
}

// computeMET sums the calibrated calorimeter cells and corrects for muons,
// which traverse the calorimeters as minimum-ionizing particles.
func (r *Reconstructor) computeMET(out *datamodel.Event, cells []cell) {
	var sx, sy, sumEt float64
	for _, c := range cells {
		et := c.e / math.Cosh(c.eta)
		sx += et * math.Cos(c.phi)
		sy += et * math.Sin(c.phi)
		sumEt += et
	}
	for _, cand := range out.Candidates {
		if cand.Type != datamodel.ObjMuon {
			continue
		}
		sx += cand.P.Px
		sy += cand.P.Py
		sumEt += cand.P.Pt()
	}
	out.Missing = datamodel.MET{
		Pt:    math.Hypot(sx, sy),
		Phi:   math.Atan2(-sy, -sx),
		SumEt: sumEt,
	}
}

// trackIsolation sums the pT of other tracks in a ΔR<0.3 cone, reading
// the derived slab columns — the loop that used to dominate candidate
// building with four transcendentals per track pair.
func (r *Reconstructor) trackIsolation(kin *fourvec.Slab, self int) float64 {
	var iso float64
	for i, n := 0, kin.Len(); i < n; i++ {
		if i == self {
			continue
		}
		if kin.DeltaR(i, self) < 0.3 {
			iso += kin.Pt(i)
		}
	}
	return iso
}

// growInts resizes an int scratch slice to n, reusing capacity.
func growInts(scr *[]int, n int) []int {
	if cap(*scr) < n {
		*scr = make([]int, n)
	}
	*scr = (*scr)[:n]
	return *scr
}

// growBools resizes a bool scratch slice to n and clears it.
func growBools(scr *[]bool, n int) []bool {
	if cap(*scr) < n {
		*scr = make([]bool, n)
	}
	s := (*scr)[:n]
	clear(s)
	*scr = s
	return s
}

func qualityFromChi2(chi2 float64) float64 {
	q := 1 / (1 + chi2/10)
	if q < 0 {
		return 0
	}
	return q
}

func wrapPhi(phi float64) float64 {
	for phi > math.Pi {
		phi -= 2 * math.Pi
	}
	for phi <= -math.Pi {
		phi += 2 * math.Pi
	}
	return phi
}

func absInt(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
