package reco

import (
	"math"
	"testing"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/fourvec"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/sim"
)

// chain wires generator → full sim → digitizer → reconstructor for tests.
type chain struct {
	det  *detector.Detector
	full *sim.FullSim
	rec  *Reconstructor
	cond Source
}

func newChain(t testing.TB, seed uint64) *chain {
	t.Helper()
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, seed); err != nil {
		t.Fatal(err)
	}
	return &chain{
		det:  det,
		full: sim.NewFullSim(det, seed),
		rec:  New(det),
		cond: db.Snapshot("t", 1),
	}
}

func (c *chain) process(t testing.TB, gen generator.Generator, n int) []*datamodel.Event {
	t.Helper()
	var out []*datamodel.Event
	for i := 0; i < n; i++ {
		raw := rawdata.Digitize(1, c.full.Simulate(gen.Generate()))
		ev, err := c.rec.Reconstruct(raw, c.cond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

func TestReconstructProducesTracks(t *testing.T) {
	c := newChain(t, 1)
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	events := c.process(t, g, 10)
	total := 0
	for _, e := range events {
		total += len(e.Tracks)
		if e.Tier != datamodel.TierRECO {
			t.Fatalf("tier %v", e.Tier)
		}
	}
	if total < 20 {
		t.Fatalf("only %d tracks over 10 dijet events", total)
	}
}

func TestTrackMomentumResolution(t *testing.T) {
	// Single clean muons: reconstructed pT must track the true pT.
	c := newChain(t, 2)
	g := generator.NewDrellYanZ(generator.DefaultConfig(2))
	var rel []float64
	for i := 0; i < 60; i++ {
		ev := g.Generate()
		var truePts []float64
		for _, p := range ev.FinalState() {
			if abs(p.PDG) == 13 && math.Abs(p.P.Eta()) < 2.0 && p.P.Pt() > 20 {
				truePts = append(truePts, p.P.Pt())
			}
		}
		raw := rawdata.Digitize(1, c.full.Simulate(ev))
		re, err := c.rec.Reconstruct(raw, c.cond)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range truePts {
			best := math.Inf(1)
			for _, trk := range re.Tracks {
				if d := math.Abs(trk.P.Pt()-tp) / tp; d < best {
					best = d
				}
			}
			if !math.IsInf(best, 1) {
				rel = append(rel, best)
			}
		}
	}
	if len(rel) < 20 {
		t.Fatalf("too few matched muon tracks: %d", len(rel))
	}
	good := 0
	for _, d := range rel {
		if d < 0.15 {
			good++
		}
	}
	if frac := float64(good) / float64(len(rel)); frac < 0.7 {
		t.Fatalf("only %.0f%% of muon tracks within 15%% of true pT", 100*frac)
	}
}

func TestMuonCandidatesAndZPeak(t *testing.T) {
	c := newChain(t, 3)
	g := generator.NewDrellYanZ(generator.DefaultConfig(3))
	var masses []float64
	for i := 0; i < 150; i++ {
		raw := rawdata.Digitize(1, c.full.Simulate(g.Generate()))
		re, err := c.rec.Reconstruct(raw, c.cond)
		if err != nil {
			t.Fatal(err)
		}
		mus := re.CandidatesOf(datamodel.ObjMuon)
		var plus, minus []fourvec.Vec
		for _, m := range mus {
			if m.P.Pt() < 15 {
				continue
			}
			if m.Charge > 0 {
				plus = append(plus, m.P)
			} else {
				minus = append(minus, m.P)
			}
		}
		if len(plus) >= 1 && len(minus) >= 1 {
			masses = append(masses, fourvec.InvariantMass(plus[0], minus[0]))
		}
	}
	if len(masses) < 15 {
		t.Fatalf("too few dimuon events reconstructed: %d", len(masses))
	}
	med := median(masses)
	if math.Abs(med-91.2) > 8 {
		t.Fatalf("reconstructed Z peak at %v", med)
	}
}

func TestPhotonCandidatesFromHiggs(t *testing.T) {
	c := newChain(t, 4)
	g := generator.NewHiggsDiphoton(generator.DefaultConfig(4))
	found := 0
	for i := 0; i < 60; i++ {
		raw := rawdata.Digitize(1, c.full.Simulate(g.Generate()))
		re, err := c.rec.Reconstruct(raw, c.cond)
		if err != nil {
			t.Fatal(err)
		}
		phs := re.CandidatesOf(datamodel.ObjPhoton)
		hard := 0
		for _, p := range phs {
			if p.P.Pt() > 20 {
				hard++
			}
		}
		if hard >= 2 {
			found++
		}
	}
	if found < 10 {
		t.Fatalf("diphoton reconstructed in only %d/60 events", found)
	}
}

func TestJetsFromDijets(t *testing.T) {
	c := newChain(t, 5)
	g := generator.NewQCDDijet(generator.DefaultConfig(5))
	njets := 0
	for _, e := range c.process(t, g, 30) {
		njets += len(e.CandidatesOf(datamodel.ObjJet))
	}
	if njets < 20 {
		t.Fatalf("only %d jets over 30 dijet events", njets)
	}
}

func TestVertexFinding(t *testing.T) {
	c := newChain(t, 6)
	g := generator.NewMinBias(generator.DefaultConfig(6))
	withVtx := 0
	for _, e := range c.process(t, g, 30) {
		if _, ok := e.PrimaryVertex(); ok {
			withVtx++
		}
	}
	if withVtx < 15 {
		t.Fatalf("primary vertex found in only %d/30 min-bias events", withVtx)
	}
}

func TestMETInWEvents(t *testing.T) {
	c := newChain(t, 7)
	gW := generator.NewWLepNu(generator.DefaultConfig(7))
	gZ := generator.NewDrellYanZ(generator.DefaultConfig(7))
	metW := median(metValues(t, c, gW, 60))
	metZ := median(metValues(t, c, gZ, 60))
	if metW <= metZ {
		t.Fatalf("W MET (%v) not above Z MET (%v)", metW, metZ)
	}
}

func metValues(t *testing.T, c *chain, g generator.Generator, n int) []float64 {
	t.Helper()
	var out []float64
	for _, e := range c.process(t, g, n) {
		out = append(out, e.Missing.Pt)
	}
	return out
}

func TestConditionsDependenciesEnumerated(t *testing.T) {
	c := newChain(t, 8)
	g := generator.NewMinBias(generator.DefaultConfig(8))
	c.process(t, g, 1)
	touched := c.rec.TouchedFolders()
	want := conditions.StandardFolders()
	if len(touched) != len(want) {
		t.Fatalf("touched %v, want all of %v", touched, want)
	}
	seen := map[string]bool{}
	for _, f := range touched {
		seen[f] = true
	}
	for _, f := range want {
		if !seen[f] {
			t.Fatalf("folder %s not resolved during reconstruction", f)
		}
	}
}

func TestReconstructFailsWithoutConditions(t *testing.T) {
	det := detector.Standard()
	rec := New(det)
	db := conditions.NewDB() // empty: no calibrations published
	g := generator.NewMinBias(generator.DefaultConfig(9))
	fs := sim.NewFullSim(det, 9)
	raw := rawdata.Digitize(1, fs.Simulate(g.Generate()))
	if _, err := rec.Reconstruct(raw, db.Snapshot("t", 1)); err == nil {
		t.Fatal("reconstruction succeeded without calibration constants")
	}
}

func TestServiceAndSnapshotAgree(t *testing.T) {
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, 11); err != nil {
		t.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(11))
	fs := sim.NewFullSim(det, 11)
	raw := rawdata.Digitize(1, fs.Simulate(g.Generate()))
	recA := New(det)
	recB := New(det)
	a, err := recA.Reconstruct(raw, db.Snapshot("t", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := recB.Reconstruct(raw, db.View("t", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tracks) != len(b.Tracks) || len(a.Candidates) != len(b.Candidates) {
		t.Fatal("snapshot and service reconstructions differ")
	}
	if a.Missing.Pt != b.Missing.Pt {
		t.Fatal("MET differs between access modes")
	}
}

func TestReconstructionDeterministic(t *testing.T) {
	c := newChain(t, 12)
	g := generator.NewQCDDijet(generator.DefaultConfig(12))
	raw := rawdata.Digitize(1, c.full.Simulate(g.Generate()))
	a, err := c.rec.Reconstruct(raw, c.cond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.rec.Reconstruct(raw, c.cond)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tracks) != len(b.Tracks) {
		t.Fatal("track finding not deterministic")
	}
	for i := range a.Tracks {
		if a.Tracks[i] != b.Tracks[i] {
			t.Fatalf("track %d differs between runs", i)
		}
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func BenchmarkReconstructDijet(b *testing.B) {
	c := newChain(b, 1)
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	raws := make([]*rawdata.Event, 16)
	for i := range raws {
		raws[i] = rawdata.Digitize(1, c.full.Simulate(g.Generate()))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.rec.Reconstruct(raws[i%len(raws)], c.cond); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelStageMatchesSequential(t *testing.T) {
	// Per-worker Reconstructors over the same geometry and snapshot must
	// reproduce the single-instance sequential pass exactly.
	c := newChain(t, 31)
	g := generator.NewDrellYanZ(generator.DefaultConfig(31))
	var raws []*rawdata.Event
	for i := 0; i < 8; i++ {
		raws = append(raws, rawdata.Digitize(1, c.full.SimulateSeeded(g.Generate())))
	}
	var want []*datamodel.Event
	for _, raw := range raws {
		ev, err := c.rec.Reconstruct(raw, c.cond)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ev)
	}
	factory := ParallelStage(c.det, DefaultConfig(), c.cond)
	for w := 0; w < 3; w++ {
		fn := factory(w)
		// Walk the sample backwards: instance state must not couple events.
		for i := len(raws) - 1; i >= 0; i-- {
			got, keep, err := fn(raws[i])
			if err != nil || !keep {
				t.Fatalf("worker %d event %d: keep=%v err=%v", w, i, keep, err)
			}
			if len(got.Tracks) != len(want[i].Tracks) ||
				len(got.Clusters) != len(want[i].Clusters) ||
				len(got.Candidates) != len(want[i].Candidates) ||
				got.Missing != want[i].Missing {
				t.Fatalf("worker %d event %d: parallel stage differs from sequential", w, i)
			}
		}
	}
}

func TestFoldersMatchTouched(t *testing.T) {
	c := newChain(t, 32)
	g := generator.NewMinBias(generator.DefaultConfig(32))
	raw := rawdata.Digitize(1, c.full.Simulate(g.Generate()))
	if _, err := c.rec.Reconstruct(raw, c.cond); err != nil {
		t.Fatal(err)
	}
	touched := c.rec.TouchedFolders()
	static := Folders()
	if len(touched) != len(static) {
		t.Fatalf("Folders() lists %d folders, Reconstruct touched %d", len(static), len(touched))
	}
	for i := range static {
		if static[i] != touched[i] {
			t.Fatalf("folder %d: static %q vs touched %q", i, static[i], touched[i])
		}
	}
}
