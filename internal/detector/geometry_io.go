package detector

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
)

// Geometry export/import. Table 1 of the paper records that the experiments
// describe event-display geometry in per-experiment formats — XML for
// ATLAS/LHCb, XML/JSON for CMS, ROOT for ALICE. The substrate supports the
// two text formats so the outreach converter can feed any of the display
// profiles from one geometry source.

// xmlDetector mirrors Detector for encoding/xml.
type xmlDetector struct {
	XMLName xml.Name   `xml:"detector"`
	Name    string     `xml:"name,attr"`
	Version string     `xml:"version,attr"`
	BField  float64    `xml:"bfield,attr"`
	EtaMax  float64    `xml:"etamax,attr"`
	Layers  []xmlLayer `xml:"layer"`
}

type xmlLayer struct {
	Name           string  `xml:"name,attr"`
	Kind           string  `xml:"kind,attr"`
	Radius         float64 `xml:"radius,attr"`
	HalfLengthZ    float64 `xml:"halflenz,attr"`
	NPhi           int     `xml:"nphi,attr"`
	NZ             int     `xml:"nz,attr"`
	Efficiency     float64 `xml:"efficiency,attr"`
	ResRPhi        float64 `xml:"resrphi,attr"`
	ResZ           float64 `xml:"resz,attr"`
	NoiseOccupancy float64 `xml:"noise,attr"`
}

// WriteXML serializes the geometry in the ATLAS/LHCb-style XML description.
func (d *Detector) WriteXML(w io.Writer) error {
	xd := xmlDetector{Name: d.Name, Version: d.Version, BField: d.BField, EtaMax: d.EtaMax}
	for _, l := range d.Layers {
		xd.Layers = append(xd.Layers, xmlLayer{
			Name: l.Name, Kind: l.Kind.String(), Radius: l.Radius,
			HalfLengthZ: l.HalfLengthZ, NPhi: l.NPhi, NZ: l.NZ,
			Efficiency: l.Efficiency, ResRPhi: l.ResRPhi, ResZ: l.ResZ,
			NoiseOccupancy: l.NoiseOccupancy,
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(xd); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML decodes a geometry written by WriteXML and validates it.
func ReadXML(r io.Reader) (*Detector, error) {
	var xd xmlDetector
	if err := xml.NewDecoder(r).Decode(&xd); err != nil {
		return nil, fmt.Errorf("detector: decoding XML geometry: %w", err)
	}
	d := &Detector{Name: xd.Name, Version: xd.Version, BField: xd.BField, EtaMax: xd.EtaMax}
	for _, xl := range xd.Layers {
		kind, err := parseKind(xl.Kind)
		if err != nil {
			return nil, err
		}
		d.Layers = append(d.Layers, Layer{
			Name: xl.Name, Kind: kind, Radius: xl.Radius,
			HalfLengthZ: xl.HalfLengthZ, NPhi: xl.NPhi, NZ: xl.NZ,
			Efficiency: xl.Efficiency, ResRPhi: xl.ResRPhi, ResZ: xl.ResZ,
			NoiseOccupancy: xl.NoiseOccupancy,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// jsonLayer mirrors Layer for the CMS/iSpy-style JSON description.
type jsonLayer struct {
	Name           string  `json:"name"`
	Kind           string  `json:"kind"`
	Radius         float64 `json:"radius_mm"`
	HalfLengthZ    float64 `json:"half_length_z_mm"`
	NPhi           int     `json:"n_phi"`
	NZ             int     `json:"n_z"`
	Efficiency     float64 `json:"efficiency"`
	ResRPhi        float64 `json:"res_rphi_mm"`
	ResZ           float64 `json:"res_z_mm"`
	NoiseOccupancy float64 `json:"noise_occupancy"`
}

type jsonDetector struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	BField  float64     `json:"bfield_tesla"`
	EtaMax  float64     `json:"eta_max"`
	Layers  []jsonLayer `json:"layers"`
}

// WriteJSON serializes the geometry in the CMS/iSpy-style JSON description.
func (d *Detector) WriteJSON(w io.Writer) error {
	jd := jsonDetector{Name: d.Name, Version: d.Version, BField: d.BField, EtaMax: d.EtaMax}
	for _, l := range d.Layers {
		jd.Layers = append(jd.Layers, jsonLayer{
			Name: l.Name, Kind: l.Kind.String(), Radius: l.Radius,
			HalfLengthZ: l.HalfLengthZ, NPhi: l.NPhi, NZ: l.NZ,
			Efficiency: l.Efficiency, ResRPhi: l.ResRPhi, ResZ: l.ResZ,
			NoiseOccupancy: l.NoiseOccupancy,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// ReadJSON decodes a geometry written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Detector, error) {
	var jd jsonDetector
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("detector: decoding JSON geometry: %w", err)
	}
	d := &Detector{Name: jd.Name, Version: jd.Version, BField: jd.BField, EtaMax: jd.EtaMax}
	for _, jl := range jd.Layers {
		kind, err := parseKind(jl.Kind)
		if err != nil {
			return nil, err
		}
		d.Layers = append(d.Layers, Layer{
			Name: jl.Name, Kind: kind, Radius: jl.Radius,
			HalfLengthZ: jl.HalfLengthZ, NPhi: jl.NPhi, NZ: jl.NZ,
			Efficiency: jl.Efficiency, ResRPhi: jl.ResRPhi, ResZ: jl.ResZ,
			NoiseOccupancy: jl.NoiseOccupancy,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
