// Package detector describes the toy particle detector: a cylindrical,
// layered geometry (beam pipe, silicon tracker, electromagnetic and hadronic
// calorimeters, muon system) in a solenoidal field.
//
// The geometry serves three paper-driven roles: it is the substrate for the
// full detector simulation that RECAST-class preservation must re-run; its
// channel segmentation defines the raw-data address space the digitizer and
// reconstruction share; and it exports to the XML and JSON geometry formats
// Table 1 lists as the per-experiment event-display descriptions.
package detector

import (
	"fmt"
	"math"
)

// LayerKind classifies detector layers.
type LayerKind int

// Layer kinds, ordered from the interaction point outward.
const (
	KindBeamPipe LayerKind = iota
	KindPixel
	KindStrip
	KindECal
	KindHCal
	KindMuon
)

// String returns the lower-case kind name used in geometry exports.
func (k LayerKind) String() string {
	switch k {
	case KindBeamPipe:
		return "beampipe"
	case KindPixel:
		return "pixel"
	case KindStrip:
		return "strip"
	case KindECal:
		return "ecal"
	case KindHCal:
		return "hcal"
	case KindMuon:
		return "muon"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// parseKind inverts String for the geometry decoders.
func parseKind(s string) (LayerKind, error) {
	for k := KindBeamPipe; k <= KindMuon; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("detector: unknown layer kind %q", s)
}

// Layer is one cylindrical detection surface.
type Layer struct {
	// Name is the layer's unique identifier within the detector.
	Name string
	Kind LayerKind
	// Radius is the layer's cylindrical radius in mm.
	Radius float64
	// HalfLengthZ is the half-extent along the beam axis in mm.
	HalfLengthZ float64
	// NPhi and NZ give the channel segmentation in azimuth and z.
	NPhi, NZ int
	// Efficiency is the per-crossing hit efficiency for sensitive layers.
	Efficiency float64
	// ResRPhi and ResZ are the single-hit position resolutions in mm.
	ResRPhi, ResZ float64
	// NoiseOccupancy is the per-event fraction of channels firing from
	// electronics noise.
	NoiseOccupancy float64
}

// Channels returns the layer's total channel count.
func (l *Layer) Channels() int { return l.NPhi * l.NZ }

// Sensitive reports whether the layer records hits (everything except the
// beam pipe).
func (l *Layer) Sensitive() bool { return l.Kind != KindBeamPipe }

// CellOf returns the (iphi, iz) channel containing the given azimuth and z.
// The second return is false if z is outside the layer's acceptance.
func (l *Layer) CellOf(phi, z float64) (iphi, iz int, ok bool) {
	if z < -l.HalfLengthZ || z >= l.HalfLengthZ || l.NPhi == 0 || l.NZ == 0 {
		return 0, 0, false
	}
	// Normalize phi into [0, 2π).
	phi = math.Mod(phi, 2*math.Pi)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	iphi = int(phi / (2 * math.Pi) * float64(l.NPhi))
	if iphi >= l.NPhi {
		iphi = l.NPhi - 1
	}
	iz = int((z + l.HalfLengthZ) / (2 * l.HalfLengthZ) * float64(l.NZ))
	if iz >= l.NZ {
		iz = l.NZ - 1
	}
	return iphi, iz, true
}

// CellCenter returns the (phi, z) centre of channel (iphi, iz).
func (l *Layer) CellCenter(iphi, iz int) (phi, z float64) {
	phi = (float64(iphi) + 0.5) / float64(l.NPhi) * 2 * math.Pi
	if phi > math.Pi {
		phi -= 2 * math.Pi
	}
	z = -l.HalfLengthZ + (float64(iz)+0.5)/float64(l.NZ)*2*l.HalfLengthZ
	return phi, z
}

// Detector is a complete detector description.
type Detector struct {
	// Name identifies the detector model; it is recorded in provenance and
	// in archived environment manifests.
	Name string
	// Version tracks geometry revisions; reprocessing with a different
	// geometry version is a provenance-visible change.
	Version string
	// BField is the solenoid field in tesla, along +z.
	BField float64
	// EtaMax is the tracking acceptance limit.
	EtaMax float64
	// Layers are ordered by increasing radius.
	Layers []Layer
}

// Validate checks the structural invariants: ordered radii, unique names,
// positive segmentation on sensitive layers.
func (d *Detector) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("detector: empty name")
	}
	seen := make(map[string]bool, len(d.Layers))
	prev := 0.0
	for i, l := range d.Layers {
		if l.Radius <= prev {
			return fmt.Errorf("detector: layer %d (%s) radius %v not increasing", i, l.Name, l.Radius)
		}
		prev = l.Radius
		if seen[l.Name] {
			return fmt.Errorf("detector: duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
		if l.Sensitive() && (l.NPhi <= 0 || l.NZ <= 0) {
			return fmt.Errorf("detector: sensitive layer %q has no channels", l.Name)
		}
		if l.Efficiency < 0 || l.Efficiency > 1 {
			return fmt.Errorf("detector: layer %q efficiency %v out of [0,1]", l.Name, l.Efficiency)
		}
	}
	return nil
}

// Layer returns the layer with the given index.
func (d *Detector) Layer(i int) *Layer { return &d.Layers[i] }

// LayerByName returns the named layer, or nil.
func (d *Detector) LayerByName(name string) *Layer {
	for i := range d.Layers {
		if d.Layers[i].Name == name {
			return &d.Layers[i]
		}
	}
	return nil
}

// TrackerLayers returns the indices of silicon layers (pixel + strip), the
// surfaces the track finder consumes.
func (d *Detector) TrackerLayers() []int {
	var out []int
	for i, l := range d.Layers {
		if l.Kind == KindPixel || l.Kind == KindStrip {
			out = append(out, i)
		}
	}
	return out
}

// LayersOf returns the indices of layers of the given kind.
func (d *Detector) LayersOf(kind LayerKind) []int {
	var out []int
	for i, l := range d.Layers {
		if l.Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// TotalChannels returns the detector's full channel count, the scale factor
// behind raw-event sizes.
func (d *Detector) TotalChannels() int {
	n := 0
	for i := range d.Layers {
		if d.Layers[i].Sensitive() {
			n += d.Layers[i].Channels()
		}
	}
	return n
}

// ChannelID packs (layer, iphi, iz) into a stable 32-bit address used by the
// raw-data banks: 6 bits of layer, 14 bits of phi index, 12 bits of z index.
type ChannelID uint32

// MakeChannelID packs a channel address. It panics if any index exceeds the
// field width — geometry and packing must agree by construction.
func MakeChannelID(layer, iphi, iz int) ChannelID {
	if layer < 0 || layer >= 1<<6 || iphi < 0 || iphi >= 1<<14 || iz < 0 || iz >= 1<<12 {
		panic(fmt.Sprintf("detector: channel address out of range: layer=%d iphi=%d iz=%d", layer, iphi, iz))
	}
	return ChannelID(layer)<<26 | ChannelID(iphi)<<12 | ChannelID(iz)
}

// Layer returns the packed layer index.
func (c ChannelID) Layer() int { return int(c >> 26) }

// IPhi returns the packed azimuthal index.
func (c ChannelID) IPhi() int { return int(c>>12) & (1<<14 - 1) }

// IZ returns the packed z index.
func (c ChannelID) IZ() int { return int(c) & (1<<12 - 1) }

// Standard returns the default toy detector: a compact general-purpose
// detector in the CMS/ATLAS mould. Layer half-lengths extend each barrel
// cylinder to |eta| = 2.5 coverage ("unrolled endcaps"): the model has no
// disk geometry, so forward acceptance is carried by long barrels instead.
// LHCb-like far-forward coverage is exercised through the fast simulation.
func Standard() *Detector {
	d := &Detector{
		Name:    "DASPOS-GPD",
		Version: "v2.1",
		BField:  3.8,
		EtaMax:  2.5,
		Layers: []Layer{
			{Name: "beampipe", Kind: KindBeamPipe, Radius: 22, HalfLengthZ: 3000},
			{Name: "pix1", Kind: KindPixel, Radius: 33, HalfLengthZ: 210, NPhi: 8192, NZ: 1024, Efficiency: 0.995, ResRPhi: 0.010, ResZ: 0.015, NoiseOccupancy: 1e-6},
			{Name: "pix2", Kind: KindPixel, Radius: 68, HalfLengthZ: 420, NPhi: 8192, NZ: 1024, Efficiency: 0.995, ResRPhi: 0.010, ResZ: 0.015, NoiseOccupancy: 1e-6},
			{Name: "pix3", Kind: KindPixel, Radius: 102, HalfLengthZ: 630, NPhi: 8192, NZ: 1024, Efficiency: 0.99, ResRPhi: 0.010, ResZ: 0.015, NoiseOccupancy: 1e-6},
			{Name: "strip1", Kind: KindStrip, Radius: 255, HalfLengthZ: 1560, NPhi: 16000, NZ: 512, Efficiency: 0.98, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "strip2", Kind: KindStrip, Radius: 340, HalfLengthZ: 2080, NPhi: 16000, NZ: 512, Efficiency: 0.98, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "strip3", Kind: KindStrip, Radius: 430, HalfLengthZ: 2630, NPhi: 16000, NZ: 512, Efficiency: 0.98, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "strip4", Kind: KindStrip, Radius: 520, HalfLengthZ: 3180, NPhi: 16000, NZ: 512, Efficiency: 0.97, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "strip5", Kind: KindStrip, Radius: 610, HalfLengthZ: 3730, NPhi: 16000, NZ: 512, Efficiency: 0.97, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "strip6", Kind: KindStrip, Radius: 700, HalfLengthZ: 4280, NPhi: 16000, NZ: 512, Efficiency: 0.97, ResRPhi: 0.025, ResZ: 0.25, NoiseOccupancy: 2e-6},
			{Name: "ecal", Kind: KindECal, Radius: 1290, HalfLengthZ: 3000, NPhi: 360, NZ: 170, Efficiency: 1.0, NoiseOccupancy: 5e-4},
			{Name: "hcal", Kind: KindHCal, Radius: 1800, HalfLengthZ: 3500, NPhi: 72, NZ: 58, Efficiency: 1.0, NoiseOccupancy: 1e-3},
			{Name: "muon1", Kind: KindMuon, Radius: 4000, HalfLengthZ: 25000, NPhi: 1024, NZ: 256, Efficiency: 0.95, ResRPhi: 0.1, ResZ: 0.5, NoiseOccupancy: 1e-6},
			{Name: "muon2", Kind: KindMuon, Radius: 6000, HalfLengthZ: 37000, NPhi: 1024, NZ: 256, Efficiency: 0.95, ResRPhi: 0.1, ResZ: 0.5, NoiseOccupancy: 1e-6},
		},
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}
