package detector

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStandardIsValid(t *testing.T) {
	d := Standard()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.TrackerLayers()) != 9 {
		t.Fatalf("tracker layers: %d", len(d.TrackerLayers()))
	}
	if len(d.LayersOf(KindMuon)) != 2 {
		t.Fatalf("muon layers: %d", len(d.LayersOf(KindMuon)))
	}
	if d.TotalChannels() == 0 {
		t.Fatal("no channels")
	}
	if d.LayerByName("ecal") == nil || d.LayerByName("nope") != nil {
		t.Fatal("LayerByName broken")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	base := Standard()
	mutate := func(f func(*Detector)) error {
		d := Standard()
		f(d)
		return d.Validate()
	}
	if err := mutate(func(d *Detector) { d.Name = "" }); err == nil {
		t.Error("empty name accepted")
	}
	if err := mutate(func(d *Detector) { d.Layers[3].Radius = 1 }); err == nil {
		t.Error("unordered radii accepted")
	}
	if err := mutate(func(d *Detector) { d.Layers[2].Name = base.Layers[1].Name }); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := mutate(func(d *Detector) { d.Layers[1].NPhi = 0 }); err == nil {
		t.Error("channel-less sensitive layer accepted")
	}
	if err := mutate(func(d *Detector) { d.Layers[1].Efficiency = 1.5 }); err == nil {
		t.Error("efficiency > 1 accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindBeamPipe; k <= KindMuon; k++ {
		got, err := parseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("kind %v round trip: %v %v", k, got, err)
		}
	}
	if _, err := parseKind("warpcore"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCellOfRoundTrip(t *testing.T) {
	l := &Standard().Layers[1] // pix1
	if err := quick.Check(func(rawPhi, rawZ float64) bool {
		phi := math.Mod(rawPhi, math.Pi)
		z := math.Mod(rawZ, l.HalfLengthZ)
		if math.IsNaN(phi) || math.IsNaN(z) {
			return true
		}
		iphi, iz, ok := l.CellOf(phi, z)
		if !ok {
			return false
		}
		cphi, cz := l.CellCenter(iphi, iz)
		// The cell centre must re-locate to the same cell.
		jphi, jz, ok := l.CellOf(cphi, cz)
		return ok && jphi == iphi && jz == iz
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCellOfOutsideAcceptance(t *testing.T) {
	l := &Standard().Layers[1]
	if _, _, ok := l.CellOf(0, l.HalfLengthZ+1); ok {
		t.Fatal("z beyond half-length accepted")
	}
	if _, _, ok := l.CellOf(0, -l.HalfLengthZ-1); ok {
		t.Fatal("negative z beyond half-length accepted")
	}
}

func TestCellCenterAccuracy(t *testing.T) {
	l := &Standard().Layers[10] // ecal
	phi, z := l.CellCenter(0, 0)
	iphi, iz, ok := l.CellOf(phi, z)
	if !ok || iphi != 0 || iz != 0 {
		t.Fatalf("cell (0,0) centre maps to (%d,%d)", iphi, iz)
	}
	dphi := 2 * math.Pi / float64(l.NPhi)
	if math.Abs(phi-dphi/2) > 1e-9 {
		t.Fatalf("phi centre %v want %v", phi, dphi/2)
	}
}

func TestChannelIDPacking(t *testing.T) {
	cases := []struct{ layer, iphi, iz int }{
		{0, 0, 0},
		{13, 1023, 255},
		{5, 4095, 511},
		{63, 16383, 4095},
	}
	for _, c := range cases {
		id := MakeChannelID(c.layer, c.iphi, c.iz)
		if id.Layer() != c.layer || id.IPhi() != c.iphi || id.IZ() != c.iz {
			t.Fatalf("pack/unpack %v -> (%d,%d,%d)", c, id.Layer(), id.IPhi(), id.IZ())
		}
	}
}

func TestChannelIDUniqueAcrossGeometry(t *testing.T) {
	// Property: packing is injective over every valid channel of a layer
	// (sampled sparsely to stay fast).
	d := Standard()
	seen := make(map[ChannelID]bool)
	for li := range d.Layers {
		l := &d.Layers[li]
		if !l.Sensitive() {
			continue
		}
		for iphi := 0; iphi < l.NPhi; iphi += 97 {
			for iz := 0; iz < l.NZ; iz += 31 {
				id := MakeChannelID(li, iphi, iz)
				if seen[id] {
					t.Fatalf("duplicate channel id %v", id)
				}
				seen[id] = true
			}
		}
	}
}

func TestChannelIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address did not panic")
		}
	}()
	MakeChannelID(64, 0, 0)
}

func TestXMLRoundTrip(t *testing.T) {
	d := Standard()
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `kind="ecal"`) {
		t.Fatalf("XML missing layer kinds:\n%s", buf.String()[:200])
	}
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGeometry(t, d, got)
}

func TestJSONRoundTrip(t *testing.T) {
	d := Standard()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"radius_mm"`) {
		t.Fatal("JSON missing expected fields")
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGeometry(t, d, got)
}

func assertSameGeometry(t *testing.T, want, got *Detector) {
	t.Helper()
	if got.Name != want.Name || got.Version != want.Version ||
		got.BField != want.BField || got.EtaMax != want.EtaMax {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("layer count %d != %d", len(got.Layers), len(want.Layers))
	}
	for i := range got.Layers {
		if got.Layers[i] != want.Layers[i] {
			t.Fatalf("layer %d mismatch:\n got %+v\nwant %+v", i, got.Layers[i], want.Layers[i])
		}
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("<detector><layer kind=\"warp\"/></detector>")); err == nil {
		t.Fatal("bad XML kind accepted")
	}
	if _, err := ReadXML(strings.NewReader("not xml")); err == nil {
		t.Fatal("garbage XML accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"layers":[{"kind":"warp"}]}`)); err == nil {
		t.Fatal("bad JSON kind accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
	// Structurally valid but physically invalid geometry must be rejected.
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","layers":[{"kind":"pixel","name":"a","radius_mm":5},{"kind":"pixel","name":"b","radius_mm":5}]}`)); err == nil {
		t.Fatal("non-increasing radii accepted")
	}
}

func BenchmarkCellOf(b *testing.B) {
	l := &Standard().Layers[1]
	for i := 0; i < b.N; i++ {
		_, _, _ = l.CellOf(1.2, 100)
	}
}
