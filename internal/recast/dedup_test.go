package recast

import (
	"context"
	"strings"
	"testing"
)

func TestDedupKeyCanonical(t *testing.T) {
	m := ModelSpec{Process: "zprime", MassGeV: 1000, Events: 40, Seed: 7}
	k1 := DedupKey("A", m, "cfg")
	if k2 := DedupKey("A", m, "cfg"); k2 != k1 {
		t.Fatal("identical inputs produced different keys")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(k1))
	}
	// Every field must be load-bearing.
	variants := []struct {
		name     string
		analysis string
		model    ModelSpec
		cfg      string
	}{
		{"analysis", "B", m, "cfg"},
		{"mass", "A", ModelSpec{Process: "zprime", MassGeV: 1001, Events: 40, Seed: 7}, "cfg"},
		{"events", "A", ModelSpec{Process: "zprime", MassGeV: 1000, Events: 41, Seed: 7}, "cfg"},
		{"seed", "A", ModelSpec{Process: "zprime", MassGeV: 1000, Events: 40, Seed: 8}, "cfg"},
		{"xsec", "A", ModelSpec{Process: "zprime", MassGeV: 1000, Events: 40, Seed: 7, CrossSectionPb: 1}, "cfg"},
		{"config", "A", m, "cfg2"},
	}
	for _, v := range variants {
		if DedupKey(v.analysis, v.model, v.cfg) == k1 {
			t.Fatalf("changing %s did not change the key", v.name)
		}
	}
	// Length-prefixed fields: ("ab","c") must not collide with ("a","bc").
	if DedupKey("ab", m, "c") == DedupKey("a", m, "bc") {
		t.Fatal("field boundaries not separated in the hash")
	}
}

func TestCompleteFromArchive(t *testing.T) {
	svc, stub := newStubService(t, nil)
	ids := submitApproved(t, svc, 2)
	primary, follower := ids[0], ids[1]

	// The primary must be done first.
	if _, err := svc.CompleteFromArchive(follower, primary); err == nil {
		t.Fatal("archive completion accepted an unfinished primary")
	}
	if _, err := svc.Process(primary); err != nil {
		t.Fatal(err)
	}
	got, err := svc.CompleteFromArchive(follower, primary)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.DedupOf != primary {
		t.Fatalf("follower = %s dedup_of %q, want done of %s", got.Status, got.DedupOf, primary)
	}
	if got.Result == nil || got.Result.Generated != validModel().Events {
		t.Fatalf("follower result = %+v, want the primary's archived numbers", got.Result)
	}
	if stub.calls != 1 {
		t.Fatalf("backend ran %d times, want 1 (follower served from archive)", stub.calls)
	}
	// The copy must be independent of the primary's stored result.
	got.Result.Generated = -1
	re, _ := svc.Get(follower)
	if re.Result.Generated != validModel().Events {
		t.Fatal("archived copy aliases the primary's result")
	}
}

func TestExpireDeadLettersApprovedOnly(t *testing.T) {
	svc, stub := newStubService(t, nil)
	id := submitApproved(t, svc, 1)[0]
	if err := svc.Expire(id, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.Get(id)
	if got.Status != StatusFailed || !strings.Contains(got.Reason, "deadline") {
		t.Fatalf("expired request = %s %q", got.Status, got.Reason)
	}
	if stub.calls != 0 {
		t.Fatal("expiry ran the backend")
	}
	// Terminal states cannot expire.
	if err := svc.Expire(id, "again"); err == nil {
		t.Fatal("expired a failed request")
	}
}

func TestBackendHonorsContext(t *testing.T) {
	svc, _ := newStubService(t, nil)
	id := submitApproved(t, svc, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A dead context reaching ProcessWithPolicy must leave the request
	// approved (in flight) so recovery can re-run it.
	if _, err := svc.ProcessWithPolicy(ctx, id, fastPolicy()); err == nil {
		t.Fatal("cancelled processing reported success")
	}
	got, _ := svc.Get(id)
	if got.Status != StatusApproved {
		t.Fatalf("request after cancellation = %s, want approved", got.Status)
	}
}
