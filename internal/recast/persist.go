package recast

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Request-ledger persistence: the service's archival record. Requests,
// approvals, rejections, and results survive a restart; subscriptions are
// code-backed (the experiment re-registers its preserved analyses at
// startup), so only the ledger serializes.

// DumpRequests writes the full request ledger as JSON.
func (s *Service) DumpRequests(w io.Writer) error {
	reqs := s.List()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reqs)
}

// LoadRequests restores a dumped ledger into an empty service. It fails if
// the service already holds requests (the ledger is the source of truth,
// not a merge input), if IDs collide, or if any request references an
// unknown status.
func (s *Service) LoadRequests(r io.Reader) error {
	var reqs []*Request
	if err := json.NewDecoder(r).Decode(&reqs); err != nil {
		return fmt.Errorf("recast: parsing request ledger: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.requests) > 0 {
		return fmt.Errorf("recast: service already holds %d requests", len(s.requests))
	}
	maxID := 0
	seen := make(map[string]bool, len(reqs))
	for _, req := range reqs {
		if req.ID == "" || seen[req.ID] {
			return fmt.Errorf("recast: ledger has missing or duplicate ID %q", req.ID)
		}
		switch req.Status {
		case StatusSubmitted, StatusApproved, StatusRejected, StatusDone, StatusFailed:
		default:
			return fmt.Errorf("recast: ledger request %s has unknown status %q", req.ID, req.Status)
		}
		seen[req.ID] = true
		if n, ok := parseRequestID(req.ID); ok && n > maxID {
			maxID = n
		}
	}
	for _, req := range reqs {
		cp := cloneRequest(req)
		s.requests[cp.ID] = cp
	}
	s.nextID = maxID
	return nil
}

// parseRequestID extracts the sequence number from "req-NNNNNN".
func parseRequestID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "req-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}
