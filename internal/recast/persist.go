package recast

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Request-ledger persistence: the service's archival record. Requests,
// approvals, rejections, and results survive a restart; subscriptions are
// code-backed (the experiment re-registers its preserved analyses at
// startup), so only the ledger serializes.

// DumpRequests writes the full request ledger as JSON.
func (s *Service) DumpRequests(w io.Writer) error {
	reqs := s.List()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reqs)
}

// LoadRequests restores a dumped ledger into an empty service. It fails if
// the service already holds requests (the ledger is the source of truth,
// not a merge input), if IDs collide, or if any request references an
// unknown status.
func (s *Service) LoadRequests(r io.Reader) error {
	var reqs []*Request
	if err := json.NewDecoder(r).Decode(&reqs); err != nil {
		return fmt.Errorf("recast: parsing request ledger: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.requests) > 0 {
		return fmt.Errorf("recast: service already holds %d requests", len(s.requests))
	}
	maxID := 0
	seen := make(map[string]bool, len(reqs))
	for _, req := range reqs {
		if req.ID == "" || seen[req.ID] {
			return fmt.Errorf("recast: ledger has missing or duplicate ID %q", req.ID)
		}
		switch req.Status {
		case StatusSubmitted, StatusApproved, StatusRejected, StatusDone, StatusFailed:
		default:
			return fmt.Errorf("recast: ledger request %s has unknown status %q", req.ID, req.Status)
		}
		seen[req.ID] = true
		if n, ok := parseRequestID(req.ID); ok && n > maxID {
			maxID = n
		}
	}
	for _, req := range reqs {
		cp := cloneRequest(req)
		s.requests[cp.ID] = cp
	}
	s.nextID = maxID
	return nil
}

// parseRequestID extracts the sequence number from "req-NNNNNN".
func parseRequestID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "req-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Crash-safe journaling. The ledger dump above is a checkpoint: it
// captures the service at one instant, and everything after is lost with
// the process. The journal closes that gap — an append-only stream of
// request snapshots, one JSON line per mutation (submit, approve, reject,
// attempt, terminal transition). Replay is last-write-wins per request, so
// a journal truncated mid-line by a crash still restores every completed
// write, and requests that were approved but unfinished when the worker
// pool died come back as in-flight work to re-enqueue.

// AppendJournal writes one request snapshot as a journal line.
func AppendJournal(w io.Writer, req *Request) error {
	line, err := json.Marshal(req)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// SetJournal installs an append-only journal sink: every subsequent
// request mutation appends one snapshot line. Pass nil to stop journaling.
// The caller owns the writer's durability (flushing, fsync).
func (s *Service) SetJournal(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = w
	s.journalErr = nil
}

// JournalErr returns the first journal write failure since SetJournal, if
// any. Journaling is best-effort on the hot path; operators poll this.
func (s *Service) JournalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErr
}

// appendJournalLocked journals one request mutation; callers hold s.mu.
func (s *Service) appendJournalLocked(req *Request) {
	if s.journal == nil {
		return
	}
	if err := AppendJournal(s.journal, req); err != nil && s.journalErr == nil {
		s.journalErr = err
	}
}

// ReplayJournal restores a journal into an empty service and returns the
// IDs that were still in flight (approved, not yet terminal) when the
// journal ended — the work a restarted pool re-enqueues. A final line cut
// short by the crash is tolerated; any other malformed input is an error.
func (s *Service) ReplayJournal(r io.Reader) (inflight []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.requests) > 0 {
		return nil, fmt.Errorf("recast: service already holds %d requests", len(s.requests))
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	latest := make(map[string]*Request)
	var lineNo int
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A malformed line followed by more data is real corruption,
			// not a crash-truncated tail.
			return nil, pendingErr
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		if jerr := json.Unmarshal([]byte(line), &req); jerr != nil {
			pendingErr = fmt.Errorf("recast: journal line %d: %w", lineNo, jerr)
			continue
		}
		if req.ID == "" {
			return nil, fmt.Errorf("recast: journal line %d: request without ID", lineNo)
		}
		switch req.Status {
		case StatusSubmitted, StatusApproved, StatusRejected, StatusDone, StatusFailed:
		default:
			return nil, fmt.Errorf("recast: journal line %d: unknown status %q", lineNo, req.Status)
		}
		latest[req.ID] = &req
	}
	if serr := sc.Err(); serr != nil {
		return nil, fmt.Errorf("recast: reading journal: %w", serr)
	}
	maxID := 0
	ids := make([]string, 0, len(latest))
	for id, req := range latest {
		s.requests[id] = cloneRequest(req)
		if n, ok := parseRequestID(id); ok && n > maxID {
			maxID = n
		}
		ids = append(ids, id)
	}
	s.nextID = maxID
	sort.Strings(ids)
	for _, id := range ids {
		if s.requests[id].Status == StatusApproved {
			inflight = append(inflight, id)
		}
	}
	return inflight, nil
}
