package recast

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"daspos/internal/resilience"
)

// TestClientClassifiesResponses checks the transient/permanent taxonomy on
// the client's wire errors: 429 and 5xx invite a retry (with the server's
// Retry-After attached as the hint), other 4xx do not.
func TestClientClassifiesResponses(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		class      resilience.Class
		hint       time.Duration
	}{
		{"shed", http.StatusTooManyRequests, "7", resilience.Transient, 7 * time.Second},
		{"brownout", http.StatusServiceUnavailable, "2", resilience.Transient, 2 * time.Second},
		{"crash", http.StatusInternalServerError, "", resilience.Transient, 0},
		{"bad-request", http.StatusBadRequest, "", resilience.Permanent, 0},
		{"not-found", http.StatusNotFound, "", resilience.Permanent, 0},
		{"forbidden", http.StatusForbidden, "", resilience.Permanent, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				httpError(w, tc.status, "nope")
			}))
			defer srv.Close()
			c := &Client{BaseURL: srv.URL}
			_, err := c.Get("r-1")
			if err == nil {
				t.Fatal("error expected")
			}
			if got := resilience.Classify(err); got != tc.class {
				t.Fatalf("Classify(%v) = %s, want %s", err, got, tc.class)
			}
			var herr *HTTPError
			if !errors.As(err, &herr) || herr.Status != tc.status {
				t.Fatalf("error %v does not carry the HTTP status %d", err, tc.status)
			}
			hint, ok := resilience.RetryAfter(err)
			if tc.hint > 0 && (!ok || hint != tc.hint) {
				t.Fatalf("RetryAfter = %v/%v, want %v", hint, ok, tc.hint)
			}
			if tc.hint == 0 && ok {
				t.Fatalf("unexpected retry hint %v on %d", hint, tc.status)
			}
		})
	}
}

// TestClientRetryHonorsRetryAfter drives a client with a retry policy
// against a server that sheds twice with Retry-After before accepting, and
// checks (a) the call eventually succeeds without caller-side plumbing and
// (b) every backoff sleep is at least the server's advertised wait.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			httpError(w, http.StatusTooManyRequests, "shed")
			return
		}
		writeJSON(w, http.StatusOK, &Request{ID: "r-1", Status: StatusDone})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: srv.URL,
		Retry: resilience.Policy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		},
	}
	req, err := c.Get("r-1")
	if err != nil {
		t.Fatal(err)
	}
	if req.Status != StatusDone {
		t.Fatalf("status = %s, want done", req.Status)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(slept), slept)
	}
	for i, d := range slept {
		if d < 3*time.Second {
			t.Fatalf("sleep %d = %v, shorter than the server's Retry-After of 3s", i, d)
		}
	}
}

// TestClientRetryStopsOnPermanent checks a 4xx aborts the retry loop on
// the first attempt: repetition cannot fix a malformed request.
func TestClientRetryStopsOnPermanent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpError(w, http.StatusBadRequest, "unknown analysis")
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Retry: resilience.Policy{MaxAttempts: 5,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil }}}
	if _, err := c.Submit("NOPE", "alice", "", ModelSpec{}); err == nil {
		t.Fatal("error expected")
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent failure retried: %d calls", calls.Load())
	}
}

// TestClientSendsBudgetHeader checks a context deadline crosses the wire
// as a relative millisecond budget, and that its absence sends nothing.
func TestClientSendsBudgetHeader(t *testing.T) {
	var header atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(BudgetHeader))
		writeJSON(w, http.StatusOK, &Request{ID: "r-1"})
	}))
	defer srv.Close()

	// The injected clock is pinned to a snapshot of the real one: the
	// context deadline must be in the real future for the transport, while
	// the budget arithmetic stays exact against the pinned instant.
	base := time.Now()
	c := &Client{BaseURL: srv.URL, Now: func() time.Time { return base }}
	ctx, cancel := context.WithDeadline(context.Background(), base.Add(1500*time.Millisecond))
	defer cancel()
	if _, err := c.GetCtx(ctx, "r-1"); err != nil {
		t.Fatal(err)
	}
	got, err := resilience.DecodeBudget(header.Load().(string))
	if err != nil {
		t.Fatalf("budget header %q: %v", header.Load(), err)
	}
	if got != 1500*time.Millisecond {
		t.Fatalf("budget = %v, want 1.5s", got)
	}

	if _, err := c.Get("r-1"); err != nil {
		t.Fatal(err)
	}
	if h := header.Load().(string); h != "" {
		t.Fatalf("deadline-free call sent budget header %q", h)
	}
}
