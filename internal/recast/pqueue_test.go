package recast

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"daspos/internal/faults"
)

func openTestQueue(t *testing.T, dir string, weights map[string]float64) *PQueue {
	t.Helper()
	q, err := OpenPQueue(context.Background(), dir, PQueueOptions{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestPQueueWeightedFairClaimOrder(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), map[string]float64{"heavy": 2})
	// A flooding tenant enqueues six ahead of everyone; two light
	// tenants and one weighted tenant each enqueue two.
	for i := 0; i < 6; i++ {
		mustEnqueue(t, q, fmt.Sprintf("flood-%d", i), "flood")
	}
	for i := 0; i < 2; i++ {
		mustEnqueue(t, q, fmt.Sprintf("a-%d", i), "alice")
		mustEnqueue(t, q, fmt.Sprintf("b-%d", i), "bob")
		mustEnqueue(t, q, fmt.Sprintf("h-%d", i), "heavy")
	}
	var order []string
	for {
		e, ok, err := q.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		order = append(order, e.ID)
	}
	// Fair share: alice's and bob's second requests must both be served
	// before the flooder's third — the flood only queues behind itself.
	pos := make(map[string]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if pos["a-1"] > pos["flood-2"] || pos["b-1"] > pos["flood-2"] {
		t.Fatalf("flooder starved light tenants: order %v", order)
	}
	// Weight 2 means heavy's virtual time advances half as fast: both
	// heavy entries are served before the flooder's second.
	if pos["h-1"] > pos["flood-1"] {
		t.Fatalf("weight-2 tenant served behind flooder's fair share: order %v", order)
	}
	if len(order) != 12 {
		t.Fatalf("claimed %d entries, want 12", len(order))
	}
}

func mustEnqueue(t *testing.T, q *PQueue, id, tenant string) {
	t.Helper()
	if err := q.Enqueue(QueueEntry{ID: id, Tenant: tenant}); err != nil {
		t.Fatal(err)
	}
}

func TestPQueueIdempotence(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), nil)
	mustEnqueue(t, q, "r1", "t1")
	seq := func() uint64 {
		e, _ := q.Get("r1")
		return e.Seq
	}()
	mustEnqueue(t, q, "r1", "t1") // duplicate: no-op
	if got, _ := q.Get("r1"); got.Seq != seq {
		t.Fatal("duplicate enqueue reassigned seq")
	}
	if st := q.Stats(); st.Queued != 1 {
		t.Fatalf("queued = %d after duplicate enqueue, want 1", st.Queued)
	}
	if _, ok, _ := q.Claim(); !ok {
		t.Fatal("claim failed")
	}
	if err := q.Complete("r1", EntryDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete("r1", EntryFailed, ""); err != nil {
		t.Fatal("re-complete of a terminal entry must be a no-op, got", err)
	}
	if e, _ := q.Get("r1"); e.State != EntryDone {
		t.Fatalf("re-complete changed state to %s", e.State)
	}
	if err := q.Complete("r1", "meandering", ""); err == nil {
		t.Fatal("non-terminal state accepted")
	}
}

func TestPQueueRecoveryRequeuesOrphans(t *testing.T) {
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil)
	mustEnqueue(t, q, "r1", "t1")
	mustEnqueue(t, q, "r2", "t1")
	if _, ok, _ := q.Claim(); !ok {
		t.Fatal("claim failed")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestQueue(t, dir, nil)
	st := re.Stats()
	if st.Queued != 2 || st.Claimed != 0 {
		t.Fatalf("after recovery: queued=%d claimed=%d, want 2/0 (orphan requeued)", st.Queued, st.Claimed)
	}
	// The orphan keeps its FIFO position: r1 is claimed again first.
	e, ok, err := re.Claim()
	if err != nil || !ok {
		t.Fatal("re-claim failed", err)
	}
	if e.ID != "r1" {
		t.Fatalf("recovered claim order starts at %s, want r1", e.ID)
	}
}

func TestPQueueTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil)
	mustEnqueue(t, q, "r1", "t1")
	mustEnqueue(t, q, "r2", "t1")
	path := q.JournalPath()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := faults.TearFinalRecord(path); err != nil {
		t.Fatal(err)
	}
	re := openTestQueue(t, dir, nil)
	if _, ok := re.Get("r2"); ok {
		t.Fatal("torn enqueue survived replay")
	}
	if _, ok := re.Get("r1"); !ok {
		t.Fatal("durable enqueue lost with the torn tail")
	}
	// The truncation must leave the journal appendable: a fresh enqueue
	// replays cleanly on the next open.
	mustEnqueue(t, re, "r3", "t1")
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openTestQueue(t, dir, nil)
	if st := re2.Stats(); st.Queued != 2 {
		t.Fatalf("after torn-tail truncate + append: queued=%d, want 2", st.Queued)
	}
}

// queueScript drives one full lifecycle against the queue, written so
// every operation is idempotent: enqueues dedup by ID, claims drain
// whatever is still pending, and completions are addressed by ID with a
// fixed outcome. Re-running the script after a crash therefore converges
// on the same final state as an uncrashed run.
func queueScript(q *PQueue) error {
	entries := []QueueEntry{
		{ID: "r1", Tenant: "alice", DedupKey: "k1"},
		{ID: "r2", Tenant: "bob", DedupKey: "k2"},
		{ID: "r3", Tenant: "alice", DedupKey: "k1"}, // dedup follower of r1
		{ID: "r4", Tenant: "carol", DeadlineUnixMs: 1},
	}
	for _, e := range entries {
		if err := q.Enqueue(e); err != nil {
			return err
		}
	}
	for {
		_, ok, err := q.Claim()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	outcomes := []struct{ id, state, dedupOf string }{
		{"r1", EntryDone, ""},
		{"r2", EntryFailed, ""},
		{"r3", EntryDone, "r1"}, // dedup hit: answered from r1's archive
		{"r4", EntryExpired, ""},
	}
	for _, o := range outcomes {
		if err := q.Complete(o.id, o.state, o.dedupOf); err != nil {
			return err
		}
	}
	return nil
}

// TestPQueueKillSweep crashes the queue at every instrumented durable
// instruction of the enqueue → claim → dedup-complete → complete
// lifecycle, reopens, re-runs the script, and demands the recovered
// state be byte-identical to a never-crashed reference. The sweep covers
// every kill point hit: "queue.append" (before any byte), "queue.torn"
// (record half-written), and "queue.sync" (written, not yet durable).
func TestPQueueKillSweep(t *testing.T) {
	// Reference: the script against a queue that never crashes.
	refDir := t.TempDir()
	ref := openTestQueue(t, refDir, nil)
	if err := queueScript(ref); err != nil {
		t.Fatal(err)
	}
	want := ref.StateSnapshot()

	// Size the sweep with a disarmed killer.
	probe := faults.NewKiller()
	probeDir := t.TempDir()
	pq := openTestQueue(t, probeDir, nil)
	pq.SetKill(probe.Hit)
	if err := queueScript(pq); err != nil {
		t.Fatal(err)
	}
	total := probe.Hits()
	if total < 30 {
		t.Fatalf("only %d kill points in the lifecycle; instrumentation missing", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("kill-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			killer := faults.NewKiller()
			killer.CrashAfterN(n)
			q, err := OpenPQueue(context.Background(), dir, PQueueOptions{})
			if err != nil {
				t.Fatal(err)
			}
			q.SetKill(killer.Hit)
			crashed := func() (c bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := faults.AsKill(r); !ok {
							panic(r)
						}
						c = true
					}
				}()
				if err := queueScript(q); err != nil {
					t.Fatal(err)
				}
				return false
			}()
			q.Close()
			if !crashed {
				t.Fatalf("kill at hit %d never fired", n)
			}
			// Restart: reopen the journal and re-run the script to the
			// end, as the restarted service would.
			re, err := OpenPQueue(context.Background(), dir, PQueueOptions{})
			if err != nil {
				t.Fatalf("reopen after kill %d: %v", n, err)
			}
			defer re.Close()
			if err := queueScript(re); err != nil {
				t.Fatalf("resume after kill %d: %v", n, err)
			}
			got := re.StateSnapshot()
			if !bytes.Equal(got, want) {
				t.Fatalf("state after kill %d diverges from uncrashed reference:\n--- got ---\n%s\n--- want ---\n%s",
					n, got, want)
			}
			// And the final journal must itself replay to the same state.
			re.Close()
			re2, err := OpenPQueue(context.Background(), dir, PQueueOptions{})
			if err != nil {
				t.Fatalf("final replay after kill %d: %v", n, err)
			}
			defer re2.Close()
			if got2 := re2.StateSnapshot(); !bytes.Equal(got2, want) {
				t.Fatalf("journal replay after kill %d diverges:\n%s", n, got2)
			}
		})
	}
}

func TestPQueueCorruptMidStreamFailsOpen(t *testing.T) {
	dir := t.TempDir()
	q := openTestQueue(t, dir, nil)
	mustEnqueue(t, q, "r1", "t1")
	path := q.JournalPath()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("not json\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPQueue(context.Background(), dir, PQueueOptions{}); err == nil {
		t.Fatal("mid-stream corruption opened silently")
	}
}
