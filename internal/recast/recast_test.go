package recast

import (
	"net/http/httptest"
	"strings"
	"testing"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/leshouches"
)

// highMassSearch is the preserved analysis the experiment subscribes.
func highMassSearch() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass dimuon search, 20/fb",
		Objects: []leshouches.ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}

func newFullSimService(t testing.TB) *Service {
	t.Helper()
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, 1); err != nil {
		t.Fatal(err)
	}
	backend := &FullSimBackend{Det: det, CondDB: db, Tag: "t", Run: 1, LuminosityPb: 20000}
	svc := NewService(backend)
	if err := svc.Subscribe(Subscription{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass dimuon search",
		Record:      highMassSearch(),
	}); err != nil {
		t.Fatal(err)
	}
	return svc
}

func validModel() ModelSpec {
	return ModelSpec{Process: "zprime", MassGeV: 1000, Events: 40, Seed: 7}
}

func TestModelValidation(t *testing.T) {
	if err := validModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ModelSpec{
		{Process: "axion", MassGeV: 100, Events: 10},
		{Process: "zprime", MassGeV: 10, Events: 10},
		{Process: "zprime", MassGeV: 1000, Events: 0},
		{Process: "zprime", MassGeV: 1000, Events: 1 << 30},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

func TestSubscriptionRules(t *testing.T) {
	svc := newFullSimService(t)
	if err := svc.Subscribe(Subscription{Name: "GPD_2013_DIMUON_HIGHMASS", Record: highMassSearch()}); err == nil {
		t.Fatal("duplicate subscription accepted")
	}
	if err := svc.Subscribe(Subscription{Name: "", Record: highMassSearch()}); err == nil {
		t.Fatal("nameless subscription accepted")
	}
	if err := svc.Subscribe(Subscription{Name: "X", Record: nil}); err == nil {
		t.Fatal("recordless subscription accepted")
	}
	infos := svc.Analyses()
	if len(infos) != 1 || infos[0].Name != "GPD_2013_DIMUON_HIGHMASS" {
		t.Fatalf("catalogue: %+v", infos)
	}
}

func TestLifecycle(t *testing.T) {
	svc := newFullSimService(t)
	req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist@ippp", "test Z' coupling", validModel())
	if err != nil {
		t.Fatal(err)
	}
	if req.Status != StatusSubmitted || req.ID == "" {
		t.Fatalf("submitted: %+v", req)
	}
	// Cannot process before approval.
	if _, err := svc.Process(req.ID); err == nil {
		t.Fatal("unapproved request processed")
	}
	if err := svc.Approve(req.ID); err != nil {
		t.Fatal(err)
	}
	// Cannot approve twice.
	if err := svc.Approve(req.ID); err == nil {
		t.Fatal("double approval accepted")
	}
	done, err := svc.Process(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("processed: %+v", done)
	}
	res := done.Result
	if res.Generated != 40 || res.BackEnd != "fullsim" {
		t.Fatalf("result: %+v", res)
	}
	if res.Acceptance <= 0 || res.Acceptance > 1 {
		t.Fatalf("acceptance %v", res.Acceptance)
	}
	if res.UpperLimitEvents <= 0 || res.UpperLimitXsecPb <= 0 {
		t.Fatalf("limits: %+v", res)
	}
	if len(res.CutFlow) != 4 || res.CutFlow[0] != 40 {
		t.Fatalf("cutflow: %v", res.CutFlow)
	}
}

func TestRejection(t *testing.T) {
	svc := newFullSimService(t)
	req, _ := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist", "", validModel())
	if err := svc.Reject(req.ID, "model already covered by published limits"); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.Get(req.ID)
	if got.Status != StatusRejected || got.Reason == "" {
		t.Fatalf("rejected: %+v", got)
	}
	if _, err := svc.Process(req.ID); err == nil {
		t.Fatal("rejected request processed")
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newFullSimService(t)
	if _, err := svc.Submit("UNKNOWN", "x", "", validModel()); err == nil {
		t.Fatal("unsubscribed analysis accepted")
	}
	if _, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "", "", validModel()); err == nil {
		t.Fatal("anonymous request accepted")
	}
	bad := validModel()
	bad.MassGeV = 1
	if _, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", bad); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := svc.Get("req-999999"); err == nil {
		t.Fatal("phantom request")
	}
}

func TestFullSimAcceptanceScalesWithMass(t *testing.T) {
	// A heavier Z' produces harder muons: acceptance of the high-mass
	// selection must rise steeply from below threshold to above it.
	svc := newFullSimService(t)
	acceptance := func(mass float64) float64 {
		m := validModel()
		m.MassGeV = mass
		m.Events = 60
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", m)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			t.Fatal(err)
		}
		done, err := svc.Process(req.ID)
		if err != nil {
			t.Fatal(err)
		}
		return done.Result.Acceptance
	}
	low := acceptance(200) // below the 400 GeV mass cut
	high := acceptance(1500)
	if high <= low {
		t.Fatalf("acceptance ordering: m=200 -> %v, m=1500 -> %v", low, high)
	}
	if high < 0.1 {
		t.Fatalf("high-mass acceptance implausibly low: %v", high)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	svc := newFullSimService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	theorist := &Client{BaseURL: srv.URL}
	experiment := &Client{BaseURL: srv.URL, Experiment: true}

	infos, err := theorist.Analyses()
	if err != nil || len(infos) != 1 {
		t.Fatalf("analyses: %v %v", infos, err)
	}
	req, err := theorist.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist@ippp", "Z' at 1 TeV", validModel())
	if err != nil {
		t.Fatal(err)
	}
	// The requester cannot approve: the closed-system boundary.
	if err := theorist.Approve(req.ID); err == nil || !strings.Contains(err.Error(), "experiment role") {
		t.Fatalf("role gate breached: %v", err)
	}
	if err := experiment.Approve(req.ID); err != nil {
		t.Fatal(err)
	}
	done, err := experiment.ProcessRequest(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("done: %+v", done)
	}
	// The theorist polls and sees only numbers.
	polled, err := theorist.Get(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.Result.Acceptance != done.Result.Acceptance {
		t.Fatal("result mismatch between poll and process")
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := newFullSimService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Experiment: true}
	if _, err := c.Get("req-000042"); err == nil {
		t.Fatal("phantom request fetched")
	}
	if err := c.Approve("req-000042"); err == nil {
		t.Fatal("phantom approval")
	}
	if _, err := c.Submit("GHOST", "x", "", validModel()); err == nil {
		t.Fatal("unsubscribed submit accepted")
	}
	if _, err := c.ProcessRequest("req-000042"); err == nil {
		t.Fatal("phantom process")
	}
}

func TestQueueProcessesApprovedRequests(t *testing.T) {
	svc := newFullSimService(t)
	q := NewQueue(svc, 2)
	var ids []string
	for i := 0; i < 4; i++ {
		m := validModel()
		m.Seed = uint64(i)
		m.Events = 15
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", m)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, req.ID)
		if !q.Enqueue(req.ID) {
			t.Fatal("enqueue refused")
		}
	}
	errs := q.Wait()
	for _, id := range ids {
		if errs[id] != nil {
			t.Fatalf("request %s failed: %v", id, errs[id])
		}
		got, _ := svc.Get(id)
		if got.Status != StatusDone {
			t.Fatalf("request %s status %s", id, got.Status)
		}
	}
	if q.Enqueue("late") {
		t.Fatal("enqueue after Wait accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		svc := newFullSimService(t)
		req, _ := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", validModel())
		_ = svc.Approve(req.ID)
		done, err := svc.Process(req.ID)
		if err != nil {
			t.Fatal(err)
		}
		return done.Result
	}
	a, b := run(), run()
	if a.Selected != b.Selected || a.Acceptance != b.Acceptance {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func BenchmarkFullSimRequest(b *testing.B) {
	svc := newFullSimService(b)
	for i := 0; i < b.N; i++ {
		m := validModel()
		m.Events = 10
		m.Seed = uint64(i)
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", m)
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Process(req.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExclusionVerdict(t *testing.T) {
	svc := newFullSimService(t)
	// A huge predicted cross section must be excluded; a tiny one must not.
	verdict := func(xsecPb float64) *Result {
		m := validModel()
		m.Events = 50
		m.CrossSectionPb = xsecPb
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", m)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			t.Fatal(err)
		}
		done, err := svc.Process(req.ID)
		if err != nil {
			t.Fatal(err)
		}
		return done.Result
	}
	big := verdict(1.0) // 1 pb at 20/fb -> thousands of predicted events
	if !big.Excluded || big.PredictedEvents <= big.UpperLimitEvents {
		t.Fatalf("large cross section not excluded: %+v", big)
	}
	small := verdict(1e-7)
	if small.Excluded {
		t.Fatalf("negligible cross section excluded: %+v", small)
	}
	// No cross section: no verdict fields.
	none := verdict(0)
	if none.Excluded || none.PredictedEvents != 0 {
		t.Fatalf("verdict without cross section: %+v", none)
	}
}

func TestMassScan(t *testing.T) {
	svc := newFullSimService(t)
	base := validModel()
	base.Events = 30
	points, err := MassScan(svc, "GPD_2013_DIMUON_HIGHMASS", "theorist", base, []float64{200, 800, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	// Acceptance must rise across the 400 GeV mass cut.
	if points[2].Result.Acceptance <= points[0].Result.Acceptance {
		t.Fatalf("acceptance not rising with mass: %v -> %v",
			points[0].Result.Acceptance, points[2].Result.Acceptance)
	}
	// A scan against an unsubscribed analysis fails fast.
	if _, err := MassScan(svc, "GHOST", "x", base, []float64{500}); err == nil {
		t.Fatal("scan of unsubscribed analysis succeeded")
	}
}
