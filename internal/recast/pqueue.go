package recast

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// PQueue is the crash-safe multi-tenant work queue behind the RECAST
// front door. Accepted work lives in an append-only journal with the
// same durability discipline as the checkpoint ledger: every mutation
// (enqueue, claim, complete) is one fsynced JSON line, a crash-torn
// final line is dropped and truncated away on reopen, and claimed-but-
// unfinished entries are handed back to the queue on recovery — an
// accepted request is never lost to a process death.
//
// Scheduling is weighted fair queuing over tenants: each tenant carries
// a virtual time that advances by 1/weight per claim, and Claim always
// serves the eligible tenant with the smallest virtual time (ties by
// name). A tenant that floods the queue only queues behind itself;
// everyone else's share is untouched.
type PQueue struct {
	ctx     context.Context
	dir     string
	journal *os.File

	mu      sync.Mutex
	entries map[string]*QueueEntry
	// pending holds each tenant's queued entry IDs in enqueue order.
	pending map[string][]string
	vtime   map[string]float64
	weights map[string]float64
	seq     uint64
	kill    func(point string)

	// ready pulses when work becomes claimable; workers select on it.
	ready chan struct{}
}

// Entry states. Queued and claimed are live; the rest are terminal.
const (
	EntryQueued  = "queued"
	EntryClaimed = "claimed"
	EntryDone    = "done"
	EntryFailed  = "failed"
	EntryExpired = "expired"
)

// QueueEntry is one unit of accepted work. Everything needed to resume
// after a crash travels in the entry — the journal is the only state.
type QueueEntry struct {
	// ID is the request ID; enqueue is idempotent per ID.
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// DedupKey memoizes the computation; empty disables dedup.
	DedupKey string `json:"dedup_key,omitempty"`
	// DeadlineUnixMs is the request's absolute deadline (wall clock,
	// milliseconds since epoch); 0 means none. Stored absolute so a
	// post-crash worker can still tell the request is dead.
	DeadlineUnixMs int64 `json:"deadline_unix_ms,omitempty"`
	// Seq orders entries within a tenant (FIFO); assigned at enqueue.
	Seq   uint64 `json:"seq"`
	State string `json:"state"`
	// DedupOf names the primary request that answered this entry, when
	// it completed via memoization.
	DedupOf string `json:"dedup_of,omitempty"`
}

// queueRecord is one journal line.
type queueRecord struct {
	Op      string      `json:"op"` // "enqueue", "claim", "complete"
	ID      string      `json:"id"`
	Entry   *QueueEntry `json:"entry,omitempty"`
	State   string      `json:"state,omitempty"`
	DedupOf string      `json:"dedup_of,omitempty"`
}

// PQueueOptions configures a queue at open time.
type PQueueOptions struct {
	// Weights maps tenant name to fair-share weight; absent tenants get
	// 1. Weights apply at replay too, so a reopened queue charges
	// virtual time exactly as the original did.
	Weights map[string]float64
}

const queueJournalName = "queue.log"

// OpenPQueue creates or recovers the queue journal in dir. Recovery
// replays every durable line, truncates a crash-torn tail, and returns
// claimed-but-unfinished entries to the queue (their claimer died with
// the process).
func OpenPQueue(ctx context.Context, dir string, opt PQueueOptions) (*PQueue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recast: creating queue dir: %w", err)
	}
	path := filepath.Join(dir, queueJournalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("recast: reading queue journal: %w", err)
	}
	q := &PQueue{
		ctx:     ctx,
		dir:     dir,
		entries: make(map[string]*QueueEntry),
		pending: make(map[string][]string),
		vtime:   make(map[string]float64),
		weights: make(map[string]float64),
		ready:   make(chan struct{}, 1),
	}
	for t, w := range opt.Weights {
		if w > 0 {
			q.weights[t] = w
		}
	}
	valid, err := q.replay(data)
	if err != nil {
		return nil, err
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("recast: truncating torn queue journal: %w", err)
		}
	}
	// Orphaned claims: the worker died with the process. Hand the work
	// back, preserving tenant FIFO order by seq. In-memory only — the
	// journal already proves the entry was accepted, and the next claim
	// re-journals its own line.
	q.requeueOrphansLocked()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recast: opening queue journal: %w", err)
	}
	q.journal = f
	for _, ids := range q.pending {
		if len(ids) > 0 {
			q.signalLocked()
			break
		}
	}
	return q, nil
}

// Close releases the journal handle; the directory stays valid for a
// later OpenPQueue.
func (q *PQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.journal == nil {
		return nil
	}
	err := q.journal.Close() //daspos:lock-ok — q.mu excludes in-flight appendLocked writers while the handle dies
	q.journal = nil
	return err
}

// JournalPath returns the journal file location — exposed for the chaos
// tests that tear its final record.
func (q *PQueue) JournalPath() string {
	return filepath.Join(q.dir, queueJournalName)
}

// SetKill installs the fault hook invoked at each instrumented
// instruction of the append protocol ("queue.append", "queue.torn",
// "queue.sync"). Chaos tests arm it with faults.Killer; production
// leaves it nil.
func (q *PQueue) SetKill(fn func(point string)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.kill = fn
}

func (q *PQueue) killPoint(point string) {
	if q.kill != nil {
		q.kill(point)
	}
}

// replay folds journal bytes into memory and returns the byte length of
// the valid prefix (a partial final line is a crash tear; a malformed
// complete line is corruption).
func (q *PQueue) replay(data []byte) (int64, error) {
	var offset int64
	lineNo := 0
	for int(offset) < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			return offset, nil
		}
		lineNo++
		line := bytes.TrimSpace(data[offset : offset+int64(nl)])
		if len(line) > 0 {
			var rec queueRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return 0, fmt.Errorf("recast: queue journal line %d corrupt: %w", lineNo, err)
			}
			if err := q.applyLocked(rec, lineNo); err != nil {
				return 0, err
			}
		}
		offset += int64(nl) + 1
	}
	return offset, nil
}

// applyLocked folds one record into the state tables. Callers hold mu
// (or, during Open, have exclusive access).
func (q *PQueue) applyLocked(rec queueRecord, lineNo int) error {
	switch rec.Op {
	case "enqueue":
		if rec.Entry == nil || rec.Entry.ID == "" {
			return fmt.Errorf("recast: queue journal line %d: enqueue without entry", lineNo)
		}
		e := *rec.Entry
		e.State = EntryQueued
		q.entries[e.ID] = &e
		q.pending[e.Tenant] = append(q.pending[e.Tenant], e.ID)
		if e.Seq > q.seq {
			q.seq = e.Seq
		}
	case "claim":
		e, ok := q.entries[rec.ID]
		if !ok {
			return fmt.Errorf("recast: queue journal line %d: claim of unknown entry %s", lineNo, rec.ID)
		}
		q.removePendingLocked(e)
		// A repeated claim line means a crash orphaned the first claim
		// and a later claimer took the entry again; the tenant is
		// charged once per service, not once per line.
		if e.State != EntryClaimed {
			q.vtime[e.Tenant] += 1 / q.weightOf(e.Tenant)
		}
		e.State = EntryClaimed
	case "complete":
		e, ok := q.entries[rec.ID]
		if !ok {
			return fmt.Errorf("recast: queue journal line %d: complete of unknown entry %s", lineNo, rec.ID)
		}
		q.removePendingLocked(e)
		e.State = rec.State
		e.DedupOf = rec.DedupOf
	default:
		return fmt.Errorf("recast: queue journal line %d: unknown op %q", lineNo, rec.Op)
	}
	return nil
}

func (q *PQueue) removePendingLocked(e *QueueEntry) {
	ids := q.pending[e.Tenant]
	for i, id := range ids {
		if id == e.ID {
			q.pending[e.Tenant] = append(ids[:i:i], ids[i+1:]...)
			return
		}
	}
}

func (q *PQueue) weightOf(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// requeueOrphansLocked returns claimed entries to their tenant queues in
// seq order — recovery of work whose claimer died.
func (q *PQueue) requeueOrphansLocked() {
	var orphans []*QueueEntry
	for _, e := range q.entries {
		if e.State == EntryClaimed {
			orphans = append(orphans, e)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Seq < orphans[j].Seq })
	for _, e := range orphans {
		e.State = EntryQueued
		// Refund the claim charge: the service never happened, and the
		// next claim will charge again — so a crashed-and-recovered
		// queue converges to the same virtual times as one that never
		// crashed.
		q.vtime[e.Tenant] -= 1 / q.weightOf(e.Tenant)
		// Reinsert preserving seq order among the tenant's queued IDs.
		ids := q.pending[e.Tenant]
		at := sort.Search(len(ids), func(i int) bool {
			return q.entries[ids[i]].Seq > e.Seq
		})
		ids = append(ids, "")
		copy(ids[at+1:], ids[at:])
		ids[at] = e.ID
		q.pending[e.Tenant] = ids
	}
}

// appendLocked durably appends one journal line: write (split, so an
// injected kill can model a torn record), fsync, then the in-memory
// update — state never runs ahead of the disk.
func (q *PQueue) appendLocked(rec queueRecord) error {
	if q.journal == nil {
		return fmt.Errorf("recast: queue is closed")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("recast: encoding queue record: %w", err)
	}
	line = append(line, '\n')
	q.killPoint("queue.append")
	half := len(line) / 2
	if _, err := q.journal.Write(line[:half]); err != nil {
		return fmt.Errorf("recast: queue journal append: %w", err)
	}
	q.killPoint("queue.torn")
	if _, err := q.journal.Write(line[half:]); err != nil {
		return fmt.Errorf("recast: queue journal append: %w", err)
	}
	q.killPoint("queue.sync")
	if err := q.journal.Sync(); err != nil {
		return fmt.Errorf("recast: queue journal fsync: %w", err)
	}
	return q.applyLocked(rec, -1)
}

// Enqueue accepts one unit of work. Idempotent per ID: re-enqueueing an
// entry the journal already knows (any state) is a no-op, so a client
// retrying after an ambiguous crash cannot double-queue a request. The
// entry's Seq is assigned here.
func (q *PQueue) Enqueue(e QueueEntry) error {
	if e.ID == "" || e.Tenant == "" {
		return fmt.Errorf("recast: queue entry needs an id and a tenant")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, exists := q.entries[e.ID]; exists {
		return nil
	}
	q.seq++
	e.Seq = q.seq
	e.State = EntryQueued
	if err := q.appendLocked(queueRecord{Op: "enqueue", ID: e.ID, Entry: &e}); err != nil {
		return err
	}
	q.signalLocked()
	return nil
}

// signalLocked pulses the ready channel without blocking.
func (q *PQueue) signalLocked() {
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that pulses when work may be claimable.
// Workers select on it alongside their context; a pulse is a hint, not
// a guarantee — always re-try Claim.
func (q *PQueue) Ready() <-chan struct{} { return q.ready }

// Claim journals and returns the next entry under weighted fair
// queuing: the eligible tenant with the least virtual time (ties by
// name), FIFO within the tenant. ok is false when nothing is queued.
func (q *PQueue) Claim() (e QueueEntry, ok bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	tenant := ""
	for t, ids := range q.pending {
		if len(ids) == 0 {
			continue
		}
		if tenant == "" || q.vtime[t] < q.vtime[tenant] ||
			(q.vtime[t] == q.vtime[tenant] && t < tenant) {
			tenant = t
		}
	}
	if tenant == "" {
		return QueueEntry{}, false, nil
	}
	id := q.pending[tenant][0]
	if err := q.appendLocked(queueRecord{Op: "claim", ID: id}); err != nil {
		return QueueEntry{}, false, err
	}
	return *q.entries[id], true, nil
}

// Complete journals an entry's terminal state (EntryDone, EntryFailed,
// or EntryExpired), with dedupOf recording a memoized completion.
// Idempotent: completing an already-terminal entry is a no-op, so a
// post-crash replay of the same script cannot double-complete.
func (q *PQueue) Complete(id, state, dedupOf string) error {
	switch state {
	case EntryDone, EntryFailed, EntryExpired:
	default:
		return fmt.Errorf("recast: %q is not a terminal queue state", state)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[id]
	if !ok {
		return fmt.Errorf("recast: queue has no entry %s", id)
	}
	if e.State != EntryQueued && e.State != EntryClaimed {
		return nil
	}
	return q.appendLocked(queueRecord{Op: "complete", ID: id, State: state, DedupOf: dedupOf})
}

// Get returns a copy of an entry.
func (q *PQueue) Get(id string) (QueueEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[id]
	if !ok {
		return QueueEntry{}, false
	}
	return *e, true
}

// QueueStats is the live census the admission controller and the status
// endpoint read.
type QueueStats struct {
	Queued   int            `json:"queued"`
	Claimed  int            `json:"claimed"`
	Terminal int            `json:"terminal"`
	ByTenant map[string]int `json:"by_tenant"` // queued depth per tenant
}

// Stats returns the live census.
func (q *PQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{ByTenant: make(map[string]int)}
	for t, ids := range q.pending {
		if len(ids) > 0 {
			st.ByTenant[t] = len(ids)
		}
		st.Queued += len(ids)
	}
	for _, e := range q.entries {
		if e.State == EntryClaimed {
			st.Claimed++
		} else if e.State != EntryQueued {
			st.Terminal++
		}
	}
	return st
}

// StateSnapshot renders the queue's full logical state as canonical
// bytes: every entry sorted by ID, then each tenant's queued order,
// then per-tenant virtual times — the equality the kill-point sweep
// asserts between a crashed-and-recovered queue and an uncrashed
// reference.
func (q *PQueue) StateSnapshot() []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	type snapshot struct {
		Entries []QueueEntry        `json:"entries"`
		Pending map[string][]string `json:"pending"`
		VTime   map[string]float64  `json:"vtime"`
	}
	s := snapshot{Pending: make(map[string][]string), VTime: make(map[string]float64)}
	ids := make([]string, 0, len(q.entries))
	for id := range q.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.Entries = append(s.Entries, *q.entries[id])
	}
	for t, p := range q.pending {
		if len(p) > 0 {
			s.Pending[t] = append([]string(nil), p...)
		}
	}
	for t, v := range q.vtime {
		if v != 0 {
			s.VTime[t] = v
		}
	}
	out, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		// Snapshot marshals plain structs of strings and numbers; failure
		// here is a programming error, and tests would catch it loudly.
		return []byte("snapshot-error: " + err.Error())
	}
	return out
}
