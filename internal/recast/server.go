package recast

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"daspos/internal/leshouches"
	"daspos/internal/resilience"
)

// Server is the overload-safe multi-tenant front door: the Service state
// machine behind admission control (per-tenant token buckets, queue
// bounds, deadline feasibility), a crash-safe fair queue (PQueue), a
// worker pool with end-to-end deadline propagation, request memoization
// keyed by (model, chain config), and a breaker-gated back end whose
// brown-outs degrade intake instead of collapsing it.
//
// Two journals make acceptance durable: requests.log (request snapshots,
// fsynced per line) records what each request *is*, and queue/queue.log
// records what the scheduler owes. Recovery replays both and reconciles:
// approved requests missing from the queue are re-enqueued, queue
// entries whose request already finished are closed out. An accepted
// request — one the client saw a 2xx for — is never lost.
type Server struct {
	svc *Service
	pq  *PQueue
	cfg ServerConfig

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	breaker *resilience.Breaker
	now     func() time.Time

	reqLog *syncWriter

	mu      sync.Mutex
	buckets map[string]*resilience.TokenBucket
	// dedupDone maps dedup key → ID of a done primary whose archived
	// result answers any identical request.
	dedupDone map[string]string
	// ewmaMs tracks back-end service time (exponentially weighted) for
	// deadline-feasibility and Retry-After estimates.
	ewmaMs  float64
	tenants map[string]*TenantStatus

	admitted, shed, served, dedupHits, expired, failed uint64
	journalErrs                                        uint64
}

// ServerConfig tunes the front door. The zero value serves with
// defaults: 2 workers, a 64-deep queue shrinking to 16 under
// degradation, unlimited tenant rates, manual approval.
type ServerConfig struct {
	// JournalDir holds requests.log and the queue journal. Required.
	JournalDir string
	// Workers is the processing pool size; < 1 means 2.
	Workers int
	// QueueBound sheds new work once this many entries are queued;
	// < 1 means 64.
	QueueBound int
	// DegradedBound replaces QueueBound while the back end browns out
	// (breaker not closed); < 1 means QueueBound/4 (at least 1).
	DegradedBound int
	// TenantRate is each tenant's sustained admission rate in requests
	// per second; <= 0 means unlimited.
	TenantRate float64
	// TenantBurst is each tenant's bucket size; < 1 means 8.
	TenantBurst float64
	// TenantWeights sets fair-share weights (default 1 per tenant).
	TenantWeights map[string]float64
	// AutoApprove approves every submitted request immediately — the
	// multi-tenant service mode, where the experiment pre-delegated
	// approval for subscribed analyses. When false, work enters the
	// queue at explicit approval.
	AutoApprove bool
	// Policy is the per-request back-end retry policy; a zero policy
	// means DefaultQueuePolicy.
	Policy resilience.Policy
	// Breaker tunes the back-end circuit breaker.
	Breaker resilience.BreakerConfig
	// Now is a test hook for the clock; nil means time.Now.
	Now func() time.Time
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueBound < 1 {
		c.QueueBound = 64
	}
	if c.DegradedBound < 1 {
		c.DegradedBound = c.QueueBound / 4
		if c.DegradedBound < 1 {
			c.DegradedBound = 1
		}
	}
	if c.TenantBurst < 1 {
		c.TenantBurst = 8
	}
	if c.Policy.MaxAttempts == 0 {
		c.Policy = DefaultQueuePolicy()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// TenantStatus is one tenant's admission ledger.
type TenantStatus struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Served   uint64 `json:"served"`
}

// BudgetHeader carries a request's remaining deadline budget across the
// HTTP hop, as relative milliseconds (clock-skew tolerant).
const BudgetHeader = "X-Recast-Budget-Ms"

// syncWriter appends to a file with an fsync per write, so the request
// journal can never lag the queue journal across a crash.
type syncWriter struct {
	mu sync.Mutex
	f  *os.File
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.f.Write(p) //daspos:lock-ok — write-ahead journal: the record must be durable before the next writer interleaves
	if err != nil {
		return n, err
	}
	return n, w.f.Sync() //daspos:lock-ok — the fsync is the write barrier the journal exists for; convoying here is the contract
}

func (w *syncWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close() //daspos:lock-ok — w.mu excludes concurrent Writes while the handle dies
}

// NewServer builds the front door over a prepared Service (subscriptions
// registered, no requests yet), recovering both journals from
// cfg.JournalDir and reconciling them. Start launches the workers.
func NewServer(ctx context.Context, svc *Service, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("recast: server needs a journal directory")
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return nil, fmt.Errorf("recast: creating journal dir: %w", err)
	}

	// Recover the request ledger: replay, then reattach as the journal
	// sink (fsync per line) so new mutations append durably.
	reqPath := filepath.Join(cfg.JournalDir, "requests.log")
	if f, err := os.Open(reqPath); err == nil {
		_, rerr := svc.ReplayJournal(f)
		f.Close() //daspos:close-ok — read-only replay handle, nothing buffered
		if rerr != nil {
			return nil, fmt.Errorf("recast: replaying request journal: %w", rerr)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("recast: opening request journal: %w", err)
	}
	rf, err := os.OpenFile(reqPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recast: opening request journal for append: %w", err)
	}
	reqLog := &syncWriter{f: rf}
	svc.SetJournal(reqLog)

	pq, err := OpenPQueue(ctx, filepath.Join(cfg.JournalDir, "queue"),
		PQueueOptions{Weights: cfg.TenantWeights})
	if err != nil {
		reqLog.Close() //daspos:close-ok — error path, the open error wins
		return nil, err
	}

	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		svc: svc, pq: pq, cfg: cfg,
		ctx: sctx, cancel: cancel,
		breaker:   resilience.NewBreaker(cfg.Breaker),
		now:       cfg.Now,
		reqLog:    reqLog,
		buckets:   make(map[string]*resilience.TokenBucket),
		dedupDone: make(map[string]string),
		tenants:   make(map[string]*TenantStatus),
	}
	// Gate the back end behind the server's breaker so brown-outs trip
	// degraded intake. Idempotent across recoveries of the same Service.
	if _, gated := svc.backend.(*GatedBackend); !gated {
		openInterval := cfg.Breaker.OpenInterval
		if openInterval <= 0 {
			openInterval = time.Second
		}
		svc.backend = &GatedBackend{Inner: svc.backend, Breaker: s.breaker, OpenInterval: openInterval}
	} else {
		// A reused Service keeps its gate; point the server's degraded
		// signal at the existing breaker.
		s.breaker = svc.backend.(*GatedBackend).Breaker
	}
	if err := s.reconcile(); err != nil {
		s.pq.Close()
		reqLog.Close() //daspos:close-ok — error path, the reconcile error wins
		cancel()
		return nil, err
	}
	return s, nil
}

// chainDigest returns the back end's configuration digest for dedup
// keys; back ends that don't implement ConfigDigester dedup on the
// back-end name alone.
func (s *Server) chainDigest() string {
	if d, ok := s.svc.backend.(ConfigDigester); ok {
		return d.ConfigDigest()
	}
	return s.svc.backend.Name()
}

// reconcile aligns the two recovered journals: every approved request
// must be queued (or re-queued), and every live queue entry whose
// request already reached a terminal state is closed out.
func (s *Server) reconcile() error {
	digest := s.chainDigest()
	for _, req := range s.svc.List() {
		key := DedupKey(req.Analysis, req.Model, digest)
		switch req.Status {
		case StatusDone:
			s.recordDone(key, req.ID)
			if e, ok := s.pq.Get(req.ID); ok && (e.State == EntryQueued || e.State == EntryClaimed) {
				if err := s.pq.Complete(req.ID, EntryDone, req.DedupOf); err != nil {
					return fmt.Errorf("recast: reconciling %s: %w", req.ID, err)
				}
			}
		case StatusFailed:
			if e, ok := s.pq.Get(req.ID); ok && (e.State == EntryQueued || e.State == EntryClaimed) {
				if err := s.pq.Complete(req.ID, EntryFailed, ""); err != nil {
					return fmt.Errorf("recast: reconciling %s: %w", req.ID, err)
				}
			}
		case StatusApproved:
			// Accepted work. Enqueue is idempotent, so requests already
			// in the queue (any state) pass through unchanged; requests
			// the crash caught between approval and enqueue are queued
			// now. The original deadline did not survive the crash only
			// in this window — we serve rather than guess.
			e := QueueEntry{ID: req.ID, Tenant: req.Requester, DedupKey: key}
			if prev, ok := s.pq.Get(req.ID); ok {
				e.DeadlineUnixMs = prev.DeadlineUnixMs
			}
			if err := s.pq.Enqueue(e); err != nil {
				return fmt.Errorf("recast: re-enqueueing %s: %w", req.ID, err)
			}
		}
	}
	return nil
}

// recordDone indexes a completed primary for memoization. The earliest
// ID wins so the index is deterministic across recoveries.
func (s *Server) recordDone(key, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.dedupDone[key]; !ok || id < prev {
		s.dedupDone[key] = id
	}
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops the workers (in-flight work is abandoned mid-claim, to be
// recovered on the next open) and releases both journals.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	err := s.pq.Close()
	s.svc.SetJournal(nil)
	if cerr := s.reqLog.Close(); err == nil {
		err = cerr
	}
	return err
}

// Service exposes the underlying state machine (tests, CLI wiring).
func (s *Server) Service() *Service { return s.svc }

// Queue exposes the persistent queue (tests, status tooling).
func (s *Server) Queue() *PQueue { return s.pq }

// degraded reports whether the back end is browning out: any breaker
// state but closed means recent calls failed and intake should shrink.
func (s *Server) degraded() bool {
	return s.breaker.State() != resilience.Closed
}

// worker claims queue entries and drives them to a terminal state.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		e, ok, err := s.pq.Claim()
		if err != nil {
			// Journal append failed (disk trouble). Count it and back
			// off; claims will keep failing until the disk heals, and
			// accepted work stays durable in the journal.
			s.mu.Lock()
			s.journalErrs++
			s.mu.Unlock()
			ok = false
		}
		if !ok {
			select {
			case <-s.ctx.Done():
				return
			case <-s.pq.Ready():
			case <-time.After(50 * time.Millisecond):
				// Re-poll: Ready pulses are hints and another worker may
				// have consumed the one for our entry.
			}
			continue
		}
		s.handle(e)
	}
}

// handle drives one claimed entry: expire if the deadline already
// passed, answer from the archive on a dedup hit, otherwise run the
// back end under the propagated deadline.
func (s *Server) handle(e QueueEntry) {
	now := s.now()
	if e.DeadlineUnixMs > 0 && now.UnixMilli() > e.DeadlineUnixMs {
		s.expire(e.ID, "deadline expired in queue")
		return
	}

	// Dedup: an identical computation already archived its numbers.
	if e.DedupKey != "" {
		s.mu.Lock()
		primary, hit := s.dedupDone[e.DedupKey]
		s.mu.Unlock()
		if hit && primary != e.ID {
			if _, err := s.svc.CompleteFromArchive(e.ID, primary); err == nil {
				s.completeEntry(e.ID, EntryDone, primary)
				s.mu.Lock()
				s.dedupHits++
				s.served++
				if t := s.tenantLocked(e.Tenant); t != nil {
					t.Served++
				}
				s.mu.Unlock()
				return
			}
			// Fall through: archive said no (request in an odd state);
			// the back end is the safe path.
		}
	}

	ctx := s.ctx
	if e.DeadlineUnixMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.UnixMilli(e.DeadlineUnixMs))
		defer cancel()
	}

	start := s.now()
	req, err := s.svc.ProcessWithPolicy(ctx, e.ID, s.cfg.Policy)
	s.observeServiceTime(s.now().Sub(start))

	switch {
	case err == nil && req != nil && req.Status == StatusDone:
		s.completeEntry(e.ID, EntryDone, "")
		s.recordDone(e.DedupKey, e.ID)
		s.mu.Lock()
		s.served++
		if t := s.tenantLocked(e.Tenant); t != nil {
			t.Served++
		}
		s.mu.Unlock()
	case req != nil && req.Status == StatusFailed:
		// Dead-lettered: exhausted retries or a permanent error.
		s.completeEntry(e.ID, EntryFailed, "")
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
	case s.ctx.Err() != nil:
		// Shutdown: the claim stays open in the journal; recovery hands
		// the entry back to the queue.
		return
	case ctx.Err() != nil:
		// The request's own deadline died mid-processing.
		s.expire(e.ID, "deadline expired during processing")
	default:
		// Gate errors (request vanished, wrong state): close the entry
		// so the queue cannot loop on it.
		s.completeEntry(e.ID, EntryFailed, "")
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
	}
}

func (s *Server) expire(id, reason string) {
	// The request may legitimately be past "approved" (a dedup race);
	// Expire's state check keeps the ledger honest either way.
	_ = s.svc.Expire(id, reason)
	s.completeEntry(id, EntryExpired, "")
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

func (s *Server) completeEntry(id, state, dedupOf string) {
	if err := s.pq.Complete(id, state, dedupOf); err != nil {
		s.mu.Lock()
		s.journalErrs++
		s.mu.Unlock()
	}
}

// observeServiceTime folds one back-end run into the EWMA estimate.
func (s *Server) observeServiceTime(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ewmaMs == 0 {
		s.ewmaMs = ms
		return
	}
	s.ewmaMs = 0.8*s.ewmaMs + 0.2*ms
}

// tenantLocked returns the tenant ledger, creating it; callers hold mu.
func (s *Server) tenantLocked(name string) *TenantStatus {
	if name == "" {
		return nil
	}
	t, ok := s.tenants[name]
	if !ok {
		t = &TenantStatus{}
		s.tenants[name] = t
	}
	return t
}

// bucketFor returns the tenant's token bucket, creating it from config.
func (s *Server) bucketFor(tenant string) *resilience.TokenBucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[tenant]
	if !ok {
		b = resilience.NewTokenBucket(s.cfg.TenantRate, s.cfg.TenantBurst)
		b.SetClock(s.now)
		s.buckets[tenant] = b
	}
	return b
}

// admissionError is a shed decision: HTTP status plus how long the
// client should stay away.
type admissionError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *admissionError) Error() string { return e.msg }

// admit decides whether a submission may enter: per-tenant rate, queue
// bound (shrunk under degradation), and deadline feasibility. A nil
// return admits.
func (s *Server) admit(tenant string, budget time.Duration) *admissionError {
	if ok, retry := s.bucketFor(tenant).Take(); !ok {
		if retry < time.Second {
			retry = time.Second
		}
		return &admissionError{
			status: http.StatusTooManyRequests,
			msg:    fmt.Sprintf("tenant %s over rate limit", tenant), retryAfter: retry,
		}
	}

	st := s.pq.Stats()
	bound := s.cfg.QueueBound
	degraded := s.degraded()
	if degraded {
		bound = s.cfg.DegradedBound
	}
	s.mu.Lock()
	ewma := s.ewmaMs
	s.mu.Unlock()
	// Estimated wait for a new arrival: everything queued ahead of it,
	// spread over the pool.
	estWait := time.Duration(ewma*float64(st.Queued)/float64(s.cfg.Workers)) * time.Millisecond
	if st.Queued >= bound {
		retry := estWait
		if retry < time.Second {
			retry = time.Second
		}
		msg := fmt.Sprintf("queue full (%d queued, bound %d)", st.Queued, bound)
		if degraded {
			msg = "degraded: " + msg
		}
		return &admissionError{status: http.StatusTooManyRequests, msg: msg, retryAfter: retry}
	}
	// A deadline the queue already cannot meet is shed at the door —
	// cheaper for everyone than accepting work we will expire.
	if budget > 0 && ewma > 0 && budget < estWait+time.Duration(ewma)*time.Millisecond {
		retry := estWait
		if retry < time.Second {
			retry = time.Second
		}
		return &admissionError{
			status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("deadline budget %v below estimated service %v",
				budget, estWait+time.Duration(ewma)*time.Millisecond),
			retryAfter: retry,
		}
	}
	return nil
}

// Handler returns the multi-tenant front end: the Service's routes with
// the submission path behind admission control, enqueueing into the
// fair queue, plus GET /status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /analyses", s.svc.handleAnalyses)
	mux.HandleFunc("POST /requests", s.handleSubmit)
	mux.HandleFunc("GET /requests/{id}", s.svc.handleGet)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("POST /requests/{id}/approve", s.svc.experimentOnly(s.handleApprove))
	mux.HandleFunc("POST /requests/{id}/reject", s.svc.experimentOnly(s.svc.handleReject))
	return mux
}

// shedResponse writes a 429 with Retry-After — the contract that lets a
// well-behaved client back off exactly as long as the server asks.
func shedResponse(w http.ResponseWriter, e *admissionError) {
	secs := int64((e.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	httpError(w, e.status, e.msg)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	if body.Requester == "" {
		httpError(w, http.StatusBadRequest, "request needs a requester (tenant)")
		return
	}

	// Decode the propagated deadline before admission: feasibility is
	// part of the shed decision.
	var budget time.Duration
	if h := r.Header.Get(BudgetHeader); h != "" {
		var err error
		if budget, err = resilience.DecodeBudget(h); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if budget == 0 {
			httpError(w, http.StatusBadRequest, "deadline budget already expired")
			return
		}
	}

	if shed := s.admit(body.Requester, budget); shed != nil {
		s.mu.Lock()
		s.shed++
		if t := s.tenantLocked(body.Requester); t != nil {
			t.Shed++
		}
		s.mu.Unlock()
		shedResponse(w, shed)
		return
	}

	req, err := s.svc.Submit(body.Analysis, body.Requester, body.Motivation, body.Model)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.admitted++
	if t := s.tenantLocked(body.Requester); t != nil {
		t.Admitted++
	}
	s.mu.Unlock()

	if !s.cfg.AutoApprove {
		// Closed-system mode: the request waits for the experiment;
		// enqueueing happens at approval.
		writeJSON(w, http.StatusCreated, req)
		return
	}
	if err := s.svc.Approve(req.ID); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out, err := s.acceptApproved(req.ID, body.Requester, budget)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, out)
}

// acceptApproved makes an approved request durable work: answered from
// the archive immediately on a dedup hit, enqueued otherwise.
func (s *Server) acceptApproved(id, tenant string, budget time.Duration) (*Request, error) {
	key := s.dedupKeyFor(id)
	s.mu.Lock()
	primary, hit := s.dedupDone[key]
	s.mu.Unlock()
	if hit && primary != id {
		if done, err := s.svc.CompleteFromArchive(id, primary); err == nil {
			s.mu.Lock()
			s.dedupHits++
			s.served++
			if t := s.tenantLocked(tenant); t != nil {
				t.Served++
			}
			s.mu.Unlock()
			return done, nil
		}
	}
	e := QueueEntry{ID: id, Tenant: tenant, DedupKey: key}
	if budget > 0 {
		e.DeadlineUnixMs = s.now().Add(budget).UnixMilli()
	}
	if err := s.pq.Enqueue(e); err != nil {
		return nil, err
	}
	return s.svc.Get(id)
}

// dedupKeyFor derives the dedup key for an existing request.
func (s *Server) dedupKeyFor(id string) string {
	req, err := s.svc.Get(id)
	if err != nil {
		return ""
	}
	return DedupKey(req.Analysis, req.Model, s.chainDigest())
}

// handleApprove is the manual-approval path: approve, then enqueue.
func (s *Server) handleApprove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.svc.Approve(id); err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	req, err := s.svc.Get(id)
	if err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	out, err := s.acceptApproved(id, req.Requester, 0)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// ServerStatus is the GET /status document: the degradation flag first,
// then the live census operators page on.
type ServerStatus struct {
	Degraded  bool                    `json:"degraded"`
	Breaker   string                  `json:"breaker"`
	Queue     QueueStats              `json:"queue"`
	Workers   int                     `json:"workers"`
	EWMAMs    float64                 `json:"ewma_service_ms"`
	Admitted  uint64                  `json:"admitted"`
	Shed      uint64                  `json:"shed"`
	Served    uint64                  `json:"served"`
	DedupHits uint64                  `json:"dedup_hits"`
	Expired   uint64                  `json:"expired"`
	Failed    uint64                  `json:"failed"`
	Tenants   map[string]TenantStatus `json:"tenants,omitempty"`
	JournalOK bool                    `json:"journal_ok"`
}

// Status snapshots the server for the status endpoint and tests.
func (s *Server) Status() ServerStatus {
	st := ServerStatus{
		Degraded: s.degraded(),
		Breaker:  s.breaker.State().String(),
		Queue:    s.pq.Stats(),
		Workers:  s.cfg.Workers,
	}
	s.mu.Lock()
	st.EWMAMs = s.ewmaMs
	st.Admitted, st.Shed, st.Served = s.admitted, s.shed, s.served
	st.DedupHits, st.Expired, st.Failed = s.dedupHits, s.expired, s.failed
	st.JournalOK = s.journalErrs == 0
	st.Tenants = make(map[string]TenantStatus, len(s.tenants))
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Tenants[name] = *s.tenants[name]
	}
	s.mu.Unlock()
	if s.svc.JournalErr() != nil {
		st.JournalOK = false
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// GatedBackend wraps a back end behind a circuit breaker. Transient and
// unclassified failures trip it; permanent errors (invalid models, bad
// records) count as service health — the back end answered, the answer
// was just "no".
type GatedBackend struct {
	Inner   Backend
	Breaker *resilience.Breaker
	// OpenInterval is echoed as the retry hint when the breaker sheds.
	OpenInterval time.Duration
}

// Name implements Backend.
func (g *GatedBackend) Name() string { return g.Inner.Name() }

// ConfigDigest forwards the inner digest so dedup keys are unchanged by
// gating.
func (g *GatedBackend) ConfigDigest() string {
	if d, ok := g.Inner.(ConfigDigester); ok {
		return d.ConfigDigest()
	}
	return g.Inner.Name()
}

// Process implements Backend.
func (g *GatedBackend) Process(ctx context.Context, model ModelSpec, record *leshouches.AnalysisRecord) (*Result, error) {
	if !g.Breaker.Allow() {
		hint := g.OpenInterval
		if hint <= 0 {
			hint = time.Second
		}
		return nil, resilience.WithRetryAfter(resilience.MarkTransient(resilience.ErrOpen), hint)
	}
	res, err := g.Inner.Process(ctx, model, record)
	if err != nil && resilience.IsPermanent(err) {
		g.Breaker.Success()
	} else {
		g.Breaker.Record(err)
	}
	return res, err
}
