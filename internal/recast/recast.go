// Package recast implements the RECAST-style reinterpretation framework of
// §2.3: "a 'front end' interface to the outside world where those
// interested in re-using an analysis can submit requests ... The RECAST
// API would mediate between the user interface and various capabilities
// provided by the 'back end' processing installation. The back end does
// all of the processing and analysis work, and the results, if approved,
// are returned to the user."
//
// The design preserves the paper's "closed system" properties: the
// experiment subscribes analyses (exposing only name and description, not
// the implementation), every request needs explicit experiment approval
// before the back end runs, and the requester only ever sees the final
// numbers. Back ends are pluggable — the full-simulation chain here, or
// the RIVET bridge of package bridge (the DASPOS interoperability project
// the paper's conclusions announce).
package recast

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/eventflow"
	"daspos/internal/generator"
	"daspos/internal/leshouches"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/resilience"
	"daspos/internal/sim"
)

// Status is a request's lifecycle state.
type Status string

// Request lifecycle: submitted → approved|rejected; approved → done|failed.
const (
	StatusSubmitted Status = "submitted"
	StatusApproved  Status = "approved"
	StatusRejected  Status = "rejected"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
)

// ModelSpec is the new-physics model a requester submits.
type ModelSpec struct {
	// Process names the signal hypothesis; "zprime" is the supported
	// catalogue entry (mass-parameterized dimuon resonance).
	Process string `json:"process"`
	// MassGeV is the resonance pole mass.
	MassGeV float64 `json:"mass_gev"`
	// Events is the Monte Carlo statistics to generate.
	Events int `json:"events"`
	// Seed makes the processing reproducible; recorded with the result.
	Seed uint64 `json:"seed"`
	// CrossSectionPb is the model's predicted production cross section in
	// picobarns, when the requester wants an exclusion verdict; 0 skips
	// the verdict.
	CrossSectionPb float64 `json:"cross_section_pb,omitempty"`
}

// Validate checks the model is processable.
func (m ModelSpec) Validate() error {
	if m.Process != "zprime" {
		return fmt.Errorf("recast: unsupported process %q", m.Process)
	}
	if m.MassGeV < 50 || m.MassGeV > 6000 {
		return fmt.Errorf("recast: mass %v GeV outside generator validity", m.MassGeV)
	}
	if m.Events <= 0 || m.Events > 200000 {
		return fmt.Errorf("recast: event count %d out of range", m.Events)
	}
	return nil
}

// Result is what an approved, processed request returns to the outside
// world: numbers, never code or events.
type Result struct {
	Analysis   string  `json:"analysis"`
	BackEnd    string  `json:"back_end"`
	Generated  int     `json:"generated"`
	Selected   int     `json:"selected"`
	Acceptance float64 `json:"acceptance"`
	// CutFlow counts survivors after each selection stage.
	CutFlow []int `json:"cut_flow"`
	// UpperLimitEvents and UpperLimitXsecPb are the 95% CL constraints.
	UpperLimitEvents float64 `json:"upper_limit_events"`
	UpperLimitXsecPb float64 `json:"upper_limit_xsec_pb"`
	// PredictedEvents is σ·L·A for the requester's cross section (0 when
	// no cross section was supplied); Excluded reports whether the
	// prediction exceeds the 95% CL limit.
	PredictedEvents float64 `json:"predicted_events,omitempty"`
	Excluded        bool    `json:"excluded,omitempty"`
}

// ApplyExclusion fills the exclusion verdict from the model's cross
// section and the back end's luminosity. Back ends call it after filling
// acceptance and limits.
func (r *Result) ApplyExclusion(model ModelSpec, luminosityPb float64) {
	if model.CrossSectionPb <= 0 || luminosityPb <= 0 {
		return
	}
	r.PredictedEvents = model.CrossSectionPb * luminosityPb * r.Acceptance
	r.Excluded = r.PredictedEvents > r.UpperLimitEvents
}

// Attempt is one back-end processing try, kept on the request so a
// dead-lettered failure carries its full history for the operator.
type Attempt struct {
	// N is the 1-based attempt number.
	N int `json:"n"`
	// Error is the attempt's failure, empty on success.
	Error string `json:"error,omitempty"`
	// Class is the resilience classification of the failure
	// (transient/permanent/unknown), empty on success.
	Class string `json:"class,omitempty"`
}

// Request is one reinterpretation request.
type Request struct {
	ID        string `json:"id"`
	Analysis  string `json:"analysis"`
	Requester string `json:"requester"`
	// Motivation is the free-form physics case shown to approvers.
	Motivation string    `json:"motivation,omitempty"`
	Model      ModelSpec `json:"model"`
	Status     Status    `json:"status"`
	// Reason documents a rejection or failure.
	Reason string  `json:"reason,omitempty"`
	Result *Result `json:"result,omitempty"`
	// Attempts is the back-end processing history: one entry per try,
	// the audit trail behind a dead-lettered (failed) request.
	Attempts []Attempt `json:"attempts,omitempty"`
	// DedupOf names the primary request whose archived result answered
	// this one — set only when the request was served by memoization
	// rather than a back-end run.
	DedupOf string `json:"dedup_of,omitempty"`
}

// Subscription is an analysis the experiment offers for reinterpretation.
// Only Name and Description are visible through the API; the record itself
// stays inside the service ("none of this code base would be exposed to
// the outside world").
type Subscription struct {
	Name        string
	Description string
	Record      *leshouches.AnalysisRecord
}

// Backend runs an approved request against a preserved analysis.
type Backend interface {
	// Name labels results with the processing tier.
	Name() string
	// Process generates the model and applies the preserved analysis. The
	// context carries the request's propagated deadline: a back end should
	// abandon work promptly once the requester can no longer receive it.
	Process(ctx context.Context, model ModelSpec, record *leshouches.AnalysisRecord) (*Result, error)
}

// ConfigDigester is optionally implemented by back ends whose processing
// depends on configuration beyond the model — the preserved chain
// configuration, calibration tag, luminosity. The digest joins the dedup
// key so two requests only coalesce when they would run the *same*
// computation.
type ConfigDigester interface {
	ConfigDigest() string
}

// DedupKey derives the memoization key for a request: two requests with
// the same analysis, the same canonical model, and the same back-end
// chain configuration produce byte-identical results, so the second can
// be answered from the archive of the first. Floats enter the hash
// through their IEEE-754 bits so the key is exact, never formatted.
func DedupKey(analysis string, model ModelSpec, chainDigest string) string {
	h := sha256.New()
	put := func(s string) {
		var n [8]byte
		writeUint64(&n, uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		writeUint64(&n, v)
		h.Write(n[:])
	}
	put("recast-dedup-v1")
	put(analysis)
	put(model.Process)
	putU64(math.Float64bits(model.MassGeV))
	putU64(uint64(model.Events))
	putU64(model.Seed)
	putU64(math.Float64bits(model.CrossSectionPb))
	put(chainDigest)
	return hex.EncodeToString(h.Sum(nil))
}

// writeUint64 encodes v big-endian into n.
func writeUint64(n *[8]byte, v uint64) {
	for i := 7; i >= 0; i-- {
		n[i] = byte(v)
		v >>= 8
	}
}

// Errors returned by the service.
var (
	ErrNoRequest   = errors.New("recast: no such request")
	ErrNoAnalysis  = errors.New("recast: analysis not subscribed")
	ErrNotApproved = errors.New("recast: request not approved")
	ErrWrongState  = errors.New("recast: request in wrong state")
)

// Service is the front-end state machine. Safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	backend Backend
	// LuminosityPb scales limits; exposed on results via the backend.
	subs     map[string]Subscription
	requests map[string]*Request
	nextID   int
	// journal, when set, receives an append-only record of every request
	// mutation (see persist.go); journalErr keeps the first write failure.
	journal    io.Writer
	journalErr error
}

// NewService returns a service over the given back end.
func NewService(backend Backend) *Service {
	return &Service{
		backend:  backend,
		subs:     make(map[string]Subscription),
		requests: make(map[string]*Request),
	}
}

// Subscribe offers an analysis for reinterpretation.
func (s *Service) Subscribe(sub Subscription) error {
	if sub.Name == "" || sub.Record == nil {
		return fmt.Errorf("recast: subscription needs a name and a record")
	}
	if err := sub.Record.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.subs[sub.Name]; dup {
		return fmt.Errorf("recast: analysis %q already subscribed", sub.Name)
	}
	s.subs[sub.Name] = sub
	return nil
}

// AnalysisInfo is the public view of a subscription.
type AnalysisInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Analyses returns the public catalogue, sorted by name.
func (s *Service) Analyses() []AnalysisInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AnalysisInfo, 0, len(s.subs))
	for _, sub := range s.subs {
		out = append(out, AnalysisInfo{Name: sub.Name, Description: sub.Description})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Submit files a new request against a subscribed analysis.
func (s *Service) Submit(analysis, requester, motivation string, model ModelSpec) (*Request, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if requester == "" {
		return nil, fmt.Errorf("recast: request needs a requester")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.subs[analysis]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoAnalysis, analysis)
	}
	s.nextID++
	req := &Request{
		ID:         fmt.Sprintf("req-%06d", s.nextID),
		Analysis:   analysis,
		Requester:  requester,
		Motivation: motivation,
		Model:      model,
		Status:     StatusSubmitted,
	}
	s.requests[req.ID] = req
	s.appendJournalLocked(req)
	return cloneRequest(req), nil
}

// Get returns a request by ID.
func (s *Service) Get(id string) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.requests[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRequest, id)
	}
	return cloneRequest(req), nil
}

// List returns all requests sorted by ID.
func (s *Service) List() []*Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Request, 0, len(s.requests))
	for _, r := range s.requests {
		out = append(out, cloneRequest(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Approve moves a submitted request to approved — the experiment's
// "complete control over which analyses were allowed to become public".
func (s *Service) Approve(id string) error {
	return s.transition(id, StatusSubmitted, StatusApproved, "")
}

// Reject declines a submitted request with a reason.
func (s *Service) Reject(id, reason string) error {
	return s.transition(id, StatusSubmitted, StatusRejected, reason)
}

func (s *Service) transition(id string, from, to Status, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.requests[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRequest, id)
	}
	if req.Status != from {
		return fmt.Errorf("%w: %s is %s", ErrWrongState, id, req.Status)
	}
	req.Status = to
	req.Reason = reason
	s.appendJournalLocked(req)
	return nil
}

// gateError reports whether the error is a front-door rejection (missing
// or not-approved request) rather than a back-end failure.
func gateError(err error) bool {
	return errors.Is(err, ErrNoRequest) || errors.Is(err, ErrNotApproved)
}

// processOnce runs one back-end attempt for an approved request and
// appends it to the request's attempt history — without deciding the
// request's fate. The caller (Process for one-shot, ProcessWithPolicy for
// retried) owns the terminal transition.
func (s *Service) processOnce(ctx context.Context, id string) (*Result, error) {
	s.mu.Lock()
	req, ok := s.requests[id]
	if !ok {
		s.mu.Unlock()
		return nil, resilience.MarkPermanent(fmt.Errorf("%w: %s", ErrNoRequest, id))
	}
	if req.Status != StatusApproved {
		s.mu.Unlock()
		return nil, resilience.MarkPermanent(fmt.Errorf("%w: %s is %s", ErrNotApproved, id, req.Status))
	}
	sub := s.subs[req.Analysis]
	model := req.Model
	s.mu.Unlock()

	// The expensive part runs outside the lock.
	res, err := s.backend.Process(ctx, model, sub.Record)

	s.mu.Lock()
	defer s.mu.Unlock()
	at := Attempt{N: len(req.Attempts) + 1}
	if err != nil {
		at.Error = err.Error()
		at.Class = resilience.Classify(err).String()
	}
	req.Attempts = append(req.Attempts, at)
	s.appendJournalLocked(req)
	return res, err
}

// finish applies the terminal transition after the last attempt.
func (s *Service) finish(id string, res *Result, err error) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.requests[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRequest, id)
	}
	if err != nil {
		req.Status = StatusFailed
		req.Reason = err.Error()
		s.appendJournalLocked(req)
		return cloneRequest(req), err
	}
	req.Status = StatusDone
	req.Result = res
	s.appendJournalLocked(req)
	return cloneRequest(req), nil
}

// Process runs the back end once for an approved request and stores the
// result; any failure is terminal. Processing is synchronous; the HTTP
// layer exposes it behind the experiment role, and the Queue type runs it
// from workers (with a retry policy — see ProcessWithPolicy).
func (s *Service) Process(id string) (*Request, error) {
	res, err := s.processOnce(context.Background(), id)
	if err != nil && gateError(err) {
		return nil, err
	}
	return s.finish(id, res, err)
}

// ProcessWithPolicy runs the back end for an approved request under a
// retry policy: transient failures back off and retry, and only
// exhaustion (or a permanent/unclassified error) dead-letters the request
// to StatusFailed with its attempt history attached. Context cancellation
// leaves the request approved — in flight — so a journal replay after a
// crash or shutdown can recover and re-enqueue it.
func (s *Service) ProcessWithPolicy(ctx context.Context, id string, pol resilience.Policy) (*Request, error) {
	var res *Result
	err := resilience.Retry(ctx, pol, func(actx context.Context) error {
		r, rerr := s.processOnce(actx, id)
		if rerr == nil {
			res = r
		}
		return rerr
	})
	if err != nil {
		if gateError(err) {
			return nil, err
		}
		// Retry reports outer-context death as a bare context error (an
		// *ExhaustedError means the attempt budget ran out, which is a
		// real failure even when the last attempt hit a deadline).
		var ex *resilience.ExhaustedError
		if !errors.As(err, &ex) &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Shutdown, not failure: leave the request in flight.
			return nil, err
		}
	}
	return s.finish(id, res, err)
}

// CompleteFromArchive finishes an approved request with the archived
// result of an identical, already-done primary request — the dedup hit
// path. The follower's result is a copy of the primary's, and DedupOf
// records the provenance so the audit trail shows no back-end run
// happened.
func (s *Service) CompleteFromArchive(id, primaryID string) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.requests[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRequest, id)
	}
	if req.Status != StatusApproved {
		return nil, fmt.Errorf("%w: %s is %s", ErrWrongState, id, req.Status)
	}
	primary, ok := s.requests[primaryID]
	if !ok {
		return nil, fmt.Errorf("%w: dedup primary %s", ErrNoRequest, primaryID)
	}
	if primary.Status != StatusDone || primary.Result == nil {
		return nil, fmt.Errorf("%w: dedup primary %s is %s", ErrWrongState, primaryID, primary.Status)
	}
	rc := *primary.Result
	rc.CutFlow = append([]int(nil), primary.Result.CutFlow...)
	req.Status = StatusDone
	req.Result = &rc
	req.DedupOf = primaryID
	s.appendJournalLocked(req)
	return cloneRequest(req), nil
}

// Expire dead-letters an approved request whose deadline passed before a
// worker could serve it — dropped at the queue, not failed by the back
// end. The distinct reason keeps shed-by-deadline visible in audits.
func (s *Service) Expire(id, reason string) error {
	if reason == "" {
		reason = "deadline expired before processing"
	}
	return s.transition(id, StatusApproved, StatusFailed, reason)
}

func cloneRequest(r *Request) *Request {
	cp := *r
	if r.Result != nil {
		rc := *r.Result
		rc.CutFlow = append([]int(nil), r.Result.CutFlow...)
		cp.Result = &rc
	}
	cp.Attempts = append([]Attempt(nil), r.Attempts...)
	return &cp
}

// FullSimBackend is the heavyweight back end: it re-runs the preserved
// experiment chain — generation, full detector simulation, digitization,
// reconstruction — before applying the archived analysis. This is the tier
// whose cost and platform coupling the paper's RECAST risk analysis is
// about.
type FullSimBackend struct {
	Det *detector.Detector
	// CondDB, Tag, and Run pin the calibration the chain uses.
	CondDB *conditions.DB
	Tag    string
	Run    uint32
	// LuminosityPb converts event limits to cross sections.
	LuminosityPb float64
	// Workers sets the worker count for the parallel pipeline stages
	// (simulation, reconstruction); zero or one runs sequentially. The
	// physics output is identical at any setting: simulation draws from
	// per-event RNG streams and reconstruction is deterministic, so only
	// wall time changes.
	Workers int
}

// Name implements Backend.
func (*FullSimBackend) Name() string { return "fullsim" }

// ConfigDigest implements ConfigDigester: everything beyond the model
// that determines the chain's output bytes — calibration pin and
// luminosity. Workers is excluded on purpose: the physics output is
// identical at any worker count.
func (b *FullSimBackend) ConfigDigest() string {
	return fmt.Sprintf("fullsim|tag=%s|run=%d|lumi=%x", b.Tag, b.Run, math.Float64bits(b.LuminosityPb))
}

// Process implements Backend. The chain — generate → simulate → digitize →
// reconstruct → slim — runs as one streaming event-flow pipeline; a whole-
// sample slice exists only at the end, where the preserved analysis needs
// the full selected sample.
func (b *FullSimBackend) Process(ctx context.Context, model ModelSpec, record *leshouches.AnalysisRecord) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	workers := b.Workers
	if workers < 1 {
		workers = 1
	}
	cfg := generator.DefaultConfig(model.Seed)
	gen := generator.NewZPrime(cfg, model.MassGeV)
	full := sim.NewFullSim(b.Det, model.Seed)
	snap := b.CondDB.Snapshot(b.Tag, b.Run)

	p := eventflow.New(ctx, "fullsim", eventflow.Options{})
	hepmcS := eventflow.Source(p, "generate", generator.EventSource(gen, model.Events))
	simS := eventflow.Map(hepmcS, "simulate", workers, full.StageFunc())
	rawS := eventflow.Map(simS, "digitize", workers, rawdata.DigitizeFunc(b.Run))
	recoS := eventflow.MapWorkers(rawS, "reconstruct", workers,
		reco.ParallelStage(b.Det, reco.DefaultConfig(), snap))
	aodS := eventflow.Map(recoS, "slim", workers, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
		return e.SlimToAOD(), true, nil
	})
	collected := eventflow.Collect(aodS, "sample")
	if err := p.Wait(); err != nil {
		return nil, fmt.Errorf("recast: fullsim chain: %w", err)
	}
	events := collected.Items

	flow, err := record.CutFlow(events)
	if err != nil {
		return nil, err
	}
	rei, err := leshouches.Reinterpret(record, events, b.LuminosityPb)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Analysis: record.Name, BackEnd: "fullsim",
		Generated: rei.Generated, Selected: rei.Selected,
		Acceptance: rei.Acceptance, CutFlow: flow,
		UpperLimitEvents: rei.UpperLimitEvents,
		UpperLimitXsecPb: rei.UpperLimitXsecPb,
	}
	res.ApplyExclusion(model, b.LuminosityPb)
	return res, nil
}

// ScanPoint is one row of a parameter scan.
type ScanPoint struct {
	MassGeV float64 `json:"mass_gev"`
	Result  *Result `json:"result"`
}

// MassScan walks a subscribed analysis over model masses through the full
// request lifecycle (submit → approve → process), returning one point per
// mass — the theorist's parameter-plane scan, with each point individually
// approved by the experiment as the closed system requires. The scan stops
// at the first error.
func MassScan(svc *Service, analysis, requester string, base ModelSpec, masses []float64) ([]ScanPoint, error) {
	out := make([]ScanPoint, 0, len(masses))
	for i, m := range masses {
		model := base
		model.MassGeV = m
		// Each point gets an independent stream derived from the base
		// seed, so neighbouring points do not share statistical wiggles.
		model.Seed = base.Seed + uint64(i)*0x9e3779b9
		req, err := svc.Submit(analysis, requester, "parameter scan", model)
		if err != nil {
			return out, err
		}
		if err := svc.Approve(req.ID); err != nil {
			return out, err
		}
		done, err := svc.Process(req.ID)
		if err != nil {
			return out, err
		}
		out = append(out, ScanPoint{MassGeV: m, Result: done.Result})
	}
	return out, nil
}
