package recast

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"daspos/internal/resilience"
)

// The HTTP front end. Routes:
//
//	GET  /analyses                  public catalogue
//	POST /requests                  submit {analysis, requester, motivation, model}
//	GET  /requests/{id}             request status and (when done) result
//	POST /requests/{id}/approve     experiment role
//	POST /requests/{id}/reject      experiment role, body {reason}
//	POST /requests/{id}/process     experiment role; runs the back end
//
// Experiment-internal routes require the header "X-Recast-Role: experiment"
// — a stand-in for the experiment's real authentication, keeping the
// "closed system" boundary visible in the API.

// roleHeader gates experiment-internal endpoints.
const (
	roleHeader     = "X-Recast-Role"
	roleExperiment = "experiment"
)

// Handler returns the front end as an http.Handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /analyses", s.handleAnalyses)
	mux.HandleFunc("POST /requests", s.handleSubmit)
	mux.HandleFunc("GET /requests/{id}", s.handleGet)
	mux.HandleFunc("POST /requests/{id}/approve", s.experimentOnly(s.handleApprove))
	mux.HandleFunc("POST /requests/{id}/reject", s.experimentOnly(s.handleReject))
	mux.HandleFunc("POST /requests/{id}/process", s.experimentOnly(s.handleProcess))
	return mux
}

func (s *Service) experimentOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(roleHeader) != roleExperiment {
			httpError(w, http.StatusForbidden, "experiment role required")
			return
		}
		next(w, r)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Service) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Analyses())
}

// submitBody is the POST /requests payload.
type submitBody struct {
	Analysis   string    `json:"analysis"`
	Requester  string    `json:"requester"`
	Motivation string    `json:"motivation,omitempty"`
	Model      ModelSpec `json:"model"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	// MaxBytesReader (not a bare LimitReader) closes the connection on
	// an oversized body, so a tenant cannot stream an unbounded payload
	// into the decoder and keep the connection serviceable.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	req, err := s.Submit(body.Analysis, body.Requester, body.Motivation, body.Model)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, req)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	req, err := s.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, req)
}

func (s *Service) handleApprove(w http.ResponseWriter, r *http.Request) {
	if err := s.Approve(r.PathValue("id")); err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	req, _ := s.Get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, req)
}

func (s *Service) handleReject(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Reason string `json:"reason"`
	}
	_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body)
	if err := s.Reject(r.PathValue("id"), body.Reason); err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	req, _ := s.Get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, req)
}

func (s *Service) handleProcess(w http.ResponseWriter, r *http.Request) {
	req, err := s.Process(r.PathValue("id"))
	if err != nil {
		// A failed back end still updated the request; report both.
		code := statusFor(err)
		if req != nil {
			writeJSON(w, code, req)
			return
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, req)
}

func statusFor(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "no such request"):
		return http.StatusNotFound
	case strings.Contains(msg, "wrong state"), strings.Contains(msg, "not approved"):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// DefaultClientTimeout bounds front-end calls when the caller configures
// nothing: long enough for a synchronous back-end run, short enough that a
// hung service cannot wedge a requester forever.
const DefaultClientTimeout = 30 * time.Second

// Client is a Go client for the front end, as a requester or as the
// experiment (set Experiment to send the role header). Every call runs
// under Timeout (DefaultClientTimeout when zero) unless a custom HTTP
// client is supplied, and accepts a context for caller-side cancellation.
// A context deadline also travels to the server as a relative budget
// header, so the service can shed or abandon work the caller will never
// see.
type Client struct {
	BaseURL string
	// HTTP overrides the transport entirely; when set, Timeout is the
	// caller's responsibility.
	HTTP *http.Client
	// Timeout bounds each call of the default transport. Zero means
	// DefaultClientTimeout; negative means no timeout.
	Timeout    time.Duration
	Experiment bool
	// Retry, when MaxAttempts > 1, re-issues calls that fail with a
	// transient error — a shed (429), a brown-out (503), a dropped
	// connection. The server's Retry-After is honored over the policy's
	// own backoff (see resilience.Retry). Submissions are retried too:
	// a shed submission was never accepted, and an ambiguous failure
	// after acceptance is absorbed by the server's dedup key.
	Retry resilience.Policy
	// Now is the clock used to measure the remaining context budget for
	// the deadline header. Nil means the wall clock.
	Now func() time.Time
}

func (c *Client) clock() func() time.Time {
	if c.Now != nil {
		return c.Now
	}
	return time.Now
}

// HTTPError is a front-end response with status >= 400, classified for
// the resilience taxonomy: 429 and 5xx are transient (the service said
// "not now" or is in trouble), other 4xx are permanent (the request
// itself is wrong and repetition cannot fix it).
type HTTPError struct {
	Status int
	Msg    string
	// RetryAfter is the server's own back-off advice, when it sent one.
	RetryAfter time.Duration
}

// Error renders the failure.
func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("recast: %s (%d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("recast: status %d", e.Status)
}

// Transient reports whether retrying can help.
func (e *HTTPError) Transient() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// classify wraps the error for the resilience taxonomy, attaching the
// server's Retry-After as a hint on transient failures.
func (e *HTTPError) classify() error {
	if e.Transient() {
		return resilience.WithRetryAfter(resilience.MarkTransient(e), e.RetryAfter)
	}
	return resilience.MarkPermanent(e)
}

// parseRetryAfter reads a Retry-After header (delta-seconds form).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// httpClient returns the transport, defaulting to one with a timeout —
// the bare http.DefaultClient has none, and a stuck front end would hang
// the requester with it.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	timeout := c.Timeout
	switch {
	case timeout == 0:
		timeout = DefaultClientTimeout
	case timeout < 0:
		timeout = 0
	}
	return &http.Client{Timeout: timeout}
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	call := func(actx context.Context) error {
		return c.doOnce(actx, method, path, body, out)
	}
	if c.Retry.MaxAttempts > 1 {
		return resilience.Retry(ctx, c.Retry, call)
	}
	return call(ctx)
}

// doOnce issues a single HTTP exchange. Failures come back classified:
// network errors and 429/5xx responses transient (with the server's
// Retry-After as the backoff hint), other 4xx permanent.
func (c *Client) doOnce(ctx context.Context, method, path string, body, out interface{}) error {
	hc := c.httpClient()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return resilience.MarkPermanent(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Experiment {
		req.Header.Set(roleHeader, roleExperiment)
	}
	// A context deadline becomes a relative budget header, so the server
	// sheds work it cannot finish in time instead of computing results
	// nobody will read.
	now := c.clock()
	if budget, ok := resilience.RemainingBudget(ctx, now()); ok {
		req.Header.Set(BudgetHeader, resilience.EncodeBudget(budget))
	}
	resp, err := hc.Do(req)
	if err != nil {
		// The wire failed before the server answered: connection refused,
		// reset, timeout. All heal-on-retry territory.
		return resilience.MarkTransient(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resilience.MarkTransient(err)
	}
	if resp.StatusCode >= 400 {
		herr := &HTTPError{
			Status:     resp.StatusCode,
			Msg:        fmt.Sprintf("%s %s", method, path),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			herr.Msg = fmt.Sprintf("%s %s: %s", method, path, e.Error)
		} else if out != nil {
			// A process failure returns the request body with failed status.
			_ = json.Unmarshal(data, out)
		}
		return herr.classify()
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return resilience.MarkPermanent(err)
	}
	return nil
}

// Analyses fetches the public catalogue.
func (c *Client) Analyses() ([]AnalysisInfo, error) {
	return c.AnalysesCtx(context.Background())
}

// AnalysesCtx is Analyses under a caller-supplied context.
func (c *Client) AnalysesCtx(ctx context.Context) ([]AnalysisInfo, error) {
	var out []AnalysisInfo
	err := c.do(ctx, http.MethodGet, "/analyses", nil, &out)
	return out, err
}

// Submit files a request and returns its server-side record.
func (c *Client) Submit(analysis, requester, motivation string, model ModelSpec) (*Request, error) {
	return c.SubmitCtx(context.Background(), analysis, requester, motivation, model)
}

// SubmitCtx is Submit under a caller-supplied context.
func (c *Client) SubmitCtx(ctx context.Context, analysis, requester, motivation string, model ModelSpec) (*Request, error) {
	var out Request
	err := c.do(ctx, http.MethodPost, "/requests", submitBody{
		Analysis: analysis, Requester: requester, Motivation: motivation, Model: model,
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Get polls a request.
func (c *Client) Get(id string) (*Request, error) {
	return c.GetCtx(context.Background(), id)
}

// GetCtx is Get under a caller-supplied context.
func (c *Client) GetCtx(ctx context.Context, id string) (*Request, error) {
	var out Request
	if err := c.do(ctx, http.MethodGet, "/requests/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Approve approves a request (experiment role).
func (c *Client) Approve(id string) error {
	return c.ApproveCtx(context.Background(), id)
}

// ApproveCtx is Approve under a caller-supplied context.
func (c *Client) ApproveCtx(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/requests/"+id+"/approve", nil, nil)
}

// Reject rejects a request with a reason (experiment role).
func (c *Client) Reject(id, reason string) error {
	return c.RejectCtx(context.Background(), id, reason)
}

// RejectCtx is Reject under a caller-supplied context.
func (c *Client) RejectCtx(ctx context.Context, id, reason string) error {
	return c.do(ctx, http.MethodPost, "/requests/"+id+"/reject", map[string]string{"reason": reason}, nil)
}

// ProcessRequest triggers back-end processing (experiment role) and
// returns the completed request.
func (c *Client) ProcessRequest(id string) (*Request, error) {
	return c.ProcessRequestCtx(context.Background(), id)
}

// ProcessRequestCtx is ProcessRequest under a caller-supplied context.
func (c *Client) ProcessRequestCtx(ctx context.Context, id string) (*Request, error) {
	var out Request
	if err := c.do(ctx, http.MethodPost, "/requests/"+id+"/process", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
