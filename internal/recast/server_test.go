package recast

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"daspos/internal/resilience"
)

// serverClock is a hand-cranked clock shared by server, buckets, and
// deadline checks in admission tests.
type serverClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *serverClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *serverClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *flakyStub) {
	t.Helper()
	svc, stub := newStubService(t, nil)
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	if cfg.Policy.MaxAttempts == 0 {
		cfg.Policy = fastPolicy()
	}
	srv, err := NewServer(context.Background(), svc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, stub
}

func postSubmit(t *testing.T, h http.Handler, tenant string, seed uint64, budget string) *httptest.ResponseRecorder {
	t.Helper()
	m := validModel()
	m.Seed = seed
	body, err := json.Marshal(submitBody{
		Analysis: "GPD_2013_DIMUON_HIGHMASS", Requester: tenant, Model: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/requests", bytes.NewReader(body))
	if budget != "" {
		req.Header.Set(BudgetHeader, budget)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerRateLimitSheds(t *testing.T) {
	clk := &serverClock{t: time.Unix(5000, 0)}
	srv, _ := newTestServer(t, ServerConfig{
		TenantRate: 1, TenantBurst: 2, AutoApprove: true, Now: clk.now,
	})
	h := srv.Handler()
	// Two burst tokens admit; the third submission is shed.
	for i := 0; i < 2; i++ {
		if w := postSubmit(t, h, "alice", uint64(i), ""); w.Code != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := postSubmit(t, h, "alice", 9, "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Result().Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", w.Result().Header.Get("Retry-After"))
	}
	// Another tenant's bucket is untouched — per-tenant isolation.
	if w := postSubmit(t, h, "bob", 1, ""); w.Code != http.StatusAccepted {
		t.Fatalf("bob's first submit shed with alice over limit: %d", w.Code)
	}
	// After the advertised wait, alice is admitted again.
	clk.advance(time.Duration(ra) * time.Second)
	if w := postSubmit(t, h, "alice", 10, ""); w.Code != http.StatusAccepted {
		t.Fatalf("post-Retry-After submit: %d, want 202", w.Code)
	}
	st := srv.Status()
	if st.Shed != 1 || st.Tenants["alice"].Shed != 1 {
		t.Fatalf("shed accounting = %+v", st)
	}
}

func TestServerQueueBoundSheds(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{QueueBound: 2, AutoApprove: true})
	h := srv.Handler()
	for i := 0; i < 2; i++ {
		if w := postSubmit(t, h, "alice", uint64(i), ""); w.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := postSubmit(t, h, "alice", 7, "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d, want 429", w.Code)
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Fatal("queue-full shed without Retry-After")
	}
}

func TestServerInfeasibleDeadlineSheds(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{Workers: 1, QueueBound: 10, AutoApprove: true})
	h := srv.Handler()
	// Prime the queue and the service-time estimate: two queued entries
	// at ~1s each on one worker means a new arrival waits ~2s.
	for i := 0; i < 2; i++ {
		if w := postSubmit(t, h, "alice", uint64(i), ""); w.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body)
		}
	}
	srv.mu.Lock()
	srv.ewmaMs = 1000
	srv.mu.Unlock()
	// A 100ms budget cannot be met; shed at the door.
	w := postSubmit(t, h, "alice", 8, "100")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("infeasible-deadline submit: %d %s, want 429", w.Code, w.Body)
	}
	// A generous budget is admitted.
	if w := postSubmit(t, h, "alice", 9, "60000"); w.Code != http.StatusAccepted {
		t.Fatalf("feasible-deadline submit: %d %s", w.Code, w.Body)
	}
	// An already-expired budget is a client error, not a shed.
	if w := postSubmit(t, h, "alice", 10, "0"); w.Code != http.StatusBadRequest {
		t.Fatalf("expired-budget submit: %d, want 400", w.Code)
	}
}

func waitTerminal(t *testing.T, svc *Service, id string) *Request {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		req, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		switch req.Status {
		case StatusDone, StatusFailed, StatusRejected:
			return req
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("request %s never reached a terminal state", id)
	return nil
}

func TestServerProcessesAndDedups(t *testing.T) {
	srv, stub := newTestServer(t, ServerConfig{Workers: 2, AutoApprove: true})
	srv.Start()
	h := srv.Handler()

	w := postSubmit(t, h, "alice", 42, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var first Request
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, srv.Service(), first.ID)
	if done.Status != StatusDone {
		t.Fatalf("first request = %s (%s)", done.Status, done.Reason)
	}

	// An identical model from another tenant is answered from the
	// archive at the door: done immediately, no second back-end run.
	w2 := postSubmit(t, h, "bob", 42, "")
	if w2.Code != http.StatusAccepted {
		t.Fatalf("dedup submit: %d %s", w2.Code, w2.Body)
	}
	var second Request
	if err := json.Unmarshal(w2.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusDone || second.DedupOf != first.ID {
		t.Fatalf("dedup submit = %s dedup_of %q, want done of %s", second.Status, second.DedupOf, first.ID)
	}
	if stub.calls != 1 {
		t.Fatalf("backend ran %d times for identical models, want 1", stub.calls)
	}
	st := srv.Status()
	if st.DedupHits != 1 || st.Served != 2 {
		t.Fatalf("status = %+v, want 1 dedup hit of 2 served", st)
	}
}

func TestServerExpiresDeadRequestsWithoutBackendRun(t *testing.T) {
	srv, stub := newTestServer(t, ServerConfig{Workers: 1, AutoApprove: true})
	h := srv.Handler()
	// Accept with a 1ms budget while no workers run, then let the
	// budget die before starting the pool.
	w := postSubmit(t, h, "alice", 3, "1")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var req Request
	if err := json.Unmarshal(w.Body.Bytes(), &req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	srv.Start()
	got := waitTerminal(t, srv.Service(), req.ID)
	if got.Status != StatusFailed || got.Reason == "" {
		t.Fatalf("expired request = %s %q, want failed with a reason", got.Status, got.Reason)
	}
	if stub.calls != 0 {
		t.Fatalf("backend ran %d times for a dead request, want 0", stub.calls)
	}
	if st := srv.Status(); st.Expired != 1 {
		t.Fatalf("expired count = %d, want 1", st.Expired)
	}
}

func TestServerDegradedModeShrinksIntake(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{QueueBound: 10, DegradedBound: 1, AutoApprove: true,
		Breaker: resilience.BreakerConfig{FailureThreshold: 1, OpenInterval: time.Hour}})
	h := srv.Handler()
	if srv.Status().Degraded {
		t.Fatal("fresh server reports degraded")
	}
	// Brown-out: the breaker trips.
	srv.breaker.Failure()
	st := srv.Status()
	if !st.Degraded || st.Breaker != "open" {
		t.Fatalf("status after trip = %+v, want degraded/open", st)
	}
	// Intake shrinks to DegradedBound: one queued entry, then shed.
	if w := postSubmit(t, h, "alice", 1, ""); w.Code != http.StatusAccepted {
		t.Fatalf("degraded submit 1: %d %s", w.Code, w.Body)
	}
	w := postSubmit(t, h, "alice", 2, "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("degraded submit 2: %d, want 429", w.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("shed body: %s", w.Body)
	}
}

func TestServerRecoveryDrainsAcceptedWork(t *testing.T) {
	dir := t.TempDir()
	svc1, _ := newStubService(t, nil)
	srv1, err := NewServer(context.Background(), svc1, ServerConfig{
		JournalDir: dir, AutoApprove: true, Policy: fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv1.Handler()
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		w := postSubmit(t, h, fmt.Sprintf("tenant-%d", i%2), uint64(100+i), "")
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body)
		}
		var req Request
		if err := json.Unmarshal(w.Body.Bytes(), &req); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, req.ID)
	}
	// Claim one so the restart also exercises orphan recovery, then
	// stop without processing anything — the "crash".
	if _, ok, err := srv1.Queue().Claim(); err != nil || !ok {
		t.Fatal("claim before crash failed", err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, _ := newStubService(t, nil)
	srv2, err := NewServer(context.Background(), svc2, ServerConfig{
		JournalDir: dir, AutoApprove: true, Policy: fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if st := srv2.Queue().Stats(); st.Queued != 3 || st.Claimed != 0 {
		t.Fatalf("recovered queue: %+v, want 3 queued (orphan requeued)", st)
	}
	srv2.Start()
	for _, id := range ids {
		if got := waitTerminal(t, svc2, id); got.Status != StatusDone {
			t.Fatalf("recovered request %s = %s (%s)", id, got.Status, got.Reason)
		}
	}
}
