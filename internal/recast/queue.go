package recast

import (
	"sync"
)

// Queue runs approved requests through the back end with a fixed worker
// pool: the "computing back-end" whose capacity the experiment provisions.
type Queue struct {
	svc     *Service
	jobs    chan string
	wg      sync.WaitGroup
	mu      sync.Mutex
	results map[string]error
	closed  bool
}

// NewQueue starts workers processing enqueued request IDs. Close the queue
// with Wait after the last Enqueue.
func NewQueue(svc *Service, workers int) *Queue {
	if workers < 1 {
		workers = 1
	}
	q := &Queue{
		svc:     svc,
		jobs:    make(chan string, 64),
		results: make(map[string]error),
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for id := range q.jobs {
		_, err := q.svc.Process(id)
		q.mu.Lock()
		q.results[id] = err
		q.mu.Unlock()
	}
}

// Enqueue schedules an approved request. It reports false once the queue
// has been closed.
func (q *Queue) Enqueue(id string) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.mu.Unlock()
	q.jobs <- id
	return true
}

// Wait closes intake and blocks until all enqueued work is finished,
// returning per-request errors.
func (q *Queue) Wait() map[string]error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	q.wg.Wait()
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]error, len(q.results))
	for k, v := range q.results {
		out[k] = v
	}
	return out
}
