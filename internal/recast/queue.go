package recast

import (
	"context"
	"sync"
	"time"

	"daspos/internal/resilience"
)

// Queue runs approved requests through the back end with a fixed worker
// pool: the "computing back-end" whose capacity the experiment provisions.
// Each job runs under the queue's retry policy, so a transient back-end
// fault retries with backoff instead of dead-lettering the request, and
// the whole pool drains promptly when its context is cancelled — requests
// caught mid-flight stay approved and are recoverable from the journal.
type Queue struct {
	svc    *Service
	ctx    context.Context
	policy resilience.Policy
	jobs   chan string
	wg     sync.WaitGroup

	// intake guards closed and, via its read side, in-flight Enqueue
	// sends: Wait takes the write lock, so intake can only close while no
	// send is in progress — no send-on-closed-channel race.
	intake sync.RWMutex
	closed bool

	resMu   sync.Mutex
	results map[string]error
}

// QueueConfig tunes a worker pool.
type QueueConfig struct {
	// Workers is the pool size. Values < 1 mean 1.
	Workers int
	// Policy is the per-job retry schedule. The zero value means one
	// attempt, no retry — resilience off.
	Policy resilience.Policy
	// Buffer is the intake channel depth. Values < 1 mean 64.
	Buffer int
}

// DefaultQueuePolicy is the per-job retry schedule production pools run
// under: a few capped, jittered attempts. Only transient failures retry;
// physics or validation errors dead-letter on the first strike.
func DefaultQueuePolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Jitter:      0.2,
	}
}

// NewQueue starts workers processing enqueued request IDs with no retry
// policy (one attempt per job). Close the queue with Wait after the last
// Enqueue.
func NewQueue(svc *Service, workers int) *Queue {
	return NewQueueWith(context.Background(), svc, QueueConfig{Workers: workers})
}

// NewQueueWith starts a worker pool under a context: cancelling it stops
// intake and drains the workers, leaving unprocessed requests approved
// (in flight) for journal recovery.
func NewQueueWith(ctx context.Context, svc *Service, cfg QueueConfig) *Queue {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Buffer < 1 {
		cfg.Buffer = 64
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q := &Queue{
		svc:     svc,
		ctx:     ctx,
		policy:  cfg.Policy,
		jobs:    make(chan string, cfg.Buffer),
		results: make(map[string]error),
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.ctx.Done():
			return
		case id, ok := <-q.jobs:
			if !ok {
				return
			}
			_, err := q.svc.ProcessWithPolicy(q.ctx, id, q.policy)
			q.resMu.Lock()
			q.results[id] = err
			q.resMu.Unlock()
		}
	}
}

// Enqueue schedules an approved request. It reports false once the queue
// has been closed or its context cancelled.
func (q *Queue) Enqueue(id string) bool {
	q.intake.RLock()
	defer q.intake.RUnlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- id: //daspos:lock-ok — the read lock fences Wait's close(q.jobs); the send must stay inside it
		return true
	case <-q.ctx.Done(): //daspos:lock-ok — same select: cancellation bounds the wait, RLock admits other producers
		return false
	}
}

// Wait closes intake and blocks until all enqueued work is finished (or
// the context is cancelled), returning per-request errors. Jobs that were
// still queued at cancellation are reported with the context's error.
func (q *Queue) Wait() map[string]error {
	q.intake.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.intake.Unlock()
	q.wg.Wait()
	q.resMu.Lock()
	defer q.resMu.Unlock()
	// After cancellation, drain what the workers never picked up.
	for id := range q.jobs {
		if _, done := q.results[id]; !done {
			q.results[id] = q.ctx.Err()
		}
	}
	out := make(map[string]error, len(q.results))
	for k, v := range q.results {
		out[k] = v
	}
	return out
}
