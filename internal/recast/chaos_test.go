package recast

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"daspos/internal/faults"
	"daspos/internal/leshouches"
	"daspos/internal/resilience"
)

// Chaos drills for the request pipeline: with transient back-end faults
// injected at up to 30%, every request must still reach a terminal state —
// done after retries, or dead-lettered with its attempt history — and a
// journal replay after a simulated crash must hand back exactly the work
// that was in flight.

// flakyStub is a cheap back end whose every Process call consults a fault
// injector (op "process") before returning a canned result. Safe for
// concurrent workers.
type flakyStub struct {
	inj   *faults.Injector
	mu    sync.Mutex
	calls int
}

func (s *flakyStub) Name() string { return "stub" }

func (s *flakyStub) Process(_ context.Context, model ModelSpec, record *leshouches.AnalysisRecord) (*Result, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.inj != nil {
		if out := s.inj.Decide("process"); out.Err != nil {
			return nil, out.Err
		}
	}
	return &Result{
		Analysis: record.Name, BackEnd: "stub",
		Generated: model.Events, Selected: model.Events / 2, Acceptance: 0.5,
	}, nil
}

// newStubService wires a flakyStub behind a service with one subscription.
func newStubService(t testing.TB, inj *faults.Injector) (*Service, *flakyStub) {
	t.Helper()
	stub := &flakyStub{inj: inj}
	svc := NewService(stub)
	if err := svc.Subscribe(Subscription{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass dimuon search",
		Record:      highMassSearch(),
	}); err != nil {
		t.Fatal(err)
	}
	return svc, stub
}

// fastPolicy is DefaultQueuePolicy with sleeps stubbed out so chaos runs
// finish in microseconds; the schedule (attempt counts, classification) is
// unchanged.
func fastPolicy() resilience.Policy {
	pol := DefaultQueuePolicy()
	pol.Sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	return pol
}

func submitApproved(t testing.TB, svc *Service, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", fmt.Sprintf("theorist-%d", i), "", validModel())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, req.ID)
	}
	return ids
}

func TestChaosQueueEveryRequestReachesTerminalState(t *testing.T) {
	const requests = 40
	inj := faults.NewInjector(0x5EC457).WithErrorRate(0.3)
	svc, _ := newStubService(t, inj)
	ids := submitApproved(t, svc, requests)

	q := NewQueueWith(context.Background(), svc, QueueConfig{Workers: 4, Policy: fastPolicy()})
	for _, id := range ids {
		if !q.Enqueue(id) {
			t.Fatalf("enqueue %s refused", id)
		}
	}
	q.Wait()

	var done, failed int
	for _, id := range ids {
		req, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		switch req.Status {
		case StatusDone:
			done++
			if req.Result == nil {
				t.Errorf("%s done without result", id)
			}
		case StatusFailed:
			failed++
			// A dead-lettered request carries its full attempt history.
			if len(req.Attempts) != fastPolicy().MaxAttempts {
				t.Errorf("%s dead-lettered with %d attempts, want %d",
					id, len(req.Attempts), fastPolicy().MaxAttempts)
			}
			for _, at := range req.Attempts {
				if at.Class != "transient" || at.Error == "" {
					t.Errorf("%s attempt %d: class=%q error=%q", id, at.N, at.Class, at.Error)
				}
			}
			if !strings.Contains(req.Reason, "injected fault") {
				t.Errorf("%s reason does not name the fault: %q", id, req.Reason)
			}
		default:
			t.Errorf("%s stuck in non-terminal state %s", id, req.Status)
		}
	}
	if done == 0 {
		t.Fatal("no request succeeded under 30% faults — retry is not retrying")
	}
	st := inj.Stats()
	if st.Errors == 0 {
		t.Fatal("chaos run injected no faults — test is vacuous")
	}
	t.Logf("chaos: %d done, %d dead-lettered, %d injected faults over %d ops",
		done, failed, st.Errors, st.Ops)
}

func TestRetryRecoversScheduledFaults(t *testing.T) {
	// Exactly MaxAttempts-1 scheduled failures: the last attempt succeeds,
	// and the request records the whole history.
	inj := faults.NewInjector(1)
	svc, _ := newStubService(t, inj)
	id := submitApproved(t, svc, 1)[0]
	pol := fastPolicy()
	inj.FailNext("process", pol.MaxAttempts-1)

	req, err := svc.ProcessWithPolicy(context.Background(), id, pol)
	if err != nil {
		t.Fatalf("request should have recovered: %v", err)
	}
	if req.Status != StatusDone {
		t.Fatalf("status = %s, want done", req.Status)
	}
	if len(req.Attempts) != pol.MaxAttempts {
		t.Fatalf("attempts = %d, want %d", len(req.Attempts), pol.MaxAttempts)
	}
	last := req.Attempts[len(req.Attempts)-1]
	if last.Error != "" || last.Class != "" {
		t.Fatalf("final attempt should be clean: %+v", last)
	}
}

func TestPermanentErrorDeadLettersFirstStrike(t *testing.T) {
	svc := NewService(permanentBackend{})
	if err := svc.Subscribe(Subscription{
		Name: "A", Description: "d", Record: highMassSearch(),
	}); err != nil {
		t.Fatal(err)
	}
	req, err := svc.Submit("A", "r", "", validModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Approve(req.ID); err != nil {
		t.Fatal(err)
	}
	got, err := svc.ProcessWithPolicy(context.Background(), req.ID, fastPolicy())
	if err == nil {
		t.Fatal("permanent failure reported success")
	}
	if got.Status != StatusFailed || len(got.Attempts) != 1 {
		t.Fatalf("want one-strike dead letter, got status=%s attempts=%d",
			got.Status, len(got.Attempts))
	}
	if got.Attempts[0].Class != "permanent" {
		t.Fatalf("attempt class = %q, want permanent", got.Attempts[0].Class)
	}
}

type permanentBackend struct{}

func (permanentBackend) Name() string { return "perm" }
func (permanentBackend) Process(context.Context, ModelSpec, *leshouches.AnalysisRecord) (*Result, error) {
	return nil, resilience.MarkPermanent(errors.New("model outside preserved phase space"))
}

func TestQueueCancellationLeavesWorkInFlight(t *testing.T) {
	inj := faults.NewInjector(2)
	svc, _ := newStubService(t, inj)
	ids := submitApproved(t, svc, 8)

	// A back end that blocks until cancelled, so every picked-up job is
	// mid-attempt when the pool dies.
	ctx, cancel := context.WithCancel(context.Background())
	blocking := &blockingBackend{release: ctx.Done()}
	svc.backend = blocking

	q := NewQueueWith(ctx, svc, QueueConfig{Workers: 2, Policy: fastPolicy()})
	for _, id := range ids {
		q.Enqueue(id)
	}
	blocking.waitStarted(2)
	cancel()
	results := q.Wait()

	// Every request is either still approved (in flight or never picked
	// up) — never half-transitioned — and the queue reports the
	// cancellation.
	for _, id := range ids {
		req, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if req.Status != StatusApproved {
			t.Errorf("%s left in %s after cancellation, want approved", id, req.Status)
		}
	}
	var cancelled int
	for _, err := range results {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job reported the cancellation")
	}
}

// blockingBackend parks Process until the release channel closes, then
// reports the cancellation as the context error would.
type blockingBackend struct {
	release <-chan struct{}
	mu      sync.Mutex
	started int
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Process(context.Context, ModelSpec, *leshouches.AnalysisRecord) (*Result, error) {
	b.mu.Lock()
	b.started++
	b.mu.Unlock()
	<-b.release
	return nil, context.Canceled
}

func (b *blockingBackend) waitStarted(n int) {
	for {
		b.mu.Lock()
		s := b.started
		b.mu.Unlock()
		if s >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJournalRecoversInFlightWorkAfterCrash(t *testing.T) {
	inj := faults.NewInjector(3)
	svc, _ := newStubService(t, inj)
	var journal bytes.Buffer
	svc.SetJournal(&journal)

	ids := submitApproved(t, svc, 5)
	// Two complete, one dead-letters, two stay in flight — then the
	// process "crashes" with the journal as the only survivor.
	if _, err := svc.Process(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Process(ids[1]); err != nil {
		t.Fatal(err)
	}
	inj.FailNext("process", 10)
	if _, err := svc.ProcessWithPolicy(context.Background(), ids[2], fastPolicy()); err == nil {
		t.Fatal("expected dead letter")
	}
	if err := svc.JournalErr(); err != nil {
		t.Fatal(err)
	}

	// Crash-truncated tail: the final line is cut mid-write.
	data := journal.Bytes()
	truncated := append(append([]byte(nil), data...), []byte(`{"id":"req-0000`)...)

	restored, _ := newStubService(t, faults.NewInjector(4))
	inflight, err := restored.ReplayJournal(bytes.NewReader(truncated))
	if err != nil {
		t.Fatalf("replay rejected a crash-truncated journal: %v", err)
	}
	if len(inflight) != 2 || inflight[0] != ids[3] || inflight[1] != ids[4] {
		t.Fatalf("inflight = %v, want [%s %s]", inflight, ids[3], ids[4])
	}

	// Terminal states and histories survived.
	for _, id := range ids[:2] {
		req, err := restored.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if req.Status != StatusDone || req.Result == nil {
			t.Fatalf("%s lost its result: status=%s", id, req.Status)
		}
	}
	dead, err := restored.Get(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if dead.Status != StatusFailed || len(dead.Attempts) != fastPolicy().MaxAttempts {
		t.Fatalf("dead letter lost history: status=%s attempts=%d", dead.Status, len(dead.Attempts))
	}

	// The recovered in-flight work re-enqueues and completes.
	q := NewQueueWith(context.Background(), restored, QueueConfig{Workers: 2, Policy: fastPolicy()})
	for _, id := range inflight {
		if !q.Enqueue(id) {
			t.Fatalf("re-enqueue %s refused", id)
		}
	}
	q.Wait()
	for _, id := range inflight {
		req, err := restored.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if req.Status != StatusDone {
			t.Fatalf("recovered %s ended %s, want done", id, req.Status)
		}
	}

	// New submissions do not collide with replayed IDs.
	fresh, err := restored.Submit("GPD_2013_DIMUON_HIGHMASS", "r", "", validModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh.ID == id {
			t.Fatalf("post-replay submission reused ID %s", id)
		}
	}
}

func TestReplayJournalRejectsMidStreamCorruption(t *testing.T) {
	svc, _ := newStubService(t, nil)
	var journal bytes.Buffer
	svc.SetJournal(&journal)
	submitApproved(t, svc, 2)

	lines := strings.SplitAfter(journal.String(), "\n")
	// Corrupt a line that is NOT the last — real damage, not a crash tail.
	corrupted := "{broken json\n" + strings.Join(lines[1:], "")
	restored, _ := newStubService(t, nil)
	if _, err := restored.ReplayJournal(strings.NewReader(corrupted)); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

func BenchmarkRecastRetryOverhead(b *testing.B) {
	// Cost of the retry wrapper on the happy path: Process vs
	// ProcessWithPolicy with a back end that never fails.
	setup := func(b *testing.B, n int) (*Service, []string) {
		svc, _ := newStubService(b, nil)
		return svc, submitApproved(b, svc, n)
	}
	b.Run("process-direct", func(b *testing.B) {
		svc, ids := setup(b, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Process(ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("process-with-policy", func(b *testing.B) {
		svc, ids := setup(b, b.N)
		pol := DefaultQueuePolicy()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.ProcessWithPolicy(ctx, ids[i], pol); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestReplayJournalDropsTornFinalRecord(t *testing.T) {
	// Unlike the synthetic partial line in the crash test above, this tears
	// the journal's real final record — the tail a crash mid-append leaves —
	// with the same fault primitive the checkpoint crash-storm uses. Replay
	// must drop the torn record, reverting that request to its previous
	// journaled state, and keep everything before it.
	svc, _ := newStubService(t, nil)
	var journal bytes.Buffer
	svc.SetJournal(&journal)
	ids := submitApproved(t, svc, 3)
	if _, err := svc.Process(ids[0]); err != nil {
		t.Fatal(err)
	}
	// The final record is ids[0]'s "done" snapshot. Tear it mid-write.
	path := filepath.Join(t.TempDir(), "journal.log")
	if err := os.WriteFile(path, journal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faults.TearFinalRecord(path); err != nil {
		t.Fatal(err)
	}
	torn, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= journal.Len() {
		t.Fatal("tear removed nothing")
	}

	restored, _ := newStubService(t, nil)
	inflight, err := restored.ReplayJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("replay rejected a torn final record: %v", err)
	}
	// ids[0] reverted to its last intact snapshot (approved), so all three
	// requests are back in flight — losing the torn completion is safe
	// because re-processing is idempotent; losing earlier records is not.
	if len(inflight) != 3 {
		t.Fatalf("inflight = %v, want all three requests", inflight)
	}
	req, err := restored.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if req.Status != StatusApproved {
		t.Fatalf("torn completion applied: status=%s, want approved", req.Status)
	}
	// The survivor replays onward: reprocessing completes normally.
	if _, err := restored.Process(ids[0]); err != nil {
		t.Fatal(err)
	}
}
