package recast

import (
	"bytes"
	"strings"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	svc := newFullSimService(t)
	// One request in each interesting state.
	done, _ := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "a", "", validModel())
	_ = svc.Approve(done.ID)
	if _, err := svc.Process(done.ID); err != nil {
		t.Fatal(err)
	}
	rejected, _ := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "b", "", validModel())
	_ = svc.Reject(rejected.ID, "duplicate of published limits")
	pending, _ := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "c", "", validModel())

	var buf bytes.Buffer
	if err := svc.DumpRequests(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh service after restart: the experiment re-subscribes, then
	// loads the ledger.
	restarted := newFullSimService(t)
	if err := restarted.LoadRequests(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := restarted.Get(done.ID)
	if err != nil || got.Status != StatusDone || got.Result == nil {
		t.Fatalf("done request after restart: %+v %v", got, err)
	}
	gotRej, _ := restarted.Get(rejected.ID)
	if gotRej.Status != StatusRejected || gotRej.Reason == "" {
		t.Fatalf("rejected request after restart: %+v", gotRej)
	}
	// The pending request can continue its lifecycle.
	if err := restarted.Approve(pending.ID); err != nil {
		t.Fatal(err)
	}
	finished, err := restarted.Process(pending.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finished.Status != StatusDone {
		t.Fatalf("resumed request: %+v", finished)
	}
	// New submissions continue the ID sequence, no collisions.
	fresh, err := restarted.Submit("GPD_2013_DIMUON_HIGHMASS", "d", "", validModel())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == done.ID || fresh.ID == rejected.ID || fresh.ID == pending.ID {
		t.Fatalf("ID collision after restart: %s", fresh.ID)
	}
	if fresh.ID != "req-000004" {
		t.Fatalf("sequence not resumed: %s", fresh.ID)
	}
}

func TestLoadRequestsValidation(t *testing.T) {
	svc := newFullSimService(t)
	if err := svc.LoadRequests(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage ledger loaded")
	}
	if err := svc.LoadRequests(strings.NewReader(`[{"id":"req-000001","status":"warp"}]`)); err == nil {
		t.Fatal("unknown status loaded")
	}
	if err := svc.LoadRequests(strings.NewReader(`[{"id":"","status":"submitted"}]`)); err == nil {
		t.Fatal("empty ID loaded")
	}
	if err := svc.LoadRequests(strings.NewReader(`[{"id":"req-000001","status":"submitted"},{"id":"req-000001","status":"submitted"}]`)); err == nil {
		t.Fatal("duplicate IDs loaded")
	}
	// Non-empty service refuses a load.
	if _, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "x", "", validModel()); err != nil {
		t.Fatal(err)
	}
	if err := svc.LoadRequests(strings.NewReader(`[]`)); err == nil {
		t.Fatal("load into non-empty service accepted")
	}
}
