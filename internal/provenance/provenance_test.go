package provenance

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildChain stores a linear RAW → RECO → AOD → DERIVED chain and returns
// the store plus the IDs in production order.
func buildChain(t *testing.T) (*Store, []string) {
	t.Helper()
	s := NewStore()
	var ids []string
	prev := []string(nil)
	for _, tier := range []string{"RAW", "RECO", "AOD", "DERIVED"} {
		id, err := s.Add(Record{
			Output:   Artifact{Name: "run1." + tier, Digest: "d-" + tier, Tier: tier, Events: 100, Bytes: 1 << 20},
			Producer: Producer{Step: "make-" + tier, Software: "daspos", Version: "1.0", ConfigDigest: "c"},
			Parents:  prev,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		prev = []string{id}
	}
	return s, ids
}

func TestAddAndGet(t *testing.T) {
	s, ids := buildChain(t)
	if s.Len() != 4 {
		t.Fatalf("len %d", s.Len())
	}
	r, ok := s.Get(ids[2])
	if !ok || r.Output.Tier != "AOD" {
		t.Fatalf("get: %+v %v", r, ok)
	}
	if r.Seq != 2 {
		t.Fatalf("seq %d", r.Seq)
	}
	byName, ok := s.ByName("run1.AOD")
	if !ok || byName.ID != ids[2] {
		t.Fatal("ByName lookup failed")
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("phantom record")
	}
}

func TestAddRejectsUnknownParent(t *testing.T) {
	s := NewStore()
	_, err := s.Add(Record{
		Output:  Artifact{Name: "x"},
		Parents: []string{"missing"},
	})
	if !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err: %v", err)
	}
}

func TestIDsAreContentAddresses(t *testing.T) {
	a := NewStore()
	b := NewStore()
	r := Record{Output: Artifact{Name: "x", Digest: "d"}, Producer: Producer{Step: "s"}}
	id1, err := a.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := b.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("identical records got different IDs")
	}
	// A different config digest must change the ID.
	c := NewStore()
	r2 := r
	r2.Producer.ConfigDigest = "changed"
	id3, _ := c.Add(r2)
	if id3 == id1 {
		t.Fatal("config change did not change record ID")
	}
}

func TestDuplicateRejected(t *testing.T) {
	s := NewStore()
	r := Record{Output: Artifact{Name: "x"}}
	if _, err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	// Second add gets a different Seq, hence a different ID — but adding
	// the same record twice with a forced equal sequence must fail. We
	// simulate by adding until the ID collides: instead check that same
	// content at same seq is impossible through the public API.
	if _, err := s.Add(r); err != nil {
		t.Fatalf("records at different seq must coexist: %v", err)
	}
}

func TestLineage(t *testing.T) {
	s, ids := buildChain(t)
	lin, err := s.Lineage(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 4 {
		t.Fatalf("lineage length %d", len(lin))
	}
	if lin[0].Output.Tier != "DERIVED" || lin[3].Output.Tier != "RAW" {
		t.Fatalf("lineage order: %s .. %s", lin[0].Output.Tier, lin[3].Output.Tier)
	}
	if _, err := s.Lineage("nope"); err == nil {
		t.Fatal("lineage of unknown record succeeded")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	s, ids := buildChain(t)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	s.records[ids[1]].Output.Events = 999 // tamper in place
	if err := s.Verify(); err == nil {
		t.Fatal("tampering not detected")
	}
}

func TestAuditCompleteChain(t *testing.T) {
	s, _ := buildChain(t)
	rep := s.Audit()
	if rep.Records != 4 || rep.Complete != 4 || len(rep.Broken) != 0 {
		t.Fatalf("audit: %+v", rep)
	}
	if rep.CompleteFraction() != 1 {
		t.Fatalf("fraction %v", rep.CompleteFraction())
	}
}

func TestAuditDetectsLostParentage(t *testing.T) {
	s, ids := buildChain(t)
	// Simulate the paper's failure: the RECO record was never written.
	r := s.records[ids[1]]
	delete(s.records, ids[1])
	delete(s.byName, r.Output.Name)
	rep := s.Audit()
	// RAW survives (root); AOD and DERIVED are broken.
	if rep.Records != 3 || rep.Complete != 1 || len(rep.Broken) != 2 {
		t.Fatalf("audit after loss: %+v", rep)
	}
	if rep.CompleteFraction() > 0.5 {
		t.Fatalf("fraction %v", rep.CompleteFraction())
	}
}

func TestForgetEveryNth(t *testing.T) {
	s := NewStore()
	// Ten independent chains RAW → RECO → AOD: the RECO records are the
	// forgettable intermediates.
	for i := 0; i < 10; i++ {
		suffix := string(rune('a' + i))
		rootID, err := s.Add(Record{Output: Artifact{Name: "raw" + suffix}})
		if err != nil {
			t.Fatal(err)
		}
		recoID, err := s.Add(Record{
			Output:  Artifact{Name: "reco" + suffix},
			Parents: []string{rootID},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(Record{
			Output:  Artifact{Name: "aod" + suffix},
			Parents: []string{recoID},
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Audit()
	if before.CompleteFraction() != 1 {
		t.Fatal("chains not complete before forgetting")
	}
	dropped := s.ForgetEveryNth(2)
	if dropped != 5 {
		t.Fatalf("dropped %d intermediates, want 5", dropped)
	}
	after := s.Audit()
	// Five AOD records lost their chains; everything else survives.
	if len(after.Broken) != 5 {
		t.Fatalf("audit after loss: %+v", after)
	}
	if after.CompleteFraction() >= 1 {
		t.Fatal("forgetting did not break completeness")
	}
	if s.ForgetEveryNth(1) != 0 {
		t.Fatal("n<2 must be a no-op")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, ids := buildChain(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len %d != %d", got.Len(), s.Len())
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	lin, err := got.Lineage(ids[3])
	if err != nil || len(lin) != 4 {
		t.Fatalf("lineage after reload: %d %v", len(lin), err)
	}
	// New records must continue the sequence, not collide with it.
	id, err := got.Add(Record{Output: Artifact{Name: "new"}, Parents: []string{ids[3]}})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := got.Get(id)
	if r.Seq != 4 {
		t.Fatalf("resumed seq %d", r.Seq)
	}
}

func TestReadJSONDetectsTampering(t *testing.T) {
	s, _ := buildChain(t)
	var buf bytes.Buffer
	_ = s.WriteJSON(&buf)
	tampered := strings.Replace(buf.String(), `"events": 100`, `"events": 666`, 1)
	if _, err := ReadJSON(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered store loaded")
	}
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage loaded")
	}
}

func TestReadJSONToleratesDanglingParents(t *testing.T) {
	s, ids := buildChain(t)
	r := s.records[ids[1]]
	delete(s.records, ids[1])
	delete(s.byName, r.Output.Name)
	var buf bytes.Buffer
	_ = s.WriteJSON(&buf)
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("incomplete chain must load: %v", err)
	}
	rep := got.Audit()
	if len(rep.Broken) != 2 {
		t.Fatalf("audit after reload: %+v", rep)
	}
}

func TestAllOrderedBySeq(t *testing.T) {
	s, _ := buildChain(t)
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatal("All not ordered by sequence")
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	s := NewStore()
	prev, _ := s.Add(Record{Output: Artifact{Name: "root"}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Add(Record{
			Output:  Artifact{Name: "a", Digest: "d", Events: i},
			Parents: []string{prev},
		})
		if err != nil {
			b.Fatal(err)
		}
		prev = id
	}
}

func BenchmarkAudit1000(b *testing.B) {
	s := NewStore()
	prev := ""
	for i := 0; i < 1000; i++ {
		var parents []string
		if prev != "" {
			parents = []string{prev}
		}
		id, err := s.Add(Record{Output: Artifact{Name: "n", Events: i}, Parents: parents})
		if err != nil {
			b.Fatal(err)
		}
		prev = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Audit()
	}
}
