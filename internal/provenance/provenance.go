// Package provenance implements the provenance chain the paper warns is at
// risk (§3.2): "Depending on how the processing is done, the parentage and
// computing (producer) description of a given file may not be included. If
// this is the case, and the workflow is to be preserved, an external
// structure to capture that provenance chain will need to be created."
// This package is that external structure.
//
// Every produced artifact gets a Record: what was made (name, content
// digest, tier), by what (step, software, version, configuration digest),
// from what (parent record IDs), and with which external dependencies
// (conditions folders, database tags). Records are content-addressed —
// the record ID is the SHA-256 of its canonical JSON — so a chain cannot
// be silently rewritten. The Audit walks every chain back to its roots and
// reports exactly the gap the paper describes when records are missing.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Producer describes the computation that made an artifact.
type Producer struct {
	// Step is the workflow step name (e.g. "reconstruction").
	Step string `json:"step"`
	// Software and Version identify the release that ran.
	Software string `json:"software"`
	Version  string `json:"version"`
	// ConfigDigest is the SHA-256 of the step's captured configuration.
	ConfigDigest string `json:"config_digest"`
}

// Artifact describes a produced data product.
type Artifact struct {
	// Name is the logical dataset/file name.
	Name string `json:"name"`
	// Digest is the SHA-256 of the content.
	Digest string `json:"digest"`
	// Tier is the data-tier label (RAW, RECO, AOD, DERIVED, ...).
	Tier string `json:"tier"`
	// Events and Bytes record the artifact's extent.
	Events int   `json:"events"`
	Bytes  int64 `json:"bytes"`
}

// Record is one node of the provenance graph.
type Record struct {
	// ID is the content address of the record; it is computed by the
	// store, never set by callers.
	ID string `json:"id"`
	// Seq is a monotonically increasing sequence number assigned by the
	// store, giving a reproducible total order without wall clocks.
	Seq int `json:"seq"`

	Output   Artifact `json:"output"`
	Producer Producer `json:"producer"`
	// Parents are the record IDs of the inputs. Empty for primary inputs
	// (generated or acquired data).
	Parents []string `json:"parents,omitempty"`
	// ConditionsTag pins the calibration used, if any.
	ConditionsTag string `json:"conditions_tag,omitempty"`
	// ExternalDeps lists external resources the step resolved (conditions
	// folders, catalogs): the census of experiment W2.
	ExternalDeps []string `json:"external_deps,omitempty"`
}

// recordID hashes the canonical JSON of the record with ID cleared.
func recordID(r Record) (string, error) {
	r.ID = ""
	data, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Store holds provenance records and answers graph queries. It is not safe
// for concurrent mutation; workflow execution is single-writer.
type Store struct {
	records map[string]*Record
	// byName indexes the latest record for each artifact name.
	byName  map[string]string
	nextSeq int
}

// NewStore returns an empty provenance store.
func NewStore() *Store {
	return &Store{records: make(map[string]*Record), byName: make(map[string]string)}
}

// ErrUnknownParent is returned by Add when a parent ID is not in the store.
var ErrUnknownParent = errors.New("provenance: unknown parent record")

// Add computes the record's content address, assigns its sequence number,
// and stores it. Parents must already exist — provenance is written in
// production order. Returns the record ID.
func (s *Store) Add(r Record) (string, error) {
	for _, p := range r.Parents {
		if _, ok := s.records[p]; !ok {
			return "", fmt.Errorf("%w: %s", ErrUnknownParent, p)
		}
	}
	r.Seq = s.nextSeq
	id, err := recordID(r)
	if err != nil {
		return "", err
	}
	if _, dup := s.records[id]; dup {
		return "", fmt.Errorf("provenance: duplicate record %s", id)
	}
	r.ID = id
	s.nextSeq++
	s.records[id] = &r
	s.byName[r.Output.Name] = id
	return id, nil
}

// Get returns a copy of the record with the given ID.
func (s *Store) Get(id string) (Record, bool) {
	r, ok := s.records[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// ByName returns the most recent record for an artifact name.
func (s *Store) ByName(name string) (Record, bool) {
	id, ok := s.byName[name]
	if !ok {
		return Record{}, false
	}
	return s.Get(id)
}

// Len returns the number of stored records.
func (s *Store) Len() int { return len(s.records) }

// All returns every record ordered by sequence number.
func (s *Store) All() []Record {
	out := make([]Record, 0, len(s.records))
	for _, r := range s.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Lineage returns the record's full ancestry (the record itself first,
// then ancestors in breadth-first order). Missing ancestors terminate
// their branch silently; use Audit to detect them.
func (s *Store) Lineage(id string) ([]Record, error) {
	start, ok := s.records[id]
	if !ok {
		return nil, fmt.Errorf("provenance: no record %s", id)
	}
	seen := map[string]bool{id: true}
	out := []Record{*start}
	queue := append([]string(nil), start.Parents...)
	for len(queue) > 0 {
		next := queue[0]
		queue = queue[1:]
		if seen[next] {
			continue
		}
		seen[next] = true
		r, ok := s.records[next]
		if !ok {
			continue
		}
		out = append(out, *r)
		queue = append(queue, r.Parents...)
	}
	return out, nil
}

// Verify re-hashes every record and checks parent resolvability, detecting
// tampering or corruption in an archived provenance file.
func (s *Store) Verify() error {
	for id, r := range s.records {
		want, err := recordID(*r)
		if err != nil {
			return err
		}
		if want != id {
			return fmt.Errorf("provenance: record %s fails content check", id)
		}
		for _, p := range r.Parents {
			if _, ok := s.records[p]; !ok {
				return fmt.Errorf("provenance: record %s has dangling parent %s", id, p)
			}
		}
	}
	return nil
}

// AuditReport summarizes chain completeness: the quantity experiment W3
// measures with and without external provenance capture.
type AuditReport struct {
	// Records is the number of records audited.
	Records int
	// Complete counts records whose every ancestry branch terminates in a
	// root record (a record with no parents).
	Complete int
	// Broken lists the IDs of records with at least one unresolvable
	// ancestor.
	Broken []string
}

// CompleteFraction returns the fraction of records with full chains.
func (a AuditReport) CompleteFraction() float64 {
	if a.Records == 0 {
		return 1
	}
	return float64(a.Complete) / float64(a.Records)
}

// Audit checks every record's ancestry for completeness.
func (s *Store) Audit() AuditReport {
	memo := make(map[string]bool, len(s.records))
	var complete func(id string, visiting map[string]bool) bool
	complete = func(id string, visiting map[string]bool) bool {
		if v, ok := memo[id]; ok {
			return v
		}
		if visiting[id] {
			// A cycle is never complete; it cannot reach a root.
			return false
		}
		r, ok := s.records[id]
		if !ok {
			return false
		}
		visiting[id] = true
		defer delete(visiting, id)
		result := true
		for _, p := range r.Parents {
			if !complete(p, visiting) {
				result = false
				break
			}
		}
		memo[id] = result
		return result
	}
	rep := AuditReport{Records: len(s.records)}
	ids := make([]string, 0, len(s.records))
	for id := range s.records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if complete(id, map[string]bool{}) {
			rep.Complete++
		} else {
			rep.Broken = append(rep.Broken, id)
		}
	}
	return rep
}

// ForgetEveryNth removes every n-th intermediate record (n >= 2): records
// that are referenced as someone's parent and are not roots themselves.
// This simulates the paper's scenario in which "the parentage and
// computing (producer) description of a given file may not be included" by
// the processing system — downstream records survive but their chains no
// longer reach the raw data. It returns the number dropped.
func (s *Store) ForgetEveryNth(n int) int {
	if n < 2 {
		return 0
	}
	referenced := make(map[string]bool)
	for _, r := range s.records {
		for _, p := range r.Parents {
			referenced[p] = true
		}
	}
	var candidates []string
	for id := range s.records {
		if referenced[id] && len(s.records[id].Parents) > 0 {
			candidates = append(candidates, id)
		}
	}
	sort.Strings(candidates)
	dropped := 0
	for i, id := range candidates {
		if i%n != 0 {
			continue
		}
		r := s.records[id]
		delete(s.records, id)
		if s.byName[r.Output.Name] == id {
			delete(s.byName, r.Output.Name)
		}
		dropped++
	}
	return dropped
}

// WriteJSON serializes the store (records in sequence order).
func (s *Store) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.All())
}

// ReadJSON loads a store from its JSON form and verifies record integrity.
// Dangling parents are tolerated here — an incomplete archived chain must
// still be loadable so Audit can quantify the damage.
func ReadJSON(r io.Reader) (*Store, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("provenance: parsing store: %w", err)
	}
	s := NewStore()
	for _, rec := range records {
		want, err := recordID(rec)
		if err != nil {
			return nil, err
		}
		if want != rec.ID {
			return nil, fmt.Errorf("provenance: record %s fails content check on load", rec.ID)
		}
		cp := rec
		s.records[rec.ID] = &cp
		s.byName[rec.Output.Name] = rec.ID
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
	}
	return s, nil
}
