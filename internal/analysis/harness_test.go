package analysis

// The golden-file harness: each analyzer runs over a testdata package and
// its findings are matched against // want "regexp" comments on the
// offending lines — the analysistest idiom, rebuilt on the stdlib-only
// loader. Every seeded violation must be reported, every reported finding
// must be expected, and suppressed or clean sites must stay silent.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"go/ast"
)

// wantRE matches one expectation: an optional pinned column, then the
// message regexp — `// want "re"`, `// want 17:"re"`, or backquoted.
// The regexp is matched against "analyzer: message", so multi-analyzer
// testdata packages can anchor an expectation to one analyzer by
// prefixing the pattern with its name.
var wantRE = regexp.MustCompile("//\\s*want\\s+(?:(\\d+):)?(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one // want comment: a line (and optionally a column)
// that must produce a finding whose qualified message matches the regexp.
type expectation struct {
	file    string
	line    int
	col     int // 0 = any column
	re      *regexp.Regexp
	matched bool
}

// runAnalyzerTest loads testdata/<dir> as a package with the given
// virtual import path (so path-scoped analyzers see the package they
// would in the real tree) and diffs the analyzer's findings against the
// want expectations.
func runAnalyzerTest(t *testing.T, a *Analyzer, dir, virtualPath string) {
	t.Helper()
	runAnalyzersTest(t, []*Analyzer{a}, dir, virtualPath)
}

// runAnalyzersTest is the multi-analyzer form: the whole set runs over
// one testdata package, the way daspos-vet runs the suite over a real
// one, and every finding — including the framework's unused-suppression
// reports — must be expected.
func runAnalyzersTest(t *testing.T, as []*Analyzer, dir, virtualPath string) {
	t.Helper()
	for _, a := range as {
		if a.Match != nil && !a.Match(virtualPath) {
			t.Fatalf("virtual path %q is outside analyzer %s's scope", virtualPath, a.Name)
		}
	}
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no testdata files under testdata/%s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	importSet := make(map[string]bool)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				pat := m[2]
				if m[3] != "" {
					pat = m[3]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				col := 0
				if m[1] != "" {
					col, err = strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want column %q: %v", name, i+1, m[1], err)
					}
				}
				expects = append(expects, &expectation{file: name, line: i + 1, col: col, re: re})
			}
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		if _, exports, err = goList(".", imports); err != nil {
			t.Fatal(err)
		}
	}
	pkg, info, err := typecheck(fset, exportImporter(fset, exports), virtualPath, files)
	if err != nil {
		t.Fatal(err)
	}

	findings := Run(fset, []*Package{{Path: virtualPath, Files: files, Types: pkg, Info: info}}, as)
	for _, f := range findings {
		qualified := f.Analyzer + ": " + f.Message
		matched := false
		for _, e := range expects {
			if !e.matched && e.file == f.File && e.line == f.Line &&
				(e.col == 0 || e.col == f.Col) && e.re.MatchString(qualified) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			if e.col > 0 {
				t.Errorf("%s:%d:%d: no finding matching %q at that column", e.file, e.line, e.col, e.re)
			} else {
				t.Errorf("%s:%d: no finding matching %q", e.file, e.line, e.re)
			}
		}
	}
}
