package analysis

// The golden-file harness: each analyzer runs over a testdata package and
// its findings are matched against // want "regexp" comments on the
// offending lines — the analysistest idiom, rebuilt on the stdlib-only
// loader. Every seeded violation must be reported, every reported finding
// must be expected, and suppressed or clean sites must stay silent.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"go/ast"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one // want comment: a line that must produce a finding
// whose message matches the regexp.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runAnalyzerTest loads testdata/<dir> as a package with the given
// virtual import path (so path-scoped analyzers see the package they
// would in the real tree) and diffs the analyzer's findings against the
// want expectations.
func runAnalyzerTest(t *testing.T, a *Analyzer, dir, virtualPath string) {
	t.Helper()
	if a.Match != nil && !a.Match(virtualPath) {
		t.Fatalf("virtual path %q is outside analyzer %s's scope", virtualPath, a.Name)
	}
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no testdata files under testdata/%s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	importSet := make(map[string]bool)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				expects = append(expects, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		if _, exports, err = goList(".", imports); err != nil {
			t.Fatal(err)
		}
	}
	pkg, info, err := typecheck(fset, exportImporter(fset, exports), virtualPath, files)
	if err != nil {
		t.Fatal(err)
	}

	findings := Run(fset, []*Package{{Path: virtualPath, Files: files, Types: pkg, Info: info}}, []*Analyzer{a})
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if !e.matched && e.file == f.File && e.line == f.Line && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no finding matching %q", e.file, e.line, e.re)
		}
	}
}
