package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CloneCheck enforces the batch-ownership rule of the streaming substrate:
// the container a stage or sink closure receives is recycled — and
// deterministically cleared — as soon as the closure returns, so keeping
// the slice (or a subslice, or a pointer into it) in surrounding state
// means reading poisoned memory on a later batch. Element values may be
// copied out (that is the legal path), and events that must outlive the
// handoff cross the boundary via Clone(); a site that deliberately retains
// a container (a test asserting the poisoning itself, say) documents it
// with //daspos:retain-ok.
var CloneCheck = &Analyzer{
	Name:     "clonecheck",
	Doc:      "eventflow batch closures must not retain their input container; copy elements out or Clone() before the reference crosses the boundary",
	Why:      "eventflow recycles and clears batch containers after every handoff; a retained container reference reads deterministically poisoned memory on the next batch",
	Suppress: "retain-ok",
	Run:      runCloneCheck,
}

// batchTakers maps the eventflow entry points that hand a closure a
// recycled container to the argument index of that closure.
var batchTakers = map[string]int{
	"SinkBatch":  2, // SinkBatch(s, name, fn func([]T) error)
	"MapBatches": 3, // MapBatches(s, name, workers, newFn func(int) func(in, out) (out, error))
}

func runCloneCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/eventflow") {
				return true
			}
			argIdx, ok := batchTakers[fn.Name()]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			switch fn.Name() {
			case "SinkBatch":
				if lit, ok := ast.Unparen(call.Args[argIdx]).(*ast.FuncLit); ok {
					p.checkBatchClosure(lit, false)
				}
			case "MapBatches":
				// The argument is a factory; the recycled containers flow
				// into the closures it returns.
				factory, ok := ast.Unparen(call.Args[argIdx]).(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(factory.Body, func(m ast.Node) bool {
					if inner, ok := m.(*ast.FuncLit); ok && inner != factory {
						p.checkBatchClosure(inner, true)
						return false
					}
					return true
				})
			}
			return true
		})
	}
}

// checkBatchClosure inspects one closure whose first parameter is a
// recycled container. For map closures (isMap) the rule extends to the
// return statement: the output must be the out container, never the input.
func (p *Pass) checkBatchClosure(lit *ast.FuncLit, isMap bool) {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return
	}
	in := p.Info.Defs[params.List[0].Names[0]]
	if in == nil {
		return
	}
	isIn := func(id *ast.Ident) bool { return p.Info.Uses[id] == in }

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			// A nested closure over the container outlives nothing by
			// itself; its body is still within the call unless stored,
			// which the assignment cases below catch.
			return true
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				if !aliasesContainer(rhs, isIn) {
					continue
				}
				lhs := stmt.Lhs[0]
				if len(stmt.Lhs) == len(stmt.Rhs) {
					lhs = stmt.Lhs[i]
				}
				if root := rootIdent(lhs); root != nil && p.declaredOutside(root, lit) {
					p.Reportf(rhs.Pos(), "batch container retained past the handoff: %s escapes into %s, which outlives the call — copy the elements (or Clone the events) instead, or //daspos:retain-ok for deliberate retention", in.Name(), root.Name)
				}
			}
		case *ast.SendStmt:
			if aliasesContainer(stmt.Value, isIn) {
				p.Reportf(stmt.Value.Pos(), "batch container retained past the handoff: %s sent on a channel — the receiver reads recycled memory; copy the elements (or Clone the events) first, or //daspos:retain-ok", in.Name())
			}
		case *ast.ReturnStmt:
			if !isMap {
				return true
			}
			for _, res := range stmt.Results {
				if aliasesContainer(res, isIn) {
					p.Reportf(res.Pos(), "map closure returns its input container %s: the stage recycles it on return, so the downstream batch aliases cleared memory — return the out container", in.Name())
				}
			}
		}
		return true
	})
}

// aliasesContainer reports whether the expression evaluates to memory
// inside the container parameter: the container itself, a subslice of it,
// a pointer to one of its slots, or a composite/append carrying one of
// those. A plain element read (in[i]) is a value copy and therefore legal,
// as is any other function call — that is where Clone() lives.
func aliasesContainer(e ast.Expr, isIn func(*ast.Ident) bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return isIn(x)
	case *ast.ParenExpr:
		return aliasesContainer(x.X, isIn)
	case *ast.SliceExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return isIn(id)
		}
		return aliasesContainer(x.X, isIn)
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		// &in[i]: a pointer into the container's backing array.
		if idx, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
			return aliasesContainer(idx.X, isIn)
		}
		return aliasesContainer(x.X, isIn)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if aliasesContainer(v, isIn) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append(dst, in) or append(dst, in[a:b]) stores the container
		// reference in dst. append(dst, in...) copies the elements and is
		// legal, like every other call (Clone, copy helpers, ...).
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && !x.Ellipsis.IsValid() {
			for _, a := range x.Args[1:] {
				if aliasesContainer(a, isIn) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// rootIdent walks to the base identifier of an assignable expression:
// x, x.f, x[i], *x all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier resolves to an object
// declared outside the closure — assigning the container there makes it
// outlive the call.
func (p *Pass) declaredOutside(id *ast.Ident, lit *ast.FuncLit) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil || obj.Name() == "_" {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
