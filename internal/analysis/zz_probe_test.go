package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func probeRun(t *testing.T, src string) []Finding {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("daspos/internal/recast", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return Run(fset, []*Package{{Path: "daspos/internal/recast", Files: []*ast.File{f}, Types: pkg, Info: info}}, []*Analyzer{LockCheck})
}

func TestProbeRangeFP(t *testing.T) {
	src := `package p

import ("sync"; "os")

type S struct{ mu sync.Mutex; files []*os.File }

func (s *S) flushAll() {
	s.mu.Lock()
	for _, f := range s.files {
		s.mu.Unlock()
		f.Sync()
		s.mu.Lock()
	}
	s.mu.Unlock()
}
`
	for _, fd := range probeRun(t, src) {
		t.Logf("%d:%d %s", fd.Line, fd.Col, fd.Message)
	}
}
