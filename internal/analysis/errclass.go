package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrClass enforces the error taxonomy at and below the resilience retry
// boundary. Two rules:
//
//  1. fmt.Errorf must never flatten an error with %v or %s — that breaks
//     errors.Is/As and strips the transient/permanent classification the
//     retry policies branch on. Wrapping with %w preserves both.
//  2. An error constructed directly inside a resilience.Retry operation
//     must be classified (MarkTransient/MarkPermanent) or wrap its cause
//     with %w — otherwise the retry loop sees an unclassified error and
//     gives up after one attempt, silently disabling the policy.
var ErrClass = &Analyzer{
	Name:     "errclass",
	Doc:      "errors must be wrapped with %w and classified transient/permanent at the retry boundary",
	Why:      "retry policies branch on the transient/permanent taxonomy via errors.As; an error flattened with %v or left unclassified silently disables resilience",
	Suppress: "errclass-ok",
	Run:      runErrClass,
}

func runErrClass(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			switch fn.FullName() {
			case "fmt.Errorf":
				p.checkErrorfFlattening(call)
			case "daspos/internal/resilience.Retry":
				p.checkRetryOp(call)
			}
			return true
		})
	}
}

// checkErrorfFlattening flags %v / %s verbs whose argument is an error:
// the wrap drops the chain. (%w, possibly more than one since Go 1.20, is
// the correct verb.)
func (p *Pass) checkErrorfFlattening(call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	for _, v := range formatVerbs(format) {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		argIdx := 1 + v.arg
		if argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		if implementsError(p.typeOf(arg)) {
			p.Reportf(arg.Pos(), "fmt.Errorf formats an error with %%%c, severing the chain; wrap it with %%w so errors.Is/As and the resilience classification survive", v.verb)
		}
	}
}

// verbUse is one format verb and the 0-based operand index it consumes.
type verbUse struct {
	verb rune
	arg  int
}

// formatVerbs parses a Printf-style format string into its verbs. Formats
// using explicit argument indexes ("%[2]v") are skipped entirely — rare,
// and not worth mis-attributing operands over.
func formatVerbs(format string) []verbUse {
	if strings.Contains(format, "%[") {
		return nil
	}
	var out []verbUse
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		out = append(out, verbUse{verb: rune(format[i]), arg: arg})
		arg++
	}
	return out
}

// checkRetryOp inspects the operation literal passed to resilience.Retry:
// errors constructed right at the boundary must carry a classification or
// wrap a classified cause with %w.
func (p *Pass) checkRetryOp(call *ast.CallExpr) {
	if len(call.Args) < 3 {
		return
	}
	op, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
	if !ok {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			return false // returns inside belong to the nested function
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		p.checkBoundaryError(ret.Results[0])
		return true
	}
	ast.Inspect(op.Body, walk)
}

// checkBoundaryError flags a fresh, unclassified error value returned at
// the retry boundary. Identifiers and calls into other functions pass:
// their classification happens (and is checked) where they are built.
func (p *Pass) checkBoundaryError(res ast.Expr) {
	call, ok := ast.Unparen(res).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := p.calleeFunc(call)
	if fn == nil {
		return
	}
	switch fn.FullName() {
	case "errors.New":
		p.Reportf(res.Pos(), "errors.New at the resilience.Retry boundary carries no classification; wrap it with resilience.MarkTransient or MarkPermanent")
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			return
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil || strings.Contains(format, "%w") {
			return
		}
		p.Reportf(res.Pos(), "fmt.Errorf at the resilience.Retry boundary neither wraps a cause with %%w nor carries a Mark* classification; the retry policy cannot tell transient from permanent")
	}
}
