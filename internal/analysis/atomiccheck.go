package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheck enforces the two memory-discipline rules the race detector
// only proves when an interleaving happens to hit them:
//
//   - a struct field accessed through sync/atomic anywhere must be
//     accessed through sync/atomic everywhere — one plain load next to an
//     atomic.AddInt64 is a data race that `-race` reports only if the
//     scheduler stacks the two on top of each other (the typed
//     atomic.Int64 wrappers make this unrepresentable; this check exists
//     for the pointer-style call sites);
//   - a value containing a sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/
//     Pool must never be copied — by assignment, by range, or by being
//     passed as a value argument — because the copy's lock state is
//     divorced from the original's and both sides believe they hold the
//     same lock.
//
// A deliberate copy of a never-locked-again value (a snapshot of a
// config struct at init, say) is annotated //daspos:atomic-ok.
var AtomicCheck = &Analyzer{
	Name:     "atomiccheck",
	Doc:      "no mixed atomic/plain access to the same field; no by-value copies of lock-bearing values",
	Why:      "mixed atomic and plain access is a data race the race detector only catches on a lucky interleaving, and a copied mutex splits one critical section into two that do not exclude each other",
	Suppress: "atomic-ok",
	Match: matchPath(
		"internal/queryserve",
		"internal/recast",
		"internal/cluster",
		"internal/node",
		"internal/catalog",
		"internal/hepdata",
		"internal/eventflow",
	),
	Run: runAtomicCheck,
}

func runAtomicCheck(p *Pass) {
	p.checkMixedAtomics()
	p.checkLockCopies()
}

// checkMixedAtomics finds fields (and package variables) that appear as
// &x arguments to sync/atomic functions, then reports every plain access
// to the same object.
func (p *Pass) checkMixedAtomics() {
	atomicObjs := make(map[types.Object]string) // object -> atomic fn name
	atomicArgNodes := make(map[ast.Node]bool)   // the &x.f operand exprs themselves
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			target := ast.Unparen(ue.X)
			if obj := p.accessedObject(target); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = fn.Name()
				}
				atomicArgNodes[target] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if atomicArgNodes[n] {
				return false // the &x.f operand of the atomic call itself
			}
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			obj := p.accessedObject(e)
			if obj == nil {
				return true
			}
			if via, mixed := atomicObjs[obj]; mixed {
				p.Reportf(e.Pos(), "plain access to %s, which is also accessed via atomic.%s: the compiler and CPU may tear, cache, or reorder the plain access freely — use the atomic API at every site (or migrate the field to the typed atomic wrappers), or //daspos:atomic-ok for provably pre-publication access", obj.Name(), via)
				return false // don't re-report the selector's ident
			}
			return true
		})
	}
}

// accessedObject resolves an expression to the field or variable object
// it reads/writes: the selection's field for x.f, the use/def for a bare
// identifier. Nil when the expression is something else (calls, index
// results, conversions).
func (p *Pass) accessedObject(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return nil
	case *ast.Ident:
		// Uses only: a Defs entry is the declaration itself (a struct
		// field line, a var spec), not an access.
		if obj := p.Info.Uses[x]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	return nil
}

// declaredType resolves an expression's type, falling back to the Defs
// object for identifiers the expression itself declares (range clause
// key/value idents have no Types entry, only a Defs one).
func (p *Pass) declaredType(e ast.Expr) types.Type {
	if t := p.typeOf(e); t != nil {
		return t
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkLockCopies reports by-value copies of lock-bearing values:
// assignment from an existing value, range over a slice/array/map of
// them, and value arguments in calls.
func (p *Pass) checkLockCopies() {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					// Discarding into the blank identifier copies
					// nothing anyone will ever lock.
					if len(st.Lhs) == len(st.Rhs) {
						if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					p.reportLockCopy(rhs, "assignment")
				}
			case *ast.GenDecl:
				for _, spec := range st.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							p.reportLockCopy(v, "assignment")
						}
					}
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if name := lockBearer(p.declaredType(st.Value)); name != "" {
						p.Reportf(st.Value.Pos(), "range copies a sync.%s-bearing value per iteration: each copy's lock state is divorced from the element's, so locking the copy protects nothing (range over indices or pointers instead, or //daspos:atomic-ok)", name)
					}
				}
			case *ast.CallExpr:
				fn := p.calleeFunc(st)
				if fn != nil && isSyncLockMethod(fn) {
					return true // mu.Lock() receives the mutex by pointer
				}
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
					switch id.Name {
					case "len", "cap", "new":
						return true
					}
				}
				for _, arg := range st.Args {
					p.reportLockCopy(arg, "argument passing")
				}
			}
			return true
		})
	}
}

// reportLockCopy reports e when it copies an existing lock-bearing value:
// a variable, field, index, or dereference of lock-bearing type. Fresh
// values (composite literals, call results) and pointers are fine.
func (p *Pass) reportLockCopy(e ast.Expr, how string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := p.typeOf(e)
	if t == nil {
		return
	}
	// Identifiers that are types or packages, not values.
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); !isVar {
				return
			}
		}
	}
	if name := lockBearer(t); name != "" {
		p.Reportf(e.Pos(), "%s copies a value containing sync.%s: the copy and the original are two independent locks that both claim to guard the same state (pass a pointer, or //daspos:atomic-ok for a provably never-locked snapshot)", how, name)
	}
}

// lockBearer returns the name of the sync primitive a value of type t
// would copy ("" when t is safely copyable). Pointers, slices, maps, and
// channels share rather than copy, so they are fine.
func lockBearer(t types.Type) string {
	return lockBearerDepth(t, 0)
}

func lockBearerDepth(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockBearerDepth(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockBearerDepth(u.Elem(), depth+1)
	}
	return ""
}
