package analysis

// The shared control-flow layer under the concurrency analyzers. PR 5's
// analyzers were syntax-directed: each walked the AST and pattern-matched
// locally. The concurrency invariants (lockcheck's "no blocking call while
// a mutex is held", "unlock reachable on every return path"; leakcheck's
// "every goroutine has a termination path") are path properties — they
// depend on the order statements execute in and on which statements can
// reach which, not on what any single node looks like. This file gives the
// analyzers an intra-procedural CFG over one function body plus a generic
// forward dataflow solver, all stdlib-only like the loader.
//
// The graph is deliberately lightweight: nodes are statements (and the
// branch conditions that guard them) grouped into basic blocks, edges
// follow if/for/range/switch/select/goto/labeled-branch control flow, and
// `return` (and an unconditional `panic(...)`) edges into a synthetic Exit
// block. Function literals are NOT descended into — a closure body runs at
// some other time under some other lock state, so each literal gets its
// own CFG when an analyzer wants one.

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one basic block: a maximal straight-line run of statements.
// Nodes holds the statements (and guarding condition expressions) in
// execution order; Succs the possible successors.
type CFGBlock struct {
	Index int
	Nodes []ast.Node
	Succs []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock // synthetic; every return/fallthrough-off-the-end edges here
	Blocks []*CFGBlock
	// Defers collects the body's defer statements in syntactic order.
	// Deferred calls run at every function exit, so analyzers that reason
	// about exit paths (unlock-on-return) consult this list alongside Exit.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of body. A nil body (an
// external or interface function) yields a graph with only Entry and Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: make(map[string]*labelTarget),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.g.Entry
	if body != nil {
		cur = b.stmts(cur, body.List)
	}
	// Falling off the end of the body is a return.
	b.edge(cur, b.g.Exit)
	return b.g
}

// labelTarget is the pair of blocks a labeled statement exposes to
// `break label` / `continue label` / `goto label`.
type labelTarget struct {
	start     *CFGBlock // goto target
	brk, cont *CFGBlock // filled in once the labeled loop/switch is seen
	pending   []*CFGBlock
}

type cfgBuilder struct {
	g *CFG
	// break/continue targets of the innermost enclosing loop/switch/select.
	breakTo, continueTo *CFGBlock
	labels              map[string]*labelTarget
	// label pending on the next loop/switch statement.
	curLabel *labelTarget
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the block
// control reaches after the last statement (nil when control cannot fall
// through, e.g. after a return).
func (b *cfgBuilder) stmts(cur *CFGBlock, list []ast.Stmt) *CFGBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *CFGBlock, s ast.Stmt) *CFGBlock {
	if cur == nil {
		// Unreachable code still gets blocks so analyzers can inspect it,
		// but nothing edges into them.
		cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		cur.Nodes = append(cur.Nodes, st.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		after := b.newBlock()
		thenEnd := b.stmts(thenB, st.Body.List)
		b.edge(thenEnd, after)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(elseB, st.Else)
			b.edge(elseEnd, after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		after := b.newBlock()
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			b.edge(head, after)
		}
		// An infinite `for {}` has no head→after edge: after is reachable
		// only via break, which is how exit-reachability detects loops
		// that cannot terminate.
		post := b.newBlock()
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		b.withLoop(after, post, func() {
			end := b.stmts(bodyB, st.Body.List)
			b.edge(end, post)
		})
		if st.Post != nil {
			postEnd := b.stmt(post, st.Post)
			b.edge(postEnd, head)
		} else {
			b.edge(post, head)
		}
		return after

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, st.X)
		head := b.newBlock()
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after) // every range may be empty or exhausted
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		if st.Key != nil || st.Value != nil {
			bodyB.Nodes = append(bodyB.Nodes, st) // the per-iteration assignment
		}
		b.withLoop(after, head, func() {
			end := b.stmts(bodyB, st.Body.List)
			b.edge(end, head)
		})
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		if st.Tag != nil {
			cur.Nodes = append(cur.Nodes, st.Tag)
		}
		return b.switchBody(cur, st.Body, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		cur.Nodes = append(cur.Nodes, st.Assign)
		return b.switchBody(cur, st.Body, false)

	case *ast.SelectStmt:
		return b.switchBody(cur, st.Body, true)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, st)
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				if t := b.labels[st.Label.Name]; t != nil {
					if t.brk != nil {
						b.edge(cur, t.brk)
					} else {
						t.pending = append(t.pending, cur)
					}
				}
			} else {
				b.edge(cur, b.breakTo)
			}
		case token.CONTINUE:
			if st.Label != nil {
				if t := b.labels[st.Label.Name]; t != nil && t.cont != nil {
					b.edge(cur, t.cont)
				}
			} else {
				b.edge(cur, b.continueTo)
			}
		case token.GOTO:
			if st.Label != nil {
				t := b.labels[st.Label.Name]
				if t == nil {
					t = &labelTarget{start: b.newBlock()}
					b.labels[st.Label.Name] = t
				}
				b.edge(cur, t.start)
			}
		case token.FALLTHROUGH:
			// Handled by switchBody's case chaining.
			return cur
		}
		return nil

	case *ast.LabeledStmt:
		t := b.labels[st.Label.Name]
		if t == nil {
			t = &labelTarget{start: b.newBlock()}
			b.labels[st.Label.Name] = t
		} else if t.start == nil {
			t.start = b.newBlock()
		}
		b.edge(cur, t.start)
		b.curLabel = t
		end := b.stmt(t.start, st.Stmt)
		b.curLabel = nil
		for _, p := range t.pending {
			if t.brk != nil {
				b.edge(p, t.brk)
			}
		}
		return end

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, st)
		cur.Nodes = append(cur.Nodes, st)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, st)
		if isPanicCall(st.X) {
			b.edge(cur, b.g.Exit)
			return nil
		}
		return cur

	default:
		// Assignments, sends, go statements, declarations, inc/dec, empty:
		// straight-line.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			cur.Nodes = append(cur.Nodes, s)
		}
		return cur
	}
}

// switchBody wires a switch/type-switch/select body: head fans out to
// every case; a case falls through to `after` (or, for switch
// fallthrough, into the next case body). A switch with no default also
// edges head→after; a select without default blocks until some case is
// runnable, so it has no head→after edge — and an empty or case-less
// select can never proceed.
func (b *cfgBuilder) switchBody(head *CFGBlock, body *ast.BlockStmt, isSelect bool) *CFGBlock {
	after := b.newBlock()
	label := b.curLabel
	b.curLabel = nil
	if label != nil {
		label.brk = after
	}
	hasDefault := false
	var caseBlocks []*CFGBlock
	var clauses []ast.Stmt
	for _, cs := range body.List {
		cb := b.newBlock()
		b.edge(head, cb)
		caseBlocks = append(caseBlocks, cb)
		clauses = append(clauses, cs)
	}
	for i, cs := range clauses {
		cb := caseBlocks[i]
		var list []ast.Stmt
		switch cl := cs.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				cb.Nodes = append(cb.Nodes, e)
			}
			list = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				cb = b.stmt(cb, cl.Comm)
			}
			list = cl.Body
		}
		fallsTo := after
		if i+1 < len(caseBlocks) && endsInFallthrough(list) {
			fallsTo = caseBlocks[i+1]
		}
		b.withSwitch(after, func() {
			end := b.stmts(cb, list)
			b.edge(end, fallsTo)
		})
	}
	if !hasDefault && !isSelect {
		b.edge(head, after)
	}
	if isSelect && len(clauses) == 0 {
		// select{} blocks forever: after stays unreachable.
		_ = after
	}
	return after
}

func endsInFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) withLoop(brk, cont *CFGBlock, fn func()) {
	label := b.curLabel
	b.curLabel = nil
	if label != nil {
		label.brk, label.cont = brk, cont
	}
	oldB, oldC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = brk, cont
	fn()
	b.breakTo, b.continueTo = oldB, oldC
}

func (b *cfgBuilder) withSwitch(brk *CFGBlock, fn func()) {
	oldB := b.breakTo
	b.breakTo = brk
	fn()
	b.breakTo = oldB
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// ReachesExit reports whether the synthetic Exit block is reachable from
// Entry — false for a function whose every path loops forever (the shape
// leakcheck hunts for in goroutine bodies).
func (g *CFG) ReachesExit() bool {
	seen := make(map[*CFGBlock]bool)
	var walk func(*CFGBlock) bool
	walk = func(blk *CFGBlock) bool {
		if blk == g.Exit {
			return true
		}
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// ForwardFlow solves a forward dataflow problem over g to a fixpoint and
// returns each block's in-state. transfer folds one node into a state
// (and must not mutate its input); merge joins two predecessor
// out-states; equal detects convergence. The entry state seeds Entry;
// blocks never reached keep the zero in-state and are absent from the
// result map. Analyzers re-run transfer inside a block to recover
// per-node states.
func ForwardFlow[S any](g *CFG, entry S, transfer func(n ast.Node, in S) S, merge func(a, b S) S, equal func(a, b S) bool) map[*CFGBlock]S {
	in := make(map[*CFGBlock]S, len(g.Blocks))
	in[g.Entry] = entry
	work := []*CFGBlock{g.Entry}
	queued := map[*CFGBlock]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		state := in[blk]
		for _, n := range blk.Nodes {
			state = transfer(n, state)
		}
		for _, succ := range blk.Succs {
			old, ok := in[succ]
			next := state
			if ok {
				next = merge(old, state)
			}
			if !ok || !equal(old, next) {
				in[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}
