package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheck enforces that every goroutine the hot-path packages spawn has
// a termination path. `go test -race` catches a leaked goroutine only
// when a test happens to interleave with it; structurally, a leak is
// visible at the `go` statement — a body that loops with no cancellation
// signal, a fire-and-forget spawn nothing ever waits for, or a channel
// send that blocks forever once the receiver gives up. Accepted
// termination evidence, per the repo's supervision idioms:
//
//   - a receive from ctx.Done() (or any chan struct{} done-channel),
//     directly or as a select case;
//   - a close-signaled `for range ch` loop — the spawner ends the
//     goroutine by closing the channel;
//   - sync.WaitGroup.Done — the spawner joins the goroutine;
//   - a context.Context flowing into the body's calls (cancellable by
//     construction), for straight-line bodies;
//   - a provably bounded body whose channel sends all target channels
//     created with non-zero capacity in the spawning function (the
//     buffered fan-in idiom: the send cannot block even if the receiver
//     has moved on).
//
// A deliberate exception — a daemon goroutine whose lifetime IS the
// process — is annotated //daspos:leak-ok with its justification.
var LeakCheck = &Analyzer{
	Name:     "leakcheck",
	Doc:      "every go statement needs a termination path: ctx.Done/done-channel select, WaitGroup.Done, close-signaled range, or a provably bounded body",
	Why:      "a goroutine with no termination path outlives its work and leaks its stack, its captures, and — when it blocks on a channel nobody drains — the whole data structure behind it, forever",
	Suppress: "leak-ok",
	Match: matchPath(
		"internal/queryserve",
		"internal/recast",
		"internal/cluster",
		"internal/node",
		"internal/catalog",
		"internal/hepdata",
		"internal/eventflow",
	),
	Run: runLeakCheck,
}

func runLeakCheck(p *Pass) {
	decls := p.funcDecls()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			p.checkGoStmt(gs, decls, enclosingBody(f, gs))
			return true
		})
	}
}

// funcDecls indexes the package's function declarations by their type
// object, so `go q.worker()` can be resolved to the worker body.
func (p *Pass) funcDecls() map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// enclosingBody returns the innermost function body containing pos — the
// spawning function, whose channel make-sites prove sends buffered.
func enclosingBody(f *ast.File, gs *ast.GoStmt) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > gs.Pos() || n.End() < gs.End() {
			return n.Pos() <= gs.Pos() && n.End() >= gs.End()
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && fn.Body.Pos() <= gs.Pos() && fn.Body.End() >= gs.End() {
				body = fn.Body
			}
		case *ast.FuncLit:
			if fn.Body.Pos() <= gs.Pos() && fn.Body.End() >= gs.End() && fn != gs.Call.Fun {
				body = fn.Body
			}
		}
		return true
	})
	return body
}

// leakEvidence is what the analyzer found inside a goroutine body.
type leakEvidence struct {
	wgDone    bool // sync.WaitGroup.Done — the spawner joins it
	ctxDone   bool // <-ctx.Done() receive (direct or select case)
	doneChan  bool // receive from a chan struct{} done-channel
	rangeChan bool // for range over a channel — ends on close
	carryCtx  bool // a context.Context flows into the body's calls
}

func (e leakEvidence) terminationSignal() bool {
	return e.ctxDone || e.doneChan || e.rangeChan
}

func (e leakEvidence) any() bool {
	return e.wgDone || e.ctxDone || e.doneChan || e.rangeChan || e.carryCtx
}

func (p *Pass) checkGoStmt(gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, spawner *ast.BlockStmt) {
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := p.calleeFunc(gs.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			body = fd.Body
		} else {
			// The callee lives outside this package; its body is out of
			// intra-procedural reach. A context argument still proves the
			// goroutine cancellable — anything else needs an annotation.
			for _, arg := range gs.Call.Args {
				if isContextType(p.typeOf(arg)) {
					return
				}
			}
			p.Reportf(gs.Pos(), "goroutine runs %s, declared outside this package, with no context argument: termination is unprovable here (pass a ctx, supervise it, or //daspos:leak-ok with the lifetime that bounds it)", fn.Name())
			return
		}
	} else {
		return // go f() on a function value: dynamic target, nothing to inspect
	}

	ev := p.scanEvidence(body)
	for _, arg := range gs.Call.Args {
		if isContextType(p.typeOf(arg)) {
			ev.carryCtx = true
		}
	}

	g := BuildCFG(body)
	if !g.ReachesExit() && !ev.terminationSignal() {
		p.Reportf(gs.Pos(), "goroutine loops forever with no termination signal: no ctx.Done or done-channel select, no close-signaled range — it outlives its work unconditionally (add a cancellation case, or //daspos:leak-ok for a process-lifetime daemon)")
		return
	}

	// Unguarded blocking sends: even a supervised goroutine wedges forever
	// on a send nobody receives, so this check applies regardless of other
	// evidence.
	buffered := bufferedChanObjects(p, spawner, body)
	p.checkSends(body, buffered)

	// A channel operation is a rendezvous with the world outside the
	// goroutine: the spawn is not fire-and-forget (whether the send can
	// block forever is checkSends' separate question).
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tied = true
			}
		}
		return true
	})

	if !ev.any() && !tied {
		p.Reportf(gs.Pos(), "fire-and-forget goroutine: nothing joins it (no WaitGroup.Done), nothing cancels it (no context or done channel), and no bounded channel ties it to its spawner (supervise it, or //daspos:leak-ok with the reason it cannot outlive its work)")
	}
}

// scanEvidence walks a goroutine body collecting termination evidence.
// Nested `go` statements are skipped — their bodies are their own
// goroutines and are checked at their own spawn sites — but deferred
// cleanup literals are scanned, since they run in this goroutine.
func (p *Pass) scanEvidence(body *ast.BlockStmt) leakEvidence {
	var ev leakEvidence
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if _, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				return false
			}
		case *ast.CallExpr:
			if fn := p.calleeFunc(x); fn != nil {
				if fn.Name() == "Done" && namedSyncType(recvType(fn)) == "WaitGroup" {
					ev.wgDone = true
				}
				if sig, ok := fn.Type().(*types.Signature); ok {
					for i := 0; i < sig.Params().Len(); i++ {
						if isContextType(sig.Params().At(i).Type()) {
							ev.carryCtx = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if isCtxDoneCall(p, x.X) {
					ev.ctxDone = true
				} else if isDoneChanType(p.typeOf(x.X)) {
					ev.doneChan = true
				}
			}
		case *ast.RangeStmt:
			if t := p.typeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ev.rangeChan = true
				}
			}
		}
		return true
	})
	return ev
}

// isCtxDoneCall reports whether e is a call of context.Context.Done.
func isCtxDoneCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(p.typeOf(sel.X))
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isDoneChanType reports whether t is a (possibly receive-only) channel
// of struct{} — the done-channel convention.
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// bufferedChanObjects collects the variable objects in scope that are
// provably buffered channels: assigned make(chan T, n) with a non-zero
// capacity expression, in either the spawning function or the goroutine
// body itself.
func bufferedChanObjects(p *Pass, bodies ...*ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		t := p.typeOf(call)
		if t == nil {
			return
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		// Capacity 0 written explicitly is unbuffered; anything else
		// (literal, len(...), a variable) buffers.
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			return
		}
		if target := rootIdent(lhs); target != nil {
			if obj := p.Info.Defs[target]; obj != nil {
				out[obj] = true
			} else if obj := p.Info.Uses[target]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, body := range bodies {
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i < len(st.Lhs) {
						record(st.Lhs[i], rhs)
					}
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for i, v := range vs.Values {
								if i < len(vs.Names) {
									record(vs.Names[i], v)
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// checkSends reports channel sends in a goroutine body that can block
// forever: not inside a select that has a default or a termination case,
// and not on a channel proven buffered.
func (p *Pass) checkSends(body *ast.BlockStmt, buffered map[types.Object]bool) {
	guarded := p.guardedComms(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if _, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
				return false // its own goroutine, checked at its own spawn
			}
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if guarded[send.Pos()] {
			return true
		}
		if id := rootIdent(send.Chan); id != nil {
			if obj := p.Info.Uses[id]; obj != nil && buffered[obj] {
				return true
			}
		}
		p.Reportf(send.Pos(), "unguarded blocking send in a goroutine: if the receiver stops listening (error return, timeout, early quorum), this send — and the goroutine — block forever (buffer the channel to the fan-out size, select on ctx.Done alongside it, or //daspos:leak-ok with the receive guarantee)")
		return true
	})
}

// guardedComms collects positions of channel operations that are comm
// clauses of a select with an escape hatch: a default case, a ctx.Done
// case, or a done-channel case.
func (p *Pass) guardedComms(body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				escape = true
				continue
			}
			if recvExpr := commReceiveExpr(cc.Comm); recvExpr != nil {
				if isCtxDoneCall(p, recvExpr) || isDoneChanType(p.typeOf(recvExpr)) {
					escape = true
				}
			}
		}
		if !escape {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm.Pos()] = true
			}
		}
		return true
	})
	return out
}

// commReceiveExpr extracts the channel expression of a receive comm
// clause (`<-ch`, `v := <-ch`, `v, ok := <-ch`), nil for sends.
func commReceiveExpr(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch st := comm.(type) {
	case *ast.ExprStmt:
		e = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			e = st.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil
	}
	return ue.X
}
