package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reachable walks the graph from Entry and reports whether Exit is in
// the reachable set — the structural fact ReachesExit exposes.
func TestCFGReachesExit(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight line", "x := 1\n_ = x", true},
		{"early return", "return", true},
		{"infinite for", "for {\n}", false},
		{"for with break", "for {\nbreak\n}", true},
		{"for with condition", "for i := 0; i < 3; i++ {\n}", true},
		{"infinite for behind if", "if true {\nfor {\n}\n}", true}, // the else path falls through
		{"labeled break from nested loop", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
		{"goto forward", "goto done\nfor {\n}\ndone:\nreturn", true},
		{"select without default", "var c chan int\nselect {\ncase <-c:\n}", true},
		{"empty select blocks forever", "select {\n}", false},
		// panic edges into Exit: deferred unlocks run during unwinding,
		// and a panicking goroutine terminates rather than leaking.
		{"panic only", "panic(\"boom\")", true},
		{"switch all paths return", "switch 1 {\ncase 1:\nreturn\ndefault:\nreturn\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := BuildCFG(parseBody(t, tc.body))
			if got := g.ReachesExit(); got != tc.want {
				t.Errorf("ReachesExit() = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

func TestCFGNilBody(t *testing.T) {
	g := BuildCFG(nil)
	if !g.ReachesExit() {
		t.Error("nil body must reach exit (external functions return)")
	}
}

func TestCFGCollectsDefers(t *testing.T) {
	g := BuildCFG(parseBody(t, "defer close(make(chan int))\nif true {\ndefer print()\n}"))
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
}

// A branchy body must produce distinct blocks with edges that reconverge,
// and every block must appear in Blocks exactly once.
func TestCFGBlockStructure(t *testing.T) {
	g := BuildCFG(parseBody(t, "x := 0\nif x > 0 {\nx = 1\n} else {\nx = 2\n}\n_ = x"))
	seen := make(map[*CFGBlock]bool)
	for _, blk := range g.Blocks {
		if seen[blk] {
			t.Fatalf("block %d appears twice in Blocks", blk.Index)
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			if !seen[s] && !contains(g.Blocks, s) {
				t.Fatalf("successor of block %d not in Blocks", blk.Index)
			}
		}
	}
	if !seen[g.Entry] || !seen[g.Exit] {
		t.Fatal("Entry or Exit missing from Blocks")
	}
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("Exit has %d successors, want 0", len(g.Exit.Succs))
	}
}

func contains(blocks []*CFGBlock, b *CFGBlock) bool {
	for _, x := range blocks {
		if x == b {
			return true
		}
	}
	return false
}

// ForwardFlow over a counting domain: the solver must merge at joins and
// iterate loops to a fixpoint, not diverge or stop early.
func TestForwardFlowJoinAndLoop(t *testing.T) {
	// Domain: set of assigned variable names (may-assign analysis).
	type state = map[string]bool
	transfer := func(n ast.Node, in state) state {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return in
		}
		out := make(state, len(in)+1)
		for k := range in {
			out[k] = true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return out
	}
	merge := func(a, b state) state {
		out := make(state, len(a)+len(b))
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b state) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}

	g := BuildCFG(parseBody(t, `
a := 1
if a > 0 {
	b := 2
	_ = b
} else {
	c := 3
	_ = c
}
for a < 10 {
	d := 4
	_ = d
}
return`))
	in := ForwardFlow(g, state{}, transfer, merge, equal)
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("Exit unreachable in solved flow")
	}
	// Everything assigned on some path may reach exit; the loop body's
	// assignment must have propagated around the back edge.
	for _, name := range []string{"a", "b", "c", "d"} {
		if !exit[name] {
			t.Errorf("exit state missing may-assigned %q: %v", name, exit)
		}
	}
}

// An unreachable block must not appear in the solved map.
func TestForwardFlowUnreachable(t *testing.T) {
	g := BuildCFG(parseBody(t, "return\nx := 1\n_ = x"))
	in := ForwardFlow(g, 0,
		func(n ast.Node, s int) int { return s + 1 },
		func(a, b int) int { return max(a, b) },
		func(a, b int) bool { return a == b },
	)
	if _, ok := in[g.Exit]; !ok {
		t.Fatal("Exit must be reachable through the return")
	}
	for blk, st := range in {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					t.Errorf("dead assignment block solved with state %d", st)
				}
			}
		}
	}
}
