package analysis

import (
	"go/ast"
	"go/types"
)

// CtxProp enforces context propagation through the long-running service
// packages: an exported function that performs I/O or spawns workers must
// be cancellable, either by accepting a context.Context directly or by
// receiving a value that carries one (a struct with a context field, or a
// type with a Context()/Ctx() accessor — the eventflow Pipeline and the
// workflow step Context both qualify).
var CtxProp = &Analyzer{
	Name:     "ctxprop",
	Doc:      "exported functions that do I/O or spawn workers must accept and thread a context.Context",
	Why:      "preservation services run for hours against stores and replicas that can hang; an uncancellable exported entry point leaks goroutines and wedges shutdown",
	Suppress: "ctx-ok",
	Match: matchPath(
		"internal/workflow",
		"internal/eventflow",
		"internal/recast",
		"internal/archive",
		"internal/node",
		"internal/cluster",
		"internal/queryserve",
	),
	Run: runCtxProp,
}

func runCtxProp(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedRecv(fd.Recv) {
				continue // method on an unexported type is not API surface
			}
			work := p.doesWork(fd)
			if work == "" {
				continue
			}
			if p.signatureCarriesContext(fd) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "exported %s %s but accepts no context.Context (directly or via a parameter that carries one); it cannot be cancelled", fd.Name.Name, work)
		}
	}
}

// exportedRecv reports whether the receiver's base type name is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if idx, ok := t.(*ast.IndexListExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// doesWork classifies the function body: "" when it neither spawns
// goroutines nor performs I/O; otherwise a short description for the
// finding message.
func (p *Pass) doesWork(fd *ast.FuncDecl) string {
	work := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if work != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			work = "spawns worker goroutines"
		case *ast.CallExpr:
			fn := p.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "os", "net":
				work = "performs I/O (" + fn.Pkg().Path() + "." + fn.Name() + ")"
			case "net/http":
				if httpIOFunc(fn) {
					work = "performs I/O (net/http." + fn.Name() + ")"
				}
			}
		}
		return true
	})
	return work
}

// httpIOFunc reports whether fn is a net/http call that actually moves
// bytes over the network (client requests, server loops) — constructing a
// mux or a request is not I/O.
func httpIOFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		switch namedPkgPathName(sig.Recv().Type()) {
		case "net/http.Client", "net/http.Transport", "net/http.Server":
			return true
		}
		return false
	}
	switch fn.Name() {
	case "Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
		return true
	}
	return false
}

// namedPkgPathName renders a (possibly pointer) named type as
// "pkgpath.Name"; "" for unnamed types.
func namedPkgPathName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// signatureCarriesContext reports whether any parameter or the receiver
// provides access to a context.
func (p *Pass) signatureCarriesContext(fd *ast.FuncDecl) bool {
	check := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, field := range fields.List {
			if carriesContext(p.typeOf(field.Type), 3, map[types.Type]bool{}) {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// carriesContext reports whether t is a context.Context, exposes one via a
// niladic accessor method, or (recursively, to bounded depth) holds one in
// a struct field.
func carriesContext(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth == 0 || seen[t] {
		return false
	}
	seen[t] = true
	if namedPkgPathName(t) == "context.Context" {
		return true
	}
	if hasContextAccessor(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if carriesContext(st.Field(i).Type(), depth-1, seen) {
			return true
		}
	}
	return false
}

// hasContextAccessor reports whether t's method set includes a niladic
// method returning exactly a context.Context (http.Request.Context,
// workflow.Context.Ctx, ...).
func hasContextAccessor(t types.Type) bool {
	for _, name := range []string{"Context", "Ctx"} {
		if hasMethod(t, name, nil, []string{"context.Context"}) {
			return true
		}
	}
	return false
}
