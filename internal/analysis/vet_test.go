package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	runAnalyzerTest(t, Determinism, "determinism", "daspos/internal/sim")
}

func TestDurability(t *testing.T) {
	runAnalyzerTest(t, Durability, "durability", "daspos/internal/checkpoint")
}

func TestErrClass(t *testing.T) {
	runAnalyzerTest(t, ErrClass, "errclass", "daspos/internal/archive")
}

func TestCtxProp(t *testing.T) {
	runAnalyzerTest(t, CtxProp, "ctxprop", "daspos/internal/recast")
}

func TestCloseCheck(t *testing.T) {
	runAnalyzerTest(t, CloseCheck, "closecheck", "daspos/internal/datamodel")
}

func TestCloneCheck(t *testing.T) {
	runAnalyzerTest(t, CloneCheck, "clonecheck", "daspos/internal/skim")
}

func TestLockCheck(t *testing.T) {
	runAnalyzerTest(t, LockCheck, "lockcheck", "daspos/internal/queryserve")
}

func TestLeakCheck(t *testing.T) {
	runAnalyzerTest(t, LeakCheck, "leakcheck", "daspos/internal/cluster")
}

func TestAtomicCheck(t *testing.T) {
	runAnalyzerTest(t, AtomicCheck, "atomiccheck", "daspos/internal/node")
}

// TestMultiAnalyzer pins the harness's multi-analyzer mode: one testdata
// package audited by several analyzers at once, with expectations that
// anchor on the analyzer name and pin exact finding columns.
func TestMultiAnalyzer(t *testing.T) {
	runAnalyzersTest(t, []*Analyzer{LockCheck, LeakCheck, AtomicCheck}, "multi", "daspos/internal/recast")
}

// TestUnusedSuppression pins the suppression-inventory audit: a
// //daspos:<token> comment that no longer suppresses a finding is itself
// a finding, as is a token no analyzer owns.
func TestUnusedSuppression(t *testing.T) {
	runAnalyzerTest(t, LockCheck, "unusedsuppress", "daspos/internal/catalog")
}

// TestRepoIsClean pins the acceptance criterion that daspos-vet exits 0 on
// the tree it ships with: every finding is either fixed or carries an
// explicit suppression directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	fset, pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(fset, pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
