package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the bit-for-bit reproducibility contract of the
// pipeline core: no wall-clock reads, no global math/rand, and no map
// iteration feeding a digest or serialized stream. The packages in scope
// are the ones whose output is archived, digested, or checkpointed —
// anywhere a hidden source of nondeterminism would change preserved bytes
// between two runs of identical code over identical inputs.
var Determinism = &Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall-clock reads, global math/rand, and map-order-dependent digests in the pipeline core",
	Why:      "a preserved analysis must re-run bit-for-bit years later; clocks, global RNG state, and map iteration order all change between runs",
	Suppress: "wallclock-ok",
	Match: matchPath(
		"internal/datamodel",
		"internal/sim",
		"internal/generator",
		"internal/reco",
		"internal/skim",
		"internal/workflow",
		"internal/checkpoint",
		"internal/cas",
		"internal/eventflow",
		"internal/fourvec",
		"internal/recast",
		"internal/queryserve",
	),
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: its global state is seeded per process, not per event; derive streams from internal/xrand (suppress with //daspos:wallclock-ok)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := p.calleeFunc(n); fn != nil {
					switch fn.FullName() {
					case "time.Now", "time.Since":
						p.Reportf(n.Pos(), "call to %s reads the wall clock inside the deterministic core; metrics-only call sites must carry //daspos:wallclock-ok", fn.FullName())
					}
				}
			case *ast.RangeStmt:
				p.checkMapRangeDigest(n)
			}
			return true
		})
	}
}

// checkMapRangeDigest flags a range over a map whose body feeds a digest
// or serializer: iteration order is randomized per run, so the bytes the
// sink sees differ between identical executions. The fix is the idiom the
// codebase already uses — collect keys, sort, iterate the sorted slice.
func (p *Pass) checkMapRangeDigest(rng *ast.RangeStmt) {
	t := p.typeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink = p.digestSink(call)
		return sink == ""
	})
	if sink != "" {
		p.Reportf(rng.For, "map iteration feeds %s: iteration order is randomized per run; collect and sort the keys first", sink)
	}
}

// digestSink classifies a call as digest/serializer input, returning a
// description of the sink ("" when the call is harmless).
func (p *Pass) digestSink(call *ast.CallExpr) string {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if isSel {
		if recv := p.typeOf(sel.X); recv != nil {
			if isHashHash(recv) {
				return "a hash.Hash (" + sel.Sel.Name + ")"
			}
			if sel.Sel.Name == "Encode" {
				if named := namedPkgPath(recv); named == "encoding/gob" || named == "encoding/json" {
					return "a " + named + " encoder"
				}
			}
		}
	}
	fn := p.calleeFunc(call)
	if fn == nil {
		return ""
	}
	switch fn.FullName() {
	case "fmt.Fprintf", "fmt.Fprint", "fmt.Fprintln", "binary.Write", "encoding/binary.Write":
		if len(call.Args) > 0 && isHashHash(p.typeOf(call.Args[0])) {
			return "a hash.Hash (via " + fn.Name() + ")"
		}
	}
	return ""
}

// namedPkgPath returns the declaring package path of t's named type,
// dereferencing one pointer level; "" when t is unnamed or universe-scoped.
func namedPkgPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
