package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck guards the latency and liveness discipline of the hot-path
// critical sections. PRs 6–9 put a mutex at the center of every serving
// structure — the query index and cache shards, the recast fair queue,
// the cluster ring — and the read path's sub-millisecond budget only
// holds if those sections stay compute-only: one fsync or network call
// under a shard lock convoys every other request behind a disk. The
// analyzer runs a forward dataflow over the shared CFG layer to know
// which locks are held at every statement, and reports
//
//   - blocking operations (file I/O, fsync, network/HTTP, channel
//     send/recv outside a select-with-default, time.Sleep, WaitGroup/Cond
//     waits, and context-taking backend calls) executed while a
//     sync.Mutex or sync.RWMutex is held;
//   - a Lock/RLock with a path to return on which no Unlock/RUnlock runs
//     and no defer covers it — an eventual deadlock, found structurally
//     instead of by an interleaving-lucky race test;
//   - a write Lock on a sync.RWMutex in a provably read-only accessor,
//     which serializes readers that RLock would let through.
//
// A deliberate blocking section — the recast queue journals under its
// mutex because the write-ahead line must be durable before the state
// mutates — is annotated //daspos:lock-ok with its justification.
var LockCheck = &Analyzer{
	Name:     "lockcheck",
	Doc:      "no blocking operations while a mutex is held; unlock on every return path; RLock for read-only accessors",
	Why:      "a blocking call under a hot-path mutex convoys every contending request behind one disk or network round-trip, and a return path without an unlock is an eventual deadlock",
	Suppress: "lock-ok",
	Match: matchPath(
		"internal/queryserve",
		"internal/recast",
		"internal/cluster",
		"internal/node",
		"internal/catalog",
		"internal/hepdata",
		"internal/eventflow",
	),
	Run: runLockCheck,
}

// lockHold is one held lock in the dataflow state: how it was taken,
// where, and whether a defer releases it at function exit.
type lockHold struct {
	mode     byte // 'w' (Lock) or 'r' (RLock)
	pos      token.Pos
	name     string
	deferred bool // a defer statement releases it on every exit
}

// lockState maps canonical lock expressions to their hold. States are
// treated as immutable values by the transfer function (copy-on-write).
type lockState map[string]lockHold

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func lockStateEqual(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// lockStateMerge joins two path states: a lock held on either path is
// may-held (union); it is only deferred-released if both paths say so,
// and the earliest acquisition position wins for reporting.
func lockStateMerge(a, b lockState) lockState {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := a.clone()
	for k, vb := range b {
		va, ok := out[k]
		if !ok {
			out[k] = vb
			continue
		}
		merged := va
		if vb.pos < merged.pos {
			merged.pos = vb.pos
		}
		merged.deferred = va.deferred && vb.deferred
		if vb.mode == 'w' {
			merged.mode = 'w'
		}
		out[k] = merged
	}
	return out
}

func runLockCheck(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.lockCheckFunc(fd)
			// Function literals get their own CFG each: a closure runs
			// under whatever locks its caller holds at call time, which
			// intra-procedural analysis cannot see, so each body is
			// analyzed from an empty state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					p.lockCheckBody(lit.Body)
				}
				return true
			})
		}
	}
}

// lockCheckFunc analyzes one declared function: the dataflow pass over
// its body plus the read-only-accessor check when it is a method.
func (p *Pass) lockCheckFunc(fd *ast.FuncDecl) {
	p.lockCheckBody(fd.Body)
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	// Write-Lock acquisitions on RWMutexes, outside nested literals, feed
	// the read-only-accessor check.
	var rwLocks []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, kind := p.mutexCall(es.X); call != nil && kind == "Lock" && p.isRWMutexLock(call) {
				rwLocks = append(rwLocks, call)
			}
		}
		return true
	})
	if len(rwLocks) > 0 {
		p.checkReadOnlyAccessor(fd, rwLocks)
	}
}

// lockCheckBody runs the lock dataflow over one body and reports
// blocking-under-lock and unlock-on-every-path findings.
func (p *Pass) lockCheckBody(body *ast.BlockStmt) {
	g := BuildCFG(body)
	guarded := p.nonBlockingComms(body)

	transfer := func(n ast.Node, in lockState) lockState {
		call, kind := p.lockOp(n)
		if call == nil {
			return in
		}
		key := exprKey(lockRecvExpr(call))
		out := in.clone()
		switch kind {
		case "Lock", "RLock":
			mode := byte('w')
			if kind == "RLock" {
				mode = 'r'
			}
			out[key] = lockHold{mode: mode, pos: call.Pos(), name: exprDisplay(lockRecvExpr(call))}
		case "Unlock", "RUnlock":
			delete(out, key)
		case "defer-Unlock", "defer-RUnlock":
			if h, ok := out[key]; ok {
				h.deferred = true
				out[key] = h
			}
		}
		return out
	}

	in := ForwardFlow(g, lockState{}, transfer, lockStateMerge, lockStateEqual)

	// Re-run the transfer inside each reachable block to recover the
	// state at every node, and scan held regions for blocking operations.
	for _, blk := range g.Blocks {
		state, reachable := in[blk]
		if !reachable {
			continue
		}
		for _, n := range blk.Nodes {
			if len(state) > 0 {
				p.reportBlocking(n, state, guarded)
			}
			state = transfer(n, state)
		}
	}

	// Any lock still held when control reaches Exit, with no defer
	// releasing it, has a return path that leaks it.
	if exit, ok := in[g.Exit]; ok {
		for _, h := range exit {
			if !h.deferred {
				p.Reportf(h.pos, "%s is not released on every return path: a caller blocking on it after that return deadlocks (unlock before each return, defer the unlock, or //daspos:lock-ok with the invariant that makes it safe)", h.name)
			}
		}
	}
}

// lockOp classifies a CFG node as a mutex operation. It recognizes
// x.Lock/RLock/Unlock/RUnlock statements on sync.Mutex/RWMutex values
// (including embedded ones) and the deferred forms, returning the call
// and the operation kind ("" when the node is not a lock operation).
func (p *Pass) lockOp(n ast.Node) (*ast.CallExpr, string) {
	switch st := n.(type) {
	case *ast.ExprStmt:
		if call, kind := p.mutexCall(st.X); call != nil {
			return call, kind
		}
	case *ast.DeferStmt:
		if call, kind := p.mutexCall(st.Call); call != nil && (kind == "Unlock" || kind == "RUnlock") {
			return call, "defer-" + kind
		}
		// defer func() { ...; mu.Unlock() }() — a release wrapped in a
		// cleanup literal still covers every exit.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			var found *ast.CallExpr
			var foundKind string
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if es, ok := m.(*ast.ExprStmt); ok {
					if call, kind := p.mutexCall(es.X); call != nil && (kind == "Unlock" || kind == "RUnlock") {
						found, foundKind = call, kind
						return false
					}
				}
				return true
			})
			if found != nil {
				return found, "defer-" + foundKind
			}
		}
	}
	return nil, ""
}

// mutexCall returns the call and method name when e is a call of
// Lock/Unlock/RLock/RUnlock on a sync.Mutex or sync.RWMutex.
func (p *Pass) mutexCall(e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || !isSyncLockMethod(fn) {
		return nil, ""
	}
	return call, sel.Sel.Name
}

// isRWMutexLock reports whether the Lock call's receiver is a
// sync.RWMutex (as opposed to a plain Mutex, which has no read mode).
func (p *Pass) isRWMutexLock(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	return fn != nil && namedSyncType(recvType(fn)) == "RWMutex"
}

// isSyncLockMethod reports whether fn is declared on sync.Mutex or
// sync.RWMutex.
func isSyncLockMethod(fn *types.Func) bool {
	switch namedSyncType(recvType(fn)) {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// recvType returns fn's receiver type with any pointer stripped, nil for
// non-methods.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t
}

// namedSyncType returns the type's name when it is a named type from the
// sync package ("" otherwise).
func namedSyncType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// lockRecvExpr returns the expression the lock method is called on:
// x.mu for x.mu.Lock(), x for an embedded x.Lock().
func lockRecvExpr(call *ast.CallExpr) ast.Expr {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return sel.X
}

// exprKey renders an expression to a canonical dataflow key: identifier
// and selector chains verbatim, index expressions collapsed so s.shard[i]
// and s.shard[j] conservatively share a key.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[#]"
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	}
	return fmt.Sprintf("?%T", e)
}

// exprDisplay renders the lock expression for messages; same shape as
// exprKey but keeping the index expression spelled out is not worth the
// churn, so they share an implementation.
func exprDisplay(e ast.Expr) string { return exprKey(e) }

// nonBlockingComms collects the positions of channel operations that are
// comm clauses of a select WITH a default case — those never block, the
// runtime takes default instead.
func (p *Pass) nonBlockingComms(body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm.Pos()] = true
			}
		}
		return true
	})
	return out
}

// reportBlocking scans one CFG node for blocking operations and reports
// each with the locks held there. Nested function literals are skipped —
// they execute later, under their own state.
func (p *Pass) reportBlocking(n ast.Node, held lockState, guarded map[token.Pos]bool) {
	names := heldNames(held)
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !guarded[x.Pos()] {
				p.Reportf(x.Pos(), "channel send while %s is held: the send blocks until a receiver is ready, and every contender on the lock blocks behind it (move it after the unlock, guard it with a select+default, or //daspos:lock-ok with the justification)", names)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !guarded[x.Pos()] {
				p.Reportf(x.Pos(), "channel receive while %s is held: the receive blocks until a sender is ready, holding the lock for an unbounded time (//daspos:lock-ok if a paired sender is guaranteed)", names)
			}
		case *ast.CallExpr:
			if what := p.blockingCall(x); what != "" {
				p.Reportf(x.Pos(), "%s while %s is held: the lock is pinned for the full operation and every contender convoys behind it (hoist it out of the critical section, or //daspos:lock-ok with the invariant that requires it)", what, names)
			}
		}
		return true
	})
}

func heldNames(held lockState) string {
	names := make([]string, 0, len(held))
	for _, h := range held {
		names = append(names, h.name)
	}
	if len(names) == 1 {
		return names[0]
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// blockingCall classifies a call as a blocking operation, returning a
// short description ("" when the call cannot block). The classification
// is package-based: bytes.Buffer writes are memory, os.File writes are a
// disk round-trip.
func (p *Pass) blockingCall(call *ast.CallExpr) string {
	fn := p.calleeFunc(call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	recv := recvType(fn)
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	// Methods: classified by the receiver's defining package.
	if recv != nil {
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			rp := named.Obj().Pkg().Path()
			rn := named.Obj().Name()
			switch {
			case rp == "os" && rn == "File":
				switch name {
				case "Write", "WriteString", "WriteAt", "Read", "ReadAt", "ReadFrom", "Sync", "Truncate", "Seek", "Close", "Chmod", "Stat":
					if name == "Sync" {
						return "fsync"
					}
					return "file " + name
				}
			case rp == "bufio":
				switch name {
				case "Write", "WriteString", "WriteByte", "WriteRune", "Flush", "Read", "ReadString", "ReadBytes", "ReadByte", "ReadRune", "ReadSlice", "ReadLine":
					return "buffered I/O (" + rn + "." + name + ")"
				}
			case rp == "sync":
				if (rn == "WaitGroup" || rn == "Cond") && name == "Wait" {
					return rn + ".Wait"
				}
			case rp == "net/http":
				switch rn {
				case "Client":
					switch name {
					case "Do", "Get", "Post", "PostForm", "Head":
						return "HTTP request (Client." + name + ")"
					}
				case "Server":
					switch name {
					case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown", "Close":
						return "HTTP server call (Server." + name + ")"
					}
				case "Transport":
					if name == "RoundTrip" {
						return "HTTP round trip"
					}
				}
			case rp == "net":
				switch name {
				case "Read", "Write", "Close", "Accept":
					return "network " + name
				}
			}
		}
		// Interface methods land here with the interface's package.
		switch pkgPath {
		case "io":
			switch name {
			case "Read", "Write", "Close", "ReadFrom", "WriteTo":
				return "I/O on an io interface (" + name + ")"
			}
		case "net/http":
			switch name {
			case "Write", "WriteHeader", "Flush":
				return "HTTP response " + name
			case "RoundTrip":
				return "HTTP round trip"
			}
		case "net":
			switch name {
			case "Read", "Write", "Close", "Accept":
				return "network " + name
			}
		}
	}

	// Package-level functions.
	switch pkgPath {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "ReadDir", "Truncate", "Stat", "Lstat", "Chtimes":
			return "file I/O (os." + name + ")"
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return "I/O (io." + name + ")"
		}
	case "path/filepath":
		switch name {
		case "Walk", "WalkDir", "Glob":
			return "filesystem walk (filepath." + name + ")"
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
			return "HTTP request (http." + name + ")"
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "DialTCP", "DialUDP", "Listen", "ListenTCP", "ListenPacket":
			return "network dial/listen (net." + name + ")"
		}
	}

	// A call that takes a context is, by this repo's convention, a
	// cancellable — i.e. potentially long-blocking — operation: a store
	// read, a backend round trip, a quorum write. Constructors (New*/
	// With*) that merely carry the context are exempt, as is the context
	// package itself.
	if pkgPath != "context" && !strings.HasPrefix(name, "New") && !strings.HasPrefix(name, "With") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() > 0 {
			if named, ok := sig.Params().At(0).Type().(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return "context-taking call " + name + " (a cancellable operation can block for its full deadline)"
				}
			}
		}
	}
	return ""
}

// checkReadOnlyAccessor reports a write Lock on an RWMutex in a method
// whose body provably never mutates receiver state: every such accessor
// serializes readers that RLock would admit concurrently. "Provably" is
// strict — any assignment, delete, send, or escape of receiver-rooted
// mutable state (including into another call) disqualifies the method,
// so only true accessors are reported.
func (p *Pass) checkReadOnlyAccessor(fd *ast.FuncDecl, rwLocks []*ast.CallExpr) {
	recvName := receiverName(fd)
	if recvName == "" {
		return
	}
	// Taint every local that aliases receiver state (d := c.datasets[k];
	// d.Closed = true mutates the receiver through d). Mutable types
	// alias; scalars and structs copy. Fixpoint handles chains.
	tainted := map[string]bool{recvName: true}
	for changed := true; changed; {
		changed = false
		mark := func(names []ast.Expr, from ast.Expr) {
			id := rootIdent(from)
			if id == nil || !tainted[id.Name] {
				return
			}
			for _, lhs := range names {
				if li, ok := ast.Unparen(lhs).(*ast.Ident); ok && li.Name != "_" && !tainted[li.Name] && mutableType(p.declaredType(lhs)) {
					tainted[li.Name] = true
					changed = true
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					mark(x.Lhs, rhs)
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					mark([]ast.Expr{x.Value}, x.X)
				}
				if x.Key != nil {
					mark([]ast.Expr{x.Key}, x.X)
				}
			}
			return true
		})
	}
	isRecvRooted := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && tainted[id.Name]
	}
	writes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if writes {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isRecvRooted(lhs) {
					writes = true
				}
			}
		case *ast.IncDecStmt:
			if isRecvRooted(x.X) {
				writes = true
			}
		case *ast.SendStmt:
			if isRecvRooted(x.Chan) {
				writes = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && isRecvRooted(x.X) {
				writes = true // address escapes; mutation unprovable
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "delete":
					if len(x.Args) > 0 && isRecvRooted(x.Args[0]) {
						writes = true
					}
					return true
				case "len", "cap", "make", "append", "copy", "min", "max", "string":
					// Builtins that read (or write only their own result);
					// append/copy into receiver state is caught by the
					// enclosing assignment's LHS.
					return true
				}
			}
			// A method call on receiver state (other than the lock
			// operations themselves) or receiver-rooted mutable arguments
			// escaping into any call: mutation is no longer provable.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isRecvRooted(sel.X) {
				switch sel.Sel.Name {
				case "Lock", "Unlock", "RLock", "RUnlock":
				default:
					writes = true
				}
			}
			for _, arg := range x.Args {
				if isRecvRooted(arg) && mutableType(p.typeOf(arg)) {
					writes = true
				}
			}
		}
		return true
	})
	if writes {
		return
	}
	for _, call := range rwLocks {
		if isRecvRooted(lockRecvExpr(call)) {
			p.Reportf(call.Pos(), "write Lock in a read-only accessor: the method never mutates %s, so Lock serializes every concurrent reader that RLock would admit (use RLock/RUnlock, or //daspos:lock-ok if a write is hidden from the analysis)", recvName)
		}
	}
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// mutableType reports whether a value of type t shares mutable state
// with its source when passed by value: pointers, maps, slices,
// channels, and functions do; plain scalars, strings, and structs of
// them do not (they are copies).
func mutableType(t types.Type) bool {
	if t == nil {
		return true // unknown: be conservative
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
