// Package analysis is the stdlib-only static-analysis framework behind
// cmd/daspos-vet: it loads the module's packages (go list + go/parser +
// go/types, no external dependencies), runs a set of project-specific
// analyzers over the typed syntax trees, and reports findings that each
// name the preservation invariant they guard.
//
// PRs 1–4 established the invariants by convention: seeded xrand streams
// instead of wall clocks and global RNGs, fsync-before-rename commit
// ordering in the durable stores, the transient/permanent error taxonomy
// at every retry boundary, context propagation through long-running
// services, and checked Close on write paths. Nothing but review kept the
// next change from silently violating them. The analyzers here turn those
// prose rules into machine-checked ones, per the DPHEP/HSF observation
// that reproducibility guarantees rot unless continuously validated.
//
// A finding can be suppressed at a call site that is deliberately exempt
// (a metrics-only timer, a best-effort cleanup) with a line comment of the
// form //daspos:<token>, where <token> is the suppression token the
// analyzer names in its finding (for example //daspos:wallclock-ok). The
// directive applies to findings on its own line or on the line directly
// below, so it can sit on its own line above a long statement.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report: a position, the specific defect, and the
// one-line rationale for why the invariant exists at all.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Why      string         `json:"why"`
}

// String renders the finding in the file:line:col style editors understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer (the -only flag selects by it).
	Name string
	// Doc is a short description of what the analyzer enforces.
	Doc string
	// Why is the one-line rationale attached to every finding: the reason
	// the invariant exists, not just the rule that was broken.
	Why string
	// Suppress is the //daspos:<token> comment that exempts a call site.
	Suppress string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil means every package.
	Match func(path string) bool
	// Run inspects one package and reports through the pass.
	Run func(p *Pass)
}

// Pass is one (analyzer, package) execution: the typed syntax plus the
// reporting and suppression machinery.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings   *[]Finding
	directives *directiveSet
}

// Reportf records a finding at pos unless a //daspos:<token> suppression
// comment covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.lineSuppressed(position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Why:      p.Analyzer.Why,
	})
}

// directive is one //daspos:<token> comment in a package, with the
// bookkeeping the unused-suppression check needs: a directive that never
// suppresses a finding is itself a finding, so stale annotations cannot
// accumulate as the code under them evolves.
type directive struct {
	token string
	pos   token.Position
	used  bool
}

// directiveSet indexes a package's suppression directives.
type directiveSet struct {
	byLine map[string]map[string]map[int]*directive // token -> file -> line
	all    []*directive
}

// collectDirectives scans a package's comments for //daspos:<token>
// directives. The token runs to the first space; explanatory prose after
// it is encouraged and ignored.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[string]map[int]*directive)}
	const prefix = "//daspos:"
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				tok := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					tok = rest[:i]
				}
				if tok == "" {
					continue
				}
				cp := fset.Position(c.Pos())
				d := &directive{token: tok, pos: cp}
				files := ds.byLine[tok]
				if files == nil {
					files = make(map[string]map[int]*directive)
					ds.byLine[tok] = files
				}
				lines := files[cp.Filename]
				if lines == nil {
					lines = make(map[int]*directive)
					files[cp.Filename] = lines
				}
				lines[cp.Line] = d
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// lookup finds a directive for token covering line (the directive's own
// line or the line directly above the finding).
func (ds *directiveSet) lookup(token, file string, line int) *directive {
	lines := ds.byLine[token][file]
	if d := lines[line]; d != nil {
		return d
	}
	return lines[line-1]
}

// lineSuppressed reports whether the analyzer's suppression token appears
// on the finding's line or the line directly above it, and marks the
// directive used.
func (p *Pass) lineSuppressed(pos token.Position) bool {
	if p.directives == nil || p.Analyzer.Suppress == "" {
		return false
	}
	d := p.directives.lookup(p.Analyzer.Suppress, pos.Filename, pos.Line)
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// typeOf resolves an expression's static type, nil when unknown.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), nil for builtins, conversions, and
// function-typed variables.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Durability,
		ErrClass,
		CtxProp,
		CloseCheck,
		CloneCheck,
		LockCheck,
		LeakCheck,
		AtomicCheck,
	}
}

// AnalyzerTiming is one analyzer's cumulative wall time across a Run —
// surfaced through daspos-vet -json so an analyzer whose cost regresses
// is visible in CI before it slows every pre-merge gate.
type AnalyzerTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"millis"`
}

// Run executes the analyzers over the loaded packages and returns every
// finding, sorted by position. Analyzers whose Match rejects a package's
// import path skip it.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunTimed(fset, pkgs, analyzers)
	return findings
}

// RunTimed is Run plus per-analyzer wall-time accounting, in the
// analyzers' reporting order.
func RunTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming) {
	var findings []Finding
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		dirs := collectDirectives(fset, pkg.Files)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Path:       pkg.Path,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				findings:   &findings,
				directives: dirs,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		findings = append(findings, unusedDirectives(pkg, dirs, analyzers)...)
	}
	sortFindings(findings)
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Analyzer: a.Name, Millis: float64(elapsed[a.Name].Microseconds()) / 1000})
	}
	return findings, timings
}

// SuppressReporter is the name under which the framework reports
// suppression-inventory findings: a //daspos:<token> directive that no
// longer suppresses anything, or a token no analyzer owns.
const SuppressReporter = "suppress"

const suppressWhy = "a suppression comment that no longer suppresses anything is a stale exemption: it documents an invariant violation that no longer exists, and it will silently swallow the next real finding on its line"

// unusedDirectives audits a package's suppression inventory after every
// analyzer ran: each directive must have suppressed at least one finding
// of the analyzer that owns its token. Tokens are only audited when
// their owning analyzer actually ran on the package (so daspos-vet -only
// never misreports another analyzer's annotations), and tokens no
// analyzer in the full suite owns are typos worth naming loudly.
func unusedDirectives(pkg *Package, dirs *directiveSet, ran []*Analyzer) []Finding {
	owners := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		if a.Suppress != "" {
			owners[a.Suppress] = a
		}
	}
	audited := make(map[string]bool)
	for _, a := range ran {
		if a.Suppress != "" && (a.Match == nil || a.Match(pkg.Path)) {
			audited[a.Suppress] = true
		}
	}
	var out []Finding
	report := func(d *directive, format string, args ...any) {
		out = append(out, Finding{
			Analyzer: SuppressReporter,
			Pos:      d.pos,
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Col:      d.pos.Column,
			Message:  fmt.Sprintf(format, args...),
			Why:      suppressWhy,
		})
	}
	for _, d := range dirs.all {
		owner, known := owners[d.token]
		if !known {
			report(d, "unknown suppression token %q: no analyzer owns it, so it suppresses nothing (valid tokens: %s)", d.token, strings.Join(suppressTokens(), ", "))
			continue
		}
		if audited[d.token] && !d.used {
			report(d, "unused suppression //daspos:%s: %s reports no finding on this line anymore — the exemption is stale; delete it (or re-justify it against the current code)", d.token, owner.Name)
		}
	}
	return out
}

// suppressTokens lists the suite's suppression tokens in reporting order.
func suppressTokens() []string {
	var out []string
	for _, a := range Analyzers() {
		if a.Suppress != "" {
			out = append(out, a.Suppress)
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// matchPath builds a Match function accepting packages whose import path
// ends in one of the given path suffixes (or lives below one of them).
func matchPath(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
				return true
			}
		}
		return false
	}
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(t, errType)
}

// hasMethod reports whether t (or *t) has a method with the given name
// whose parameter and result types render to the given strings (parameter
// names are irrelevant). Type strings qualify package names by name, e.g.
// "context.Context".
func hasMethod(t types.Type, name string, params, results []string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return tupleMatches(sig.Params(), params) && tupleMatches(sig.Results(), results)
}

func tupleMatches(tup *types.Tuple, want []string) bool {
	if tup.Len() != len(want) {
		return false
	}
	qual := func(p *types.Package) string { return p.Name() }
	for i := 0; i < tup.Len(); i++ {
		if types.TypeString(tup.At(i).Type(), qual) != want[i] {
			return false
		}
	}
	return true
}

// isHashHash reports whether t looks like a hash.Hash implementation: the
// structural check keeps analyzers independent of whether the analyzed
// package imports the hash package directly.
func isHashHash(t types.Type) bool {
	return hasMethod(t, "Sum", []string{"[]byte"}, []string{"[]byte"}) &&
		hasMethod(t, "BlockSize", nil, []string{"int"}) &&
		hasMethod(t, "Write", []string{"[]byte"}, []string{"int", "error"})
}

// isWriter reports whether t has a Write([]byte) (int, error) method —
// the marker of a write path whose Close/Flush error carries data loss.
func isWriter(t types.Type) bool {
	return hasMethod(t, "Write", []string{"[]byte"}, []string{"int", "error"})
}
