// Package analysis is the stdlib-only static-analysis framework behind
// cmd/daspos-vet: it loads the module's packages (go list + go/parser +
// go/types, no external dependencies), runs a set of project-specific
// analyzers over the typed syntax trees, and reports findings that each
// name the preservation invariant they guard.
//
// PRs 1–4 established the invariants by convention: seeded xrand streams
// instead of wall clocks and global RNGs, fsync-before-rename commit
// ordering in the durable stores, the transient/permanent error taxonomy
// at every retry boundary, context propagation through long-running
// services, and checked Close on write paths. Nothing but review kept the
// next change from silently violating them. The analyzers here turn those
// prose rules into machine-checked ones, per the DPHEP/HSF observation
// that reproducibility guarantees rot unless continuously validated.
//
// A finding can be suppressed at a call site that is deliberately exempt
// (a metrics-only timer, a best-effort cleanup) with a line comment of the
// form //daspos:<token>, where <token> is the suppression token the
// analyzer names in its finding (for example //daspos:wallclock-ok). The
// directive applies to findings on its own line or on the line directly
// below, so it can sit on its own line above a long statement.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report: a position, the specific defect, and the
// one-line rationale for why the invariant exists at all.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Why      string         `json:"why"`
}

// String renders the finding in the file:line:col style editors understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer (the -only flag selects by it).
	Name string
	// Doc is a short description of what the analyzer enforces.
	Doc string
	// Why is the one-line rationale attached to every finding: the reason
	// the invariant exists, not just the rule that was broken.
	Why string
	// Suppress is the //daspos:<token> comment that exempts a call site.
	Suppress string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil means every package.
	Match func(path string) bool
	// Run inspects one package and reports through the pass.
	Run func(p *Pass)
}

// Pass is one (analyzer, package) execution: the typed syntax plus the
// reporting and suppression machinery.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings   *[]Finding
	suppressed map[string]map[int]bool // file -> line -> directive present
}

// Reportf records a finding at pos unless a //daspos:<token> suppression
// comment covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.lineSuppressed(position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Why:      p.Analyzer.Why,
	})
}

// lineSuppressed reports whether the analyzer's suppression token appears
// on the finding's line or the line directly above it.
func (p *Pass) lineSuppressed(pos token.Position) bool {
	if p.suppressed == nil {
		p.suppressed = make(map[string]map[int]bool)
		directive := "//daspos:" + p.Analyzer.Suppress
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directive) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, directive)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // a longer, different token
					}
					cp := p.Fset.Position(c.Pos())
					lines := p.suppressed[cp.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						p.suppressed[cp.Filename] = lines
					}
					lines[cp.Line] = true
				}
			}
		}
	}
	lines := p.suppressed[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// typeOf resolves an expression's static type, nil when unknown.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), nil for builtins, conversions, and
// function-typed variables.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Durability,
		ErrClass,
		CtxProp,
		CloseCheck,
		CloneCheck,
	}
}

// Run executes the analyzers over the loaded packages and returns every
// finding, sorted by position. Analyzers whose Match rejects a package's
// import path skip it.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// matchPath builds a Match function accepting packages whose import path
// ends in one of the given path suffixes (or lives below one of them).
func matchPath(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
				return true
			}
		}
		return false
	}
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(t, errType)
}

// hasMethod reports whether t (or *t) has a method with the given name
// whose parameter and result types render to the given strings (parameter
// names are irrelevant). Type strings qualify package names by name, e.g.
// "context.Context".
func hasMethod(t types.Type, name string, params, results []string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return tupleMatches(sig.Params(), params) && tupleMatches(sig.Results(), results)
}

func tupleMatches(tup *types.Tuple, want []string) bool {
	if tup.Len() != len(want) {
		return false
	}
	qual := func(p *types.Package) string { return p.Name() }
	for i := 0; i < tup.Len(); i++ {
		if types.TypeString(tup.At(i).Type(), qual) != want[i] {
			return false
		}
	}
	return true
}

// isHashHash reports whether t looks like a hash.Hash implementation: the
// structural check keeps analyzers independent of whether the analyzed
// package imports the hash package directly.
func isHashHash(t types.Type) bool {
	return hasMethod(t, "Sum", []string{"[]byte"}, []string{"[]byte"}) &&
		hasMethod(t, "BlockSize", nil, []string{"int"}) &&
		hasMethod(t, "Write", []string{"[]byte"}, []string{"int", "error"})
}

// isWriter reports whether t has a Write([]byte) (int, error) method —
// the marker of a write path whose Close/Flush error carries data loss.
func isWriter(t types.Type) bool {
	return hasMethod(t, "Write", []string{"[]byte"}, []string{"int", "error"})
}
