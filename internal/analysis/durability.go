package analysis

import (
	"go/ast"
	"go/token"
)

// Durability enforces the commit ordering that makes the checkpoint
// ledger and the content-addressed stores crash-safe: a rename is only an
// atomic commit point if the payload was fsynced first, and a journal
// append only announces state that is already durable if the append is
// fsynced in the same operation. The analyzer is per-function and
// order-sensitive: it flags os.Rename calls with no earlier Sync in the
// function, and os.File writes in functions that never Sync at all.
var Durability = &Analyzer{
	Name:     "durability",
	Doc:      "enforce temp-write→fsync→rename ordering and fsynced journal appends in the durable stores",
	Why:      "a crash between write and fsync loses bytes the journal already announced; the checkpoint recovery proof assumes rename commits only durable payloads",
	Suppress: "fsync-ok",
	Match: matchPath(
		"internal/checkpoint",
		"internal/cas",
		"internal/recast",
	),
	Run: runDurability,
}

// fsEvent is one ordering-relevant operation inside a function body.
type fsEvent struct {
	pos  token.Pos
	kind string // "rename", "sync", "write"
}

func runDurability(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkFuncDurability(fd)
		}
	}
}

func (p *Pass) checkFuncDurability(fd *ast.FuncDecl) {
	var events []fsEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := p.calleeFunc(call); fn != nil && fn.FullName() == "os.Rename" {
			events = append(events, fsEvent{call.Pos(), "rename"})
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Sync":
			// Any Sync() error method counts — *os.File and any
			// fault-injection or recording wrapper around it.
			if hasMethod(p.typeOf(sel.X), "Sync", nil, []string{"error"}) {
				events = append(events, fsEvent{call.Pos(), "sync"})
			}
		case "Write", "WriteString":
			if namedPkgPath(p.typeOf(sel.X)) == "os" {
				events = append(events, fsEvent{call.Pos(), "write"})
			}
		}
		return true
	})

	synced := false
	var firstWrite token.Pos
	sawWrite := false
	for _, ev := range events {
		switch ev.kind {
		case "sync":
			synced = true
		case "rename":
			if !synced {
				p.Reportf(ev.pos, "os.Rename with no preceding Sync in this function: the rename commits a payload that may not be durable yet (order: temp write → fsync → rename → dir fsync)")
			}
		case "write":
			if !sawWrite {
				sawWrite = true
				firstWrite = ev.pos
			}
		}
	}
	if sawWrite && !synced {
		p.Reportf(firstWrite, "os.File write with no Sync anywhere in this function: a journal append must be fsynced before the state it announces is trusted")
	}
}
