// Seeded violations for the ctxprop analyzer: exported entry points that
// do I/O or spawn workers without any route to a context.
package recast

import (
	"context"
	"net/http"
	"os"
)

func SpawnBad(n int) { // want `exported SpawnBad spawns worker goroutines`
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func SpawnGood(ctx context.Context, n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-ctx.Done():
			return
		}
	}
}

func ReadBad(path string) ([]byte, error) { // want `exported ReadBad performs I/O \(os.ReadFile\)`
	return os.ReadFile(path)
}

func FetchBad(url string) (*http.Response, error) { // want `exported FetchBad performs I/O \(net/http.Get\)`
	return http.Get(url)
}

// Runner carries its context as a field, so its methods are cancellable
// through the receiver.
type Runner struct {
	ctx context.Context
}

func (r *Runner) Run(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Handle receives the context through *http.Request's Context() accessor.
func Handle(w http.ResponseWriter, r *http.Request) {
	b, err := os.ReadFile("image.json")
	if err != nil {
		http.Error(w, err.Error(), 500)
		return
	}
	w.Write(b)
}

// readManifest is unexported: not API surface, callers thread their own
// context above it.
func readManifest(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// NewMux only constructs routing tables; registering handlers is not I/O.
func NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}

//daspos:ctx-ok — one-shot CLI helper, process lifetime is the cancellation
func SlurpAnnotated(path string) ([]byte, error) {
	return os.ReadFile(path)
}
