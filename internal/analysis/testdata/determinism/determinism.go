// Seeded violations for the determinism analyzer: wall-clock reads,
// global math/rand, and map iteration feeding digests, next to clean and
// suppressed counterparts that must stay silent.
package sim

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"math/rand" // want "import of math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want `call to time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since reads the wall clock`
}

func metricOnly() time.Time {
	return time.Now() //daspos:wallclock-ok — metrics-only, never serialized
}

func metricOnlyAbove() time.Time {
	//daspos:wallclock-ok — directive on the line above also applies
	return time.Now()
}

func roll() int {
	return rand.Int()
}

func digestUnsorted(aux map[string]float64) []byte {
	h := sha256.New()
	for k, v := range aux { // want `map iteration feeds a hash.Hash`
		fmt.Fprintf(h, "%s=%v\n", k, v)
	}
	return h.Sum(nil)
}

func digestDirectWrite(aux map[string][]byte) []byte {
	h := sha256.New()
	for _, v := range aux { // want `map iteration feeds a hash.Hash`
		h.Write(v)
	}
	return h.Sum(nil)
}

func encodeUnsorted(m map[int]string, enc *gob.Encoder) error {
	for k := range m { // want `map iteration feeds a encoding/gob encoder`
		if err := enc.Encode(k); err != nil {
			return err
		}
	}
	return nil
}

func digestSorted(aux map[string]float64) []byte {
	keys := make([]string, 0, len(aux))
	for k := range aux { // clean: collects keys without digesting
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%v\n", k, aux[k])
	}
	return h.Sum(nil)
}

func tally(m map[string]int) int {
	total := 0
	for _, v := range m { // clean: order-independent accumulation
		total += v
	}
	return total
}
