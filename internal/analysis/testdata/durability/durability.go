// Seeded violations for the durability analyzer: renames that commit
// unsynced payloads and journal appends that return before fsync.
package checkpoint

import "os"

func commitUnsynced(tmp *os.File, final string) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final) // want `os.Rename with no preceding Sync`
}

func commitOrdered(tmp *os.File, final string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

func appendTorn(journal *os.File, line []byte) error {
	_, err := journal.Write(line) // want `os.File write with no Sync`
	return err
}

func appendDurable(journal *os.File, line []byte) error {
	if _, err := journal.Write(line); err != nil {
		return err
	}
	return journal.Sync()
}

func scratchRename(dir string) error {
	//daspos:fsync-ok — scratch file, a crash here loses nothing durable
	return os.Rename(dir+"/a", dir+"/b")
}
