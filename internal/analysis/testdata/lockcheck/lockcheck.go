// Seeded violations for the lockcheck analyzer: blocking operations
// under a held mutex, a lock leaked on an early return, and a write
// Lock in a read-only accessor — next to deferred-unlock, select-with-
// default, and RLock accessor shapes that must stay silent.
package queryserve

import (
	"context"
	"net/http"
	"os"
	"sync"
	"time"
)

type store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	journal *os.File
	entries map[string]string
	ready   chan struct{}
	out     chan string
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s\.mu is held`
}

func (s *store) fsyncUnderLock(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journal.Write(line); err != nil { // want `file Write while s\.mu is held`
		return err
	}
	return s.journal.Sync() // want `fsync while s\.mu is held`
}

func (s *store) fileOpsUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.ReadFile(path) // want `file I/O \(os\.ReadFile\) while s\.mu is held`
	return err
}

func (s *store) httpUnderLock(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Do(req) // want `HTTP request \(Client\.Do\) while s\.mu is held`
	return err
}

func (s *store) chanOpsUnderLock(v string) {
	s.mu.Lock()
	s.out <- v // want `channel send while s\.mu is held`
	<-s.ready  // want `channel receive while s\.mu is held`
	s.mu.Unlock()
}

type backend interface {
	Fetch(ctx context.Context, key string) (string, error)
}

func (s *store) backendUnderLock(ctx context.Context, b backend, key string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.Fetch(ctx, key) // want `context-taking call Fetch`
}

// Annotated blocking section: the write-ahead discipline requires the
// journal line durable before the in-memory state mutates.
func (s *store) journalOK(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journal.Write(line); err != nil { //daspos:lock-ok — write-ahead: the line must be durable before state mutates
		return err
	}
	return nil
}

// Select with a default never blocks: the pulse idiom is legal under a
// lock.
func (s *store) signalOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

func (s *store) leakyEarlyReturn(key string) string {
	s.mu.Lock() // want `s\.mu is not released on every return path`
	if v, ok := s.entries[key]; ok {
		return v
	}
	s.mu.Unlock()
	return ""
}

func (s *store) balancedReturnsOK(key string) string {
	s.mu.Lock()
	if v, ok := s.entries[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return ""
}

func (s *store) writeLockAccessor(key string) string {
	s.rw.Lock() // want `write Lock in a read-only accessor`
	defer s.rw.Unlock()
	return s.entries[key]
}

func (s *store) readLockAccessorOK(key string) string {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.entries[key]
}

func (s *store) writeLockMutatorOK(key, v string) {
	s.rw.Lock()
	defer s.rw.Unlock()
	s.entries[key] = v
}

// Mutation through a local alias of receiver state (the map-of-pointers
// idiom) is still mutation — the write Lock is correct and must stay
// silent.
type record struct{ hits int }

type indexed struct {
	rw   sync.RWMutex
	recs map[string]*record
}

func (x *indexed) aliasMutatorOK(key string) {
	x.rw.Lock()
	defer x.rw.Unlock()
	r, ok := x.recs[key]
	if !ok {
		return
	}
	r.hits++
}

// A plain Mutex has no read mode, so a read-only section under it is not
// a finding.
func (s *store) plainMutexAccessorOK(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[key]
}

// Unlock wrapped in a deferred cleanup literal still covers every exit.
func (s *store) deferredLitUnlockOK(key string) string {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.entries[key]
}

// The closure body runs under its own (unknown) lock state — blocking
// there is not blocking here.
func (s *store) closureOK() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		time.Sleep(time.Millisecond)
	}
}

// After the unlock, blocking is fine.
func (s *store) unlockThenBlockOK(line []byte) error {
	s.mu.Lock()
	s.entries["k"] = "v"
	s.mu.Unlock()
	_, err := s.journal.Write(line)
	return err
}
