// Seeded violations for the clonecheck analyzer: eventflow batch closures
// that retain their recycled input container — the slice itself, a
// subslice, a pointer into a slot, a channel send, a map closure returning
// its input — next to the legal idioms (element copies, ellipsis appends,
// Clone-style calls) and a suppressed deliberate retention, all of which
// must stay silent.
package flowclient

import (
	"daspos/internal/eventflow"
)

var escaped [][]int
var holes []*int
var grab map[string][]int

func sinkStealsContainer(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "steal", func(items []int) error {
		escaped = append(escaped, items) // want `batch container retained`
		return nil
	})
}

func sinkStealsSubslice(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "subslice", func(items []int) error {
		if len(items) > 2 {
			escaped = append(escaped, items[1:]) // want `batch container retained`
		}
		return nil
	})
}

func sinkStealsSlot(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "slot", func(items []int) error {
		if len(items) > 0 {
			holes = append(holes, &items[0]) // want `batch container retained`
		}
		return nil
	})
}

func sinkStealsViaComposite(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "composite", func(items []int) error {
		grab = map[string][]int{"batch": items} // want `batch container retained`
		return nil
	})
}

func sinkSendsContainer(s *eventflow.Stream[int], ch chan []int) {
	eventflow.SinkBatch(s, "send", func(items []int) error {
		ch <- items // want `sent on a channel`
		return nil
	})
}

func mapReturnsInput(s *eventflow.Stream[int]) *eventflow.Stream[int] {
	return eventflow.MapBatches(s, "bounce", 2, func(worker int) func([]int, []int) ([]int, error) {
		return func(in []int, out []int) ([]int, error) {
			return in, nil // want `returns its input container`
		}
	})
}

func mapStashesInput(s *eventflow.Stream[int]) *eventflow.Stream[int] {
	return eventflow.MapBatches(s, "stash", 2, func(worker int) func([]int, []int) ([]int, error) {
		return func(in []int, out []int) ([]int, error) {
			escaped = append(escaped, in) // want `batch container retained`
			return append(out, in...), nil
		}
	})
}

// --- legal idioms below: none of these may be reported ---

func sinkCopiesOut(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "copy", func(items []int) error {
		cp := make([]int, len(items))
		copy(cp, items)
		escaped = append(escaped, cp)
		return nil
	})
}

func sinkSpreadAppend(s *eventflow.Stream[int]) {
	var all []int
	eventflow.SinkBatch(s, "spread", func(items []int) error {
		all = append(all, items...) // element copy, not a container alias
		return nil
	})
	_ = all
}

func sinkElementReads(s *eventflow.Stream[int]) {
	var last int
	eventflow.SinkBatch(s, "element", func(items []int) error {
		for _, v := range items {
			last = v
		}
		return nil
	})
	_ = last
}

func sinkLocalAlias(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "local", func(items []int) error {
		// Aliasing within the closure's own lifetime is fine: the local
		// dies when the call returns, before the container is recycled.
		head := items[:1]
		_ = head
		return nil
	})
}

func sinkSuppressed(s *eventflow.Stream[int]) {
	eventflow.SinkBatch(s, "poison-probe", func(items []int) error {
		escaped = append(escaped, items) //daspos:retain-ok — probe asserting the poisoning itself
		return nil
	})
}

func mapBuildsOutput(s *eventflow.Stream[int]) *eventflow.Stream[int] {
	return eventflow.MapBatches(s, "legal", 2, func(worker int) func([]int, []int) ([]int, error) {
		return func(in []int, out []int) ([]int, error) {
			for _, v := range in {
				out = append(out, v*2)
			}
			return out, nil
		}
	})
}
