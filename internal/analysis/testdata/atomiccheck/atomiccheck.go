// Seeded violations for the atomiccheck analyzer: plain reads and writes
// of fields that elsewhere go through sync/atomic, and by-value copies
// of mutex-bearing structs — next to typed-atomic and pointer-passing
// shapes that must stay silent.
package node

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	served int64 // accessed via atomic.AddInt64 AND plain — the seeded race
	errors int64
	typed  atomic.Int64 // the safe wrapper: mixing is unrepresentable
}

func (c *counters) record() {
	atomic.AddInt64(&c.served, 1)
	atomic.AddInt64(&c.errors, 1)
	c.typed.Add(1)
}

func (c *counters) snapshotRacy() int64 {
	return c.served // want `plain access to served, which is also accessed via atomic\.AddInt64`
}

func (c *counters) resetRacy() {
	c.errors = 0 // want `plain access to errors`
}

func (c *counters) snapshotOK() int64 {
	return atomic.LoadInt64(&c.served)
}

func (c *counters) typedOK() int64 {
	return c.typed.Load()
}

// Pre-publication initialization, justified and annotated.
func newCountersOK() *counters {
	c := &counters{}
	c.served = 0 //daspos:atomic-ok — not yet published to any other goroutine
	return c
}

type guarded struct {
	mu    sync.Mutex
	state map[string]int
}

type registry struct {
	shards []guarded
}

func copyByAssign(g guarded) {
	snapshot := g // want `assignment copies a value containing sync\.Mutex`
	_ = snapshot
}

func copyByRange(r *registry) {
	for _, shard := range r.shards { // want `range copies a sync\.Mutex-bearing value per iteration`
		_ = shard.state
	}
}

func takesByValue(guarded) {}

func copyByCall(g *guarded) {
	takesByValue(*g) // want `argument passing copies a value containing sync\.Mutex`
}

func pointerOK(r *registry) {
	for i := range r.shards {
		shard := &r.shards[i]
		shard.mu.Lock()
		shard.mu.Unlock()
	}
}

func freshValueOK() {
	g := guarded{state: make(map[string]int)}
	g.mu.Lock()
	g.mu.Unlock()
}
