// Testdata for the suppression-inventory audit. The package runs under
// lockcheck only: a lock-ok directive that suppresses a real finding is
// used (silent), one that covers a clean line is stale (reported), and a
// token no analyzer owns is a typo (reported). Tokens owned by analyzers
// that did NOT run here (leak-ok) must stay unaudited — daspos-vet -only
// must never misreport another analyzer's annotations.
package catalog

import (
	"sync"
	"time"
)

type reg struct {
	mu sync.Mutex
}

func (r *reg) justified() {
	r.mu.Lock()
	defer r.mu.Unlock()
	time.Sleep(time.Millisecond) //daspos:lock-ok — seeded justification: the sleep is the test fixture
}

func (r *reg) stale() {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r //daspos:lock-ok — nothing blocks here anymore // want `suppress: unused suppression //daspos:lock-ok`

	//daspos:lokc-ok — typo'd token // want `suppress: unknown suppression token "lokc-ok"`
	_ = r
}

func notAudited() {
	// leak-ok belongs to leakcheck, which does not run over this
	// package in the test — so this directive must not be reported even
	// though nothing uses it.
	_ = 0 //daspos:leak-ok — out-of-scope token, must stay silent here
}
