// A multi-analyzer testdata package: lockcheck, leakcheck, and
// atomiccheck all audit it at once, the way daspos-vet audits a real
// package. Expectations anchor on the analyzer name (the harness matches
// against "analyzer: message") and pin exact columns, so a finding
// drifting to a different subexpression fails the golden test even when
// line and message still match.
package recast

import (
	"sync"
	"sync/atomic"
	"time"
)

type state struct {
	mu   sync.Mutex
	hits int64
}

func (s *state) sleepy() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want 2:`lockcheck: time\.Sleep while s\.mu is held`
}

func spin() {
	go func() { // want 2:`leakcheck: goroutine loops forever`
		for {
		}
	}()
}

func (s *state) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *state) readRacy() int64 {
	return s.hits // want 9:`atomiccheck: plain access to hits`
}

// One line, two analyzers: the send blocks under the held lock
// (lockcheck) and can wedge the goroutine forever (leakcheck).
func (s *state) doubleTrouble(out chan int) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		out <- 1 // want 3:`lockcheck: channel send while s\.mu is held` // want 3:`leakcheck: unguarded blocking send`
	}()
}
