// Seeded violations for the leakcheck analyzer: goroutines that loop
// with no termination signal, fire-and-forget spawns, and unguarded
// blocking sends — next to the supervised shapes (ctx.Done selects,
// WaitGroup joins, close-signaled ranges, buffered fan-ins) that must
// stay silent.
package cluster

import (
	"context"
	"net/http"
	"sync"
)

type svc struct {
	in   chan int
	done chan struct{}
}

func use(int) {}

func compute() int { return 42 }

func spinForever() {
	go func() { // want `goroutine loops forever with no termination signal`
		for {
			compute()
		}
	}()
}

func ctxSelectOK(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				use(v)
			}
		}
	}()
}

func doneChanOK(s *svc) {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.in:
				use(v)
			}
		}
	}()
}

func rangeChanOK(in chan int) {
	go func() {
		for v := range in {
			use(v)
		}
	}()
}

func fireAndForget() {
	go func() { // want `fire-and-forget goroutine`
		compute()
	}()
}

func waitGroupOK(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
}

func unguardedSend() {
	results := make(chan int)
	go func() {
		results <- compute() // want `unguarded blocking send in a goroutine`
	}()
	<-results
}

func bufferedFanInOK(n int) {
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			results <- compute()
		}()
	}
}

func guardedSendOK(ctx context.Context, out chan int) {
	go func() {
		select {
		case out <- compute():
		case <-ctx.Done():
		}
	}()
}

type worker struct {
	ctx context.Context
	in  chan int
}

func (w *worker) loop() {
	for {
		select {
		case <-w.ctx.Done():
			return
		case v := <-w.in:
			use(v)
		}
	}
}

func (w *worker) spin() {
	for {
		compute()
	}
}

func (w *worker) startOK() {
	go w.loop()
}

func (w *worker) startSpin() {
	go w.spin() // want `goroutine loops forever with no termination signal`
}

func externalNoCtx(addr string) {
	go http.ListenAndServe(addr, nil) // want `goroutine runs ListenAndServe, declared outside this package`
}

func externalWithCtxOK(ctx context.Context, srv *http.Server) {
	go srv.Shutdown(ctx)
}

// A process-lifetime daemon, documented as such.
func daemonAnnotatedOK() {
	//daspos:leak-ok — metrics flusher lives for the process
	go func() {
		for {
			compute()
		}
	}()
}
