// Seeded violations for the errclass analyzer: error chains flattened
// with %v/%s, and unclassified errors minted at the retry boundary.
package archive

import (
	"context"
	"errors"
	"fmt"

	"daspos/internal/resilience"
)

func flattenV(err error) error {
	return fmt.Errorf("replication failed: %v", err) // want `formats an error with %v`
}

func flattenS(err error) error {
	return fmt.Errorf("replication failed: %s", err) // want `formats an error with %s`
}

func wrapOK(err error) error {
	return fmt.Errorf("replication failed: %w", err)
}

func doubleWrapOK(sentinel, cause error) error {
	return fmt.Errorf("%w: fetching replica: %w", sentinel, cause)
}

func notAnError(n int) error {
	return fmt.Errorf("bad replica count: %v", n)
}

func deliberateFlatten(err error) string {
	// A string rendering, not a wrap — but via Errorf it still loses the
	// chain; the suppression records that this one is display-only.
	return fmt.Errorf("display: %v", err).Error() //daspos:errclass-ok
}

func retryFreshErrorsNew(ctx context.Context) error {
	return resilience.Retry(ctx, resilience.Policy{}, func(context.Context) error {
		return errors.New("replica unreachable") // want `errors.New at the resilience.Retry boundary`
	})
}

func retryFreshErrorf(ctx context.Context, id int) error {
	return resilience.Retry(ctx, resilience.Policy{}, func(context.Context) error {
		return fmt.Errorf("replica %d unreachable", id) // want `neither wraps a cause with %w nor carries a Mark`
	})
}

func retryClassified(ctx context.Context, op func() error) error {
	return resilience.Retry(ctx, resilience.Policy{}, func(context.Context) error {
		if err := op(); err != nil {
			return resilience.MarkTransient(err)
		}
		return nil
	})
}

func retryWrapped(ctx context.Context, op func() error) error {
	return resilience.Retry(ctx, resilience.Policy{}, func(context.Context) error {
		if err := op(); err != nil {
			return fmt.Errorf("attempt: %w", err)
		}
		return nil
	})
}

func retryPassthrough(ctx context.Context, op func() error) error {
	return resilience.Retry(ctx, resilience.Policy{}, func(context.Context) error {
		return op() // classification is op's responsibility, checked there
	})
}
