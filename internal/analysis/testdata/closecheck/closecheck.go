// Seeded violations for the closecheck analyzer: discarded Close/Flush
// errors on writers, next to checked, deferred, and reader cases that
// must stay silent.
package datamodel

import (
	"bufio"
	"io"
	"os"
)

func writeBad(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Close() // want `Close\(\) on a writer discarded`
	return nil
}

func flushBad(w io.Writer, b []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(b); err != nil {
		return err
	}
	bw.Flush() // want `Flush\(\) on a writer discarded`
	return nil
}

func writeGood(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() //daspos:close-ok — error path, the write error wins
		return err
	}
	return f.Close()
}

func deferredOK(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.ReadAll(f)
	return err
}

func deferredLitOK(path string, b []byte) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() {
		f.Close()
	}()
	_, err = f.Write(b)
	return err
}

func readerOK(rc io.ReadCloser) ([]byte, error) {
	b, err := io.ReadAll(rc)
	rc.Close() // a reader's Close loses nothing buffered
	return b, err
}
