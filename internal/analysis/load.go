package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching the patterns with `go list`,
// parses their (non-test) sources, and typechecks them against the
// compiler's export data for every dependency — the whole pipeline stays
// inside the standard library and the go toolchain the module already
// requires. dir is the working directory for the go command (any
// directory inside the module).
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, info, err := typecheck(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return fset, out, nil
}

// goList runs `go list -export -deps -json` over the patterns and returns
// the target (non-dependency) packages plus the export-data location of
// every package in the closure.
func goList(dir string, patterns []string) ([]*listPackage, map[string]string, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			cp := lp
			targets = append(targets, &cp)
		}
	}
	return targets, exports, nil
}

// exportImporter resolves imports from the export data `go list -export`
// left in the build cache — the same type information the compiler used,
// with no source re-typechecking of dependencies.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		loc, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(loc)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheck runs go/types over one package's parsed files.
func typecheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: typechecking %s: %w", path, err)
	}
	return pkg, info, nil
}
