package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CloseCheck enforces resource hygiene on the write paths: a discarded
// Close() or Flush() error on a writer is a silent data-loss bug, because
// buffered bytes (a file trailer, a deflate tail, a journal line) are
// flushed at close time and a failure there leaves a truncated artifact
// that nothing ever reports. Deferred closes are exempt: they are the
// best-effort cleanup idiom on error paths, where the primary error is
// already in flight.
var CloseCheck = &Analyzer{
	Name:     "closecheck",
	Doc:      "Close/Flush errors on writers must be checked; a failed close truncates the artifact silently",
	Why:      "writers flush buffered bytes at Close/Flush; discarding that error preserves a truncated artifact while reporting success — the worst failure an archive can have",
	Suppress: "close-ok",
	Match: func(path string) bool {
		if strings.Contains(path, "/cmd/") {
			return true
		}
		return matchPath(
			"internal/datamodel",
			"internal/cas",
			"internal/checkpoint",
			"internal/archive",
			"internal/workflow",
			"internal/rawdata",
			"internal/recast",
			"internal/node",
			"internal/cluster",
			"internal/eventflow",
			"internal/queryserve",
		)(path)
	},
	Run: runCloseCheck,
}

func runCloseCheck(p *Pass) {
	for _, f := range p.Files {
		deferred := deferredRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if deferred.contains(call.Pos()) {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Flush" {
				return true
			}
			recv := p.typeOf(sel.X)
			if !returnsOnlyError(p, sel) || !isWriter(recv) {
				return true
			}
			p.Reportf(call.Pos(), "%s on a writer discarded: a failed %s drops buffered bytes and the caller records a truncated artifact as good (check the error, or //daspos:close-ok for best-effort paths)", name+"()", name)
			return true
		})
	}
}

// returnsOnlyError reports whether the selected method returns exactly
// (error).
func returnsOnlyError(p *Pass, sel *ast.SelectorExpr) bool {
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && tupleMatches(sig.Results(), []string{"error"})
}

// posRanges is a set of source intervals.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv.lo && p <= iv.hi {
			return true
		}
	}
	return false
}

// deferredRanges collects the extents of every deferred call — both
// `defer x.Close()` and the bodies of deferred function literals, whose
// closes are cleanup-on-error by construction.
func deferredRanges(f *ast.File) posRanges {
	var out posRanges
	ast.Inspect(f, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		out = append(out, struct{ lo, hi token.Pos }{def.Call.Pos(), def.Call.End()})
		return true
	})
	return out
}
