// Package catalog implements the dataset and file catalogue: the
// bookkeeping layer every experiment in the paper's workflow survey runs
// between its processing steps. Datasets group files of one tier and one
// processing version; parent links record which dataset each was derived
// from, complementing the per-artifact provenance chain with the
// dataset-level view an analyst actually queries ("which AOD version is
// this skim based on, and on which raw runs is that based?").
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// FileEntry is one file of a dataset.
type FileEntry struct {
	// LFN is the logical file name, unique within the dataset.
	LFN string `json:"lfn"`
	// Digest is the content address of the file (links into CAS/archive).
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	Events int    `json:"events"`
}

// Dataset groups the files of one processing output.
type Dataset struct {
	// Name is the dataset path, e.g. "/mc/zmumu/AOD/v3".
	Name string `json:"name"`
	// Tier is the data-tier label.
	Tier string `json:"tier"`
	// ProcessingVersion identifies the pass that made it.
	ProcessingVersion string `json:"processing_version"`
	// ConditionsTag pins the calibration used.
	ConditionsTag string `json:"conditions_tag,omitempty"`
	// Parent names the dataset this one was derived from; empty for
	// primary data.
	Parent string `json:"parent,omitempty"`
	// ProvenanceRecord links the dataset to its provenance chain.
	ProvenanceRecord string `json:"provenance_record,omitempty"`
	// Closed datasets are immutable: production has finished.
	Closed bool `json:"closed"`
	// Metadata holds free-form discovery keys.
	Metadata map[string]string `json:"metadata,omitempty"`
	Files    []FileEntry       `json:"files"`
}

// TotalEvents sums the dataset's event counts.
func (d *Dataset) TotalEvents() int {
	n := 0
	for _, f := range d.Files {
		n += f.Events
	}
	return n
}

// TotalBytes sums the dataset's file sizes.
func (d *Dataset) TotalBytes() int64 {
	var n int64
	for _, f := range d.Files {
		n += f.Bytes
	}
	return n
}

// Errors returned by the catalogue.
var (
	ErrNoDataset = errors.New("catalog: no such dataset")
	ErrClosed    = errors.New("catalog: dataset is closed")
)

// Catalog is the dataset store. It is safe for concurrent use: mutation
// takes an exclusive lock, reads share one, and every read API hands out
// copies — a Dataset returned from Get or Query is the caller's to keep,
// detached from later AddFile/Close mutation. The serving tier reads it
// under load while production jobs keep registering files.
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
	// names mirrors the map keys in sorted order, maintained on Create, so
	// listings and keyset pagination need no per-call sort.
	names []string
}

// New returns an empty catalogue.
func New() *Catalog {
	return &Catalog{datasets: make(map[string]*Dataset)}
}

// insertName splices a new dataset name into the sorted listing. Caller
// holds the write lock.
func (c *Catalog) insertName(name string) {
	at := sort.SearchStrings(c.names, name)
	c.names = append(c.names, "")
	copy(c.names[at+1:], c.names[at:])
	c.names[at] = name
}

// Create registers a new, open dataset. The parent, when named, must
// already exist.
func (c *Catalog) Create(d Dataset) error {
	if !strings.HasPrefix(d.Name, "/") {
		return fmt.Errorf("catalog: dataset name %q must be a path", d.Name)
	}
	if d.Tier == "" {
		return fmt.Errorf("catalog: dataset %q needs a tier", d.Name)
	}
	if len(d.Files) != 0 {
		return fmt.Errorf("catalog: create dataset %q empty, then AddFile", d.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.datasets[d.Name]; dup {
		return fmt.Errorf("catalog: dataset %q already exists", d.Name)
	}
	if d.Parent != "" {
		if _, ok := c.datasets[d.Parent]; !ok {
			return fmt.Errorf("%w: parent %q of %q", ErrNoDataset, d.Parent, d.Name)
		}
	}
	d.Closed = false
	// Copy the metadata map too: the caller's map must not alias catalogue
	// state it can mutate outside the lock.
	if d.Metadata != nil {
		md := make(map[string]string, len(d.Metadata))
		for k, v := range d.Metadata {
			md[k] = v
		}
		d.Metadata = md
	}
	cp := d
	c.datasets[d.Name] = &cp
	c.insertName(d.Name)
	return nil
}

// AddFile appends a file to an open dataset. LFNs must be unique within
// the dataset.
func (c *Catalog) AddFile(dataset string, f FileEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.datasets[dataset]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDataset, dataset)
	}
	if d.Closed {
		return fmt.Errorf("%w: %s", ErrClosed, dataset)
	}
	if f.LFN == "" {
		return fmt.Errorf("catalog: file in %q needs an LFN", dataset)
	}
	for _, existing := range d.Files {
		if existing.LFN == f.LFN {
			return fmt.Errorf("catalog: duplicate LFN %q in %q", f.LFN, dataset)
		}
	}
	d.Files = append(d.Files, f)
	return nil
}

// Close freezes a dataset; further AddFile calls fail.
func (c *Catalog) Close(dataset string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.datasets[dataset]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDataset, dataset)
	}
	d.Closed = true
	return nil
}

// copyLocked clones a dataset for hand-out. Caller holds at least a read
// lock.
func copyLocked(d *Dataset) Dataset {
	cp := *d
	cp.Files = append([]FileEntry(nil), d.Files...)
	if d.Metadata != nil {
		md := make(map[string]string, len(d.Metadata))
		for k, v := range d.Metadata {
			md[k] = v
		}
		cp.Metadata = md
	}
	return cp
}

// Get returns a copy of the dataset.
func (c *Catalog) Get(name string) (Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.datasets[name]
	if !ok {
		return Dataset{}, false
	}
	return copyLocked(d), true
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.datasets)
}

// Names returns the sorted dataset names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.names...)
}

// NamesAfter returns up to limit sorted dataset names strictly greater
// than after (empty starts at the beginning; limit <= 0 means no bound) —
// the keyset-pagination primitive: a paginated walk anchored on the last
// name seen returns every dataset that existed at walk start exactly once
// regardless of concurrent Create calls.
func (c *Catalog) NamesAfter(after string, limit int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	at := sort.SearchStrings(c.names, after)
	if at < len(c.names) && c.names[at] == after {
		at++
	}
	end := len(c.names)
	if limit > 0 && at+limit < end {
		end = at + limit
	}
	return append([]string(nil), c.names[at:end]...)
}

// Query returns datasets matching the tier (empty matches all) and every
// given metadata key/value, in sorted name order.
func (c *Catalog) Query(tier string, metadata map[string]string) []Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Dataset
	for _, name := range c.names {
		d := c.datasets[name]
		if tier != "" && d.Tier != tier {
			continue
		}
		match := true
		for k, v := range metadata {
			if d.Metadata[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, copyLocked(d))
		}
	}
	return out
}

// Lineage walks parent links from a dataset to its primary ancestor,
// returning the chain starting with the dataset itself. The walk runs
// under one read lock, so it sees a consistent snapshot of the parent
// graph.
func (c *Catalog) Lineage(name string) ([]Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := make(map[string]bool)
	var out []Dataset
	for name != "" {
		if seen[name] {
			return nil, fmt.Errorf("catalog: parent cycle at %q", name)
		}
		seen[name] = true
		d, ok := c.datasets[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoDataset, name)
		}
		out = append(out, copyLocked(d))
		name = d.Parent
	}
	return out, nil
}

// Children returns the names of datasets directly derived from the given
// one, sorted.
func (c *Catalog) Children(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, n := range c.names {
		if c.datasets[n].Parent == name {
			out = append(out, n)
		}
	}
	return out
}

// WriteJSON persists the catalogue. The write happens under a read lock,
// so concurrent mutation cannot tear the snapshot.
func (c *Catalog) WriteJSON(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var all []*Dataset
	for _, n := range c.names {
		all = append(all, c.datasets[n])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// ReadJSON loads a catalogue and re-validates parent links.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var all []*Dataset
	if err := json.NewDecoder(r).Decode(&all); err != nil {
		return nil, fmt.Errorf("catalog: parsing: %w", err)
	}
	c := New()
	for _, d := range all {
		if _, dup := c.datasets[d.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate dataset %q on load", d.Name)
		}
		c.datasets[d.Name] = d
		c.insertName(d.Name)
	}
	for _, d := range all {
		if d.Parent != "" {
			if _, ok := c.datasets[d.Parent]; !ok {
				return nil, fmt.Errorf("%w: parent %q of %q missing on load", ErrNoDataset, d.Parent, d.Name)
			}
		}
	}
	return c, nil
}
