package catalog

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestCatalogConcurrentAccess hammers the catalog from writers and
// readers at once; run with -race. Readers must always see sorted
// listings and copied datasets, never the catalog's own maps.
func TestCatalogConcurrentAccess(t *testing.T) {
	c := New()
	const writers, perWriter = 4, 20
	var wg, writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("/mc/conc%d-%02d/AOD/v1", w, i)
				err := c.Create(Dataset{
					Name: name, Tier: "AOD", ProcessingVersion: "v1",
					Metadata: map[string]string{"writer": fmt.Sprint(w)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.AddFile(name, FileEntry{LFN: name + "/f0", Bytes: 10, Digest: "d", Events: 1}); err != nil {
					t.Error(err)
					return
				}
				if err := c.Close(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			names := c.NamesAfter("", 1000)
			if !sort.StringsAreSorted(names) {
				t.Error("listing unsorted under concurrent writes")
				return
			}
			c.Query("AOD", nil)
			if len(names) > 0 {
				c.Get(names[0])
			}
		}
	}()
	writerWg.Wait()
	close(stop)
	wg.Wait()
	if c.Len() != writers*perWriter {
		t.Fatalf("catalog has %d datasets", c.Len())
	}
	// Reads are copies: mutating a returned dataset's maps and slices
	// must not reach the catalog.
	name := "/mc/conc0-00/AOD/v1"
	d, ok := c.Get(name)
	if !ok {
		t.Fatal("dataset missing")
	}
	d.Metadata["writer"] = "tampered"
	d.Files[0].Digest = "tampered"
	again, _ := c.Get(name)
	if again.Metadata["writer"] == "tampered" || again.Files[0].Digest == "tampered" {
		t.Fatal("Get returned shared memory")
	}
}

// TestListingDeterminism pins the ordering contract on every multi-result
// API: sorted by name, identical across repeated calls, insertion order
// irrelevant.
func TestListingDeterminism(t *testing.T) {
	mk := func(names []string) *Catalog {
		c := New()
		for _, n := range names {
			if err := c.Create(Dataset{Name: n, Tier: "AOD", ProcessingVersion: "v1"}); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	names := []string{"/d/c/AOD/v1", "/a/x/AOD/v1", "/b/m/AOD/v1", "/a/a/AOD/v1"}
	reversed := []string{"/a/a/AOD/v1", "/b/m/AOD/v1", "/a/x/AOD/v1", "/d/c/AOD/v1"}
	c1, c2 := mk(names), mk(reversed)
	want := []string{"/a/a/AOD/v1", "/a/x/AOD/v1", "/b/m/AOD/v1", "/d/c/AOD/v1"}
	for i, c := range []*Catalog{c1, c2} {
		got := c.NamesAfter("", 10)
		if len(got) != len(want) {
			t.Fatalf("catalog %d: %v", i, got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("catalog %d listing: %v want %v", i, got, want)
			}
		}
		q := c.Query("AOD", nil)
		for j := 1; j < len(q); j++ {
			if q[j-1].Name >= q[j].Name {
				t.Fatalf("catalog %d Query unsorted: %v then %v", i, q[j-1].Name, q[j].Name)
			}
		}
	}
	// NamesAfter pages agree with the full listing.
	var paged []string
	after := ""
	for {
		page := c1.NamesAfter(after, 2)
		if len(page) == 0 {
			break
		}
		paged = append(paged, page...)
		after = page[len(page)-1]
	}
	if fmt.Sprint(paged) != fmt.Sprint(want) {
		t.Fatalf("paged walk %v want %v", paged, want)
	}
}
