package catalog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildChain registers RAW → AOD → SKIM datasets with files.
func buildChain(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	mk := func(name, tier, parent string, meta map[string]string) {
		if err := c.Create(Dataset{Name: name, Tier: tier, ProcessingVersion: "v1", Parent: parent, Metadata: meta}); err != nil {
			t.Fatal(err)
		}
	}
	mk("/data/run2013/RAW", "RAW", "", map[string]string{"year": "2013"})
	mk("/data/run2013/AOD/v1", "AOD", "/data/run2013/RAW", map[string]string{"year": "2013"})
	mk("/data/run2013/SKIM-MU/v1", "DERIVED", "/data/run2013/AOD/v1", map[string]string{"group": "muon"})
	for i, name := range []string{"/data/run2013/RAW", "/data/run2013/AOD/v1", "/data/run2013/SKIM-MU/v1"} {
		if err := c.AddFile(name, FileEntry{LFN: "f1", Digest: "d", Bytes: int64(1000 >> i), Events: 100 >> i}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCreateValidation(t *testing.T) {
	c := New()
	if err := c.Create(Dataset{Name: "noslash", Tier: "RAW"}); err == nil {
		t.Error("non-path name accepted")
	}
	if err := c.Create(Dataset{Name: "/x"}); err == nil {
		t.Error("tierless dataset accepted")
	}
	if err := c.Create(Dataset{Name: "/x", Tier: "RAW", Parent: "/ghost"}); err == nil {
		t.Error("dangling parent accepted")
	}
	if err := c.Create(Dataset{Name: "/x", Tier: "RAW", Files: []FileEntry{{LFN: "f"}}}); err == nil {
		t.Error("pre-populated dataset accepted")
	}
	if err := c.Create(Dataset{Name: "/x", Tier: "RAW"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(Dataset{Name: "/x", Tier: "RAW"}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestAddFileAndClose(t *testing.T) {
	c := buildChain(t)
	if err := c.AddFile("/ghost", FileEntry{LFN: "f"}); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("err: %v", err)
	}
	if err := c.AddFile("/data/run2013/RAW", FileEntry{LFN: ""}); err == nil {
		t.Fatal("empty LFN accepted")
	}
	if err := c.AddFile("/data/run2013/RAW", FileEntry{LFN: "f1"}); err == nil {
		t.Fatal("duplicate LFN accepted")
	}
	if err := c.Close("/data/run2013/RAW"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile("/data/run2013/RAW", FileEntry{LFN: "f2"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed dataset mutable: %v", err)
	}
	if err := c.Close("/ghost"); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("err: %v", err)
	}
}

func TestTotals(t *testing.T) {
	c := buildChain(t)
	d, ok := c.Get("/data/run2013/RAW")
	if !ok {
		t.Fatal("missing")
	}
	if d.TotalEvents() != 100 || d.TotalBytes() != 1000 {
		t.Fatalf("totals: %d %d", d.TotalEvents(), d.TotalBytes())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := buildChain(t)
	d, _ := c.Get("/data/run2013/RAW")
	d.Files[0].Events = 999999
	d2, _ := c.Get("/data/run2013/RAW")
	if d2.Files[0].Events == 999999 {
		t.Fatal("Get aliases internal storage")
	}
}

func TestQuery(t *testing.T) {
	c := buildChain(t)
	if got := c.Query("AOD", nil); len(got) != 1 || got[0].Name != "/data/run2013/AOD/v1" {
		t.Fatalf("query AOD: %+v", got)
	}
	if got := c.Query("", map[string]string{"group": "muon"}); len(got) != 1 {
		t.Fatalf("query group: %+v", got)
	}
	if got := c.Query("", map[string]string{"group": "photon"}); len(got) != 0 {
		t.Fatalf("query miss: %+v", got)
	}
	if got := c.Query("", nil); len(got) != 3 {
		t.Fatalf("query all: %d", len(got))
	}
}

func TestLineage(t *testing.T) {
	c := buildChain(t)
	chain, err := c.Lineage("/data/run2013/SKIM-MU/v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0].Tier != "DERIVED" || chain[2].Tier != "RAW" {
		t.Fatalf("lineage: %d", len(chain))
	}
	if _, err := c.Lineage("/ghost"); err == nil {
		t.Fatal("ghost lineage resolved")
	}
}

func TestLineageCycleDetected(t *testing.T) {
	c := buildChain(t)
	// Force a cycle directly in storage (cannot be built via the API).
	c.datasets["/data/run2013/RAW"].Parent = "/data/run2013/SKIM-MU/v1"
	if _, err := c.Lineage("/data/run2013/SKIM-MU/v1"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestChildren(t *testing.T) {
	c := buildChain(t)
	kids := c.Children("/data/run2013/AOD/v1")
	if len(kids) != 1 || kids[0] != "/data/run2013/SKIM-MU/v1" {
		t.Fatalf("children: %v", kids)
	}
	if len(c.Children("/data/run2013/SKIM-MU/v1")) != 0 {
		t.Fatal("leaf has children")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildChain(t)
	_ = c.Close("/data/run2013/RAW")
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 3 {
		t.Fatalf("names: %v", got.Names())
	}
	d, _ := got.Get("/data/run2013/RAW")
	if !d.Closed || d.TotalEvents() != 100 {
		t.Fatalf("reloaded dataset: %+v", d)
	}
	chain, err := got.Lineage("/data/run2013/SKIM-MU/v1")
	if err != nil || len(chain) != 3 {
		t.Fatalf("lineage after reload: %v %d", err, len(chain))
	}
}

func TestReadJSONRejectsBroken(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"name":"/a","tier":"RAW","parent":"/ghost"}]`)); err == nil {
		t.Fatal("dangling parent loaded")
	}
}
