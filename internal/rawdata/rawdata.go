// Package rawdata implements digitization and the raw-event binary format:
// the "raw binary data read out from the detector elements" at the base of
// every workflow the paper analyses (§3.2).
//
// Digitization converts simulated hits and deposits into per-partition
// banks of (channel, ADC) words. Two properties matter for preservation:
// raw data is the largest tier (experiment W1 measures the size cascade
// from here down), and it carries no Monte Carlo truth links — the
// association to generated particles exists only in the simulation output,
// so any provenance must be recorded externally (experiment W3).
package rawdata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"daspos/internal/detector"
	"daspos/internal/sim"
)

// Partition identifies a detector readout partition (one Bank each).
type Partition uint16

// Readout partitions.
const (
	PartTracker Partition = iota + 1
	PartECal
	PartHCal
	PartMuon
)

// String returns the partition name.
func (p Partition) String() string {
	switch p {
	case PartTracker:
		return "tracker"
	case PartECal:
		return "ecal"
	case PartHCal:
		return "hcal"
	case PartMuon:
		return "muon"
	default:
		return fmt.Sprintf("partition(%d)", uint16(p))
	}
}

// Word is one digitized channel reading.
type Word struct {
	Channel detector.ChannelID
	// ADC is the digitized amplitude. Tracker and muon channels record a
	// binary threshold crossing plus charge; calorimeter channels encode
	// energy at 20 MeV per count, saturating at the 16-bit ceiling.
	ADC uint16
}

// Bank is the readout of one partition for one event.
type Bank struct {
	Partition Partition
	Words     []Word
}

// Event is one built raw event.
type Event struct {
	Run    uint32
	Number uint64
	Banks  []Bank
}

// caloGeVPerCount is the calorimeter energy quantization.
const caloGeVPerCount = 0.020

// EncodeEnergy converts GeV to saturating ADC counts.
func EncodeEnergy(gev float64) uint16 {
	counts := math.Round(gev / caloGeVPerCount)
	if counts <= 0 {
		return 0
	}
	if counts >= math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(counts)
}

// DecodeEnergy converts ADC counts back to GeV.
func DecodeEnergy(adc uint16) float64 { return float64(adc) * caloGeVPerCount }

// Digitize converts a simulated event into a raw event for the given run.
// Words within each bank are sorted by channel, as a real event builder
// would emit them; duplicate channels (pileup pile-on, noise on a hit
// channel) are merged by summing ADC.
func Digitize(run uint32, se *sim.Event) *Event {
	ev := &Event{Run: run, Number: uint64(se.Number)}
	tracker := make(map[detector.ChannelID]uint32)
	ecal := make(map[detector.ChannelID]uint32)
	hcal := make(map[detector.ChannelID]uint32)
	muon := make(map[detector.ChannelID]uint32)
	for _, h := range se.TrackerHits {
		tracker[h.Channel] += 64 // nominal charge over threshold
	}
	for _, h := range se.MuonHits {
		muon[h.Channel] += 64
	}
	for _, d := range se.Deposits {
		m := hcal
		if d.EM {
			m = ecal
		}
		m[d.Channel] += uint32(EncodeEnergy(d.Energy))
	}
	ev.Banks = []Bank{
		bankFrom(PartTracker, tracker),
		bankFrom(PartECal, ecal),
		bankFrom(PartHCal, hcal),
		bankFrom(PartMuon, muon),
	}
	return ev
}

func bankFrom(p Partition, m map[detector.ChannelID]uint32) Bank {
	words := make([]Word, 0, len(m))
	for ch, adc := range m {
		if adc > math.MaxUint16 {
			adc = math.MaxUint16
		}
		if adc == 0 {
			continue
		}
		words = append(words, Word{Channel: ch, ADC: uint16(adc)})
	}
	sort.Slice(words, func(i, j int) bool { return words[i].Channel < words[j].Channel })
	return Bank{Partition: p, Words: words}
}

// Bank returns the bank for a partition, or nil.
func (e *Event) Bank(p Partition) *Bank {
	for i := range e.Banks {
		if e.Banks[i].Partition == p {
			return &e.Banks[i]
		}
	}
	return nil
}

// SizeBytes returns the encoded size of the event, the quantity the
// tier-reduction experiment tracks.
func (e *Event) SizeBytes() int {
	n := 4 + 4 + 8 + 2 // magic, run, number, nbanks
	for _, b := range e.Banks {
		n += 2 + 4 + len(b.Words)*6 + 4 // partition, count, words, crc
	}
	return n
}

// Binary framing. All integers are little-endian. Each event:
//
//	magic(4) run(4) number(8) nbanks(2)
//	per bank: partition(2) nwords(4) [channel(4) adc(2)]... crc32(4)
//
// The CRC covers the bank body and catches bit rot in archived raw files;
// fixity at file granularity is the archive layer's job.

const eventMagic = 0xDA5B05E1

// ErrCorrupt is wrapped by all decoding errors.
var ErrCorrupt = errors.New("rawdata: corrupt stream")

// WriteEvent encodes one event to w.
func WriteEvent(w io.Writer, e *Event) error {
	hdr := make([]byte, 18)
	binary.LittleEndian.PutUint32(hdr[0:], eventMagic)
	binary.LittleEndian.PutUint32(hdr[4:], e.Run)
	binary.LittleEndian.PutUint64(hdr[8:], e.Number)
	binary.LittleEndian.PutUint16(hdr[16:], uint16(len(e.Banks)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, b := range e.Banks {
		body := make([]byte, 6+len(b.Words)*6)
		binary.LittleEndian.PutUint16(body[0:], uint16(b.Partition))
		binary.LittleEndian.PutUint32(body[2:], uint32(len(b.Words)))
		for i, wd := range b.Words {
			off := 6 + i*6
			binary.LittleEndian.PutUint32(body[off:], uint32(wd.Channel))
			binary.LittleEndian.PutUint16(body[off+4:], wd.ADC)
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvent decodes one event from r, returning io.EOF at a clean end of
// stream.
func ReadEvent(r io.Reader) (*Event, error) {
	hdr := make([]byte, 18)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %w", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != eventMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	e := &Event{
		Run:    binary.LittleEndian.Uint32(hdr[4:]),
		Number: binary.LittleEndian.Uint64(hdr[8:]),
	}
	nbanks := int(binary.LittleEndian.Uint16(hdr[16:]))
	for i := 0; i < nbanks; i++ {
		bh := make([]byte, 6)
		if _, err := io.ReadFull(r, bh); err != nil {
			return nil, fmt.Errorf("%w: truncated bank header: %w", ErrCorrupt, err)
		}
		nwords := int(binary.LittleEndian.Uint32(bh[2:]))
		if nwords > 1<<24 {
			return nil, fmt.Errorf("%w: unreasonable bank size %d", ErrCorrupt, nwords)
		}
		body := make([]byte, 6+nwords*6)
		copy(body, bh)
		if _, err := io.ReadFull(r, body[6:]); err != nil {
			return nil, fmt.Errorf("%w: truncated bank body: %w", ErrCorrupt, err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated bank crc: %w", ErrCorrupt, err)
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(body) {
			return nil, fmt.Errorf("%w: bank %d crc mismatch", ErrCorrupt, i)
		}
		b := Bank{
			Partition: Partition(binary.LittleEndian.Uint16(body[0:])),
			Words:     make([]Word, nwords),
		}
		for j := 0; j < nwords; j++ {
			off := 6 + j*6
			b.Words[j] = Word{
				Channel: detector.ChannelID(binary.LittleEndian.Uint32(body[off:])),
				ADC:     binary.LittleEndian.Uint16(body[off+4:]),
			}
		}
		e.Banks = append(e.Banks, b)
	}
	return e, nil
}

// DigitizeFunc adapts Digitize to the event-flow stage signature for the
// given run. Digitization is a pure function of the simulated event, so
// the returned function is safe for any worker count.
func DigitizeFunc(run uint32) func(*sim.Event) (*Event, bool, error) {
	return func(se *sim.Event) (*Event, bool, error) {
		return Digitize(run, se), true, nil
	}
}

// Writer streams raw events onto an io.Writer one at a time — the
// event-builder end of a streaming pipeline, where a whole-run []*Event
// slice never exists.
type Writer struct {
	w io.Writer
	n int
}

// NewWriter returns a streaming raw-event writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write appends one event to the stream.
func (w *Writer) Write(e *Event) error {
	if err := WriteEvent(w.w, e); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Reader streams raw events off an io.Reader; Read returns io.EOF at a
// clean end of stream. It is the raw tier's streaming source.
type Reader struct {
	r io.Reader
}

// NewReader returns a streaming raw-event reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read decodes the next event, or io.EOF.
func (r *Reader) Read() (*Event, error) { return ReadEvent(r.r) }

// WriteFile encodes a sequence of events.
func WriteFile(w io.Writer, events []*Event) error {
	for _, e := range events {
		if err := WriteEvent(w, e); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile decodes all events from r.
func ReadFile(r io.Reader) ([]*Event, error) {
	var out []*Event
	for {
		e, err := ReadEvent(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
