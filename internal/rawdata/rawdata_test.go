package rawdata

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/sim"
)

func simulatedEvents(t testing.TB, n int) []*sim.Event {
	t.Helper()
	det := detector.Standard()
	fs := sim.NewFullSim(det, 1)
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	out := make([]*sim.Event, n)
	for i := range out {
		out[i] = fs.Simulate(g.Generate())
	}
	return out
}

func TestDigitizeProducesAllPartitions(t *testing.T) {
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(7, se)
	if ev.Run != 7 || ev.Number != uint64(se.Number) {
		t.Fatalf("identity: run=%d number=%d", ev.Run, ev.Number)
	}
	for _, p := range []Partition{PartTracker, PartECal, PartHCal, PartMuon} {
		if ev.Bank(p) == nil {
			t.Fatalf("missing bank %v", p)
		}
	}
	if len(ev.Bank(PartTracker).Words) == 0 {
		t.Fatal("tracker bank empty for a dijet event")
	}
	if len(ev.Bank(PartECal).Words) == 0 {
		t.Fatal("ecal bank empty for a dijet event")
	}
}

func TestDigitizeWordsSortedUnique(t *testing.T) {
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(1, se)
	for _, b := range ev.Banks {
		for i := 1; i < len(b.Words); i++ {
			if b.Words[i].Channel <= b.Words[i-1].Channel {
				t.Fatalf("bank %v not sorted/unique at %d", b.Partition, i)
			}
		}
		for _, w := range b.Words {
			if w.ADC == 0 {
				t.Fatalf("bank %v contains zero-ADC word", b.Partition)
			}
		}
	}
}

func TestEnergyCodec(t *testing.T) {
	cases := []float64{0, 0.019, 0.020, 1.0, 25.5, 1300, 1e9}
	for _, gev := range cases {
		adc := EncodeEnergy(gev)
		back := DecodeEnergy(adc)
		if gev > 1309 { // saturation ceiling (65535 * 0.020)
			if adc != math.MaxUint16 {
				t.Fatalf("no saturation at %v GeV", gev)
			}
			continue
		}
		if math.Abs(back-gev) > caloGeVPerCount/2+1e-9 {
			t.Fatalf("codec error at %v GeV: %v", gev, back)
		}
	}
	if EncodeEnergy(-5) != 0 {
		t.Fatal("negative energy must encode to 0")
	}
}

func TestEnergyCodecProperty(t *testing.T) {
	if err := quick.Check(func(raw float64) bool {
		gev := math.Abs(math.Mod(raw, 1000))
		if math.IsNaN(gev) {
			return true
		}
		return math.Abs(DecodeEnergy(EncodeEnergy(gev))-gev) <= caloGeVPerCount/2+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIORoundTrip(t *testing.T) {
	ses := simulatedEvents(t, 5)
	var events []*Event
	for _, se := range ses {
		events = append(events, Digitize(3, se))
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("event count %d != %d", len(got), len(events))
	}
	for i := range got {
		g, w := got[i], events[i]
		if g.Run != w.Run || g.Number != w.Number || len(g.Banks) != len(w.Banks) {
			t.Fatalf("event %d header mismatch", i)
		}
		for j := range g.Banks {
			if g.Banks[j].Partition != w.Banks[j].Partition {
				t.Fatalf("event %d bank %d partition", i, j)
			}
			if len(g.Banks[j].Words) != len(w.Banks[j].Words) {
				t.Fatalf("event %d bank %d word count", i, j)
			}
			for k := range g.Banks[j].Words {
				if g.Banks[j].Words[k] != w.Banks[j].Words[k] {
					t.Fatalf("event %d bank %d word %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestSizeBytesMatchesEncoding(t *testing.T) {
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(1, se)
	var buf bytes.Buffer
	if err := WriteEvent(&buf, ev); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != ev.SizeBytes() {
		t.Fatalf("SizeBytes %d != encoded %d", ev.SizeBytes(), buf.Len())
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(1, se)
	var buf bytes.Buffer
	if err := WriteEvent(&buf, ev); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit inside the first bank body (past the 18-byte header and
	// 6-byte bank header).
	data[30] ^= 0x01
	if _, err := ReadEvent(bytes.NewReader(data)); err == nil {
		t.Fatal("bit flip not detected")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadEvent(bytes.NewReader([]byte("garbage header...."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated mid-bank.
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(1, se)
	var buf bytes.Buffer
	_ = WriteEvent(&buf, ev)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadEvent(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated event accepted")
	}
	// Clean EOF must be io.EOF, not an error.
	if _, err := ReadEvent(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("clean EOF: %v", err)
	}
}

func TestNoTruthInRawData(t *testing.T) {
	// The provenance experiment (W3) depends on raw data carrying no MC
	// truth: digitization must be a pure function of channels and ADC.
	se := simulatedEvents(t, 1)[0]
	for i := range se.TrackerHits {
		se.TrackerHits[i].TrueBarcode = 12345
	}
	a := Digitize(1, se)
	for i := range se.TrackerHits {
		se.TrackerHits[i].TrueBarcode = 0
	}
	b := Digitize(1, se)
	var ba, bb bytes.Buffer
	_ = WriteEvent(&ba, a)
	_ = WriteEvent(&bb, b)
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("truth links leaked into raw encoding")
	}
}

func TestRawIsLargestTier(t *testing.T) {
	// Sanity anchor for experiment W1: a busy event's raw size is tens of
	// kilobytes, not bytes.
	se := simulatedEvents(t, 1)[0]
	ev := Digitize(1, se)
	if ev.SizeBytes() < 1000 {
		t.Fatalf("raw event suspiciously small: %d bytes", ev.SizeBytes())
	}
}

func BenchmarkDigitize(b *testing.B) {
	se := simulatedEvents(b, 1)[0]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Digitize(1, se)
	}
}

func BenchmarkWriteEvent(b *testing.B) {
	se := simulatedEvents(b, 1)[0]
	ev := Digitize(1, se)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteEvent(&buf, ev)
	}
}
