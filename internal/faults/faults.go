// Package faults is the deterministic fault injector behind the chaos
// tests: seed-driven error rates, latency, payload corruption, and
// N-failures-then-succeed schedules, exposed as wrappers around the CAS
// blob backend and the conditions resolver.
//
// Determinism is the point. The DPHEP framing of preservation as a
// sustained-operations problem means the failure drills themselves must be
// preservable: a chaos run is seeded through internal/xrand, so a failing
// schedule replays bit-identically in CI and on a laptop years later —
// the "routinely tested and shown to be effective" clause of the
// Appendix-A level-5 disaster-recovery rating, made executable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"daspos/internal/cas"
	"daspos/internal/conditions"
	"daspos/internal/resilience"
	"daspos/internal/xrand"
)

// ErrInjected is the root of every injected fault; injected errors are
// marked transient, since they model faults that heal (network blips,
// brown-outs, scratched reads that succeed on retry).
var ErrInjected = errors.New("faults: injected fault")

// Outcome is the injector's decision for one operation.
type Outcome struct {
	// Err, when non-nil, is the transient fault the operation must fail
	// with instead of running.
	Err error
	// Corrupt means the operation's payload should be bit-flipped.
	Corrupt bool
	// Latency is extra delay to impose before the operation proceeds.
	Latency time.Duration
}

// InjectorStats counts injected behaviour.
type InjectorStats struct {
	Ops         uint64
	Errors      uint64
	Corruptions uint64
}

// Injector decides, operation by operation, which faults to inject. All
// randomness flows from the seed, so a given (seed, op-sequence) pair
// always injects the same schedule. Safe for concurrent use; concurrency
// changes interleaving but tests that fix a single-goroutine op order are
// fully reproducible.
type Injector struct {
	mu          sync.Mutex
	rng         *xrand.Rand
	errorRate   float64
	corruptRate float64
	latency     time.Duration
	// latMin/latMax bound the uniform latency range (see WithLatencyRange);
	// when unset, the fixed latency applies.
	latMin, latMax time.Duration
	failN          map[string]int
	stats          InjectorStats
}

// NewInjector returns an injector with no faults configured, seeded for
// reproducibility.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: xrand.New(seed), failN: make(map[string]int)}
}

// WithErrorRate makes every operation fail with probability p.
func (in *Injector) WithErrorRate(p float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.errorRate = p
	return in
}

// WithCorruptRate makes every payload-bearing operation corrupt its bytes
// with probability p.
func (in *Injector) WithCorruptRate(p float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.corruptRate = p
	return in
}

// WithLatency imposes a fixed delay on every operation.
func (in *Injector) WithLatency(d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latency = d
	return in
}

// FailNext schedules the next n calls of the named operation to fail —
// the N-failures-then-succeed pattern breaker and retry tests drive.
func (in *Injector) FailNext(op string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failN[op] = n
}

// Decide returns the fault outcome for one named operation. The caller is
// responsible for imposing Outcome.Latency (context-aware where possible).
func (in *Injector) Decide(op string) Outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	out := Outcome{Latency: in.drawLatencyLocked()}
	if n := in.failN[op]; n > 0 {
		in.failN[op] = n - 1
		in.stats.Errors++
		out.Err = resilience.MarkTransient(fmt.Errorf("%w: %s (scheduled)", ErrInjected, op))
		return out
	}
	if in.errorRate > 0 && in.rng.Bool(in.errorRate) {
		in.stats.Errors++
		out.Err = resilience.MarkTransient(fmt.Errorf("%w: %s", ErrInjected, op))
		return out
	}
	if in.corruptRate > 0 && in.rng.Bool(in.corruptRate) {
		in.stats.Corruptions++
		out.Corrupt = true
	}
	return out
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// CorruptBytes returns a copy of b with one byte flipped (b itself is
// untouched). Empty input comes back empty.
func CorruptBytes(b []byte) []byte {
	cp := append([]byte(nil), b...)
	if len(cp) > 0 {
		cp[len(cp)/2] ^= 0xFF
	}
	return cp
}

// sleepCtx waits d or until the context dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FlakyBackend wraps a cas.Backend with fault injection: reads and writes
// can fail transiently or silently corrupt the bytes in flight — the
// flaky-disk / flaky-network model the CAS replica fallback is built to
// survive. Operation names for FailNext schedules: "put", "get".
type FlakyBackend struct {
	Inner cas.Backend
	Inj   *Injector
}

var _ cas.Backend = (*FlakyBackend)(nil)

// PutBlob implements cas.Backend with injected faults.
func (f *FlakyBackend) PutBlob(digest string, comp []byte, logical int64) error {
	out := f.Inj.Decide("put")
	if out.Latency > 0 {
		time.Sleep(out.Latency)
	}
	if out.Err != nil {
		return out.Err
	}
	if out.Corrupt {
		comp = CorruptBytes(comp)
	}
	return f.Inner.PutBlob(digest, comp, logical)
}

// GetBlob implements cas.Backend with injected faults.
func (f *FlakyBackend) GetBlob(digest string) ([]byte, int64, error) {
	out := f.Inj.Decide("get")
	if out.Latency > 0 {
		time.Sleep(out.Latency)
	}
	if out.Err != nil {
		return nil, 0, out.Err
	}
	comp, logical, err := f.Inner.GetBlob(digest)
	if err != nil {
		return nil, 0, err
	}
	if out.Corrupt {
		comp = CorruptBytes(comp)
	}
	return comp, logical, nil
}

// HasBlob implements cas.Backend (metadata ops stay reliable; the faults
// modelled here live on the data path).
func (f *FlakyBackend) HasBlob(digest string) bool { return f.Inner.HasBlob(digest) }

// DeleteBlob implements cas.Backend.
func (f *FlakyBackend) DeleteBlob(digest string) { f.Inner.DeleteBlob(digest) }

// Digests implements cas.Backend.
func (f *FlakyBackend) Digests() []string { return f.Inner.Digests() }

// CorruptBlob forwards deliberate corruption to the inner backend when it
// supports it, so chaos tests can combine injected flakiness with
// targeted bit rot.
func (f *FlakyBackend) CorruptBlob(digest string) error {
	c, ok := f.Inner.(cas.Corrupter)
	if !ok {
		return fmt.Errorf("faults: inner backend %T does not support corruption", f.Inner)
	}
	return c.CorruptBlob(digest)
}

// FlakyResolver wraps a conditions.Resolver with outages and latency — the
// conditions-service brown-out that ServiceClient degrades through.
// Operation name for FailNext schedules: "lookup".
type FlakyResolver struct {
	Inner conditions.Resolver
	Inj   *Injector
}

var _ conditions.Resolver = (*FlakyResolver)(nil)

// Lookup implements conditions.Resolver with injected faults. Injected
// latency respects the caller's deadline: a lookup slower than the
// ServiceClient timeout surfaces as context.DeadlineExceeded, exactly like
// a real stalled service.
func (f *FlakyResolver) Lookup(ctx context.Context, folder, tag string, run uint32) (conditions.Payload, error) {
	out := f.Inj.Decide("lookup")
	if err := sleepCtx(ctx, out.Latency); err != nil {
		return nil, err
	}
	if out.Err != nil {
		return nil, out.Err
	}
	return f.Inner.Lookup(ctx, folder, tag, run)
}
