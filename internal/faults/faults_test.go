package faults

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"daspos/internal/cas"
	"daspos/internal/conditions"
	"daspos/internal/resilience"
)

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewInjector(7).WithErrorRate(0.3)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, in.Decide("op").Err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	// 30% of 200 with generous slack.
	if fails < 30 || fails > 90 {
		t.Fatalf("error rate 0.3 injected %d/200 failures", fails)
	}
}

func TestFailNextSchedule(t *testing.T) {
	in := NewInjector(1)
	in.FailNext("get", 3)
	for i := 0; i < 3; i++ {
		out := in.Decide("get")
		if out.Err == nil {
			t.Fatalf("scheduled failure %d did not fire", i)
		}
		if !resilience.IsTransient(out.Err) {
			t.Fatal("injected fault not marked transient")
		}
		if !errors.Is(out.Err, ErrInjected) {
			t.Fatal("injected fault does not wrap ErrInjected")
		}
	}
	if in.Decide("get").Err != nil {
		t.Fatal("fault fired after the schedule was spent")
	}
	// Schedules are per-operation.
	in.FailNext("put", 1)
	if in.Decide("get").Err != nil {
		t.Fatal("put schedule leaked into get")
	}
	if in.Decide("put").Err == nil {
		t.Fatal("put schedule did not fire")
	}
}

func TestCorruptBytes(t *testing.T) {
	orig := []byte("pristine payload")
	cp := CorruptBytes(orig)
	if bytes.Equal(orig, cp) {
		t.Fatal("corruption was a no-op")
	}
	if string(orig) != "pristine payload" {
		t.Fatal("original mutated")
	}
	if len(CorruptBytes(nil)) != 0 {
		t.Fatal("empty input should stay empty")
	}
}

func TestFlakyBackendInjectsAndRecovers(t *testing.T) {
	inj := NewInjector(3)
	store := cas.NewStoreWith(&FlakyBackend{Inner: cas.NewMemBackend(), Inj: inj})
	d, err := store.Put([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNext("get", 2)
	if _, err := store.Get(d); err == nil {
		t.Fatal("injected get fault not surfaced")
	} else if !resilience.IsTransient(err) {
		t.Fatalf("backend fault lost its transient class through the store: %v", err)
	}
	if _, err := store.Get(d); err == nil {
		t.Fatal("second scheduled fault not surfaced")
	}
	data, err := store.Get(d)
	if err != nil {
		t.Fatalf("recovery read failed: %v", err)
	}
	if string(data) != "payload" {
		t.Fatalf("recovered wrong bytes: %q", data)
	}
}

func TestFlakyBackendCorruptionTripsFixity(t *testing.T) {
	inj := NewInjector(5).WithCorruptRate(1)
	store := cas.NewStoreWith(&FlakyBackend{Inner: cas.NewMemBackend(), Inj: inj})
	// Put corrupts in flight: the stored bytes are damaged, and the
	// fixity check catches it on read (turn corruption off for the read
	// so the read path itself is clean).
	d, err := store.Put([]byte("will rot in transit"))
	if err != nil {
		t.Fatal(err)
	}
	inj.WithCorruptRate(0)
	_, err = store.Get(d)
	if !errors.Is(err, cas.ErrCorrupt) {
		t.Fatalf("in-flight corruption not caught by fixity: %v", err)
	}
	var ce *cas.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("fixity failure is not a typed CorruptError: %v", err)
	}
}

func TestFlakyResolverLatencyHitsDeadline(t *testing.T) {
	db := conditions.NewDB()
	if err := db.Store("ecal/scale", "v1", conditions.IoV{First: 1, Last: 10},
		conditions.Payload{"scale": 1.01}); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(2).WithLatency(50 * time.Millisecond)
	flaky := &FlakyResolver{Inner: conditions.DBResolver{DB: db}, Inj: inj}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := flaky.Lookup(ctx, "ecal/scale", "v1", 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled lookup did not time out: %v", err)
	}
	// Without the stall, the lookup answers.
	inj.WithLatency(0)
	p, err := flaky.Lookup(context.Background(), "ecal/scale", "v1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p["scale"] != 1.01 {
		t.Fatalf("wrong payload: %v", p)
	}
}
