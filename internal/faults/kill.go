package faults

import (
	"bytes"
	"fmt"
	"os"
	"sync"
)

// Deterministic kill points: the process-death half of the fault model.
// The flaky wrappers in this package model operations that *fail and
// report it*; a kill models an operation that never returns at all — the
// OOM-kill, the power cut, the preempted batch node mid-fsync. A Killer
// counts instrumented instruction points (the checkpoint ledger's commit
// protocol exposes one per durable instruction) and, at the scheduled
// hit, panics with *Kill, unwinding the run exactly where a real SIGKILL
// would have stopped it. Crash-storm tests recover the panic at the top
// of the run, reopen the checkpoint directory, and resume — the in-test
// equivalent of restarting the pipeline binary.

// Kill is the panic value of an injected process death.
type Kill struct {
	// Point names the instrumented instruction that was executing.
	Point string
	// Hit is the 1-based global hit count at which the kill fired.
	Hit int
}

// Error renders the kill for logs; Kill travels as a panic value, not an
// error return, because a killed process returns nothing.
func (k *Kill) Error() string {
	return fmt.Sprintf("faults: killed at hit %d (%s)", k.Hit, k.Point)
}

// AsKill reports whether a recovered panic value is an injected kill.
// Any other panic should be re-raised by the caller.
func AsKill(r any) (*Kill, bool) {
	k, ok := r.(*Kill)
	return k, ok
}

// Killer schedules deterministic process deaths at instrumented
// instruction points. The zero schedule never fires, so a disarmed
// Killer doubles as a hit counter for sizing a crash storm. Safe for
// concurrent use.
type Killer struct {
	mu      sync.Mutex
	hits    int
	crashAt int            // global hit number to die at; 0 = disarmed
	atPoint map[string]int // per-point hit number to die at
}

// NewKiller returns a disarmed killer.
func NewKiller() *Killer {
	return &Killer{atPoint: make(map[string]int)}
}

// CrashAfterN arms the killer to die at the nth Hit from now, whatever
// point that lands on — the "kill the run at instruction N" schedule the
// crash storm sweeps. n < 1 disarms.
func (k *Killer) CrashAfterN(n int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n < 1 {
		k.crashAt = 0
		return
	}
	k.crashAt = k.hits + n
}

// CrashAtPoint arms the killer to die at the nth future hit of one named
// point (say the 2nd "journal.torn"), for targeted torn-write drills.
func (k *Killer) CrashAtPoint(point string, n int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n < 1 {
		delete(k.atPoint, point)
		return
	}
	k.atPoint[point] = n
}

// Hit registers one instrumented instruction. When the schedule says so,
// it panics with *Kill instead of returning — injected process death.
func (k *Killer) Hit(point string) {
	k.mu.Lock()
	k.hits++
	hit := k.hits
	die := k.crashAt != 0 && hit >= k.crashAt
	if n, ok := k.atPoint[point]; ok {
		if n <= 1 {
			delete(k.atPoint, point)
			die = true
		} else {
			k.atPoint[point] = n - 1
		}
	}
	if die {
		k.crashAt = 0
	}
	k.mu.Unlock()
	if die {
		panic(&Kill{Point: point, Hit: hit})
	}
}

// Hits returns the total instrumented instructions observed — run once
// disarmed to learn how many kill points a workload exposes.
func (k *Killer) Hits() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hits
}

// TruncateTail cuts the final n bytes off a file in place: the torn-write
// model for a crash that stopped an append mid-record.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faults: truncate tail: %w", err)
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// TearFinalRecord truncates a newline-delimited journal file so its last
// record survives only up to its midpoint, with no trailing newline —
// exactly what a crash halfway through the final append leaves behind.
// Replay must drop the torn record and keep everything before it.
func TearFinalRecord(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faults: tearing final record: %w", err)
	}
	// Strip the trailing newline, then find where the last record starts.
	end := len(data)
	for end > 0 && data[end-1] == '\n' {
		end--
	}
	if end == 0 {
		return fmt.Errorf("faults: %s has no record to tear", path)
	}
	start := bytes.LastIndexByte(data[:end], '\n') + 1
	torn := start + (end-start)/2
	return os.Truncate(path, int64(torn))
}
