package faults

import (
	"time"

	"daspos/internal/xrand"
)

// Read-path chaos shapes: a slow/flaky record-store wrapper for the query
// server's fill path, and a deterministic hot-skewed key schedule for
// stampede and cache drills. Seed-driven like the rest of the package, so
// a cache regression found under load replays bit-identically.

// KeyedStore is the shape of a read-path store, expressed generically so
// this package never imports queryserve (whose chaos tests import this
// one). Instantiated with hepdata's record type, SlowStore satisfies
// queryserve.RecordStore structurally.
type KeyedStore[R any] interface {
	Get(id string) (R, error)
}

// SlowStore wraps a record store with injector-driven latency and
// transient failures — the browned-out backing store the query cache's
// singleflight and negative-result handling are built around. Operation
// name for FailNext schedules: "get". Use as
// faults.SlowStore[*hepdata.Record].
type SlowStore[R any] struct {
	Inner KeyedStore[R]
	Inj   *Injector
}

// Get serves the read behind injected faults. Unlike the back-end
// wrapper there is no context: the read path bounds store time with the
// cache's coalescing, not per-request deadlines, so injected latency is
// served in full.
func (s *SlowStore[R]) Get(id string) (R, error) {
	out := s.Inj.Decide("get")
	if out.Latency > 0 {
		time.Sleep(out.Latency)
	}
	if out.Err != nil {
		var zero R
		return zero, out.Err
	}
	return s.Inner.Get(id)
}

// ReadShape describes one read-workload mix for the query server: a small
// hot set absorbing most lookups over a long cold tail — the skew that
// makes an LRU earn its keep and a stampede drill mean something.
type ReadShape struct {
	// HotKeys is the small set of keys the hot fraction draws from.
	HotKeys []string
	// ColdKeys is the long tail; cold reads draw uniformly from it.
	ColdKeys []string
	// HotFraction in [0,1] is the probability a read targets the hot set.
	// Values outside the range clamp.
	HotFraction float64
}

// ReadSchedule expands a shape into a deterministic key sequence of n
// reads. The same (seed, shape, n) always yields the identical sequence.
// Keys cycle within the hot set (round-robin through a shuffled order) so
// every hot key stays hot; cold keys are drawn uniformly with replacement.
// An empty hot or cold set sends its share of reads to the other.
func ReadSchedule(seed uint64, shape ReadShape, n int) []string {
	rng := xrand.New(seed)
	frac := shape.HotFraction
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	hot := append([]string(nil), shape.HotKeys...)
	for i := len(hot) - 1; i > 0; i-- {
		j := int(rng.Uint64n(uint64(i + 1)))
		hot[i], hot[j] = hot[j], hot[i]
	}
	out := make([]string, 0, n)
	hotAt := 0
	for i := 0; i < n; i++ {
		useHot := len(shape.ColdKeys) == 0 ||
			(len(hot) > 0 && float64(rng.Uint64n(1<<20))/float64(1<<20) < frac)
		if useHot && len(hot) > 0 {
			out = append(out, hot[hotAt%len(hot)])
			hotAt++
			continue
		}
		if len(shape.ColdKeys) == 0 {
			continue
		}
		out = append(out, shape.ColdKeys[rng.Uint64n(uint64(len(shape.ColdKeys)))])
	}
	return out
}
