package faults

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

type mapStore map[string]string

func (m mapStore) Get(id string) (string, error) {
	v, ok := m[id]
	if !ok {
		return "", errors.New("missing")
	}
	return v, nil
}

func TestSlowStore(t *testing.T) {
	inner := mapStore{"a": "alpha"}
	inj := NewInjector(3).WithLatency(5 * time.Millisecond)
	s := &SlowStore[string]{Inner: inner, Inj: inj}

	start := time.Now()
	v, err := s.Get("a")
	if err != nil || v != "alpha" {
		t.Fatalf("get: %q %v", v, err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency not injected")
	}
	inj.FailNext("get", 1)
	if _, err := s.Get("a"); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if v, err := s.Get("a"); err != nil || v != "alpha" {
		t.Fatalf("store did not recover: %q %v", v, err)
	}
}

func TestReadScheduleDeterministic(t *testing.T) {
	shape := ReadShape{
		HotKeys:     []string{"h1", "h2", "h3"},
		ColdKeys:    []string{"c1", "c2", "c3", "c4", "c5", "c6"},
		HotFraction: 0.8,
	}
	a := ReadSchedule(42, shape, 500)
	b := ReadSchedule(42, shape, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 500 {
		t.Fatalf("schedule length %d", len(a))
	}
	c := ReadSchedule(43, shape, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The skew lands near the requested fraction.
	hot := map[string]bool{"h1": true, "h2": true, "h3": true}
	nhot := 0
	for _, k := range a {
		if hot[k] {
			nhot++
		}
	}
	if nhot < 350 || nhot > 450 {
		t.Fatalf("hot reads %d of 500, want near 400", nhot)
	}
	// Every hot key participates: the round-robin keeps the whole set warm.
	seen := map[string]int{}
	for _, k := range a {
		seen[k]++
	}
	for k := range hot {
		if seen[k] == 0 {
			t.Fatalf("hot key %s never scheduled", k)
		}
	}
}

func TestReadScheduleDegenerate(t *testing.T) {
	if got := ReadSchedule(1, ReadShape{HotKeys: []string{"h"}, HotFraction: 0.1}, 10); len(got) != 10 {
		t.Fatalf("hot-only schedule: %v", got)
	} else {
		for _, k := range got {
			if k != "h" {
				t.Fatalf("hot-only drew %q", k)
			}
		}
	}
	cold := ReadSchedule(1, ReadShape{ColdKeys: []string{"c1", "c2"}, HotFraction: 0.9}, 20)
	if len(cold) != 20 {
		t.Fatalf("cold-only length %d", len(cold))
	}
	if got := ReadSchedule(1, ReadShape{}, 5); len(got) != 0 {
		t.Fatalf("empty shape scheduled %v", got)
	}
}
