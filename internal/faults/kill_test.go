package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hitUntilKilled drives the killer and reports how many hits ran before
// the injected death (0 if it never fired within limit).
func hitUntilKilled(k *Killer, limit int) (diedAt int, point string) {
	defer func() {
		if r := recover(); r != nil {
			kill, ok := AsKill(r)
			if !ok {
				panic(r)
			}
			diedAt = kill.Hit
			point = kill.Point
		}
	}()
	for i := 0; i < limit; i++ {
		k.Hit("op-" + string(rune('a'+i%3)))
	}
	return 0, ""
}

func TestKillerCrashAfterN(t *testing.T) {
	k := NewKiller()
	k.CrashAfterN(5)
	diedAt, _ := hitUntilKilled(k, 100)
	if diedAt != 5 {
		t.Fatalf("died at hit %d, want 5", diedAt)
	}
	if k.Hits() != 5 {
		t.Fatalf("hits = %d, want 5", k.Hits())
	}
	// The schedule is one-shot: the survivor keeps running.
	if diedAt, _ := hitUntilKilled(k, 50); diedAt != 0 {
		t.Fatalf("disarmed killer fired again at %d", diedAt)
	}
}

func TestKillerCrashAfterNCountsFromNow(t *testing.T) {
	k := NewKiller()
	for i := 0; i < 7; i++ {
		k.Hit("warmup")
	}
	k.CrashAfterN(3)
	diedAt, _ := hitUntilKilled(k, 50)
	if diedAt != 10 {
		t.Fatalf("died at global hit %d, want 10 (7 warmup + 3)", diedAt)
	}
}

func TestKillerCrashAtPoint(t *testing.T) {
	k := NewKiller()
	k.CrashAtPoint("op-b", 2)
	diedAt, point := hitUntilKilled(k, 100)
	if point != "op-b" {
		t.Fatalf("died at point %q, want op-b", point)
	}
	// op sequence cycles a,b,c: the 2nd op-b is global hit 5.
	if diedAt != 5 {
		t.Fatalf("died at hit %d, want 5", diedAt)
	}
}

func TestKillerDisarmedCounts(t *testing.T) {
	k := NewKiller()
	if diedAt, _ := hitUntilKilled(k, 42); diedAt != 0 {
		t.Fatalf("disarmed killer fired at %d", diedAt)
	}
	if k.Hits() != 42 {
		t.Fatalf("hits = %d, want 42", k.Hits())
	}
}

func TestTruncateTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(path, 4); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "012345" {
		t.Fatalf("after truncate: %q", data)
	}
	// Truncating more than the file holds empties it rather than failing.
	if err := TruncateTail(path, 100); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) != 0 {
		t.Fatalf("over-truncate left %q", data)
	}
}

func TestTearFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	lines := "{\"first\":1}\n{\"second\":2}\n{\"third-record\":3}\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFinalRecord(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	got := string(data)
	if !strings.HasPrefix(got, "{\"first\":1}\n{\"second\":2}\n") {
		t.Fatalf("earlier records damaged: %q", got)
	}
	tail := strings.TrimPrefix(got, "{\"first\":1}\n{\"second\":2}\n")
	if tail == "" || strings.Contains(tail, "\n") {
		t.Fatalf("final record not torn mid-line: %q", tail)
	}
	if len(tail) >= len("{\"third-record\":3}") {
		t.Fatalf("final record not shortened: %q", tail)
	}

	// An empty journal has nothing to tear.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFinalRecord(empty); err == nil {
		t.Fatal("tearing an empty journal succeeded")
	}
}
