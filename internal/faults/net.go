package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"daspos/internal/resilience"
	"daspos/internal/xrand"
)

// Network-level fault injection for the preservation cluster: partitions
// (a host is unreachable until healed), slow nodes (seeded latency
// distributions), 5xx storms (the node answers, but with server errors),
// and corrupt-on-the-wire replica reads. All randomness flows from the
// injector seed, so a cluster chaos schedule replays bit-identically.

// NetOutcome is the injector's decision for one request to one host.
type NetOutcome struct {
	// Drop means the host is partitioned away: the request must fail
	// without reaching it.
	Drop bool
	// Latency is extra delay to impose before the request proceeds.
	Latency time.Duration
	// Storm means the request must be answered with a synthesized 5xx
	// instead of reaching the host.
	Storm bool
	// Corrupt means a blob body in the response should be bit-flipped.
	Corrupt bool
}

// NetStats counts injected network behaviour.
type NetStats struct {
	Requests    uint64
	Dropped     uint64
	Delayed     uint64
	Storms      uint64
	Corruptions uint64
}

// SlowSpec is a per-host latency distribution: every request to the host
// waits Base plus a uniform draw in [0, Jitter) from the seeded stream.
type SlowSpec struct {
	Base   time.Duration
	Jitter time.Duration
}

// NetInjector decides, request by request, which network faults to inject.
// Safe for concurrent use; with a single-goroutine request order the
// decision sequence is fully deterministic for a given seed.
type NetInjector struct {
	mu          sync.Mutex
	rng         *xrand.Rand
	partitioned map[string]bool
	slow        map[string]SlowSpec
	errorRate   float64
	corruptRate float64
	stats       NetStats
}

// NewNetInjector returns an injector with no faults configured, seeded for
// reproducibility.
func NewNetInjector(seed uint64) *NetInjector {
	return &NetInjector{
		rng:         xrand.New(seed),
		partitioned: make(map[string]bool),
		slow:        make(map[string]SlowSpec),
	}
}

// WithErrorRate makes every request answer with a synthesized 5xx with
// probability p — the error-storm mode.
func (n *NetInjector) WithErrorRate(p float64) *NetInjector {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.errorRate = p
	return n
}

// WithCorruptRate makes every blob-bearing response corrupt its bytes with
// probability p — the lying-replica mode read paths must survive.
func (n *NetInjector) WithCorruptRate(p float64) *NetInjector {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.corruptRate = p
	return n
}

// Partition makes the given hosts unreachable until healed.
func (n *NetInjector) Partition(hosts ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range hosts {
		n.partitioned[h] = true
	}
}

// Heal reconnects the given hosts.
func (n *NetInjector) Heal(hosts ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range hosts {
		delete(n.partitioned, h)
	}
}

// HealAll reconnects every partitioned host and clears every slow spec —
// the storm passing.
func (n *NetInjector) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned = make(map[string]bool)
	n.slow = make(map[string]SlowSpec)
}

// Partitioned reports whether a host is currently unreachable.
func (n *NetInjector) Partitioned(host string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[host]
}

// SetSlow imposes a latency distribution on one host.
func (n *NetInjector) SetSlow(host string, spec SlowSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slow[host] = spec
}

// ClearSlow removes a host's latency distribution.
func (n *NetInjector) ClearSlow(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.slow, host)
}

// Decide returns the fault outcome for one request to one host. The caller
// imposes Latency (context-aware), then honours Drop/Storm/Corrupt.
func (n *NetInjector) Decide(host string) NetOutcome {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Requests++
	out := NetOutcome{}
	if n.partitioned[host] {
		n.stats.Dropped++
		out.Drop = true
		return out
	}
	if spec, ok := n.slow[host]; ok {
		out.Latency = spec.Base
		if spec.Jitter > 0 {
			out.Latency += time.Duration(n.rng.Float64() * float64(spec.Jitter))
		}
		if out.Latency > 0 {
			n.stats.Delayed++
		}
	}
	if n.errorRate > 0 && n.rng.Bool(n.errorRate) {
		n.stats.Storms++
		out.Storm = true
		return out
	}
	if n.corruptRate > 0 && n.rng.Bool(n.corruptRate) {
		n.stats.Corruptions++
		out.Corrupt = true
	}
	return out
}

// NetStats snapshots the injection counters.
func (n *NetInjector) NetStats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Transport wraps an http.RoundTripper with network fault injection, keyed
// by target host — the chaos harness the cluster client is driven through.
// Partitions surface as transient transport errors (wrapping ErrInjected),
// storms as synthesized 503 responses, and wire corruption bit-flips blob
// GET bodies only, so the fault models a damaged replica stream rather
// than unparseable control traffic.
type Transport struct {
	// Inner performs the real request; nil means http.DefaultTransport.
	Inner http.RoundTripper
	// Inj decides the faults.
	Inj *NetInjector
}

var _ http.RoundTripper = (*Transport)(nil)

// RoundTrip implements http.RoundTripper with injected network faults.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	out := t.Inj.Decide(host)
	if err := sleepCtx(req.Context(), out.Latency); err != nil {
		return nil, err
	}
	if out.Drop {
		return nil, resilience.MarkTransient(fmt.Errorf("%w: partitioned from %s", ErrInjected, host))
	}
	if out.Storm {
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader("faults: injected 5xx storm")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if out.Corrupt && resp.StatusCode == http.StatusOK &&
		req.Method == http.MethodGet && strings.Contains(req.URL.Path, "/blobs/") {
		body, rerr := io.ReadAll(resp.Body)
		cerr := resp.Body.Close()
		if rerr != nil || cerr != nil {
			// The body is already consumed; surface a transient transport
			// failure rather than an empty 200.
			return nil, resilience.MarkTransient(fmt.Errorf("%w: draining body for corruption: %w", ErrInjected, errors.Join(rerr, cerr)))
		}
		resp.Body = io.NopCloser(bytes.NewReader(CorruptBytes(body)))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}
