package faults

import (
	"context"
	"reflect"
	"testing"
	"time"

	"daspos/internal/leshouches"
)

// tmodel/tresult stand in for recast's ModelSpec/Result: SlowBackend is
// generic exactly so this package (and its tests) need no recast import.
type tmodel struct{ Events int }

type tresult struct{ Generated int }

type countingBackend struct {
	calls int
}

func (c *countingBackend) Process(ctx context.Context, model tmodel, record *leshouches.AnalysisRecord) (*tresult, error) {
	c.calls++
	return &tresult{Generated: model.Events}, nil
}

func (c *countingBackend) Name() string { return "counting" }

func (c *countingBackend) ConfigDigest() string { return "counting-v1" }

func TestSlowBackendInjectsLatencyAndFaults(t *testing.T) {
	inner := &countingBackend{}
	inj := NewInjector(7).WithLatencyRange(time.Millisecond, 5*time.Millisecond)
	sb := &SlowBackend[tmodel, *tresult]{Inner: inner, Inj: inj}

	start := time.Now()
	if _, err := sb.Process(context.Background(), tmodel{Events: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("no latency injected: %v", elapsed)
	}
	if inner.calls != 1 {
		t.Fatalf("inner ran %d times, want 1", inner.calls)
	}

	// A scheduled fault fails without reaching the chain.
	inj.FailNext("process", 1)
	if _, err := sb.Process(context.Background(), tmodel{}, nil); err == nil {
		t.Fatal("scheduled fault not injected")
	}
	if inner.calls != 1 {
		t.Fatal("inner ran behind an injected fault")
	}

	// Latency respects the request deadline: a dead context surfaces as
	// its error, and the chain never runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sb.Process(ctx, tmodel{}, nil); err != context.Canceled {
		t.Fatalf("cancelled process = %v, want context.Canceled", err)
	}
	if inner.calls != 1 {
		t.Fatal("inner ran under a dead context")
	}

	if got := sb.ConfigDigest(); got != "counting-v1" {
		t.Fatalf("ConfigDigest not forwarded: %q", got)
	}
}

func TestWithLatencyRangeBounds(t *testing.T) {
	inj := NewInjector(3).WithLatencyRange(2*time.Millisecond, 9*time.Millisecond)
	for i := 0; i < 200; i++ {
		out := inj.Decide("op")
		if out.Latency < 2*time.Millisecond || out.Latency > 9*time.Millisecond {
			t.Fatalf("latency %v outside [2ms, 9ms]", out.Latency)
		}
	}
	// A degenerate range is a fixed delay.
	fixed := NewInjector(3).WithLatencyRange(4*time.Millisecond, 4*time.Millisecond)
	if out := fixed.Decide("op"); out.Latency != 4*time.Millisecond {
		t.Fatalf("degenerate range latency = %v, want 4ms", out.Latency)
	}
}

func TestMixedTenantScheduleShapes(t *testing.T) {
	shapes := []TenantShape{
		{Tenant: "flood", Requests: 40}, // MeanGap 0: all at once
		{Tenant: "alice", Requests: 10, MeanGap: 10 * time.Millisecond, DedupEvery: 5},
		{Tenant: "bob", Requests: 6, MeanGap: 20 * time.Millisecond, Burst: 3},
	}
	sched := MixedTenantSchedule(42, shapes)
	if len(sched) != 56 {
		t.Fatalf("schedule has %d arrivals, want 56", len(sched))
	}

	// Determinism: the same (seed, shapes) yields the identical timeline.
	if again := MixedTenantSchedule(42, shapes); !reflect.DeepEqual(sched, again) {
		t.Fatal("schedule not reproducible for a fixed seed")
	}
	if other := MixedTenantSchedule(43, shapes); reflect.DeepEqual(sched, other) {
		t.Fatal("seed does not influence the schedule")
	}

	perTenant := map[string][]Arrival{}
	for i := 1; i < len(sched); i++ {
		if sched[i].At < sched[i-1].At {
			t.Fatal("schedule not sorted by offset")
		}
	}
	for _, a := range sched {
		perTenant[a.Tenant] = append(perTenant[a.Tenant], a)
	}

	// The flooder arrives in one burst at t=0.
	for _, a := range perTenant["flood"] {
		if a.At != 0 {
			t.Fatalf("flood arrival at %v, want 0", a.At)
		}
	}
	// Gaps are bounded around the mean: each of alice's inter-arrival gaps
	// lies in [MeanGap/2, 3*MeanGap/2].
	alice := perTenant["alice"]
	for i := 1; i < len(alice); i++ {
		gap := alice[i].At - alice[i-1].At
		if gap < 5*time.Millisecond || gap > 15*time.Millisecond {
			t.Fatalf("alice gap %v outside [5ms, 15ms]", gap)
		}
	}
	// DedupEvery=5 over 10 requests repeats the first seed twice (i=0, 5):
	// exactly one duplicate pair.
	seeds := map[uint64]int{}
	for _, a := range alice {
		seeds[a.ModelSeed]++
	}
	if seeds[alice[0].ModelSeed] != 2 {
		t.Fatalf("dedup seed repeated %d times, want 2", seeds[alice[0].ModelSeed])
	}
	// Bursts of 3 share an instant: bob has exactly 2 distinct offsets.
	offsets := map[time.Duration]int{}
	for _, a := range perTenant["bob"] {
		offsets[a.At]++
	}
	if len(offsets) != 2 {
		t.Fatalf("bob's burst-3 schedule has %d instants, want 2", len(offsets))
	}
	for at, n := range offsets {
		if n != 3 {
			t.Fatalf("burst at %v has %d arrivals, want 3", at, n)
		}
	}
}
