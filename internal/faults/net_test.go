package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"daspos/internal/resilience"
)

func TestPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	inj := NewNetInjector(7)
	client := &http.Client{Transport: &Transport{Inj: inj}}

	// Reachable before the partition.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("pre-partition request: %v", err)
	}
	resp.Body.Close()

	inj.Partition(host)
	if !inj.Partitioned(host) {
		t.Fatal("Partitioned not reporting the cut")
	}
	_, err = client.Get(srv.URL)
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partition error does not wrap ErrInjected: %v", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("partition error not transient: %v", err)
	}

	// Heal: traffic flows again.
	inj.Heal(host)
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-heal request: %v", err)
	}
	resp.Body.Close()

	st := inj.NetStats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

// TestSlowNodeLatencyDeterminism pins that a fixed seed yields an
// identical latency sequence: the slow-node distribution is replayable.
func TestSlowNodeLatencyDeterminism(t *testing.T) {
	sample := func(seed uint64) []time.Duration {
		inj := NewNetInjector(seed)
		inj.SetSlow("a:1", SlowSpec{Base: time.Millisecond, Jitter: 4 * time.Millisecond})
		var out []time.Duration
		for i := 0; i < 64; i++ {
			out = append(out, inj.Decide("a:1").Latency)
		}
		return out
	}

	a, b := sample(42), sample(42)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d diverges under the same seed: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] >= 5*time.Millisecond {
			t.Fatalf("latency %d = %v outside [base, base+jitter)", i, a[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("latency sequence is constant; jitter not applied")
	}

	c := sample(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical latency sequence")
	}
}

func TestSlowClearAndHealAll(t *testing.T) {
	inj := NewNetInjector(1)
	inj.SetSlow("a:1", SlowSpec{Base: time.Millisecond})
	if inj.Decide("a:1").Latency == 0 {
		t.Fatal("slow spec ignored")
	}
	inj.ClearSlow("a:1")
	if inj.Decide("a:1").Latency != 0 {
		t.Fatal("ClearSlow did not clear")
	}
	inj.Partition("b:1")
	inj.SetSlow("c:1", SlowSpec{Base: time.Millisecond})
	inj.HealAll()
	if inj.Decide("b:1").Drop || inj.Decide("c:1").Latency != 0 {
		t.Fatal("HealAll left faults behind")
	}
}

func TestStormSynthesizes5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("storm request reached the server")
	}))
	defer srv.Close()

	inj := NewNetInjector(3).WithErrorRate(1)
	client := &http.Client{Transport: &Transport{Inj: inj}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("storm should answer, not error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("storm status %d, want 503", resp.StatusCode)
	}
	if st := inj.NetStats(); st.Storms != 1 {
		t.Fatalf("storms = %d, want 1", st.Storms)
	}
}

func TestCorruptOnTheWireHitsBlobReadsOnly(t *testing.T) {
	payload := []byte("replica bytes that must arrive intact or visibly broken")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer srv.Close()

	inj := NewNetInjector(5).WithCorruptRate(1)
	client := &http.Client{Transport: &Transport{Inj: inj}}

	// A blob read is corrupted...
	resp, err := client.Get(srv.URL + "/v1/blobs/abc123")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) == string(payload) {
		t.Fatal("blob body arrived intact despite corrupt rate 1")
	}

	// ...but control traffic is left alone.
	resp, err = client.Get(srv.URL + "/v1/digests")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != string(payload) {
		t.Fatal("control-plane body was corrupted")
	}
}
