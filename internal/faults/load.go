package faults

import (
	"context"
	"sort"
	"time"

	"daspos/internal/leshouches"
	"daspos/internal/xrand"
)

// Load shapes for the multi-tenant RECAST chaos drills: a slow/flaky
// back-end wrapper and a deterministic mixed-tenant arrival schedule. Like
// everything in this package, both are seed-driven so an overload run that
// starved a tenant or lost a request replays bit-identically.

// ProcessBackend is the shape of a recast back end, expressed generically
// so this package never imports recast (whose own chaos tests import this
// one — a named import would cycle). Instantiated with recast's types,
// SlowBackend satisfies recast.Backend structurally.
type ProcessBackend[M, R any] interface {
	Name() string
	Process(ctx context.Context, model M, record *leshouches.AnalysisRecord) (R, error)
}

// SlowBackend wraps a reinterpretation back end with injector-driven
// latency and transient failures — the browned-out chain the server's
// breaker and degraded mode are built around. Injected latency respects
// the request's deadline, so a stalled run surfaces as
// context.DeadlineExceeded exactly like a real wedged chain. Operation
// name for FailNext schedules: "process". Use as
// faults.SlowBackend[recast.ModelSpec, *recast.Result].
type SlowBackend[M, R any] struct {
	Inner ProcessBackend[M, R]
	Inj   *Injector
}

// Name forwards the inner chain's name, since the wrapper changes
// timing, not identity.
func (s *SlowBackend[M, R]) Name() string { return s.Inner.Name() }

// Process runs the inner back end behind injected faults.
func (s *SlowBackend[M, R]) Process(ctx context.Context, model M, record *leshouches.AnalysisRecord) (R, error) {
	out := s.Inj.Decide("process")
	if err := sleepCtx(ctx, out.Latency); err != nil {
		var zero R
		return zero, err
	}
	if out.Err != nil {
		var zero R
		return zero, out.Err
	}
	return s.Inner.Process(ctx, model, record)
}

// ConfigDigest forwards the inner chain's configuration digest when it has
// one: injected faults change timing, never physics, so a slow back-end
// must not split the dedup key space.
func (s *SlowBackend[M, R]) ConfigDigest() string {
	if d, ok := s.Inner.(interface{ ConfigDigest() string }); ok {
		return d.ConfigDigest()
	}
	return ""
}

// WithLatencyRange imposes a uniformly drawn delay in [min, max] on every
// operation instead of a fixed one — the long-tail service-time model that
// makes fairness and deadline tests honest. max < min is treated as a
// fixed delay of min.
func (in *Injector) WithLatencyRange(min, max time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latMin, in.latMax = min, max
	return in
}

// drawLatencyLocked picks this operation's delay: the configured range
// when one is set, else the fixed latency.
func (in *Injector) drawLatencyLocked() time.Duration {
	if in.latMax > in.latMin {
		return in.latMin + time.Duration(in.rng.Uint64n(uint64(in.latMax-in.latMin)+1))
	}
	if in.latMin > 0 {
		return in.latMin
	}
	return in.latency
}

// TenantShape describes one tenant's traffic in a mixed-tenant run.
type TenantShape struct {
	// Tenant names the requester.
	Tenant string
	// Requests is how many submissions the tenant makes in total.
	Requests int
	// MeanGap is the average spacing between bursts; actual gaps are drawn
	// uniformly in [MeanGap/2, 3*MeanGap/2]. Zero means back-to-back — a
	// flooder.
	MeanGap time.Duration
	// Burst is how many submissions arrive together at each burst instant;
	// values < 1 behave as 1 (a steady stream).
	Burst int
	// DedupEvery, when > 0, makes every n-th submission reuse the tenant's
	// first model seed, so the run exercises the archive-answer path.
	DedupEvery int
}

// Arrival is one scheduled submission.
type Arrival struct {
	// Tenant is the requester to submit as.
	Tenant string
	// At is the offset from the start of the run.
	At time.Duration
	// ModelSeed parameterizes the submitted model; repeated seeds within a
	// tenant are deliberate dedup hits.
	ModelSeed uint64
}

// MixedTenantSchedule expands tenant shapes into a single arrival
// timeline, sorted by offset (ties broken by tenant then seed, so the
// order is total and reproducible). The same (seed, shapes) pair always
// yields the identical schedule — a starvation found in CI replays on a
// laptop.
func MixedTenantSchedule(seed uint64, shapes []TenantShape) []Arrival {
	var out []Arrival
	for si, sh := range shapes {
		rng := xrand.New(seed ^ uint64(si+1)*0x9e3779b97f4a7c15)
		burst := sh.Burst
		if burst < 1 {
			burst = 1
		}
		firstSeed := rng.Uint64()
		at := time.Duration(0)
		for i := 0; i < sh.Requests; i++ {
			if i > 0 && i%burst == 0 && sh.MeanGap > 0 {
				half := uint64(sh.MeanGap) / 2
				at += time.Duration(half + rng.Uint64n(2*half+1))
			}
			ms := rng.Uint64()
			if i == 0 || (sh.DedupEvery > 0 && i%sh.DedupEvery == 0) {
				ms = firstSeed
			}
			out = append(out, Arrival{Tenant: sh.Tenant, At: at, ModelSeed: ms})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].ModelSeed < out[j].ModelSeed
	})
	return out
}
