// Package core implements the DASPOS analysis capsule: the project's
// central artifact, binding together everything the paper says a properly
// curated preserved analysis needs — the machine-readable analysis record
// (object definitions, cuts, statistics inputs), the archived reference
// data it was validated against, the captured software environment, the
// provenance chain of the data it was derived from, and the workflow
// description that produced it.
//
// A capsule round-trips through the preservation archive as a
// fixity-checked package, and everything needed to reuse it decades later
// is resolvable from the capsule alone: Reinterpret applies the archived
// selection to new events, Validate re-checks a fresh run against the
// reference data, and CheckEnvironment answers whether the heavyweight
// tier still runs on today's platform.
package core

import (
	"bytes"
	"errors"
	"fmt"

	"daspos/internal/archive"
	"daspos/internal/datamodel"
	"daspos/internal/envcapture"
	"daspos/internal/hist"
	"daspos/internal/leshouches"
	"daspos/internal/provenance"
	"daspos/internal/stats"
)

// Canonical paths inside an archived capsule package.
const (
	PathAnalysis    = "analysis/record.json"
	PathReference   = "analysis/reference.yoda"
	PathEnvironment = "env/manifest.json"
	PathProvenance  = "prov/chain.json"
	PathWorkflow    = "workflow/description.json"
	PathReadme      = "README.md"
)

// Capsule is one complete preserved analysis.
type Capsule struct {
	// Title, Creator, and Description populate the archive metadata.
	Title       string
	Creator     string
	Description string
	// ConditionsTag pins the calibration the original processing used.
	ConditionsTag string
	// Analysis is the machine-readable analysis record.
	Analysis *leshouches.AnalysisRecord
	// Reference is the archived reference data (YODA text), used to
	// validate re-runs.
	Reference []byte
	// Environment is the captured software environment, when recorded.
	Environment *envcapture.Manifest
	// Provenance is the chain of the data products, when recorded.
	Provenance *provenance.Store
	// Workflow is the preserved workflow description (JSON), when
	// recorded.
	Workflow []byte
	// Readme is the human-facing documentation.
	Readme string
}

// Validate checks the capsule has its required parts.
func (c *Capsule) Validate() error {
	if c.Title == "" {
		return fmt.Errorf("core: capsule needs a title")
	}
	if c.Analysis == nil {
		return fmt.Errorf("core: capsule %q has no analysis record", c.Title)
	}
	if err := c.Analysis.Validate(); err != nil {
		return err
	}
	if len(c.Reference) == 0 {
		return fmt.Errorf("core: capsule %q has no reference data", c.Title)
	}
	if _, err := hist.ReadAll(bytes.NewReader(c.Reference)); err != nil {
		return fmt.Errorf("core: capsule %q reference data unreadable: %w", c.Title, err)
	}
	return nil
}

// Files serializes the capsule's parts into archive payload files.
func (c *Capsule) Files() (map[string][]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	files := make(map[string][]byte)
	rec, err := c.Analysis.Encode()
	if err != nil {
		return nil, err
	}
	files[PathAnalysis] = rec
	files[PathReference] = append([]byte(nil), c.Reference...)
	if c.Environment != nil {
		env, err := c.Environment.Encode()
		if err != nil {
			return nil, err
		}
		files[PathEnvironment] = env
	}
	if c.Provenance != nil {
		var buf bytes.Buffer
		if err := c.Provenance.WriteJSON(&buf); err != nil {
			return nil, err
		}
		files[PathProvenance] = buf.Bytes()
	}
	if len(c.Workflow) > 0 {
		files[PathWorkflow] = append([]byte(nil), c.Workflow...)
	}
	readme := c.Readme
	if readme == "" {
		readme = fmt.Sprintf("# %s\n\n%s\n\nPreserved with DASPOS; see %s for the analysis record.\n",
			c.Title, c.Description, PathAnalysis)
	}
	files[PathReadme] = []byte(readme)
	return files, nil
}

// Ingest stores the capsule in a preservation archive and returns the
// package ID.
func (c *Capsule) Ingest(a *archive.Archive) (string, error) {
	files, err := c.Files()
	if err != nil {
		return "", err
	}
	meta := archive.Metadata{
		Title:         c.Title,
		Creator:       c.Creator,
		Description:   c.Description,
		Level:         datamodel.DPHEPLevel3,
		ConditionsTag: c.ConditionsTag,
		Keywords:      []string{"daspos-capsule", c.Analysis.Name},
	}
	if _, ok := files[PathEnvironment]; ok {
		meta.EnvManifest = PathEnvironment
	}
	if _, ok := files[PathProvenance]; ok {
		meta.Provenance = PathProvenance
	}
	return a.Ingest(meta, files)
}

// ErrNotCapsule is returned when loading a package that is not a capsule.
var ErrNotCapsule = errors.New("core: package is not a daspos capsule")

// FromArchive reconstructs a capsule from an archived package.
func FromArchive(a *archive.Archive, id string) (*Capsule, error) {
	pkg, ok := a.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: no package %s", id)
	}
	if pkg.File(PathAnalysis) == nil || pkg.File(PathReference) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotCapsule, id)
	}
	c := &Capsule{
		Title:         pkg.Metadata.Title,
		Creator:       pkg.Metadata.Creator,
		Description:   pkg.Metadata.Description,
		ConditionsTag: pkg.Metadata.ConditionsTag,
	}
	recData, err := a.Fetch(id, PathAnalysis)
	if err != nil {
		return nil, err
	}
	rec, err := leshouches.DecodeRecord(recData)
	if err != nil {
		return nil, err
	}
	c.Analysis = rec
	if c.Reference, err = a.Fetch(id, PathReference); err != nil {
		return nil, err
	}
	if pkg.File(PathEnvironment) != nil {
		data, err := a.Fetch(id, PathEnvironment)
		if err != nil {
			return nil, err
		}
		if c.Environment, err = envcapture.Decode(data); err != nil {
			return nil, err
		}
	}
	if pkg.File(PathProvenance) != nil {
		data, err := a.Fetch(id, PathProvenance)
		if err != nil {
			return nil, err
		}
		if c.Provenance, err = provenance.ReadJSON(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	if pkg.File(PathWorkflow) != nil {
		if c.Workflow, err = a.Fetch(id, PathWorkflow); err != nil {
			return nil, err
		}
	}
	if pkg.File(PathReadme) != nil {
		data, err := a.Fetch(id, PathReadme)
		if err != nil {
			return nil, err
		}
		c.Readme = string(data)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Reinterpret applies the capsule's archived selection to new-model events
// (the theorist use case) at the given integrated luminosity in /pb.
func (c *Capsule) Reinterpret(events []*datamodel.Event, luminosityPb float64) (leshouches.Reinterpretation, error) {
	return leshouches.Reinterpret(c.Analysis, events, luminosityPb)
}

// ValidationOutcome compares one fresh histogram against the capsule's
// reference.
type ValidationOutcome struct {
	Histogram string
	Chi2      stats.Chi2Result
	// MissingReference marks histograms absent from the reference data.
	MissingReference bool
}

// ValidateRerun shape-compares freshly produced histograms against the
// capsule's archived reference data: the "re-run at any time ... for
// validation purposes" property.
func (c *Capsule) ValidateRerun(fresh []*hist.H1D) ([]ValidationOutcome, error) {
	refs, err := hist.ReadAll(bytes.NewReader(c.Reference))
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*hist.H1D, len(refs))
	for _, h := range refs {
		byName[h.Name] = h
	}
	var out []ValidationOutcome
	for _, h := range fresh {
		ref, ok := byName[h.Name]
		if !ok {
			out = append(out, ValidationOutcome{Histogram: h.Name, MissingReference: true})
			continue
		}
		a := h.Clone()
		b := ref.Clone()
		a.Normalize(1)
		b.Normalize(1)
		res, err := stats.Chi2WithErrors(a.Values(), a.Errors(), b.Values(), b.Errors())
		if err != nil {
			return nil, err
		}
		out = append(out, ValidationOutcome{Histogram: h.Name, Chi2: res})
	}
	return out, nil
}

// CheckEnvironment plans the capsule's migration to a target platform:
// whether the heavyweight tier still runs, and what must be upgraded.
// It fails when the capsule carries no environment manifest — exactly the
// preservation gap the paper warns about.
func (c *Capsule) CheckEnvironment(reg *envcapture.Registry, target envcapture.Platform) (envcapture.MigrationReport, error) {
	if c.Environment == nil {
		return envcapture.MigrationReport{}, fmt.Errorf("core: capsule %q has no environment manifest", c.Title)
	}
	return envcapture.PlanMigration(reg, c.Environment, target), nil
}

// AuditProvenance reports chain completeness for the capsule's recorded
// provenance; absent provenance is the worst case (zero records).
func (c *Capsule) AuditProvenance() provenance.AuditReport {
	if c.Provenance == nil {
		return provenance.AuditReport{}
	}
	return c.Provenance.Audit()
}
