package core

import (
	"strings"
	"testing"

	"daspos/internal/archive"
	"daspos/internal/datamodel"
	"daspos/internal/envcapture"
	"daspos/internal/fourvec"
	"daspos/internal/generator"
	"daspos/internal/hist"
	"daspos/internal/leshouches"
	"daspos/internal/provenance"
	"daspos/internal/rivet"
)

// buildCapsule assembles a full capsule: a real RIVET run's export as
// reference data, a Les Houches record, an environment manifest, and a
// provenance chain.
func buildCapsule(t testing.TB) *Capsule {
	t.Helper()
	run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(5))
	for i := 0; i < 1500; i++ {
		if err := run.Process(g.Generate()); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}
	ref, err := run.ExportYODA()
	if err != nil {
		t.Fatal(err)
	}

	reg := envcapture.StandardRegistry()
	_, cur, _ := envcapture.StandardPlatforms()
	env, err := envcapture.Capture(reg, "zmumu", cur, envcapture.PkgRef{Name: "rivet-lite", Version: "1.2"})
	if err != nil {
		t.Fatal(err)
	}

	prov := provenance.NewStore()
	root, err := prov.Add(provenance.Record{Output: provenance.Artifact{Name: "mc.zmumu", Tier: "HEPMC"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prov.Add(provenance.Record{
		Output:  provenance.Artifact{Name: "zmumu.reference", Tier: "L1"},
		Parents: []string{root},
	}); err != nil {
		t.Fatal(err)
	}

	return &Capsule{
		Title:         "Z lineshape capsule",
		Creator:       "DASPOS",
		Description:   "Z to mumu lineshape with reference data",
		ConditionsTag: "mc-v1",
		Analysis: &leshouches.AnalysisRecord{
			Name: "GPD_2013_ZMUMU",
			Objects: []leshouches.ObjectDefinition{
				{Name: "mu", Type: datamodel.ObjMuon, MinPt: 20, MaxAbsEta: 2.4},
			},
			Selection: []leshouches.Cut{
				{Variable: "count:mu", Op: ">=", Value: 2},
				{Variable: "os_pair:mu", Op: "==", Value: 1},
			},
			Background:     100,
			ObservedEvents: 98,
		},
		Reference:   ref,
		Environment: env,
		Provenance:  prov,
		Workflow:    []byte(`{"name":"zmumu-chain","steps":[{"name":"gen","outputs":["mc"]}]}`),
	}
}

func TestCapsuleValidate(t *testing.T) {
	c := buildCapsule(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *c
	bad.Title = ""
	if err := bad.Validate(); err == nil {
		t.Error("untitled capsule validated")
	}
	bad2 := *c
	bad2.Analysis = nil
	if err := bad2.Validate(); err == nil {
		t.Error("recordless capsule validated")
	}
	bad3 := *c
	bad3.Reference = []byte("BEGIN DASPOS_H1D /x\ngarbage\n")
	if err := bad3.Validate(); err == nil {
		t.Error("corrupt reference validated")
	}
	bad4 := *c
	bad4.Reference = nil
	if err := bad4.Validate(); err == nil {
		t.Error("referenceless capsule validated")
	}
}

func TestCapsuleArchiveRoundTrip(t *testing.T) {
	c := buildCapsule(t)
	a := archive.New()
	id, err := c.Ingest(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyPackage(id); err != nil {
		t.Fatal(err)
	}
	pkg, _ := a.Get(id)
	if pkg.Metadata.Level != datamodel.DPHEPLevel3 {
		t.Fatalf("level: %v", pkg.Metadata.Level)
	}
	if pkg.Metadata.EnvManifest != PathEnvironment || pkg.Metadata.Provenance != PathProvenance {
		t.Fatalf("metadata links: %+v", pkg.Metadata)
	}

	got, err := FromArchive(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != c.Title || got.Analysis.Name != c.Analysis.Name {
		t.Fatal("identity lost")
	}
	if got.Environment == nil || got.Environment.PackageCount() != c.Environment.PackageCount() {
		t.Fatal("environment lost")
	}
	if got.Provenance == nil || got.Provenance.Len() != 2 {
		t.Fatal("provenance lost")
	}
	if len(got.Workflow) == 0 || !strings.Contains(got.Readme, "Z lineshape capsule") {
		t.Fatal("workflow or readme lost")
	}
	if string(got.Reference) != string(c.Reference) {
		t.Fatal("reference data changed")
	}
}

func TestFromArchiveRejectsNonCapsule(t *testing.T) {
	a := archive.New()
	id, err := a.Ingest(archive.Metadata{Title: "plain data", Creator: "x"},
		map[string][]byte{"data.bin": {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromArchive(a, id); err == nil {
		t.Fatal("non-capsule loaded")
	}
	if _, err := FromArchive(a, "ghost"); err == nil {
		t.Fatal("phantom package loaded")
	}
}

func TestCapsuleReinterpret(t *testing.T) {
	c := buildCapsule(t)
	// Build a passing and a failing event.
	pass := &datamodel.Event{Tier: datamodel.TierAOD, Candidates: []datamodel.Candidate{
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(40, 0.2, 0, 0.105), Charge: 1},
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(35, -0.4, 2, 0.105), Charge: -1},
	}}
	fail := &datamodel.Event{Tier: datamodel.TierAOD}
	res, err := c.Reinterpret([]*datamodel.Event{pass, fail}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 1 || res.Acceptance != 0.5 {
		t.Fatalf("reinterpretation: %+v", res)
	}
	if res.UpperLimitEvents <= 0 {
		t.Fatal("no limit")
	}
}

func TestCapsuleValidateRerun(t *testing.T) {
	c := buildCapsule(t)
	// An independent re-run of the same preserved analysis.
	run, _ := rivet.NewRun("DASPOS_2013_ZMUMU")
	g := generator.NewDrellYanZ(generator.DefaultConfig(77))
	for i := 0; i < 1500; i++ {
		_ = run.Process(g.Generate())
	}
	_ = run.Finalize()
	outcomes, err := c.ValidateRerun(run.Histograms())
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range outcomes {
		if o.MissingReference {
			t.Fatalf("%s missing reference", o.Histogram)
		}
		if !o.Chi2.Compatible(0.001) {
			t.Fatalf("%s incompatible: p=%v", o.Histogram, o.Chi2.PValue)
		}
	}
	// A histogram the capsule never archived is flagged.
	stray := hist.NewH1D("stray/h", 10, 0, 1)
	outcomes, _ = c.ValidateRerun([]*hist.H1D{stray})
	if !outcomes[0].MissingReference {
		t.Fatal("stray histogram not flagged")
	}
}

func TestCapsuleEnvironmentCheck(t *testing.T) {
	c := buildCapsule(t)
	reg := envcapture.StandardRegistry()
	_, _, next := envcapture.StandardPlatforms()
	rep, err := c.CheckEnvironment(reg, next)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("light capsule blocked: %+v", rep)
	}
	// Capsule without a manifest: the check must fail loudly.
	bare := *c
	bare.Environment = nil
	if _, err := bare.CheckEnvironment(reg, next); err == nil {
		t.Fatal("environment check passed without a manifest")
	}
}

func TestCapsuleProvenanceAudit(t *testing.T) {
	c := buildCapsule(t)
	rep := c.AuditProvenance()
	if rep.Records != 2 || rep.CompleteFraction() != 1 {
		t.Fatalf("audit: %+v", rep)
	}
	bare := *c
	bare.Provenance = nil
	if rep := bare.AuditProvenance(); rep.Records != 0 {
		t.Fatalf("absent provenance audit: %+v", rep)
	}
}

func BenchmarkCapsuleIngest(b *testing.B) {
	c := buildCapsule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := archive.New()
		if _, err := c.Ingest(a); err != nil {
			b.Fatal(err)
		}
	}
}
