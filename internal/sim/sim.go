// Package sim implements the detector simulation at the two fidelity tiers
// the paper's preservation economics turn on. FullSim propagates every
// generated particle through the layered geometry, producing per-channel
// hits and calorimeter deposits — the expensive "full suite of detector
// software" a RECAST back end must keep runnable. FastSim applies
// parametric smearing and efficiency directly to generator objects — the
// light tier that RIVET-class preservation (and its detector-effect
// extensions) relies on.
package sim

import (
	"math"

	"daspos/internal/detector"
	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
	"daspos/internal/xrand"
)

// Hit is a single position measurement on a tracking or muon layer.
type Hit struct {
	Channel detector.ChannelID
	// R, Phi, Z are the smeared global cylindrical coordinates (mm).
	R, Phi, Z float64
	// TrueBarcode links back to the generator particle, or 0 for noise.
	// The link is simulation truth; it is deliberately dropped during
	// digitization, as real raw data has no such field.
	TrueBarcode int
}

// CaloDeposit is the energy recorded in one calorimeter cell.
type CaloDeposit struct {
	Channel detector.ChannelID
	// Energy is the smeared deposit in GeV.
	Energy float64
	// EM distinguishes electromagnetic from hadronic cells.
	EM bool
}

// Event is the output of full simulation for one generated event.
type Event struct {
	Number      int
	ProcessID   int
	TrackerHits []Hit
	MuonHits    []Hit
	Deposits    []CaloDeposit
	// Beamspot is the true primary-vertex position, retained as simulation
	// truth for efficiency studies.
	BeamspotX, BeamspotY, BeamspotZ float64
}

// FullSim propagates particles through the detector hit by hit.
type FullSim struct {
	det  *detector.Detector
	seed uint64
	rng  *xrand.Rand
	// Version is recorded in provenance when simulation runs inside a
	// preserved workflow.
	Version string
}

// NewFullSim returns a full simulation over the given geometry, with its
// own deterministic random stream.
func NewFullSim(det *detector.Detector, seed uint64) *FullSim {
	return &FullSim{det: det, seed: seed, rng: xrand.New(seed ^ 0xf0115e), Version: "fullsim-1.4.0"}
}

// Detector returns the geometry the simulation runs over.
func (s *FullSim) Detector() *detector.Detector { return s.det }

// Simulate runs one generated event through the detector, drawing from
// the simulation's single shared random stream. The result therefore
// depends on how many events were simulated before this one; use
// SimulateSeeded inside parallel pipelines.
func (s *FullSim) Simulate(ev *hepmc.Event) *Event {
	return s.simulate(ev, s.rng)
}

// SimulateSeeded runs one generated event through the detector with a
// private random stream derived from the simulation seed and the event
// number (xrand.ForEvent). The output is a pure function of the event, so
// a worker pool simulating events in any order reproduces a sequential
// pass bit for bit — the determinism rule of the event-flow substrate.
func (s *FullSim) SimulateSeeded(ev *hepmc.Event) *Event {
	return s.simulate(ev, xrand.ForEvent(s.seed^0xf0115e, uint64(ev.Number)))
}

// StageFunc adapts SimulateSeeded to the event-flow stage signature. The
// returned function is safe for concurrent use: it touches only the
// read-only geometry and its per-event stream.
func (s *FullSim) StageFunc() func(*hepmc.Event) (*Event, bool, error) {
	return func(ev *hepmc.Event) (*Event, bool, error) {
		return s.SimulateSeeded(ev), true, nil
	}
}

func (s *FullSim) simulate(ev *hepmc.Event, rng *xrand.Rand) *Event {
	out := &Event{Number: ev.Number, ProcessID: ev.ProcessID}
	if len(ev.Vertices) > 0 {
		v := ev.Vertices[0]
		out.BeamspotX, out.BeamspotY, out.BeamspotZ = v.X, v.Y, v.Z
	}
	for _, p := range ev.Particles {
		if !p.IsFinal() || units.IsNeutrino(p.PDG) {
			continue
		}
		prod := hepmc.Vertex{}
		if v := ev.Vertex(p.ProdVertex); v != nil {
			prod = *v
		}
		s.traceParticle(rng, out, p, prod)
	}
	s.addNoise(rng, out)
	return out
}

// partKin caches one particle's derived kinematics for the layer loops:
// helix propagation needs pT, φ, pz, and the production radius at every
// layer it crosses, and each is loop-invariant — computing the
// transcendentals once per particle instead of once per layer is the
// columnar discipline applied to the simulation's inner loop. Every field
// is computed by exactly the expression the per-layer code used, so the
// trajectory (and every smeared hit drawn from it) is bit-identical.
type partKin struct {
	pt, phi, pz float64
	prodR, z0   float64
}

func kinOf(p fourvec.Vec, prod hepmc.Vertex) partKin {
	return partKin{
		pt: p.Pt(), phi: p.Phi(), pz: p.Pz,
		prodR: math.Hypot(prod.X, prod.Y), z0: prod.Z,
	}
}

// traceParticle propagates one particle and records its hits and deposits.
func (s *FullSim) traceParticle(rng *xrand.Rand, out *Event, p hepmc.Particle, prod hepmc.Vertex) {
	absEta := math.Abs(p.P.Eta())
	charge := units.Charge(p.PDG)
	kin := kinOf(p.P, prod)

	if charge != 0 && absEta < s.det.EtaMax && kin.pt > 0.1 {
		for _, li := range s.det.TrackerLayers() {
			s.hitLayer(rng, out, li, p, kin, charge, false)
		}
	}
	s.depositCalo(rng, out, p, kin, charge)
	if abs(p.PDG) == units.PDGMuon && absEta < s.det.EtaMax && kin.pt > 2 {
		for _, li := range s.det.LayersOf(detector.KindMuon) {
			s.hitLayer(rng, out, li, p, kin, charge, true)
		}
	}
}

// helixAt returns the azimuth and z of a charged particle's trajectory at
// cylindrical radius r, from its cached kinematics. The second return is
// false when the particle cannot reach the radius (curls up first, or was
// produced outside it).
func (s *FullSim) helixAt(kin partKin, charge, r float64) (phi, z float64, ok bool) {
	if kin.prodR >= r {
		return 0, 0, false
	}
	pt := kin.pt
	if pt <= 0 {
		return 0, 0, false
	}
	// Curvature radius in mm: rho = pT[GeV] / (0.3 * B[T]) * 1000.
	rho := pt / (0.3 * s.det.BField) * 1000
	// Transverse chord from origin offset is small (beamspot ~ 0), so use
	// the chord from the production point approximated by radius r-prodR.
	chord := r - kin.prodR
	arg := chord / (2 * rho)
	if arg >= 1 {
		// Low-pT looper: never reaches this layer.
		return 0, 0, false
	}
	bend := math.Asin(arg)
	// Positive charge in +z field bends towards -phi.
	phi = kin.phi - charge*bend
	// Arc length in the transverse plane, then z advance along the helix.
	arc := 2 * rho * bend
	z = kin.z0 + arc*kin.pz/pt
	return phi, z, true
}

func (s *FullSim) hitLayer(rng *xrand.Rand, out *Event, li int, p hepmc.Particle, kin partKin, charge float64, muon bool) {
	l := s.det.Layer(li)
	if kin.prodR >= l.Radius {
		// Produced beyond this layer (displaced V0/D decay): no hit.
		return
	}
	phi, z, ok := s.helixAt(kin, charge, l.Radius)
	if !ok || !rng.Bool(l.Efficiency) {
		return
	}
	// Smear and relocate to the channel grid.
	phi += rng.Gauss(0, l.ResRPhi/l.Radius)
	z += rng.Gauss(0, l.ResZ)
	iphi, iz, ok := l.CellOf(phi, z)
	if !ok {
		return
	}
	h := Hit{
		Channel:     detector.MakeChannelID(li, iphi, iz),
		R:           l.Radius,
		Phi:         phi,
		Z:           z,
		TrueBarcode: p.Barcode,
	}
	if muon {
		out.MuonHits = append(out.MuonHits, h)
	} else {
		out.TrackerHits = append(out.TrackerHits, h)
	}
}

// depositCalo deposits the particle's energy into the calorimeters with
// species-appropriate resolution and sharing.
func (s *FullSim) depositCalo(rng *xrand.Rand, out *Event, p hepmc.Particle, kin partKin, charge float64) {
	e := p.P.E
	if e <= 0.1 {
		return
	}
	ecalIdx := s.det.LayersOf(detector.KindECal)
	hcalIdx := s.det.LayersOf(detector.KindHCal)
	if len(ecalIdx) == 0 || len(hcalIdx) == 0 {
		return
	}
	ecal, hcal := s.det.Layer(ecalIdx[0]), s.det.Layer(hcalIdx[0])

	var emFrac, res float64
	switch {
	case p.PDG == units.PDGPhoton || abs(p.PDG) == units.PDGElectron:
		emFrac = 1.0
		res = math.Sqrt(0.03*0.03/e + 0.005*0.005)
	case abs(p.PDG) == units.PDGMuon:
		// MIP: a muon leaves ~2 GeV through the full calorimeter depth.
		mip := math.Min(2.0, e*0.5)
		s.depositAt(out, ecal, ecalIdx[0], kin, charge, mip*0.3, true)
		s.depositAt(out, hcal, hcalIdx[0], kin, charge, mip*0.7, false)
		return
	default:
		// Hadrons: a fluctuating EM fraction and stochastic resolution.
		emFrac = rng.Range(0.15, 0.45)
		res = math.Sqrt(0.60*0.60/e + 0.05*0.05)
	}
	smeared := e * (1 + rng.Gauss(0, res))
	if smeared <= 0 {
		return
	}
	if emFrac >= 1 {
		s.depositAt(out, ecal, ecalIdx[0], kin, charge, smeared, true)
		return
	}
	s.depositAt(out, ecal, ecalIdx[0], kin, charge, smeared*emFrac, true)
	s.depositAt(out, hcal, hcalIdx[0], kin, charge, smeared*(1-emFrac), false)
}

func (s *FullSim) depositAt(out *Event, l *detector.Layer, li int, kin partKin, charge, energy float64, em bool) {
	var phi, z float64
	if charge != 0 {
		var ok bool
		phi, z, ok = s.helixAt(kin, charge, l.Radius)
		if !ok {
			return
		}
	} else {
		phi = kin.phi
		// Straight-line z at the calo radius.
		if kin.pt <= 0 {
			return
		}
		z = kin.z0 + l.Radius*kin.pz/kin.pt
	}
	iphi, iz, ok := l.CellOf(phi, z)
	if !ok {
		return
	}
	out.Deposits = append(out.Deposits, CaloDeposit{
		Channel: detector.MakeChannelID(li, iphi, iz),
		Energy:  energy,
		EM:      em,
	})
}

// addNoise sprinkles electronics noise across all sensitive layers.
func (s *FullSim) addNoise(rng *xrand.Rand, out *Event) {
	for li := range s.det.Layers {
		l := s.det.Layer(li)
		if !l.Sensitive() || l.NoiseOccupancy <= 0 {
			continue
		}
		n := rng.Poisson(l.NoiseOccupancy * float64(l.Channels()))
		for i := 0; i < n; i++ {
			iphi := rng.Intn(l.NPhi)
			iz := rng.Intn(l.NZ)
			id := detector.MakeChannelID(li, iphi, iz)
			phi, z := l.CellCenter(iphi, iz)
			switch l.Kind {
			case detector.KindECal, detector.KindHCal:
				out.Deposits = append(out.Deposits, CaloDeposit{
					Channel: id,
					Energy:  rng.Exp(0.15),
					EM:      l.Kind == detector.KindECal,
				})
			case detector.KindMuon:
				out.MuonHits = append(out.MuonHits, Hit{Channel: id, R: l.Radius, Phi: phi, Z: z})
			default:
				out.TrackerHits = append(out.TrackerHits, Hit{Channel: id, R: l.Radius, Phi: phi, Z: z})
			}
		}
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
