package sim

import (
	"math"
	"testing"

	"daspos/internal/detector"
	"daspos/internal/fourvec"
	"daspos/internal/generator"
	"daspos/internal/hepmc"
	"daspos/internal/units"
)

func TestFullSimTracksLeaveHits(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 1)
	g := generator.NewDrellYanZ(generator.DefaultConfig(1))
	for i := 0; i < 20; i++ {
		ev := g.Generate()
		se := fs.Simulate(ev)
		if len(se.TrackerHits) == 0 {
			t.Fatalf("event %d: no tracker hits", i)
		}
		if len(se.Deposits) == 0 {
			t.Fatalf("event %d: no calo deposits", i)
		}
		if se.Number != ev.Number || se.ProcessID != ev.ProcessID {
			t.Fatal("event identity lost")
		}
	}
}

func TestFullSimMuonsReachMuonSystem(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 2)
	g := generator.NewDrellYanZ(generator.DefaultConfig(2))
	muonHits := 0
	for i := 0; i < 50; i++ {
		se := fs.Simulate(g.Generate())
		muonHits += len(se.MuonHits)
	}
	// Half the Z decays are to muons; the central ones must hit the
	// chambers, so the total cannot be tiny.
	if muonHits < 30 {
		t.Fatalf("muon hits over 50 Z events: %d", muonHits)
	}
}

func TestFullSimNeutrinosInvisible(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 3)
	// Hand-build an event with only a neutrino.
	e := hepmc.NewEvent(0, 0)
	pv := e.AddVertex(0, 0, 0, 0)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
	e.AddParticle(units.PDGNuMu, hepmc.StatusFinal, fourvec.PtEtaPhiM(50, 0.5, 1.0, 0), pv, 0)
	se := fs.Simulate(e)
	for _, h := range se.TrackerHits {
		if h.TrueBarcode != 0 {
			t.Fatal("neutrino left a tracker hit")
		}
	}
	for _, d := range se.Deposits {
		if d.Energy > 5 {
			t.Fatalf("neutrino deposited %v GeV", d.Energy)
		}
	}
}

func TestFullSimDisplacedProduction(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 4)
	// A pion produced at r=300mm (outside pixels and strip1) must have no
	// hits on layers inside its production radius.
	e := hepmc.NewEvent(0, 0)
	pv := e.AddVertex(0, 0, 0, 0)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
	dv := e.AddVertex(300, 0, 10, 1)
	e.AddParticle(units.PDGKZeroShort, hepmc.StatusDecayed, fourvec.PtEtaPhiM(5, 0.1, 0, 0.497), pv, dv)
	e.AddParticle(units.PDGPiPlus, hepmc.StatusFinal, fourvec.PtEtaPhiM(3, 0.1, 0.1, 0.1396), dv, 0)
	e.AddParticle(-units.PDGPiPlus, hepmc.StatusFinal, fourvec.PtEtaPhiM(2, 0.1, -0.1, 0.1396), dv, 0)
	se := fs.Simulate(e)
	for _, h := range se.TrackerHits {
		if h.TrueBarcode != 0 && h.R < 300 {
			t.Fatalf("hit at r=%v inside production radius", h.R)
		}
	}
	// But the pions must still hit the outer strip layers.
	outer := 0
	for _, h := range se.TrackerHits {
		if h.TrueBarcode != 0 {
			outer++
		}
	}
	if outer == 0 {
		t.Fatal("displaced pions left no hits at all")
	}
}

func TestHelixBendDirection(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 5)
	p := fourvec.PtEtaPhiM(10, 0, 0, 0.14)
	kin := kinOf(p, hepmc.Vertex{})
	phiPlus, _, ok1 := fs.helixAt(kin, +1, 500)
	phiMinus, _, ok2 := fs.helixAt(kin, -1, 500)
	if !ok1 || !ok2 {
		t.Fatal("10 GeV track did not reach 500mm")
	}
	if !(phiPlus < 0 && phiMinus > 0) {
		t.Fatalf("bend directions: q+ %v, q- %v", phiPlus, phiMinus)
	}
	if math.Abs(phiPlus+phiMinus) > 1e-12 {
		t.Fatalf("bends not symmetric: %v vs %v", phiPlus, phiMinus)
	}
}

func TestHelixLowPtLooper(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 6)
	// pT = 0.2 GeV: rho = 0.2/(0.3*3.8)*1000 ≈ 175mm, max reach 2ρ=350mm.
	p := fourvec.PtEtaPhiM(0.2, 0, 0, 0.14)
	if _, _, ok := fs.helixAt(kinOf(p, hepmc.Vertex{}), 1, 1290); ok {
		t.Fatal("looper reported reaching the ECal")
	}
	if _, _, ok := fs.helixAt(kinOf(p, hepmc.Vertex{}), 1, 102); !ok {
		t.Fatal("0.2 GeV track failed to reach pix3")
	}
}

func TestHelixHighPtNearlyStraight(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 7)
	p := fourvec.PtEtaPhiM(500, 0.3, 1.0, 0)
	phi, z, ok := fs.helixAt(kinOf(p, hepmc.Vertex{}), 1, 1290)
	if !ok {
		t.Fatal("500 GeV track did not reach ECal")
	}
	if math.Abs(phi-1.0) > 0.01 {
		t.Fatalf("500 GeV track bent too much: %v", phi)
	}
	wantZ := 1290 * math.Sinh(0.3)
	if math.Abs(z-wantZ)/wantZ > 0.02 {
		t.Fatalf("z at ECal %v want ~%v", z, wantZ)
	}
}

func TestNoiseHitsPresent(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 8)
	e := hepmc.NewEvent(0, 0)
	pv := e.AddVertex(0, 0, 0, 0)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
	// Empty detector: everything recorded is noise.
	noise := 0
	for i := 0; i < 20; i++ {
		se := fs.Simulate(e)
		noise += len(se.TrackerHits) + len(se.Deposits) + len(se.MuonHits)
	}
	if noise == 0 {
		t.Fatal("no noise generated across 20 empty events")
	}
	se := fs.Simulate(e)
	for _, h := range se.TrackerHits {
		if h.TrueBarcode != 0 {
			t.Fatal("noise hit carries a truth link")
		}
	}
}

func TestCaloEnergyRoughlyConserved(t *testing.T) {
	det := detector.Standard()
	fs := NewFullSim(det, 9)
	g := generator.NewHiggsDiphoton(generator.DefaultConfig(9))
	var sumTrue, sumDep float64
	for i := 0; i < 100; i++ {
		ev := g.Generate()
		var central float64
		for _, p := range ev.FinalState() {
			if !units.IsNeutrino(p.PDG) && math.Abs(p.P.Eta()) < 1.2 {
				central += p.P.E
			}
		}
		se := fs.Simulate(ev)
		var dep float64
		for _, d := range se.Deposits {
			dep += d.Energy
		}
		sumTrue += central
		sumDep += dep
	}
	// Deposits include forward particles and noise, and lose loopers; the
	// totals must agree to within a factor ~2.
	ratio := sumDep / sumTrue
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("calo response ratio %v", ratio)
	}
}

func TestFastSimEfficiencyAndSmearing(t *testing.T) {
	fsim := NewFastSim(10)
	g := generator.NewDrellYanZ(generator.DefaultConfig(10))
	kept, total := 0, 0
	var relShift []float64
	for i := 0; i < 300; i++ {
		ev := g.Generate()
		objs := fsim.Simulate(ev)
		byBarcode := map[int]FastObject{}
		for _, o := range objs {
			byBarcode[o.TrueBarcode] = o
		}
		for _, p := range ev.FinalState() {
			if units.IsNeutrino(p.PDG) || math.Abs(p.P.Eta()) > 2.5 {
				continue
			}
			total++
			if o, ok := byBarcode[p.Barcode]; ok {
				kept++
				relShift = append(relShift, (o.P.Pt()-p.P.Pt())/p.P.Pt())
			}
		}
	}
	eff := float64(kept) / float64(total)
	if eff < 0.5 || eff > 0.99 {
		t.Fatalf("fastsim efficiency %v implausible", eff)
	}
	// The smearing must be unbiased at the few-percent level.
	mean := 0.0
	for _, r := range relShift {
		mean += r
	}
	mean /= float64(len(relShift))
	if math.Abs(mean) > 0.02 {
		t.Fatalf("smearing bias %v", mean)
	}
}

func TestFastSimAcceptanceCut(t *testing.T) {
	fsim := NewFastSim(11)
	e := hepmc.NewEvent(0, 0)
	pv := e.AddVertex(0, 0, 0, 0)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
	e.AddParticle(units.PDGProton, hepmc.StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
	e.AddParticle(units.PDGMuon, hepmc.StatusFinal, fourvec.PtEtaPhiM(50, 4.0, 0, 0.105), pv, 0)
	if objs := fsim.Simulate(e); len(objs) != 0 {
		t.Fatalf("forward muon survived acceptance: %d objects", len(objs))
	}
}

func TestFastSimMissingPt(t *testing.T) {
	objs := []FastObject{
		{PDG: units.PDGMuon, P: fourvec.PtEtaPhiM(40, 0, 0, 0.105)},
	}
	pt, phi := MissingPt(objs)
	if math.Abs(pt-40) > 1e-9 {
		t.Fatalf("missing pt %v", pt)
	}
	if math.Abs(math.Abs(phi)-math.Pi) > 1e-9 {
		t.Fatalf("missing phi %v", phi)
	}
}

func TestFullVsFastCostOrdering(t *testing.T) {
	// The architectural claim behind experiment R1: full simulation
	// produces far more output objects (hits) than fast simulation for
	// the same events.
	det := detector.Standard()
	full := NewFullSim(det, 12)
	fast := NewFastSim(12)
	g := generator.NewQCDDijet(generator.DefaultConfig(12))
	nFull, nFast := 0, 0
	for i := 0; i < 20; i++ {
		ev := g.Generate()
		se := full.Simulate(ev)
		nFull += len(se.TrackerHits) + len(se.Deposits) + len(se.MuonHits)
		nFast += len(fast.Simulate(ev))
	}
	if nFull < 5*nFast {
		t.Fatalf("full sim output (%d) not ≫ fast sim output (%d)", nFull, nFast)
	}
}

func BenchmarkFullSimDijet(b *testing.B) {
	det := detector.Standard()
	fs := NewFullSim(det, 1)
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	events := generator.GenerateN(g, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fs.Simulate(events[i%len(events)])
	}
}

func BenchmarkFastSimDijet(b *testing.B) {
	fs := NewFastSim(1)
	g := generator.NewQCDDijet(generator.DefaultConfig(1))
	events := generator.GenerateN(g, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fs.Simulate(events[i%len(events)])
	}
}

// simEventEqual compares two simulated events field by field.
func simEventEqual(a, b *Event) bool {
	if a.Number != b.Number || a.ProcessID != b.ProcessID ||
		len(a.TrackerHits) != len(b.TrackerHits) ||
		len(a.MuonHits) != len(b.MuonHits) ||
		len(a.Deposits) != len(b.Deposits) {
		return false
	}
	for i := range a.TrackerHits {
		if a.TrackerHits[i] != b.TrackerHits[i] {
			return false
		}
	}
	for i := range a.MuonHits {
		if a.MuonHits[i] != b.MuonHits[i] {
			return false
		}
	}
	for i := range a.Deposits {
		if a.Deposits[i] != b.Deposits[i] {
			return false
		}
	}
	return true
}

func TestSimulateSeededOrderIndependent(t *testing.T) {
	// SimulateSeeded must be a pure function of the event: simulating the
	// sample forwards, backwards, or twice gives identical responses,
	// which is what lets a worker pool keep a fixed seed reproducible.
	det := detector.Standard()
	g := generator.NewDrellYanZ(generator.DefaultConfig(11))
	var events []*hepmc.Event
	for i := 0; i < 12; i++ {
		events = append(events, g.Generate())
	}

	forward := NewFullSim(det, 99)
	var fwd []*Event
	for _, ev := range events {
		fwd = append(fwd, forward.SimulateSeeded(ev))
	}
	backward := NewFullSim(det, 99)
	for i := len(events) - 1; i >= 0; i-- {
		if !simEventEqual(backward.SimulateSeeded(events[i]), fwd[i]) {
			t.Fatalf("event %d: reversed-order simulation differs", i)
		}
	}
}

func TestSimulateSeededSeedSensitivity(t *testing.T) {
	det := detector.Standard()
	g := generator.NewDrellYanZ(generator.DefaultConfig(12))
	ev := g.Generate()
	a := NewFullSim(det, 1).SimulateSeeded(ev)
	b := NewFullSim(det, 2).SimulateSeeded(ev)
	if simEventEqual(a, b) {
		t.Fatal("different simulation seeds gave identical responses")
	}
}
