package sim

import (
	"math"

	"daspos/internal/fourvec"
	"daspos/internal/hepmc"
	"daspos/internal/units"
	"daspos/internal/xrand"
)

// FastObject is a parametrically smeared physics object produced by the
// fast simulation: the truth-level particle seen through detector-response
// curves rather than through per-hit simulation. This is the tier the
// paper's RIVET discussion calls out as missing ("no way to include a
// detector simulation, or even the degradations in resolution and particle
// collection efficiencies") — FastSim provides exactly those degradations
// at negligible cost.
type FastObject struct {
	// PDG is the reconstructed hypothesis (electron, muon, photon); charged
	// hadrons become generic tracks with their true PDG retained.
	PDG int
	P   fourvec.Vec
	// TrueBarcode links to the generator particle.
	TrueBarcode int
}

// FastSim smears generator final states by parametric response curves.
type FastSim struct {
	rng *xrand.Rand
	// Version is recorded in provenance for preserved workflows.
	Version string
	// EtaMax is the acceptance edge; objects beyond it are dropped.
	EtaMax float64
}

// NewFastSim returns a fast simulation with LHC-like response parameters.
func NewFastSim(seed uint64) *FastSim {
	return &FastSim{rng: xrand.New(seed ^ 0xfa575e), Version: "fastsim-0.9.2", EtaMax: 2.5}
}

// Simulate returns the smeared, efficiency-filtered objects for one event.
func (s *FastSim) Simulate(ev *hepmc.Event) []FastObject {
	var out []FastObject
	for _, p := range ev.Particles {
		if !p.IsFinal() || units.IsNeutrino(p.PDG) {
			continue
		}
		if math.Abs(p.P.Eta()) > s.EtaMax {
			continue
		}
		if o, ok := s.smear(p); ok {
			out = append(out, o)
		}
	}
	return out
}

// MissingPt returns the smeared missing transverse momentum for the event:
// the negative vector sum of the smeared visible objects.
func MissingPt(objs []FastObject) (pt, phi float64) {
	var sum fourvec.Vec
	for _, o := range objs {
		sum = sum.Add(o.P)
	}
	n := sum.Neg()
	return n.Pt(), n.Phi()
}

func (s *FastSim) smear(p hepmc.Particle) (FastObject, bool) {
	e := p.P.E
	pt := p.P.Pt()
	var eff, res float64
	switch {
	case p.PDG == units.PDGPhoton:
		if e < 0.5 {
			return FastObject{}, false
		}
		eff = 0.97
		res = math.Sqrt(0.03*0.03/e + 0.005*0.005)
	case abs(p.PDG) == units.PDGElectron:
		if pt < 0.5 {
			return FastObject{}, false
		}
		eff = 0.92
		res = math.Sqrt(0.03*0.03/e + 0.007*0.007)
	case abs(p.PDG) == units.PDGMuon:
		if pt < 0.5 {
			return FastObject{}, false
		}
		eff = 0.96
		// Tracker-dominated: resolution grows with pT.
		res = math.Sqrt(0.01*0.01 + (0.0002*pt)*(0.0002*pt))
	case units.Charge(p.PDG) != 0:
		if pt < 0.2 {
			return FastObject{}, false
		}
		eff = 0.90
		res = math.Sqrt(0.012*0.012 + (0.0003*pt)*(0.0003*pt))
	default:
		// Neutral hadrons: calorimeter-only, poor resolution.
		if e < 1.0 {
			return FastObject{}, false
		}
		eff = 0.85
		res = math.Sqrt(0.60*0.60/e + 0.05*0.05)
	}
	if !s.rng.Bool(eff) {
		return FastObject{}, false
	}
	k := 1 + s.rng.Gauss(0, res)
	if k <= 0 {
		return FastObject{}, false
	}
	return FastObject{PDG: p.PDG, P: p.P.Scale(k), TrueBarcode: p.Barcode}, true
}
