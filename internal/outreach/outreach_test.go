package outreach

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
)

func TestProfilesMatchTable1(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles: %d", len(ps))
	}
	byName := map[string]Profile{}
	for _, p := range ps {
		byName[p.Experiment] = p
	}
	// Spot-check the load-bearing Table 1 facts.
	if byName["CMS"].DataFormats[0] != "ig" {
		t.Fatal("CMS data format")
	}
	if !strings.Contains(byName["CMS"].SelfDocumenting, "Y") {
		t.Fatal("CMS self-documenting")
	}
	if byName["LHCb"].MasterClasses[0] != "D lifetime" {
		t.Fatal("LHCb master class")
	}
	if byName["Alice"].Comments == "" {
		t.Fatal("Alice comment lost")
	}
	if len(byName["Atlas"].AnalysisTools) != 5 {
		t.Fatalf("Atlas tools: %v", byName["Atlas"].AnalysisTools)
	}
	if _, ok := ProfileByExperiment("Atlas"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := ProfileByExperiment("DELPHI"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestTable1Render(t *testing.T) {
	tab := Table1()
	out := tab.String()
	for _, want := range []string{"Alice", "Atlas", "CMS", "LHCb", "iSpy", "HYPATIA", "D lifetime", "Event Display(s)", "Master Class uses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 7 {
		t.Fatalf("rows: %d", tab.NumRows())
	}
	// Markdown export works too (for web embedding).
	if !strings.Contains(tab.Markdown(), "| Alice |") {
		t.Fatal("markdown render broken")
	}
}

// recoEvents produces RECO-tier events through the full chain.
func recoEvents(t testing.TB, seed uint64, n int, mk func(generator.Config) generator.Generator) []*datamodel.Event {
	t.Helper()
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, seed); err != nil {
		t.Fatal(err)
	}
	fs := sim.NewFullSim(det, seed)
	rc := reco.New(det)
	snap := db.Snapshot("t", 1)
	g := mk(generator.DefaultConfig(seed))
	var out []*datamodel.Event
	for i := 0; i < n; i++ {
		raw := rawdata.Digitize(1, fs.Simulate(g.Generate()))
		ev, err := rc.Reconstruct(raw, snap)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

func TestConverterProducesDisplayContent(t *testing.T) {
	events := recoEvents(t, 1, 5, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) })
	conv := NewConverter(detector.Standard())
	for _, e := range events {
		s := conv.Convert(e)
		if len(s.Tracks) == 0 {
			t.Fatal("no display tracks")
		}
		if len(s.Towers) == 0 {
			t.Fatal("no display towers")
		}
		for _, trk := range s.Tracks {
			if len(trk.Points) != conv.PolylinePoints {
				t.Fatalf("polyline points: %d", len(trk.Points))
			}
			// The polyline starts at the beamline and moves outward.
			first, last := trk.Points[0], trk.Points[len(trk.Points)-1]
			r0 := math.Hypot(first[0], first[1])
			r1 := math.Hypot(last[0], last[1])
			if r0 > 1 || r1 < 100 {
				t.Fatalf("polyline radii: %v .. %v", r0, r1)
			}
		}
	}
}

func TestConvertedSizesAreSmallerThanRECO(t *testing.T) {
	// The Level 2 premise: the simplified format is much lighter than the
	// tier it derives from.
	events := recoEvents(t, 2, 5, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) })
	recoSize, err := datamodel.EncodedSize(datamodel.TierRECO, events)
	if err != nil {
		t.Fatal(err)
	}
	conv := NewConverter(detector.Standard())
	var buf bytes.Buffer
	var simpl []*SimplifiedEvent
	for _, e := range events {
		simpl = append(simpl, conv.Convert(e))
	}
	if err := WriteExhibit(&buf, detector.Standard(), simpl); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) > recoSize {
		t.Fatalf("exhibit (%d) not smaller than RECO (%d)", buf.Len(), recoSize)
	}
}

func TestExhibitRoundTrip(t *testing.T) {
	events := recoEvents(t, 3, 3, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) })
	conv := NewConverter(detector.Standard())
	var simpl []*SimplifiedEvent
	for _, e := range events {
		simpl = append(simpl, conv.Convert(e))
	}
	var buf bytes.Buffer
	if err := WriteExhibit(&buf, detector.Standard(), simpl); err != nil {
		t.Fatal(err)
	}
	det, got, err := ReadExhibit(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if det.Name != "DASPOS-GPD" {
		t.Fatalf("geometry: %s", det.Name)
	}
	if len(got) != len(simpl) {
		t.Fatalf("events: %d", len(got))
	}
	for i := range got {
		if got[i].Event != simpl[i].Event || len(got[i].Tracks) != len(simpl[i].Tracks) {
			t.Fatalf("event %d content changed", i)
		}
	}
}

func TestReadExhibitRejectsBroken(t *testing.T) {
	if _, _, err := ReadExhibit(bytes.NewReader([]byte("not a zip")), 9); err == nil {
		t.Fatal("garbage exhibit opened")
	}
	// A zip without geometry.
	var buf bytes.Buffer
	if err := WriteExhibit(&buf, detector.Standard(), nil); err != nil {
		t.Fatal(err)
	}
	// Remove geometry by writing only events: build manually.
	var noGeo bytes.Buffer
	zw := newZipWithEventOnly(t, &noGeo)
	_ = zw
	if _, _, err := ReadExhibit(bytes.NewReader(noGeo.Bytes()), int64(noGeo.Len())); err == nil {
		t.Fatal("geometry-less exhibit opened")
	}
}

func TestMasterClassRegistry(t *testing.T) {
	mcs := MasterClasses()
	if len(mcs) != 3 {
		t.Fatalf("master classes: %d", len(mcs))
	}
	for _, m := range mcs {
		if m.Documentation == "" || m.Run == nil || m.Experiment == "" {
			t.Fatalf("incomplete exercise %q", m.Name)
		}
	}
	if _, ok := MasterClassByName("z-path"); !ok {
		t.Fatal("z-path missing")
	}
	if _, ok := MasterClassByName("nope"); ok {
		t.Fatal("phantom master class")
	}
}

func TestZPathMeasuresZMass(t *testing.T) {
	events := recoEvents(t, 4, 120, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) })
	conv := NewConverter(detector.Standard())
	var simpl []*SimplifiedEvent
	for _, e := range events {
		simpl = append(simpl, conv.Convert(e))
	}
	mc, _ := MasterClassByName("z-path")
	res, err := mc.Run(simpl)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsUsed < 10 {
		t.Fatalf("too few dimuon events: %d", res.EventsUsed)
	}
	if math.Abs(res.Estimate-91.2) > 5 {
		t.Fatalf("Z mass estimate %v", res.Estimate)
	}
}

func TestHiggsHuntFindsPeak(t *testing.T) {
	events := recoEvents(t, 5, 100, func(c generator.Config) generator.Generator { return generator.NewHiggsDiphoton(c) })
	conv := NewConverter(detector.Standard())
	var simpl []*SimplifiedEvent
	for _, e := range events {
		simpl = append(simpl, conv.Convert(e))
	}
	mc, _ := MasterClassByName("higgs-hunt")
	res, err := mc.Run(simpl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-125.25) > 6 {
		t.Fatalf("Higgs estimate %v (events used %d)", res.Estimate, res.EventsUsed)
	}
}

func TestWPathChargeRatio(t *testing.T) {
	events := recoEvents(t, 6, 150, func(c generator.Config) generator.Generator { return generator.NewWLepNu(c) })
	conv := NewConverter(detector.Standard())
	var simpl []*SimplifiedEvent
	for _, e := range events {
		simpl = append(simpl, conv.Convert(e))
	}
	mc, _ := MasterClassByName("w-path")
	res, err := mc.Run(simpl)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsUsed < 10 {
		t.Fatalf("too few W candidates: %d", res.EventsUsed)
	}
	// The toy generator produces both charges equally; the ratio must be
	// finite and order one.
	if res.Estimate <= 0.2 || res.Estimate > 5 {
		t.Fatalf("charge ratio %v", res.Estimate)
	}
}

func TestMasterClassEmptyInput(t *testing.T) {
	for _, m := range MasterClasses() {
		if _, err := m.Run(nil); err == nil {
			t.Errorf("%s: empty classroom produced a measurement", m.Name)
		}
	}
}

func BenchmarkConvert(b *testing.B) {
	events := recoEvents(b, 1, 8, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) })
	conv := NewConverter(detector.Standard())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = conv.Convert(events[i%len(events)])
	}
}
