package outreach

import (
	"math"
	"testing"

	"daspos/internal/generator"
)

func dCandidates(t testing.TB, n int) []DecayCandidate {
	t.Helper()
	g := generator.NewDZero(generator.DefaultConfig(41))
	var out []DecayCandidate
	for i := 0; i < n; i++ {
		out = append(out, ConvertTruth(g.Generate())...)
	}
	return out
}

func v0Candidates(t testing.TB, n int) []DecayCandidate {
	t.Helper()
	g := generator.NewV0(generator.DefaultConfig(42))
	var out []DecayCandidate
	for i := 0; i < n; i++ {
		out = append(out, ConvertTruth(g.Generate())...)
	}
	return out
}

func TestConvertTruthExtractsCandidates(t *testing.T) {
	cands := dCandidates(t, 200)
	if len(cands) < 150 {
		t.Fatalf("D candidates: %d from 200 events", len(cands))
	}
	for _, c := range cands {
		if c.Species != "D0" {
			t.Fatalf("unexpected species %q", c.Species)
		}
		if c.Mass < 1.85 || c.Mass > 1.88 {
			t.Fatalf("D mass %v", c.Mass)
		}
		if c.FlightMM < 0 || c.ProperTimePs < 0 || c.P <= 0 {
			t.Fatalf("bad kinematics: %+v", c)
		}
	}
}

func TestConvertTruthIgnoresPromptProcesses(t *testing.T) {
	g := generator.NewDrellYanZ(generator.DefaultConfig(43))
	for i := 0; i < 50; i++ {
		if cands := ConvertTruth(g.Generate()); len(cands) != 0 {
			t.Fatalf("Z event produced decay candidates: %+v", cands)
		}
	}
}

func TestDLifetimeMasterClass(t *testing.T) {
	mc, ok := DecayMasterClassByName("d-lifetime")
	if !ok {
		t.Fatal("d-lifetime missing")
	}
	res, err := mc.Run(dCandidates(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsUsed < 2000 {
		t.Fatalf("candidates used: %d", res.EventsUsed)
	}
	// The classroom's estimator is the histogram mean with a truncation
	// bias from the 3 ps ceiling; 20% tolerance around 0.41 ps.
	if math.Abs(res.Estimate-0.41)/0.41 > 0.2 {
		t.Fatalf("lifetime estimate %v ps", res.Estimate)
	}
}

func TestV0FinderMasterClass(t *testing.T) {
	mc, ok := DecayMasterClassByName("v0-finder")
	if !ok {
		t.Fatal("v0-finder missing")
	}
	res, err := mc.Run(v0Candidates(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsUsed < 1500 {
		t.Fatalf("candidates used: %d", res.EventsUsed)
	}
	// The generator mixes 70% K_S / 30% Lambda: the measured ratio must
	// be near 7/3.
	if math.Abs(res.Estimate-7.0/3)/2.33 > 0.2 {
		t.Fatalf("K_S/Lambda ratio %v", res.Estimate)
	}
}

func TestDecayMasterClassesComplete(t *testing.T) {
	for _, m := range DecayMasterClasses() {
		if m.Documentation == "" || m.Run == nil || m.Experiment == "" {
			t.Fatalf("incomplete exercise %q", m.Name)
		}
		if _, err := m.Run(nil); err == nil {
			t.Errorf("%s: empty classroom produced a measurement", m.Name)
		}
	}
	if _, ok := DecayMasterClassByName("ghost"); ok {
		t.Fatal("phantom exercise")
	}
}
