package outreach

import (
	"archive/zip"
	"compress/flate"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"daspos/internal/datamodel"
	"daspos/internal/detector"
)

// The simplified event format: the common Level 2 representation the paper
// argues for ("a common format, common event display, and a 'converter'
// that would allow access to multiple experimental datasets"). Events are
// small JSON documents; an exhibit is a zip container (like CMS's .ig)
// bundling a geometry description with an event collection.

// DisplayTrack is a charged track prepared for drawing: kinematics plus a
// polyline through the detector.
type DisplayTrack struct {
	Pt     float64 `json:"pt"`
	Eta    float64 `json:"eta"`
	Phi    float64 `json:"phi"`
	Charge float64 `json:"charge"`
	// Points are (x, y, z) positions in mm along the trajectory.
	Points [][3]float64 `json:"points"`
}

// DisplayTower is one calorimeter deposit for drawing.
type DisplayTower struct {
	Eta float64 `json:"eta"`
	Phi float64 `json:"phi"`
	E   float64 `json:"e"`
	EM  bool    `json:"em"`
}

// DisplayObject is an identified physics object.
type DisplayObject struct {
	Type   string  `json:"type"`
	Pt     float64 `json:"pt"`
	Eta    float64 `json:"eta"`
	Phi    float64 `json:"phi"`
	Charge float64 `json:"charge"`
	Mass   float64 `json:"mass"`
}

// SimplifiedEvent is the Level 2 event document.
type SimplifiedEvent struct {
	Run     uint32          `json:"run"`
	Event   uint64          `json:"event"`
	Tracks  []DisplayTrack  `json:"tracks,omitempty"`
	Towers  []DisplayTower  `json:"towers,omitempty"`
	Objects []DisplayObject `json:"objects,omitempty"`
	MET     struct {
		Pt  float64 `json:"pt"`
		Phi float64 `json:"phi"`
	} `json:"met"`
}

// Converter is the thin AOD→simplified layer (the "Finland converter").
type Converter struct {
	det *detector.Detector
	// MinTrackPt and MinTowerE prune content below display relevance.
	MinTrackPt float64
	MinTowerE  float64
	// PolylinePoints is the number of positions sampled along each track.
	PolylinePoints int
}

// NewConverter returns a converter over the given geometry with
// display-appropriate thresholds.
func NewConverter(det *detector.Detector) *Converter {
	return &Converter{det: det, MinTrackPt: 0.5, MinTowerE: 0.5, PolylinePoints: 12}
}

// Convert produces the simplified representation of one event at RECO or
// AOD tier. RECO detail (tracks, clusters) enriches the display when
// present; an AOD event still yields objects and MET.
func (c *Converter) Convert(e *datamodel.Event) *SimplifiedEvent {
	out := &SimplifiedEvent{Run: e.Run, Event: e.Number}
	out.MET.Pt = round3(e.Missing.Pt)
	out.MET.Phi = round3(e.Missing.Phi)
	for _, t := range e.Tracks {
		if t.P.Pt() < c.MinTrackPt {
			continue
		}
		out.Tracks = append(out.Tracks, DisplayTrack{
			Pt: round3(t.P.Pt()), Eta: round3(t.P.Eta()), Phi: round3(t.P.Phi()),
			Charge: t.Charge,
			Points: c.polyline(t),
		})
	}
	for _, cl := range e.Clusters {
		if cl.E < c.MinTowerE {
			continue
		}
		out.Towers = append(out.Towers, DisplayTower{
			Eta: round3(cl.Eta), Phi: round3(cl.Phi), E: round3(cl.E), EM: cl.EM,
		})
	}
	for _, cand := range e.Candidates {
		out.Objects = append(out.Objects, DisplayObject{
			Type: cand.Type.String(), Pt: round3(cand.P.Pt()), Eta: round3(cand.P.Eta()),
			Phi: round3(cand.P.Phi()), Charge: cand.Charge, Mass: round3(cand.P.M()),
		})
	}
	return out
}

// round3 trims display quantities to three decimals: the simplified
// format is for human eyes and classroom histograms, and full float64
// precision would triple the exhibit size for nothing.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// round0 trims polyline positions to whole millimeters: the detector is
// meters across and the polyline is display geometry, so sub-mm digits
// only inflate the JSON.
func round0(x float64) float64 { return math.Round(x) }

// polyline samples the track helix from the beamline to the outermost
// tracker radius.
func (c *Converter) polyline(t datamodel.Track) [][3]float64 {
	n := c.PolylinePoints
	if n < 2 {
		n = 2
	}
	trackerLayers := c.det.TrackerLayers()
	rMax := 700.0
	if len(trackerLayers) > 0 {
		rMax = c.det.Layer(trackerLayers[len(trackerLayers)-1]).Radius
	}
	rho := t.P.Pt() / (0.3 * c.det.BField) * 1000 // mm
	if 2*rho < rMax {
		rMax = 2 * rho * 0.95 // looper: stop before the turning point
	}
	pts := make([][3]float64, 0, n)
	for i := 0; i < n; i++ {
		r := rMax * float64(i) / float64(n-1)
		bend := 0.0
		if rho > 0 {
			bend = math.Asin(r / (2 * rho))
		}
		phi := t.P.Phi() - t.Charge*bend
		z := t.Z0 + r*math.Sinh(t.P.Eta())
		pts = append(pts, [3]float64{
			round0(r * math.Cos(phi)), round0(r * math.Sin(phi)), round0(z),
		})
	}
	return pts
}

// Exhibit I/O: a zip container with geometry.json plus events/NNNNN.json —
// the self-documenting ig-like bundle of Table 1's CMS row.

// WriteExhibit bundles a geometry and events into an exhibit. Exhibits
// are write-once, read-many artifacts, so the container trades encode CPU
// for size with maximum-effort deflate.
func WriteExhibit(w io.Writer, det *detector.Detector, events []*SimplifiedEvent) error {
	zw := zip.NewWriter(w)
	zw.RegisterCompressor(zip.Deflate, func(w io.Writer) (io.WriteCloser, error) {
		return flate.NewWriter(w, flate.BestCompression)
	})
	gf, err := zw.Create("geometry.json")
	if err != nil {
		return err
	}
	if err := det.WriteJSON(gf); err != nil {
		return err
	}
	for i, e := range events {
		ef, err := zw.Create(fmt.Sprintf("events/%05d.json", i))
		if err != nil {
			return err
		}
		if err := json.NewEncoder(ef).Encode(e); err != nil {
			return err
		}
	}
	return zw.Close()
}

// ReadExhibit opens an exhibit, returning the geometry and the events in
// file order.
func ReadExhibit(r io.ReaderAt, size int64) (*detector.Detector, []*SimplifiedEvent, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, nil, fmt.Errorf("outreach: opening exhibit: %w", err)
	}
	var det *detector.Detector
	var eventFiles []*zip.File
	for _, f := range zr.File {
		switch {
		case f.Name == "geometry.json":
			rc, err := f.Open()
			if err != nil {
				return nil, nil, err
			}
			det, err = detector.ReadJSON(rc)
			rc.Close()
			if err != nil {
				return nil, nil, err
			}
		case len(f.Name) > 7 && f.Name[:7] == "events/":
			eventFiles = append(eventFiles, f)
		}
	}
	if det == nil {
		return nil, nil, fmt.Errorf("outreach: exhibit has no geometry.json")
	}
	sort.Slice(eventFiles, func(i, j int) bool { return eventFiles[i].Name < eventFiles[j].Name })
	var events []*SimplifiedEvent
	for _, f := range eventFiles {
		rc, err := f.Open()
		if err != nil {
			return nil, nil, err
		}
		var e SimplifiedEvent
		err = json.NewDecoder(rc).Decode(&e)
		rc.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("outreach: parsing %s: %w", f.Name, err)
		}
		events = append(events, &e)
	}
	return det, events, nil
}
