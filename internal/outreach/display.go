package outreach

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"daspos/internal/detector"
)

// The event display: Table 1's first row. RenderSVG draws a simplified
// event in the transverse (x–y) view — detector layers as circles, tracks
// as curved polylines colour-coded by charge, calorimeter deposits as
// radial bars, and the missing-momentum arrow — producing a
// self-contained SVG document any browser shows. This is the common
// display §2.1 argues for: it consumes only the common simplified format
// and the common geometry description.

// DisplayOptions tunes the rendering.
type DisplayOptions struct {
	// SizePx is the output's width and height; 0 uses 800.
	SizePx int
	// MaxTowers caps drawn calorimeter bars (largest first); 0 uses 64.
	MaxTowers int
	// Caption overrides the default run/event caption.
	Caption string
}

// RenderSVG draws one event over a geometry in the transverse view.
func RenderSVG(det *detector.Detector, e *SimplifiedEvent, opts DisplayOptions) string {
	size := opts.SizePx
	if size <= 0 {
		size = 800
	}
	maxTowers := opts.MaxTowers
	if maxTowers <= 0 {
		maxTowers = 64
	}
	// World scale: the outermost calorimeter plus tower headroom maps to
	// the canvas (muon chambers are drawn off-scale at the rim).
	outer := 2200.0
	for _, l := range det.Layers {
		if l.Kind == detector.KindHCal && l.Radius*1.25 > outer {
			outer = l.Radius * 1.25
		}
	}
	half := float64(size) / 2
	px := func(mm float64) float64 { return mm / outer * (half * 0.95) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="%g %g %d %d">`+"\n",
		size, size, -half, -half, size, size)
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%d" height="%d" fill="#0b0e1a"/>`+"\n", -half, -half, size, size)

	// Detector layers: tracker and calorimeter circles.
	for _, l := range det.Layers {
		if !l.Sensitive() && l.Kind != detector.KindBeamPipe {
			continue
		}
		var stroke string
		switch l.Kind {
		case detector.KindBeamPipe:
			stroke = "#333a55"
		case detector.KindPixel, detector.KindStrip:
			stroke = "#27304f"
		case detector.KindECal:
			stroke = "#1f4d3a"
		case detector.KindHCal:
			stroke = "#4d3a1f"
		default:
			continue // muon chambers are beyond the canvas scale
		}
		fmt.Fprintf(&b, `<circle cx="0" cy="0" r="%.1f" fill="none" stroke="%s" stroke-width="1"/>`+"\n",
			px(l.Radius), stroke)
	}

	// Calorimeter towers: radial bars from the calo radius, length ~ ET.
	ecalR, hcalR := 1290.0, 1800.0
	if idx := det.LayersOf(detector.KindECal); len(idx) > 0 {
		ecalR = det.Layer(idx[0]).Radius
	}
	if idx := det.LayersOf(detector.KindHCal); len(idx) > 0 {
		hcalR = det.Layer(idx[0]).Radius
	}
	towers := append([]DisplayTower(nil), e.Towers...)
	sort.Slice(towers, func(i, j int) bool { return towers[i].E > towers[j].E })
	if len(towers) > maxTowers {
		towers = towers[:maxTowers]
	}
	for _, tw := range towers {
		base := hcalR
		color := "#e0a93f"
		if tw.EM {
			base = ecalR
			color = "#46c08a"
		}
		et := tw.E / math.Cosh(tw.Eta)
		length := math.Min(et*12, 0.22*outer)
		x0, y0 := px(base)*math.Cos(tw.Phi), px(base)*math.Sin(tw.Phi)
		x1, y1 := px(base+length)*math.Cos(tw.Phi), px(base+length)*math.Sin(tw.Phi)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
			x0, y0, x1, y1, color)
	}

	// Tracks: polylines through the tracker, colour by charge.
	for _, trk := range e.Tracks {
		color := "#5aa9ff" // negative
		if trk.Charge > 0 {
			color = "#ff5a7a"
		}
		var pts []string
		for _, p := range trk.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p[0]), px(p[1])))
		}
		width := 1.0
		if trk.Pt > 10 {
			width = 2.5
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%g" opacity="0.85"/>`+"\n",
			strings.Join(pts, " "), color, width)
	}

	// Missing transverse momentum: a dashed arrow from the centre.
	if e.MET.Pt > 1 {
		length := math.Min(e.MET.Pt*20, 0.8*outer)
		x, y := px(length)*math.Cos(e.MET.Phi), px(length)*math.Sin(e.MET.Phi)
		fmt.Fprintf(&b, `<line x1="0" y1="0" x2="%.1f" y2="%.1f" stroke="#f5f1e8" stroke-width="2" stroke-dasharray="6,4"/>`+"\n", x, y)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#f5f1e8"/>`+"\n", x, y)
	}

	caption := opts.Caption
	if caption == "" {
		caption = fmt.Sprintf("%s  run %d  event %d  (MET %.1f GeV)", det.Name, e.Run, e.Event, e.MET.Pt)
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#8892b0" font-family="monospace" font-size="13">%s</text>`+"\n",
		-half+12, half-14, escapeXML(caption))
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
