package outreach

import (
	"archive/zip"
	"encoding/json"
	"io"
	"testing"
)

// newZipWithEventOnly writes a zip containing one event file but no
// geometry, for negative-path testing.
func newZipWithEventOnly(t *testing.T, w io.Writer) *zip.Writer {
	t.Helper()
	zw := zip.NewWriter(w)
	f, err := zw.Create("events/00000.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(&SimplifiedEvent{}); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return zw
}
