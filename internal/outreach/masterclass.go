package outreach

import (
	"fmt"
	"math"
	"sort"

	"daspos/internal/fourvec"
	"daspos/internal/hist"
)

// Master classes: the guided exercises of §2.2, "perhaps the most
// completely documented analyses in the high energy physics domain". Each
// exercise carries its full instructions alongside the measuring code, so
// archiving the exercise preserves both the documentation and a runnable
// analysis — the paper's observation that these can "act as test cases for
// different representations or abstractions of the analysis process".

// MasterClassResult is what a classroom run produces.
type MasterClassResult struct {
	Exercise string
	// EventsUsed counts events entering the measurement.
	EventsUsed int
	// Histogram is the exercise's headline distribution.
	Histogram *hist.H1D
	// Estimate and EstimateLabel report the measured quantity.
	Estimate      float64
	EstimateLabel string
}

// MasterClass is one guided exercise over simplified events.
type MasterClass struct {
	// Name is the registry key; Experiment the Table 1 attribution.
	Name       string
	Experiment string
	// Documentation is the student-facing instructions.
	Documentation string
	// Run measures the exercise's quantity over a sample.
	Run func(events []*SimplifiedEvent) (*MasterClassResult, error)
}

// MasterClasses returns the built-in exercises: the W/Z/Higgs paths of the
// ATLAS/CMS rows and the dimuon variant usable with any experiment's
// converted data.
func MasterClasses() []MasterClass {
	return []MasterClass{zPath(), wPath(), higgsHunt()}
}

// MasterClassByName returns a registered exercise.
func MasterClassByName(name string) (MasterClass, bool) {
	for _, m := range MasterClasses() {
		if m.Name == name {
			return m, true
		}
	}
	return MasterClass{}, false
}

// zPath reconstructs the Z boson from opposite-sign muon pairs.
func zPath() MasterClass {
	return MasterClass{
		Name:       "z-path",
		Experiment: "Atlas/CMS",
		Documentation: `Z path. Select events with two muons of opposite charge, each with
pT > 20 GeV. Compute the invariant mass of the pair and enter it in the
60-120 GeV histogram. The peak position estimates the Z boson mass.`,
		Run: func(events []*SimplifiedEvent) (*MasterClassResult, error) {
			h := hist.NewH1D("masterclass/z_mass", 60, 60, 120)
			used := 0
			for _, e := range events {
				mus := objectsOf(e, "muon", 20)
				var plus, minus []DisplayObject
				for _, m := range mus {
					if m.Charge > 0 {
						plus = append(plus, m)
					} else {
						minus = append(minus, m)
					}
				}
				if len(plus) == 0 || len(minus) == 0 {
					continue
				}
				used++
				h.Fill(pairMass(plus[0], minus[0]))
			}
			if used == 0 {
				return nil, fmt.Errorf("outreach: z-path found no dimuon events")
			}
			return &MasterClassResult{
				Exercise: "z-path", EventsUsed: used, Histogram: h,
				Estimate:      h.BinCenter(h.MaxBin()),
				EstimateLabel: "m(Z) estimate [GeV]",
			}, nil
		},
	}
}

// wPath counts leptonic W decays by charge, measuring the W+/W- ratio.
func wPath() MasterClass {
	return MasterClass{
		Name:       "w-path",
		Experiment: "Atlas/CMS",
		Documentation: `W path. Select events with exactly one lepton (electron or muon) of
pT > 25 GeV and missing transverse momentum above 25 GeV. Tally the lepton
charge. The ratio N(+)/N(-) reflects the proton's quark content.`,
		Run: func(events []*SimplifiedEvent) (*MasterClassResult, error) {
			h := hist.NewH1D("masterclass/w_charge", 2, -2, 2)
			plus, minus := 0, 0
			for _, e := range events {
				if e.MET.Pt < 25 {
					continue
				}
				leps := append(objectsOf(e, "muon", 25), objectsOf(e, "electron", 25)...)
				if len(leps) != 1 {
					continue
				}
				h.Fill(leps[0].Charge)
				if leps[0].Charge > 0 {
					plus++
				} else {
					minus++
				}
			}
			if plus+minus == 0 {
				return nil, fmt.Errorf("outreach: w-path found no W candidates")
			}
			ratio := math.Inf(1)
			if minus > 0 {
				ratio = float64(plus) / float64(minus)
			}
			return &MasterClassResult{
				Exercise: "w-path", EventsUsed: plus + minus, Histogram: h,
				Estimate:      ratio,
				EstimateLabel: "N(W+)/N(W-)",
			}, nil
		},
	}
}

// higgsHunt looks for a diphoton resonance.
func higgsHunt() MasterClass {
	return MasterClass{
		Name:       "higgs-hunt",
		Experiment: "Atlas/CMS",
		Documentation: `Higgs hunt. Select events with two photons of pT > 20 GeV. Histogram
the diphoton invariant mass between 100 and 160 GeV and look for a narrow
peak over the smooth background — the 2012 discovery, on your laptop.`,
		Run: func(events []*SimplifiedEvent) (*MasterClassResult, error) {
			h := hist.NewH1D("masterclass/diphoton_mass", 60, 100, 160)
			used := 0
			for _, e := range events {
				phs := objectsOf(e, "photon", 20)
				if len(phs) < 2 {
					continue
				}
				used++
				h.Fill(pairMass(phs[0], phs[1]))
			}
			if used == 0 {
				return nil, fmt.Errorf("outreach: higgs-hunt found no diphoton events")
			}
			return &MasterClassResult{
				Exercise: "higgs-hunt", EventsUsed: used, Histogram: h,
				Estimate:      h.BinCenter(h.MaxBin()),
				EstimateLabel: "m(H) estimate [GeV]",
			}, nil
		},
	}
}

// objectsOf returns the event's objects of one type above a pT threshold,
// sorted by decreasing pT.
func objectsOf(e *SimplifiedEvent, typ string, minPt float64) []DisplayObject {
	var out []DisplayObject
	for _, o := range e.Objects {
		if o.Type == typ && o.Pt >= minPt {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pt > out[j].Pt })
	return out
}

func pairMass(a, b DisplayObject) float64 {
	va := fourvec.PtEtaPhiM(a.Pt, a.Eta, a.Phi, a.Mass)
	vb := fourvec.PtEtaPhiM(b.Pt, b.Eta, b.Phi, b.Mass)
	return fourvec.InvariantMass(va, vb)
}
