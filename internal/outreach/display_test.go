package outreach

import (
	"encoding/xml"
	"strings"
	"testing"

	"daspos/internal/detector"
	"daspos/internal/generator"
)

func displayEvent(t *testing.T) (*detector.Detector, *SimplifiedEvent) {
	t.Helper()
	events := recoEvents(t, 8, 1, func(c generator.Config) generator.Generator { return generator.NewDrellYanZ(c) })
	det := detector.Standard()
	return det, NewConverter(det).Convert(events[0])
}

func TestRenderSVGWellFormed(t *testing.T) {
	det, e := displayEvent(t)
	svg := RenderSVG(det, e, DisplayOptions{})
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	elems := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("SVG not well-formed: %v", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elems++
		}
	}
	if elems < 10 {
		t.Fatalf("suspiciously empty SVG: %d elements", elems)
	}
	for _, want := range []string{"<svg", "polyline", "circle", "run 1"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestRenderSVGContentScalesWithEvent(t *testing.T) {
	det, e := displayEvent(t)
	full := RenderSVG(det, e, DisplayOptions{})
	empty := RenderSVG(det, &SimplifiedEvent{}, DisplayOptions{})
	if len(full) <= len(empty) {
		t.Fatal("event content not rendered")
	}
	if strings.Count(full, "polyline") != len(e.Tracks) {
		t.Fatalf("polylines %d != tracks %d", strings.Count(full, "polyline"), len(e.Tracks))
	}
}

func TestRenderSVGOptions(t *testing.T) {
	det, e := displayEvent(t)
	small := RenderSVG(det, e, DisplayOptions{SizePx: 200, MaxTowers: 2, Caption: `A "quoted" <caption>`})
	if !strings.Contains(small, `width="200"`) {
		t.Fatal("size option ignored")
	}
	if !strings.Contains(small, "&quot;quoted&quot;") || strings.Contains(small, "<caption>") {
		t.Fatal("caption not escaped")
	}
	// Tower cap: at most 2 tower bars (lines beyond the MET dash).
	if n := strings.Count(small, "stroke-width=\"3\""); n > 2 {
		t.Fatalf("tower cap ignored: %d bars", n)
	}
	// Must still parse.
	dec := xml.NewDecoder(strings.NewReader(small))
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("small SVG not well-formed: %v", err)
		}
	}
}

func TestRenderSVGChargeColours(t *testing.T) {
	det := detector.Standard()
	e := &SimplifiedEvent{
		Tracks: []DisplayTrack{
			{Pt: 20, Charge: 1, Points: [][3]float64{{0, 0, 0}, {100, 50, 0}}},
			{Pt: 20, Charge: -1, Points: [][3]float64{{0, 0, 0}, {-100, 50, 0}}},
		},
	}
	svg := RenderSVG(det, e, DisplayOptions{})
	if !strings.Contains(svg, "#ff5a7a") || !strings.Contains(svg, "#5aa9ff") {
		t.Fatal("charge colours missing")
	}
}

func BenchmarkRenderSVG(b *testing.B) {
	events := recoEvents(b, 8, 1, func(c generator.Config) generator.Generator { return generator.NewQCDDijet(c) })
	det := detector.Standard()
	e := NewConverter(det).Convert(events[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RenderSVG(det, e, DisplayOptions{})
	}
}
