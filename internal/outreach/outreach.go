// Package outreach implements the Level 2 outreach ecosystem of §2.1: the
// per-experiment outreach-infrastructure registry that regenerates the
// paper's Table 1, the simplified event format that event displays and
// master classes consume, the "thin layer of software [that] will convert
// data in a relatively low-level format (called AOD) ... into a simplified
// representation" (the Finland converter), and the master-class exercises
// themselves (Z path, W path, Higgs hunt, D lifetime).
package outreach

import (
	"daspos/internal/texttable"
)

// Profile is one experiment's outreach infrastructure: a row group of
// Table 1.
type Profile struct {
	Experiment      string   `json:"experiment"`
	EventDisplays   []string `json:"event_displays"`
	GeometryFormats []string `json:"geometry_formats"`
	AnalysisTools   []string `json:"analysis_tools"`
	DataFormats     []string `json:"data_formats"`
	SelfDocumenting string   `json:"self_documenting"`
	MasterClasses   []string `json:"master_classes"`
	Comments        string   `json:"comments,omitempty"`
}

// Profiles returns the four LHC experiments' outreach profiles exactly as
// the paper's (2014-updated) Table 1 records them.
func Profiles() []Profile {
	return []Profile{
		{
			Experiment:      "Alice",
			EventDisplays:   []string{"Root-based", "2nd simplified one?"},
			GeometryFormats: []string{"Root", "2nd simplified one?"},
			AnalysisTools:   []string{"X/Root-based (like LHCb one)", "browser one w/o Root (planned)"},
			DataFormats:     []string{"Root"},
			SelfDocumenting: "?",
			MasterClasses:   []string{"various very specific analyses, some based on V0s, others on general tracks"},
			Comments:        "Root too heavy for classroom use",
		},
		{
			Experiment:      "Atlas",
			EventDisplays:   []string{"Java-based", "ATLANTIS", "VP1"},
			GeometryFormats: []string{"XML, full Geometry"},
			AnalysisTools:   []string{"MINERVA", "HYPATIA", "LPPP", "CAMELIA", "OPloT"},
			DataFormats:     []string{"Jive-XML", "Root", "Full EDM", "AOD", "xAOD"},
			SelfDocumenting: "XML one is",
			MasterClasses:   []string{"W, Z, Higgs, including large MC samples and data"},
		},
		{
			Experiment:      "CMS",
			EventDisplays:   []string{"iSpy (http://cern.ch/ispy)"},
			GeometryFormats: []string{"XML/JSON"},
			AnalysisTools:   []string{"Java-script based tools"},
			DataFormats:     []string{"ig"},
			SelfDocumenting: "Y (http://cern.ch/ispy/ig-specs.htm)",
			MasterClasses:   []string{"similar to ATLAS, different datasets, not so much MC"},
		},
		{
			Experiment:      "LHCb",
			EventDisplays:   []string{"OpenInventor", "Panoramix"},
			GeometryFormats: []string{"XML"},
			AnalysisTools:   []string{"X-based"},
			DataFormats:     []string{"Root"},
			SelfDocumenting: "?",
			MasterClasses:   []string{"D lifetime"},
		},
	}
}

// ProfileByExperiment returns a registered profile.
func ProfileByExperiment(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Experiment == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Table1 regenerates the paper's Table 1 as a renderable table: the
// feature rows are the table's left column, one experiment per column.
func Table1() *texttable.Table {
	profiles := Profiles()
	headers := make([]interface{}, 0, len(profiles)+1)
	headers = append(headers, "")
	for _, p := range profiles {
		headers = append(headers, p.Experiment)
	}
	hs := make([]string, len(headers))
	for i, h := range headers {
		hs[i] = h.(string)
	}
	t := texttable.New(hs...)
	t.Title = "Table 1. Outreach infrastructure of the four LHC experiments"
	t.MaxCellWidth = 28

	row := func(label string, get func(Profile) string) {
		cells := make([]interface{}, 0, len(profiles)+1)
		cells = append(cells, label)
		for _, p := range profiles {
			cells = append(cells, get(p))
		}
		t.AddRow(cells...)
	}
	row("Event Display(s)", func(p Profile) string { return join(p.EventDisplays) })
	row("Format of Geometry description", func(p Profile) string { return join(p.GeometryFormats) })
	row("Data Browser/Histogrammer/Demonstration analyses", func(p Profile) string { return join(p.AnalysisTools) })
	row("Data Format(s)", func(p Profile) string { return join(p.DataFormats) })
	row("Self-documenting?", func(p Profile) string { return p.SelfDocumenting })
	row("Master Class uses", func(p Profile) string { return join(p.MasterClasses) })
	row("Comments", func(p Profile) string { return p.Comments })
	return t
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
