package outreach

import (
	"math"

	"daspos/internal/hepmc"
	"daspos/internal/units"
)

// Truth-level conversion for the displaced-decay master classes. The LHCb
// "D lifetime" and ALICE "V0" exercises of Table 1 operate on preprocessed
// candidate lists (the collaborations select and fit the decays before the
// classroom ever sees them); ConvertTruth plays the role of that
// preprocessing, extracting decay candidates with flight information from
// the generator record into the simplified format.

// DecayCandidate is one preprocessed displaced-decay candidate.
type DecayCandidate struct {
	// Species is the decayed particle's name ("D0", "K0_S", "Lambda0");
	// antiparticles share the particle name, as the classroom exercises do.
	Species string `json:"species"`
	// Mass is the invariant mass of the decay products (GeV).
	Mass float64 `json:"mass"`
	// Pt and P are the candidate's transverse and total momentum (GeV).
	Pt float64 `json:"pt"`
	P  float64 `json:"p"`
	// FlightMM is the decay length in mm.
	FlightMM float64 `json:"flight_mm"`
	// ProperTimePs is m·L/(p·c) in picoseconds: the lifetime observable.
	ProperTimePs float64 `json:"proper_time_ps"`
}

// ConvertTruth extracts the displaced-decay candidates of one generator
// event. Only two-body decays of known long-lived species are kept,
// mirroring the exercises' candidate preselection.
func ConvertTruth(ev *hepmc.Event) []DecayCandidate {
	var out []DecayCandidate
	for _, p := range ev.Particles {
		if p.Status != hepmc.StatusDecayed {
			continue
		}
		code := p.PDG
		if code < 0 {
			code = -code
		}
		switch code {
		case units.PDGDZero, units.PDGKZeroShort, units.PDGLambda:
		default:
			continue
		}
		kids := ev.Children(p.Barcode)
		if len(kids) != 2 {
			continue
		}
		prod, dec := ev.Vertex(p.ProdVertex), ev.Vertex(p.EndVertex)
		if prod == nil || dec == nil {
			continue
		}
		dx, dy, dz := dec.X-prod.X, dec.Y-prod.Y, dec.Z-prod.Z
		flight := math.Sqrt(dx*dx + dy*dy + dz*dz)
		sum := kids[0].P.Add(kids[1].P)
		mom := sum.P()
		if mom <= 0 {
			continue
		}
		sp, _ := units.Lookup(code)
		out = append(out, DecayCandidate{
			Species:      sp.Name,
			Mass:         round3(sum.M()),
			Pt:           round3(sum.Pt()),
			P:            round3(mom),
			FlightMM:     round3(flight),
			ProperTimePs: round3(sum.M() * flight / (mom * units.SpeedOfLight) * 1e3),
		})
	}
	return out
}
