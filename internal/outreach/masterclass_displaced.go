package outreach

import (
	"fmt"
	"strings"

	"daspos/internal/hist"
)

// The displaced-decay master classes of Table 1: LHCb's "D lifetime" and
// ALICE's V0-based exercises. Both run on preprocessed DecayCandidate
// lists (see ConvertTruth) rather than on the simplified event format,
// matching how the real exercises ship fitted candidates to classrooms.

// DecayMasterClass is one guided exercise over decay candidates.
type DecayMasterClass struct {
	Name          string
	Experiment    string
	Documentation string
	Run           func(candidates []DecayCandidate) (*MasterClassResult, error)
}

// DecayMasterClasses returns the built-in displaced-decay exercises.
func DecayMasterClasses() []DecayMasterClass {
	return []DecayMasterClass{dLifetimeClass(), v0FinderClass()}
}

// DecayMasterClassByName returns a registered exercise.
func DecayMasterClassByName(name string) (DecayMasterClass, bool) {
	for _, m := range DecayMasterClasses() {
		if m.Name == name {
			return m, true
		}
	}
	return DecayMasterClass{}, false
}

// dLifetimeClass measures the D0 lifetime: Table 1's LHCb row.
func dLifetimeClass() DecayMasterClass {
	return DecayMasterClass{
		Name:       "d-lifetime",
		Experiment: "LHCb",
		Documentation: `D lifetime. Each candidate is a D0 meson decaying to a kaon and a
pion, with its measured flight distance. Histogram the proper decay time
t = m·L/(p·c) and read off the exponential slope: the mean of the
distribution estimates the D0 lifetime (the published value is 0.41 ps).`,
		Run: func(candidates []DecayCandidate) (*MasterClassResult, error) {
			h := hist.NewH1D("masterclass/d_proper_time_ps", 50, 0, 3)
			used := 0
			for _, c := range candidates {
				if c.Species != "D0" {
					continue
				}
				// Mass window around the D0: the exercise's "signal region".
				if c.Mass < 1.82 || c.Mass > 1.91 {
					continue
				}
				used++
				h.Fill(c.ProperTimePs)
			}
			if used == 0 {
				return nil, fmt.Errorf("outreach: d-lifetime found no D0 candidates")
			}
			return &MasterClassResult{
				Exercise: "d-lifetime", EventsUsed: used, Histogram: h,
				Estimate:      h.Mean(),
				EstimateLabel: "tau(D0) estimate [ps]",
			}, nil
		},
	}
}

// v0FinderClass identifies V0 species by invariant mass: Table 1's ALICE
// row ("various very specific analyses, some based on V0s").
func v0FinderClass() DecayMasterClass {
	return DecayMasterClass{
		Name:       "v0-finder",
		Experiment: "Alice",
		Documentation: `V0 finder. Each candidate is a neutral particle decaying to two
charged tracks at a displaced vertex. Histogram the invariant mass and
identify the two populations: K0_S near 0.498 GeV and Lambda near
1.116 GeV. Report how many of each you found.`,
		Run: func(candidates []DecayCandidate) (*MasterClassResult, error) {
			h := hist.NewH1D("masterclass/v0_mass", 80, 0.3, 1.3)
			ks, lambda := 0, 0
			for _, c := range candidates {
				if !strings.HasPrefix(c.Species, "K0_S") && !strings.HasPrefix(c.Species, "Lambda") {
					continue
				}
				h.Fill(c.Mass)
				switch {
				case c.Mass > 0.45 && c.Mass < 0.55:
					ks++
				case c.Mass > 1.10 && c.Mass < 1.14:
					lambda++
				}
			}
			if ks+lambda == 0 {
				return nil, fmt.Errorf("outreach: v0-finder found no V0 candidates")
			}
			return &MasterClassResult{
				Exercise: "v0-finder", EventsUsed: ks + lambda, Histogram: h,
				// The headline number: the K_S / Lambda production ratio.
				Estimate:      safeRatio(ks, lambda),
				EstimateLabel: "N(K0_S)/N(Lambda)",
			}, nil
		},
	}
}

func safeRatio(a, b int) float64 {
	if b == 0 {
		return float64(a)
	}
	return float64(a) / float64(b)
}
