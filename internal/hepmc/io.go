package hepmc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"daspos/internal/fourvec"
)

// The wire format is line-oriented ASCII in the spirit of HepMC2:
//
//	HEPMC-DASPOS 1
//	E <number> <processID> <weight> <nVertices> <nParticles>
//	V <barcode> <x> <y> <z> <t>
//	P <barcode> <pdg> <status> <px> <py> <pz> <e> <prodVtx> <endVtx>
//	...
//	END
//
// Floats are written with %.17g so archived event samples round-trip
// bit-exactly — the property the preservation tests pin down.

// magic is the stream header identifying format and version.
const magic = "HEPMC-DASPOS 1"

// ErrBadFormat is wrapped by all parse errors.
var ErrBadFormat = errors.New("hepmc: malformed stream")

// Writer encodes events onto an underlying stream.
type Writer struct {
	bw          *bufio.Writer
	wroteHeader bool
}

// NewWriter returns a Writer on w. The stream header is emitted with the
// first event.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write encodes one event.
func (w *Writer) Write(e *Event) error {
	if !w.wroteHeader {
		if _, err := fmt.Fprintln(w.bw, magic); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	fmt.Fprintf(w.bw, "E %d %d %.17g %d %d\n",
		e.Number, e.ProcessID, e.Weight, len(e.Vertices), len(e.Particles))
	for _, v := range e.Vertices {
		fmt.Fprintf(w.bw, "V %d %.17g %.17g %.17g %.17g\n", v.Barcode, v.X, v.Y, v.Z, v.T)
	}
	for _, p := range e.Particles {
		fmt.Fprintf(w.bw, "P %d %d %d %.17g %.17g %.17g %.17g %d %d\n",
			p.Barcode, p.PDG, p.Status,
			p.P.Px, p.P.Py, p.P.Pz, p.P.E,
			p.ProdVertex, p.EndVertex)
	}
	_, err := fmt.Fprintln(w.bw, "END")
	return err
}

// Flush writes any buffered data to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes events from a stream produced by Writer.
type Reader struct {
	sc            *bufio.Scanner
	checkedHeader bool
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return &Reader{sc: sc}
}

// Read decodes the next event, returning io.EOF at end of stream.
func (r *Reader) Read() (*Event, error) {
	if !r.checkedHeader {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		if strings.TrimSpace(r.sc.Text()) != magic {
			return nil, fmt.Errorf("%w: bad header %q", ErrBadFormat, r.sc.Text())
		}
		r.checkedHeader = true
	}
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	line := r.sc.Text()
	f := strings.Fields(line)
	if len(f) != 6 || f[0] != "E" {
		return nil, fmt.Errorf("%w: expected E record, got %q", ErrBadFormat, line)
	}
	num, err1 := strconv.Atoi(f[1])
	proc, err2 := strconv.Atoi(f[2])
	weight, err3 := strconv.ParseFloat(f[3], 64)
	nv, err4 := strconv.Atoi(f[4])
	np, err5 := strconv.Atoi(f[5])
	if err := firstErr(err1, err2, err3, err4, err5); err != nil {
		return nil, fmt.Errorf("%w: bad E record %q: %w", ErrBadFormat, line, err)
	}
	if nv < 0 || np < 0 || nv > 1<<20 || np > 1<<20 {
		return nil, fmt.Errorf("%w: unreasonable counts in %q", ErrBadFormat, line)
	}
	e := &Event{Number: num, ProcessID: proc, Weight: weight,
		Vertices: make([]Vertex, 0, nv), Particles: make([]Particle, 0, np)}
	for i := 0; i < nv; i++ {
		v, err := r.readVertex()
		if err != nil {
			return nil, err
		}
		e.Vertices = append(e.Vertices, v)
	}
	for i := 0; i < np; i++ {
		p, err := r.readParticle()
		if err != nil {
			return nil, err
		}
		e.Particles = append(e.Particles, p)
	}
	if !r.sc.Scan() || strings.TrimSpace(r.sc.Text()) != "END" {
		return nil, fmt.Errorf("%w: event %d not terminated", ErrBadFormat, num)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func (r *Reader) readVertex() (Vertex, error) {
	if !r.sc.Scan() {
		return Vertex{}, fmt.Errorf("%w: truncated vertex block", ErrBadFormat)
	}
	f := strings.Fields(r.sc.Text())
	if len(f) != 6 || f[0] != "V" {
		return Vertex{}, fmt.Errorf("%w: expected V record, got %q", ErrBadFormat, r.sc.Text())
	}
	bc, err0 := strconv.Atoi(f[1])
	x, err1 := strconv.ParseFloat(f[2], 64)
	y, err2 := strconv.ParseFloat(f[3], 64)
	z, err3 := strconv.ParseFloat(f[4], 64)
	t, err4 := strconv.ParseFloat(f[5], 64)
	if err := firstErr(err0, err1, err2, err3, err4); err != nil {
		return Vertex{}, fmt.Errorf("%w: bad V record: %w", ErrBadFormat, err)
	}
	return Vertex{Barcode: bc, X: x, Y: y, Z: z, T: t}, nil
}

func (r *Reader) readParticle() (Particle, error) {
	if !r.sc.Scan() {
		return Particle{}, fmt.Errorf("%w: truncated particle block", ErrBadFormat)
	}
	f := strings.Fields(r.sc.Text())
	if len(f) != 10 || f[0] != "P" {
		return Particle{}, fmt.Errorf("%w: expected P record, got %q", ErrBadFormat, r.sc.Text())
	}
	bc, err0 := strconv.Atoi(f[1])
	pdg, err1 := strconv.Atoi(f[2])
	status, err2 := strconv.Atoi(f[3])
	px, err3 := strconv.ParseFloat(f[4], 64)
	py, err4 := strconv.ParseFloat(f[5], 64)
	pz, err5 := strconv.ParseFloat(f[6], 64)
	en, err6 := strconv.ParseFloat(f[7], 64)
	pv, err7 := strconv.Atoi(f[8])
	ev, err8 := strconv.Atoi(f[9])
	if err := firstErr(err0, err1, err2, err3, err4, err5, err6, err7, err8); err != nil {
		return Particle{}, fmt.Errorf("%w: bad P record: %w", ErrBadFormat, err)
	}
	return Particle{
		Barcode: bc, PDG: pdg, Status: status,
		P:          fourvec.PxPyPzE(px, py, pz, en),
		ProdVertex: pv, EndVertex: ev,
	}, nil
}

// ReadAll decodes the remaining events in the stream.
func (r *Reader) ReadAll() ([]*Event, error) {
	var out []*Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
