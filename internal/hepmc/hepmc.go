// Package hepmc defines the Monte Carlo generator event record and its
// plain-text wire format — the interchange layer the paper identifies as
// RIVET's input contract ("any Monte Carlo output can be juxtaposed with
// the data, as long as it can produce output in HepMC format").
//
// The record mirrors the HepMC design: an event is a graph of vertices
// connected by particles. Particles carry a PDG code, a status (beam,
// decayed, or final state), and a four-momentum; vertices carry a
// space-time position so decay lengths (the D-lifetime and V0 master
// classes) survive into simulation.
package hepmc

import (
	"fmt"

	"daspos/internal/fourvec"
	"daspos/internal/units"
)

// Particle status codes, following the HepMC/PYTHIA convention subset the
// substrate needs.
const (
	// StatusFinal marks a stable particle that exits the generator and
	// enters the detector simulation.
	StatusFinal = 1
	// StatusDecayed marks a particle that decayed inside the generator.
	StatusDecayed = 2
	// StatusBeam marks an incoming beam particle.
	StatusBeam = 4
)

// Particle is one edge of the event graph.
type Particle struct {
	// Barcode is the particle's unique, 1-based identifier within the
	// event; 0 is reserved for "no particle".
	Barcode int
	PDG     int
	Status  int
	P       fourvec.Vec
	// ProdVertex and EndVertex are vertex barcodes (negative by HepMC
	// convention); 0 means none (beams have no production vertex, final
	// particles no end vertex).
	ProdVertex int
	EndVertex  int
}

// IsFinal reports whether the particle reaches the detector.
func (p Particle) IsFinal() bool { return p.Status == StatusFinal }

// Charge returns the particle's electric charge from the PDG table.
func (p Particle) Charge() float64 { return units.Charge(p.PDG) }

// Vertex is one node of the event graph, at position (X, Y, Z) mm and time
// T ns relative to the nominal interaction point.
type Vertex struct {
	// Barcode is the vertex's unique, negative identifier within the event.
	Barcode    int
	X, Y, Z, T float64
}

// Event is a complete generator event: the basic logical unit of data in
// particle physics (paper §3.1).
type Event struct {
	// Number is the sequential event number within a run.
	Number int
	// ProcessID labels the physics process that produced the event, using
	// the generator's process catalogue.
	ProcessID int
	// Weight is the event weight; 1 for unweighted generation.
	Weight float64
	// Particles and Vertices hold the event graph. Particle barcodes are
	// 1-based indices into Particles; vertex barcodes are negative, with
	// vertex -k at Vertices[k-1].
	Particles []Particle
	Vertices  []Vertex
}

// NewEvent returns an empty event with unit weight.
func NewEvent(number, processID int) *Event {
	return &Event{Number: number, ProcessID: processID, Weight: 1}
}

// AddVertex appends a vertex and returns its (negative) barcode.
func (e *Event) AddVertex(x, y, z, t float64) int {
	bc := -(len(e.Vertices) + 1)
	e.Vertices = append(e.Vertices, Vertex{Barcode: bc, X: x, Y: y, Z: z, T: t})
	return bc
}

// AddParticle appends a particle and returns its (positive) barcode.
func (e *Event) AddParticle(pdg, status int, p fourvec.Vec, prodVtx, endVtx int) int {
	bc := len(e.Particles) + 1
	e.Particles = append(e.Particles, Particle{
		Barcode: bc, PDG: pdg, Status: status, P: p,
		ProdVertex: prodVtx, EndVertex: endVtx,
	})
	return bc
}

// Particle returns the particle with the given barcode, or nil.
func (e *Event) Particle(barcode int) *Particle {
	if barcode < 1 || barcode > len(e.Particles) {
		return nil
	}
	return &e.Particles[barcode-1]
}

// Vertex returns the vertex with the given (negative) barcode, or nil.
func (e *Event) Vertex(barcode int) *Vertex {
	idx := -barcode - 1
	if barcode >= 0 || idx >= len(e.Vertices) {
		return nil
	}
	return &e.Vertices[idx]
}

// FinalState returns the stable particles of the event, the input to truth-
// level (RIVET-style) analyses and to the detector simulation.
func (e *Event) FinalState() []Particle {
	var out []Particle
	for _, p := range e.Particles {
		if p.IsFinal() {
			out = append(out, p)
		}
	}
	return out
}

// VisibleSum returns the four-momentum sum of final-state particles that a
// detector can in principle see (everything except neutrinos).
func (e *Event) VisibleSum() fourvec.Vec {
	var sum fourvec.Vec
	for _, p := range e.Particles {
		if p.IsFinal() && !units.IsNeutrino(p.PDG) {
			sum = sum.Add(p.P)
		}
	}
	return sum
}

// MissingPt returns the magnitude and azimuth of the missing transverse
// momentum implied by the invisible final state.
func (e *Event) MissingPt() (pt, phi float64) {
	var sum fourvec.Vec
	for _, p := range e.Particles {
		if p.IsFinal() && units.IsNeutrino(p.PDG) {
			sum = sum.Add(p.P)
		}
	}
	return sum.Pt(), sum.Phi()
}

// Children returns the particles produced at the given particle's end
// vertex. A final-state particle has none.
func (e *Event) Children(barcode int) []Particle {
	p := e.Particle(barcode)
	if p == nil || p.EndVertex == 0 {
		return nil
	}
	var out []Particle
	for _, q := range e.Particles {
		if q.ProdVertex == p.EndVertex {
			out = append(out, q)
		}
	}
	return out
}

// Validate checks the structural invariants of the event graph: barcodes
// consistent with storage order, vertex references resolvable, and decayed
// particles possessing an end vertex. It returns nil if the event is sound.
func (e *Event) Validate() error {
	for i, p := range e.Particles {
		if p.Barcode != i+1 {
			return &GraphError{e.Number, "particle barcode out of order"}
		}
		if p.ProdVertex != 0 && e.Vertex(p.ProdVertex) == nil {
			return &GraphError{e.Number, "dangling production vertex"}
		}
		if p.EndVertex != 0 && e.Vertex(p.EndVertex) == nil {
			return &GraphError{e.Number, "dangling end vertex"}
		}
		if p.Status == StatusDecayed && p.EndVertex == 0 {
			return &GraphError{e.Number, "decayed particle without end vertex"}
		}
		if p.Status == StatusFinal && p.EndVertex != 0 {
			return &GraphError{e.Number, "final particle with end vertex"}
		}
	}
	for i, v := range e.Vertices {
		if v.Barcode != -(i + 1) {
			return &GraphError{e.Number, "vertex barcode out of order"}
		}
	}
	return nil
}

// GraphError reports a structural defect in an event graph.
type GraphError struct {
	Event int
	Msg   string
}

func (e *GraphError) Error() string {
	return fmt.Sprintf("hepmc: event %d: %s", e.Event, e.Msg)
}
