package hepmc

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"daspos/internal/fourvec"
	"daspos/internal/units"
	"daspos/internal/xrand"
)

// buildZEvent constructs a minimal but complete Z→µµ event graph:
// two beams → primary vertex → Z → decay vertex → µ+µ- (+ a neutrino pair
// variant when withNu is set).
func buildZEvent(n int, withNu bool) *Event {
	e := NewEvent(n, 1)
	pv := e.AddVertex(0, 0, 0.5, 0)
	b1 := e.AddParticle(units.PDGProton, StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
	b2 := e.AddParticle(units.PDGProton, StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
	_ = b1
	_ = b2
	dv := e.AddVertex(0, 0, 0.5, 0)
	e.AddParticle(units.PDGZ, StatusDecayed, fourvec.PtEtaPhiM(20, 0.3, 1.0, 91.2), pv, dv)
	z := e.Particle(3).P
	bx, by, bz := z.BoostVector()
	halfM := z.M() / 2
	mu1 := fourvec.PxPyPzE(halfM, 0, 0, halfM).Boost(bx, by, bz)
	mu2 := fourvec.PxPyPzE(-halfM, 0, 0, halfM).Boost(bx, by, bz)
	e.AddParticle(units.PDGMuon, StatusFinal, mu1, dv, 0)
	e.AddParticle(-units.PDGMuon, StatusFinal, mu2, dv, 0)
	if withNu {
		e.AddParticle(units.PDGNuMu, StatusFinal, fourvec.PtEtaPhiM(30, 1.0, 2.0, 0), pv, 0)
	}
	return e
}

func TestEventConstruction(t *testing.T) {
	e := buildZEvent(1, false)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(e.Particles) != 5 || len(e.Vertices) != 2 {
		t.Fatalf("graph size: %d particles, %d vertices", len(e.Particles), len(e.Vertices))
	}
	fs := e.FinalState()
	if len(fs) != 2 {
		t.Fatalf("final state size %d", len(fs))
	}
	m := fourvec.InvariantMass(fs[0].P, fs[1].P)
	if math.Abs(m-91.2) > 1e-6 {
		t.Fatalf("dimuon mass %v", m)
	}
}

func TestChildren(t *testing.T) {
	e := buildZEvent(1, false)
	kids := e.Children(3) // the Z
	if len(kids) != 2 {
		t.Fatalf("Z children: %d", len(kids))
	}
	for _, k := range kids {
		if k.PDG != units.PDGMuon && k.PDG != -units.PDGMuon {
			t.Fatalf("unexpected child %d", k.PDG)
		}
	}
	if e.Children(4) != nil {
		t.Fatal("final-state particle has children")
	}
	if e.Children(99) != nil {
		t.Fatal("unknown barcode has children")
	}
}

func TestLookupBounds(t *testing.T) {
	e := buildZEvent(1, false)
	if e.Particle(0) != nil || e.Particle(-1) != nil || e.Particle(100) != nil {
		t.Fatal("out-of-range particle lookup not nil")
	}
	if e.Vertex(0) != nil || e.Vertex(1) != nil || e.Vertex(-100) != nil {
		t.Fatal("out-of-range vertex lookup not nil")
	}
	if e.Vertex(-1) == nil || e.Particle(1) == nil {
		t.Fatal("valid lookups returned nil")
	}
}

func TestMissingPt(t *testing.T) {
	e := buildZEvent(1, true)
	pt, phi := e.MissingPt()
	if math.Abs(pt-30) > 1e-9 {
		t.Fatalf("missing pt %v", pt)
	}
	if math.Abs(phi-2.0) > 1e-9 {
		t.Fatalf("missing phi %v", phi)
	}
	vis := e.VisibleSum()
	if vis.Pt() == 0 {
		t.Fatal("visible sum empty")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	mk := func(mutate func(*Event)) error {
		e := buildZEvent(1, false)
		mutate(e)
		return e.Validate()
	}
	if err := mk(func(e *Event) { e.Particles[0].ProdVertex = -99 }); err == nil {
		t.Error("dangling production vertex accepted")
	}
	if err := mk(func(e *Event) { e.Particles[2].EndVertex = 0 }); err == nil {
		t.Error("decayed particle without end vertex accepted")
	}
	if err := mk(func(e *Event) { e.Particles[3].EndVertex = -1 }); err == nil {
		t.Error("final particle with end vertex accepted")
	}
	if err := mk(func(e *Event) { e.Particles[0].Barcode = 7 }); err == nil {
		t.Error("barcode disorder accepted")
	}
	if err := mk(func(e *Event) { e.Vertices[0].Barcode = -9 }); err == nil {
		t.Error("vertex barcode disorder accepted")
	}
	var ge *GraphError
	err := mk(func(e *Event) { e.Particles[0].Barcode = 7 })
	if !errorsAs(err, &ge) {
		t.Errorf("error type: %T", err)
	}
}

func errorsAs(err error, target **GraphError) bool {
	ge, ok := err.(*GraphError)
	if ok {
		*target = ge
	}
	return ok
}

func TestIORoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*Event
	for i := 0; i < 20; i++ {
		e := buildZEvent(i, i%3 == 0)
		e.Weight = 1.0 / float64(i+1)
		want = append(want, e)
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("event count %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Number != w.Number || g.ProcessID != w.ProcessID || g.Weight != w.Weight {
			t.Fatalf("event %d header mismatch", i)
		}
		if len(g.Particles) != len(w.Particles) || len(g.Vertices) != len(w.Vertices) {
			t.Fatalf("event %d graph size mismatch", i)
		}
		for j := range g.Particles {
			if g.Particles[j] != w.Particles[j] {
				t.Fatalf("event %d particle %d not bit-exact:\n got %+v\nwant %+v",
					i, j, g.Particles[j], w.Particles[j])
			}
		}
		for j := range g.Vertices {
			if g.Vertices[j] != w.Vertices[j] {
				t.Fatalf("event %d vertex %d mismatch", i, j)
			}
		}
	}
}

func TestReaderEOFOnEmpty(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")).Read(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	events, err := NewReader(strings.NewReader("")).ReadAll()
	if err != nil || len(events) != 0 {
		t.Fatalf("empty ReadAll: %v %d", err, len(events))
	}
}

func TestReaderRejectsCorruptStreams(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "NOT-HEPMC\n",
		"bad E record":    magic + "\nE 1 2\n",
		"not E":           magic + "\nX 1 2 3 4 5\n",
		"huge counts":     magic + "\nE 1 1 1.0 99999999 0\n",
		"truncated":       magic + "\nE 1 1 1.0 1 0\n",
		"bad vertex":      magic + "\nE 1 1 1.0 1 0\nV -1 x 0 0 0\nEND\n",
		"bad particle":    magic + "\nE 1 1 1.0 0 1\nP 1 13 1 0 0 0 0 0\nEND\n",
		"missing END":     magic + "\nE 1 1 1.0 0 1\nP 1 13 1 0 0 0 1 0 0\n",
		"invalid graph":   magic + "\nE 1 1 1.0 0 1\nP 1 13 2 0 0 0 1 0 0\nEND\n",
		"negative counts": magic + "\nE 1 1 1.0 -1 0\nEND\n",
	}
	for name, in := range cases {
		if _, err := NewReader(strings.NewReader(in)).Read(); err == nil {
			t.Errorf("%s: corrupt stream accepted", name)
		}
	}
}

func TestWeightPrecisionRoundTrip(t *testing.T) {
	e := NewEvent(1, 1)
	e.Weight = 0.1 + 0.2 // not representable exactly; must still round-trip
	e.AddParticle(units.PDGPhoton, StatusFinal, fourvec.PtEtaPhiM(math.Pi, 1.0/3, -2.0/7, 0), 0, 0)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(e); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	g, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight != e.Weight {
		t.Fatalf("weight drifted: %v vs %v", g.Weight, e.Weight)
	}
	if g.Particles[0].P != e.Particles[0].P {
		t.Fatalf("momentum drifted: %v vs %v", g.Particles[0].P, e.Particles[0].P)
	}
}

func BenchmarkWrite(b *testing.B) {
	e := buildZEvent(1, true)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		_ = w.Write(e)
	}
}

func BenchmarkReadWrite(b *testing.B) {
	e := buildZEvent(1, true)
	var ref bytes.Buffer
	w := NewWriter(&ref)
	_ = w.Write(e)
	_ = w.Flush()
	data := ref.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewReader(bytes.NewReader(data)).Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIORoundTripProperty(t *testing.T) {
	// Property: any structurally valid random event round-trips through
	// the wire format bit-exactly.
	rng := xrand.New(77)
	if err := quick.Check(func(nFinal uint8, seedMix uint16) bool {
		e := NewEvent(int(seedMix), 1)
		pv := e.AddVertex(rng.Gauss(0, 0.1), rng.Gauss(0, 0.1), rng.Gauss(0, 40), 0)
		e.AddParticle(units.PDGProton, StatusBeam, fourvec.PxPyPzE(0, 0, 6500, 6500), 0, pv)
		e.AddParticle(units.PDGProton, StatusBeam, fourvec.PxPyPzE(0, 0, -6500, 6500), 0, pv)
		n := int(nFinal%20) + 1
		for i := 0; i < n; i++ {
			e.AddParticle(units.PDGPiPlus, StatusFinal,
				fourvec.PtEtaPhiM(rng.Exp(5)+0.1, rng.Range(-4, 4), rng.Range(-math.Pi, math.Pi), 0.1396),
				pv, 0)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(e); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		if len(got.Particles) != len(e.Particles) || len(got.Vertices) != len(e.Vertices) {
			return false
		}
		for i := range got.Particles {
			if got.Particles[i] != e.Particles[i] {
				return false
			}
		}
		for i := range got.Vertices {
			if got.Vertices[i] != e.Vertices[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
