package archive

import (
	"context"
	"fmt"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/datamodel"
	"daspos/internal/faults"
	"daspos/internal/xrand"
)

// The disaster-recovery drill of the Appendix-A level-5 maturity rating,
// made executable: random bit rot lands on a primary archive whose storage
// is also transiently flaky, and Repair must drive fixity back to 100%
// from a replica — deterministically, under a fixed seed.

// flakyArchive returns an archive whose blob reads/writes run through the
// fault injector, plus a calm view over the same bytes for assertions
// that must not themselves be perturbed.
func flakyArchive(inj *faults.Injector) (flaky *Archive, calm *Archive, mem *cas.MemBackend) {
	mem = cas.NewMemBackend()
	flaky = NewWithStore(cas.NewStoreWith(&faults.FlakyBackend{Inner: mem, Inj: inj}))
	calm = NewWithStore(cas.NewStoreWith(mem))
	// The calm view shares the package index by sharing the map.
	calm.packages = flaky.packages
	return flaky, calm, mem
}

// ingestFleet stores n packages of a few files each and returns the IDs.
func ingestFleet(t *testing.T, a *Archive, n int) []string {
	t.Helper()
	var ids []string
	for i := 0; i < n; i++ {
		files := map[string][]byte{
			"events.aod":    []byte(fmt.Sprintf("aod payload %d: dimuon candidates", i)),
			"cutflow.json":  []byte(fmt.Sprintf(`{"pkg":%d,"selected":[100,42,7]}`, i)),
			"provenance.pv": []byte(fmt.Sprintf("chain %d: gen->sim->reco", i)),
			"env.manifest":  []byte(fmt.Sprintf("go1.22 linux/amd64 pkg%d", i)),
		}
		id, err := a.Ingest(Metadata{
			Title:   fmt.Sprintf("analysis %d", i),
			Creator: "chaos",
			Level:   datamodel.DPHEPLevel3,
		}, files)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestChaosRepairRestoresFullFixity(t *testing.T) {
	const (
		seed     = 0xDA5005
		packages = 6
		rotBlobs = 7
	)
	inj := faults.NewInjector(seed)
	primary, calm, _ := flakyArchive(inj)
	ids := ingestFleet(t, primary, packages)

	// Replica on reliable storage.
	replica := New()
	if n, err := Replicate(replica, primary); err != nil || n != packages {
		t.Fatalf("replicate: n=%d err=%v", n, err)
	}

	// Bit rot: corrupt K random blobs, seeded so the damage pattern is
	// reproducible.
	rng := xrand.New(seed)
	digests := calm.blobs.Digests()
	rng.Shuffle(len(digests), func(i, j int) { digests[i], digests[j] = digests[j], digests[i] })
	for _, d := range digests[:rotBlobs] {
		if err := calm.CorruptBlob(d); err != nil {
			t.Fatal(err)
		}
	}
	if rep := calm.VerifyAll(); len(rep.Damaged) == 0 {
		t.Fatal("bit rot did not damage any package")
	}

	// The drill: repair the damaged primary — whose storage keeps
	// injecting transient faults — from the replica, to convergence.
	inj.WithErrorRate(0.3)
	ctx := context.Background()
	converged := false
	for round := 0; round < 5; round++ {
		if _, err := RepairCtx(ctx, primary, replica, DefaultReplicationPolicy()); err != nil {
			t.Logf("repair round %d: %v (retrying)", round, err)
			continue
		}
		inj.WithErrorRate(0) // calm the storage for the audit
		if rep := calm.VerifyAll(); len(rep.Damaged) == 0 && rep.Healthy == packages {
			converged = true
			break
		}
		inj.WithErrorRate(0.3)
	}
	if !converged {
		t.Fatal("repair did not converge to 100% fixity within 5 rounds")
	}

	// Every payload byte round-trips after the drill.
	for i, id := range ids {
		data, err := calm.Fetch(id, "events.aod")
		if err != nil {
			t.Fatalf("post-repair fetch %s: %v", id, err)
		}
		want := fmt.Sprintf("aod payload %d: dimuon candidates", i)
		if string(data) != want {
			t.Fatalf("post-repair payload mismatch for %s", id)
		}
	}
	st := inj.Stats()
	if st.Errors == 0 {
		t.Fatal("chaos run injected no faults — test is vacuous")
	}
	t.Logf("chaos: %d ops, %d injected faults, converged", st.Ops, st.Errors)
}

func TestChaosReplicateUnderTransientFaults(t *testing.T) {
	inj := faults.NewInjector(0xBEEF)
	primary, _, _ := flakyArchive(inj)
	ingestFleet(t, primary, 4)

	// ≤30% transient fault rate on primary reads while replicating out.
	inj.WithErrorRate(0.3)
	replica := New()
	n, err := Replicate(replica, primary)
	if err != nil {
		t.Fatalf("replicate under 30%% faults failed: %v", err)
	}
	if n != 4 {
		t.Fatalf("copied %d packages, want 4", n)
	}
	if rep := replica.VerifyAll(); len(rep.Damaged) != 0 || rep.Healthy != 4 {
		t.Fatalf("replica not fully healthy: %+v", rep)
	}
}

func TestRepairDeterministicUnderSeed(t *testing.T) {
	// Two identical chaos runs must repair the identical blob set.
	run := func() []string {
		inj := faults.NewInjector(0xABCD)
		primary, calm, _ := flakyArchive(inj)
		ingestFleet(t, primary, 3)
		replica := New()
		if _, err := Replicate(replica, primary); err != nil {
			panic(err)
		}
		rng := xrand.New(0xABCD)
		digests := calm.blobs.Digests()
		rng.Shuffle(len(digests), func(i, j int) { digests[i], digests[j] = digests[j], digests[i] })
		for _, d := range digests[:4] {
			if err := calm.CorruptBlob(d); err != nil {
				panic(err)
			}
		}
		inj.WithErrorRate(0.2)
		repaired, err := Repair(primary, replica)
		if err != nil {
			panic(err)
		}
		return repaired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs repaired different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs repaired different packages at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
