package archive

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"daspos/internal/datamodel"
)

func sampleFiles() map[string][]byte {
	return map[string][]byte{
		"events/aod.edm":     bytes.Repeat([]byte("event-data "), 1000),
		"analysis/cuts.json": []byte(`{"cuts":[{"variable":"met","op":">","value":25}]}`),
		"env/manifest.json":  []byte(`{"workflow":"w"}`),
		"prov/chain.json":    []byte(`[]`),
		"docs/README.md":     []byte("# Preserved search analysis\n"),
	}
}

func sampleMeta() Metadata {
	return Metadata{
		Title:         "W+MET search 2013",
		Creator:       "DASPOS",
		Description:   "Preserved W to lepton+MET selection with reference data",
		Level:         datamodel.DPHEPLevel3,
		ConditionsTag: "data-v3",
		EnvManifest:   "env/manifest.json",
		Provenance:    "prov/chain.json",
		Keywords:      []string{"w-boson", "met", "search"},
	}
}

func TestIngestAndFetch(t *testing.T) {
	a := New()
	id, err := a.Ingest(sampleMeta(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := a.Get(id)
	if !ok {
		t.Fatal("package missing after ingest")
	}
	if pkg.Metadata.ID != id || len(pkg.Files) != 5 {
		t.Fatalf("package: %+v", pkg.Metadata)
	}
	data, err := a.Fetch(id, "docs/README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# Preserved") {
		t.Fatal("fetched wrong content")
	}
	if pkg.TotalBytes() <= 0 {
		t.Fatal("total bytes")
	}
}

func TestIngestValidation(t *testing.T) {
	a := New()
	if _, err := a.Ingest(Metadata{}, sampleFiles()); err == nil {
		t.Fatal("untitled package ingested")
	}
	if _, err := a.Ingest(sampleMeta(), nil); err == nil {
		t.Fatal("empty package ingested")
	}
	m := sampleMeta()
	m.ID = "preset"
	if _, err := a.Ingest(m, sampleFiles()); err == nil {
		t.Fatal("preset ID accepted")
	}
	m2 := sampleMeta()
	m2.EnvManifest = "not/there.json"
	if _, err := a.Ingest(m2, sampleFiles()); err == nil {
		t.Fatal("dangling env manifest reference accepted")
	}
	for _, bad := range []string{"", "/abs/path", "a/../b"} {
		if _, err := a.Ingest(sampleMeta(), map[string][]byte{bad: []byte("x")}); err == nil {
			t.Fatalf("path %q accepted", bad)
		}
	}
}

func TestDuplicateIngestRejected(t *testing.T) {
	a := New()
	if _, err := a.Ingest(sampleMeta(), sampleFiles()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(sampleMeta(), sampleFiles()); err == nil {
		t.Fatal("identical package ingested twice")
	}
}

func TestFetchErrors(t *testing.T) {
	a := New()
	id, _ := a.Ingest(sampleMeta(), sampleFiles())
	if _, err := a.Fetch("nope", "x"); !errors.Is(err, ErrNoPackage) {
		t.Fatalf("err: %v", err)
	}
	if _, err := a.Fetch(id, "nope"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err: %v", err)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	a := New()
	id, _ := a.Ingest(sampleMeta(), sampleFiles())
	if err := a.VerifyPackage(id); err != nil {
		t.Fatal(err)
	}
	pkg, _ := a.Get(id)
	if err := a.CorruptBlob(pkg.File("events/aod.edm").Digest); err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyPackage(id); err == nil {
		t.Fatal("bit rot not detected")
	}
	rep := a.VerifyAll()
	if rep.Healthy != 0 || len(rep.Damaged) != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestDeduplicationAcrossPackages(t *testing.T) {
	a := New()
	if _, err := a.Ingest(sampleMeta(), sampleFiles()); err != nil {
		t.Fatal(err)
	}
	m := sampleMeta()
	m.Title = "Second package sharing payload"
	if _, err := a.Ingest(m, sampleFiles()); err != nil {
		t.Fatal(err)
	}
	// Five distinct blobs even though ten files are registered.
	if a.Stats().Blobs != 5 {
		t.Fatalf("blobs: %d", a.Stats().Blobs)
	}
}

func TestSearch(t *testing.T) {
	a := New()
	_, _ = a.Ingest(sampleMeta(), sampleFiles())
	m := sampleMeta()
	m.Title = "Z lineshape outreach sample"
	m.Level = datamodel.DPHEPLevel2
	m.Keywords = []string{"outreach", "masterclass"}
	m.Description = "Dimuon invariant mass exercise"
	m.EnvManifest, m.Provenance = "", ""
	if _, err := a.Ingest(m, map[string][]byte{"z.json": []byte("{}")}); err != nil {
		t.Fatal(err)
	}

	if got := a.Search("met", 0); len(got) != 1 || got[0].Title != "W+MET search 2013" {
		t.Fatalf("search met: %+v", got)
	}
	if got := a.Search("", datamodel.DPHEPLevel2); len(got) != 1 || got[0].Level != datamodel.DPHEPLevel2 {
		t.Fatalf("search level2: %+v", got)
	}
	if got := a.Search("masterclass", datamodel.DPHEPLevel3); len(got) != 0 {
		t.Fatalf("level filter leaked: %+v", got)
	}
	if got := a.Search("", 0); len(got) != 2 {
		t.Fatalf("search all: %d", len(got))
	}
}

func TestPersistRoundTrip(t *testing.T) {
	a := New()
	id, _ := a.Ingest(sampleMeta(), sampleFiles())
	var buf bytes.Buffer
	if err := a.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs()) != 1 || got.IDs()[0] != id {
		t.Fatalf("ids: %v", got.IDs())
	}
	data, err := got.Fetch(id, "analysis/cuts.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "met") {
		t.Fatal("content lost through persistence")
	}
}

func TestReadFromRejectsDamage(t *testing.T) {
	a := New()
	id, _ := a.Ingest(sampleMeta(), sampleFiles())
	pkg, _ := a.Get(id)
	_ = a.CorruptBlob(pkg.Files[0].Digest)
	var buf bytes.Buffer
	_ = a.Persist(&buf)
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("damaged archive loaded")
	}
	if _, err := ReadFrom(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := ReadFrom(strings.NewReader("5\n{bad}")); err == nil {
		t.Fatal("bad index loaded")
	}
}

func BenchmarkIngest(b *testing.B) {
	files := sampleFiles()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := New()
		m := sampleMeta()
		if _, err := a.Ingest(m, files); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPackage(b *testing.B) {
	a := New()
	id, _ := a.Ingest(sampleMeta(), sampleFiles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.VerifyPackage(id); err != nil {
			b.Fatal(err)
		}
	}
}
