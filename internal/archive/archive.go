// Package archive implements the preservation archive: BagIt-style
// archival information packages (payload files + fixity manifest +
// descriptive metadata) over a content-addressed store. This is the
// "proper curation" layer the paper finds missing from current practice
// ("the means of preservation varies, from transient web or Wiki pages to
// printed materials; none ... would fit the characterization of proper
// curation of a preserved analysis").
//
// A package carries its DPHEP level, the conditions tag it depends on, and
// digests linking to its environment manifest and provenance chain, so a
// future consumer can answer: what is this, can I still run it, and where
// did it come from.
package archive

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"daspos/internal/cas"
	"daspos/internal/datamodel"
)

// File is one payload entry of a package.
type File struct {
	// Path is the logical path within the package.
	Path string `json:"path"`
	// Digest is the CAS address of the content.
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// Metadata describes a package for discovery and reuse.
type Metadata struct {
	// ID is assigned at ingest: the content address of the package
	// manifest. Never set by callers.
	ID string `json:"id"`
	// Title, Creator, and Description are the Dublin-Core-ish descriptive
	// minimum.
	Title       string `json:"title"`
	Creator     string `json:"creator"`
	Description string `json:"description,omitempty"`
	// Level is the DPHEP preservation level of the content.
	Level datamodel.DPHEPLevel `json:"dphep_level"`
	// ConditionsTag pins external calibration, when the content needs it.
	ConditionsTag string `json:"conditions_tag,omitempty"`
	// EnvManifest and Provenance are package paths (not digests) of the
	// environment manifest and provenance chain files, when included.
	EnvManifest string `json:"env_manifest,omitempty"`
	Provenance  string `json:"provenance,omitempty"`
	// Keywords support discovery.
	Keywords []string `json:"keywords,omitempty"`
}

// Package is one archival information package.
type Package struct {
	Metadata Metadata `json:"metadata"`
	Files    []File   `json:"files"`
}

// TotalBytes returns the package's payload size.
func (p *Package) TotalBytes() int64 {
	var n int64
	for _, f := range p.Files {
		n += f.Size
	}
	return n
}

// File returns the entry at a path, or nil.
func (p *Package) File(path string) *File {
	for i := range p.Files {
		if p.Files[i].Path == path {
			return &p.Files[i]
		}
	}
	return nil
}

// Errors returned by the archive.
var (
	ErrNoPackage = errors.New("archive: no such package")
	ErrNoFile    = errors.New("archive: no such file in package")
)

// Archive is the package store. It is safe for concurrent use: the
// package index is mutex-guarded and the blob store underneath is
// concurrency-safe, so parallel ingest, replication, and fixity sweeps
// can share one archive.
type Archive struct {
	blobs *cas.Store

	mu       sync.RWMutex
	packages map[string]*Package
}

// New returns an empty archive over an in-memory blob store. The store's
// backend is sharded so parallel ingest, replication, and fixity sweeps
// do not serialize on a single lock.
func New() *Archive {
	return NewWithStore(cas.NewStoreWith(cas.NewShardedBackend(0)))
}

// NewWithStore returns an empty archive over a caller-supplied blob store
// — the hook for alternative or fault-injected backends (chaos tests wrap
// the store's backend through internal/faults).
func NewWithStore(blobs *cas.Store) *Archive {
	return &Archive{blobs: blobs, packages: make(map[string]*Package)}
}

// Ingest stores the payload files and registers the package, returning its
// assigned ID. Metadata.EnvManifest and Metadata.Provenance, when set,
// must name ingested paths.
func (a *Archive) Ingest(meta Metadata, files map[string][]byte) (string, error) {
	if meta.Title == "" {
		return "", fmt.Errorf("archive: package needs a title")
	}
	if meta.ID != "" {
		return "", fmt.Errorf("archive: metadata ID is assigned at ingest, not supplied")
	}
	if len(files) == 0 {
		return "", fmt.Errorf("archive: package %q has no payload", meta.Title)
	}
	pkg := &Package{Metadata: meta}
	paths := make([]string, 0, len(files))
	for path := range files {
		if path == "" || strings.HasPrefix(path, "/") || strings.Contains(path, "..") {
			return "", fmt.Errorf("archive: invalid payload path %q", path)
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		digest, err := a.blobs.Put(files[path])
		if err != nil {
			return "", fmt.Errorf("archive: storing %q: %w", path, err)
		}
		pkg.Files = append(pkg.Files, File{Path: path, Digest: digest, Size: int64(len(files[path]))})
	}
	for _, special := range []string{meta.EnvManifest, meta.Provenance} {
		if special != "" && pkg.File(special) == nil {
			return "", fmt.Errorf("archive: metadata references %q which is not in the payload", special)
		}
	}
	manifest, err := json.Marshal(pkg)
	if err != nil {
		return "", err
	}
	id := cas.Digest(manifest)
	pkg.Metadata.ID = id
	if !a.adopt(pkg) {
		return "", fmt.Errorf("archive: identical package already ingested (%s)", id)
	}
	return id, nil
}

// adopt registers an already-built package under its ID, reporting whether
// it was new. The single write path into the package index.
func (a *Archive) adopt(pkg *Package) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.packages[pkg.Metadata.ID]; dup {
		return false
	}
	a.packages[pkg.Metadata.ID] = pkg
	return true
}

// Get returns the package with the given ID.
func (a *Archive) Get(id string) (*Package, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	p, ok := a.packages[id]
	return p, ok
}

// Fetch retrieves one payload file with fixity checking.
func (a *Archive) Fetch(id, path string) ([]byte, error) {
	pkg, ok := a.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoPackage, id)
	}
	f := pkg.File(path)
	if f == nil {
		return nil, fmt.Errorf("%w: %s in %s", ErrNoFile, path, id)
	}
	data, err := a.blobs.Get(f.Digest)
	if err != nil {
		return nil, fmt.Errorf("archive: fetching %s from %s: %w", path, id, err)
	}
	return data, nil
}

// VerifyPackage fixity-checks every file of a package.
func (a *Archive) VerifyPackage(id string) error {
	pkg, ok := a.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPackage, id)
	}
	for _, f := range pkg.Files {
		data, err := a.blobs.Get(f.Digest)
		if err != nil {
			return fmt.Errorf("archive: package %s file %s: %w", id, f.Path, err)
		}
		if int64(len(data)) != f.Size {
			return fmt.Errorf("archive: package %s file %s: size drift", id, f.Path)
		}
	}
	return nil
}

// VerifyReport summarizes an archive-wide fixity pass.
type VerifyReport struct {
	Packages int
	Healthy  int
	// Damaged maps package IDs to the failure description.
	Damaged map[string]string
}

// VerifyAll fixity-checks every package — the scheduled integrity audit a
// level-5 maturity rating requires ("disaster recovery plans are routinely
// tested and shown to be effective"). The audit decompresses and rehashes
// every blob, so it fans out across GOMAXPROCS workers.
func (a *Archive) VerifyAll() VerifyReport {
	return a.VerifyAllWorkers(context.Background(), runtime.GOMAXPROCS(0))
}

// VerifyAllWorkers is VerifyAll with an explicit worker count (minimum 1).
// Cancelling the context stops the sweep early; the returned report then
// covers only the packages already audited.
func (a *Archive) VerifyAllWorkers(ctx context.Context, workers int) VerifyReport {
	ids := a.IDs()
	rep := VerifyReport{Packages: len(ids), Damaged: make(map[string]string)}
	if workers < 1 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for _, id := range ids {
			if ctx.Err() != nil {
				return rep
			}
			if err := a.VerifyPackage(id); err != nil {
				rep.Damaged[id] = err.Error()
			} else {
				rep.Healthy++
			}
		}
		return rep
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	next := make(chan string)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for id := range next {
				err := a.VerifyPackage(id)
				mu.Lock()
				if err != nil {
					rep.Damaged[id] = err.Error()
				} else {
					rep.Healthy++
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, id := range ids {
		select {
		case next <- id:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return rep
}

// IDs returns the sorted package IDs.
func (a *Archive) IDs() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.packages))
	for id := range a.packages {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// List returns metadata for every package, sorted by ID.
func (a *Archive) List() []Metadata {
	ids := a.IDs()
	out := make([]Metadata, 0, len(ids))
	for _, id := range ids {
		if pkg, ok := a.Get(id); ok {
			out = append(out, pkg.Metadata)
		}
	}
	return out
}

// Search returns packages whose title, description, or keywords contain
// the query (case-insensitive), optionally restricted to one DPHEP level
// (0 matches all).
func (a *Archive) Search(query string, level datamodel.DPHEPLevel) []Metadata {
	q := strings.ToLower(query)
	var out []Metadata
	for _, id := range a.IDs() {
		pkg, ok := a.Get(id)
		if !ok {
			continue
		}
		m := pkg.Metadata
		if level != 0 && m.Level != level {
			continue
		}
		hay := strings.ToLower(m.Title + " " + m.Description + " " + strings.Join(m.Keywords, " "))
		if q == "" || strings.Contains(hay, q) {
			out = append(out, m)
		}
	}
	return out
}

// Stats returns the underlying store statistics (dedup and compression
// across packages).
func (a *Archive) Stats() cas.Stats { return a.blobs.Stats() }

// CorruptBlob flips bits in the stored blob with the given digest — the
// fault-injection hook for disaster-recovery tests.
func (a *Archive) CorruptBlob(digest string) error { return a.blobs.Corrupt(digest) }

// persisted is the on-stream representation of the whole archive.
type persisted struct {
	Packages []*Package `json:"packages"`
}

// Persist writes the archive: a JSON package index followed by the CAS
// stream. The index length prefixes the stream so both can be framed.
func (a *Archive) Persist(w io.Writer) error {
	idx := persisted{}
	for _, id := range a.IDs() {
		if pkg, ok := a.Get(id); ok {
			idx.Packages = append(idx.Packages, pkg)
		}
	}
	head, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(head)); err != nil {
		return err
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	return a.blobs.Persist(w)
}

// ReadFrom loads a persisted archive and verifies every package.
func ReadFrom(r io.Reader) (*Archive, error) {
	var headLen int
	if _, err := fmt.Fscanf(r, "%d\n", &headLen); err != nil {
		return nil, fmt.Errorf("archive: reading index length: %w", err)
	}
	if headLen <= 0 || headLen > 1<<30 {
		return nil, fmt.Errorf("archive: implausible index length %d", headLen)
	}
	head := make([]byte, headLen)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("archive: reading index: %w", err)
	}
	var idx persisted
	if err := json.Unmarshal(head, &idx); err != nil {
		return nil, fmt.Errorf("archive: parsing index: %w", err)
	}
	blobs, err := cas.Load(r)
	if err != nil {
		return nil, err
	}
	a := &Archive{blobs: blobs, packages: make(map[string]*Package, len(idx.Packages))}
	for _, pkg := range idx.Packages {
		if pkg.Metadata.ID == "" {
			return nil, fmt.Errorf("archive: loaded package without ID")
		}
		a.packages[pkg.Metadata.ID] = pkg
	}
	rep := a.VerifyAll()
	if len(rep.Damaged) > 0 {
		return nil, fmt.Errorf("archive: %d packages damaged on load", len(rep.Damaged))
	}
	return a, nil
}
