package archive

import (
	"bytes"
	"testing"

	"daspos/internal/datamodel"
)

func twoPackageArchive(t *testing.T) (*Archive, []string) {
	t.Helper()
	a := New()
	id1, err := a.Ingest(sampleMeta(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMeta()
	m.Title = "Second capsule"
	m.Description = "independent payload"
	m.EnvManifest, m.Provenance = "", ""
	m.Level = datamodel.DPHEPLevel2
	id2, err := a.Ingest(m, map[string][]byte{
		"events.json": bytes.Repeat([]byte("evt"), 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, []string{id1, id2}
}

func TestCopyPackage(t *testing.T) {
	src, ids := twoPackageArchive(t)
	dst := New()
	if err := CopyPackage(dst, src, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := dst.VerifyPackage(ids[0]); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Fetch(ids[0], "docs/README.md")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Fetch(ids[0], "docs/README.md")
	if !bytes.Equal(got, want) {
		t.Fatal("replica content differs")
	}
	// Idempotent.
	if err := CopyPackage(dst, src, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := CopyPackage(dst, src, "ghost"); err == nil {
		t.Fatal("phantom package copied")
	}
}

func TestCopyRefusesDamagedSource(t *testing.T) {
	src, ids := twoPackageArchive(t)
	pkg, _ := src.Get(ids[0])
	_ = src.CorruptBlob(pkg.Files[0].Digest)
	dst := New()
	if err := CopyPackage(dst, src, ids[0]); err == nil {
		t.Fatal("damaged package replicated silently")
	}
}

func TestReplicateAll(t *testing.T) {
	src, ids := twoPackageArchive(t)
	dst := New()
	n, err := Replicate(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("copied %d", n)
	}
	rep := dst.VerifyAll()
	if rep.Healthy != 2 {
		t.Fatalf("replica health: %+v", rep)
	}
	// Re-replication copies nothing.
	n, err = Replicate(dst, src)
	if err != nil || n != 0 {
		t.Fatalf("re-replicate: %d %v", n, err)
	}
	_ = ids
}

func TestRepairFromReplica(t *testing.T) {
	primary, ids := twoPackageArchive(t)
	replica := New()
	if _, err := Replicate(replica, primary); err != nil {
		t.Fatal(err)
	}
	// Disaster strikes the primary.
	pkg, _ := primary.Get(ids[0])
	_ = primary.CorruptBlob(pkg.Files[0].Digest)
	if primary.VerifyAll().Healthy == 2 {
		t.Fatal("corruption not effective")
	}
	repaired, err := Repair(primary, replica)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != ids[0] {
		t.Fatalf("repaired: %v", repaired)
	}
	if rep := primary.VerifyAll(); rep.Healthy != 2 {
		t.Fatalf("primary not healed: %+v", rep)
	}
}

func TestRepairFailsWithoutReplica(t *testing.T) {
	primary, ids := twoPackageArchive(t)
	pkg, _ := primary.Get(ids[0])
	_ = primary.CorruptBlob(pkg.Files[0].Digest)
	empty := New()
	if _, err := Repair(primary, empty); err == nil {
		t.Fatal("repair succeeded without a replica")
	}
}
