package archive

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/datamodel"
)

func twoPackageArchive(t *testing.T) (*Archive, []string) {
	t.Helper()
	a := New()
	id1, err := a.Ingest(sampleMeta(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMeta()
	m.Title = "Second capsule"
	m.Description = "independent payload"
	m.EnvManifest, m.Provenance = "", ""
	m.Level = datamodel.DPHEPLevel2
	id2, err := a.Ingest(m, map[string][]byte{
		"events.json": bytes.Repeat([]byte("evt"), 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, []string{id1, id2}
}

func TestCopyPackage(t *testing.T) {
	src, ids := twoPackageArchive(t)
	dst := New()
	if err := CopyPackage(dst, src, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := dst.VerifyPackage(ids[0]); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Fetch(ids[0], "docs/README.md")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Fetch(ids[0], "docs/README.md")
	if !bytes.Equal(got, want) {
		t.Fatal("replica content differs")
	}
	// Idempotent.
	if err := CopyPackage(dst, src, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := CopyPackage(dst, src, "ghost"); err == nil {
		t.Fatal("phantom package copied")
	}
}

func TestCopyRefusesDamagedSource(t *testing.T) {
	src, ids := twoPackageArchive(t)
	pkg, _ := src.Get(ids[0])
	_ = src.CorruptBlob(pkg.Files[0].Digest)
	dst := New()
	if err := CopyPackage(dst, src, ids[0]); err == nil {
		t.Fatal("damaged package replicated silently")
	}
}

func TestReplicateAll(t *testing.T) {
	src, ids := twoPackageArchive(t)
	dst := New()
	n, err := Replicate(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("copied %d", n)
	}
	rep := dst.VerifyAll()
	if rep.Healthy != 2 {
		t.Fatalf("replica health: %+v", rep)
	}
	// Re-replication copies nothing.
	n, err = Replicate(dst, src)
	if err != nil || n != 0 {
		t.Fatalf("re-replicate: %d %v", n, err)
	}
	_ = ids
}

func TestRepairFromReplica(t *testing.T) {
	primary, ids := twoPackageArchive(t)
	replica := New()
	if _, err := Replicate(replica, primary); err != nil {
		t.Fatal(err)
	}
	// Disaster strikes the primary.
	pkg, _ := primary.Get(ids[0])
	_ = primary.CorruptBlob(pkg.Files[0].Digest)
	if primary.VerifyAll().Healthy == 2 {
		t.Fatal("corruption not effective")
	}
	repaired, err := Repair(primary, replica)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != ids[0] {
		t.Fatalf("repaired: %v", repaired)
	}
	if rep := primary.VerifyAll(); rep.Healthy != 2 {
		t.Fatalf("primary not healed: %+v", rep)
	}
}

func TestRepairFailsWithoutReplica(t *testing.T) {
	primary, ids := twoPackageArchive(t)
	pkg, _ := primary.Get(ids[0])
	_ = primary.CorruptBlob(pkg.Files[0].Digest)
	empty := New()
	if _, err := Repair(primary, empty); err == nil {
		t.Fatal("repair succeeded without a replica")
	}
}

func manyPackageArchive(t *testing.T, n int) (*Archive, []string) {
	t.Helper()
	a := NewWithStore(cas.NewStoreWith(cas.NewShardedBackend(0)))
	var ids []string
	for i := 0; i < n; i++ {
		m := sampleMeta()
		m.Title = fmt.Sprintf("capsule %02d", i)
		m.EnvManifest, m.Provenance = "", ""
		id, err := a.Ingest(m, map[string][]byte{
			"events.json": bytes.Repeat([]byte(fmt.Sprintf("evt-%02d ", i)), 2000),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return a, ids
}

func TestReplicateWorkersMatchesSequential(t *testing.T) {
	src, ids := manyPackageArchive(t, 12)
	dst := NewWithStore(cas.NewStoreWith(cas.NewShardedBackend(0)))
	n, err := ReplicateWorkers(context.Background(), dst, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ids) {
		t.Fatalf("copied %d, want %d", n, len(ids))
	}
	for _, id := range ids {
		if err := dst.VerifyPackage(id); err != nil {
			t.Fatalf("replica package %s: %v", id, err)
		}
	}
	// A second pass finds nothing to do.
	n, err = ReplicateWorkers(context.Background(), dst, src, 8)
	if err != nil || n != 0 {
		t.Fatalf("idempotent pass: copied %d, err %v", n, err)
	}
}

func TestParallelVerifyAllFindsDamage(t *testing.T) {
	a, ids := manyPackageArchive(t, 10)
	victim := ids[4]
	pkg, _ := a.Get(victim)
	if err := a.CorruptBlob(pkg.Files[0].Digest); err != nil {
		t.Fatal(err)
	}
	rep := a.VerifyAllWorkers(context.Background(), 8)
	if rep.Packages != 10 || rep.Healthy != 9 {
		t.Fatalf("report: %+v", rep)
	}
	if _, ok := rep.Damaged[victim]; !ok {
		t.Fatalf("damaged map %v missing %s", rep.Damaged, victim)
	}
}
