package archive

import (
	"context"
	"fmt"
	"sync"
	"time"

	"daspos/internal/resilience"
)

// Replication: the "succession plans (e.g. an alternative data centre) are
// in place to safeguard data" requirement of the Appendix A level-5
// data-management maturity rating. CopyPackage moves one package between
// archives with end-to-end fixity; Replicate synchronizes everything and
// Repair heals a damaged archive from a healthy replica.
//
// Replica traffic crosses storage and network boundaries, so every blob
// copy runs under a retry policy: transient faults (flaky media, injected
// chaos) are retried with backoff, while permanent ones (a package absent
// from the replica, corruption of the only copy) abort immediately.

// DefaultReplicationPolicy is the retry schedule blob copies run under:
// a handful of quick, capped-backoff attempts. Transient-only — an
// unclassified error is not retried, so logic bugs fail loudly instead of
// thrice.
func DefaultReplicationPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      0.2,
	}
}

// copyFile moves one verified payload file from src to dst under the
// retry policy. Fetch re-reads on every attempt, so a transient read
// fault on one try can heal on the next.
func copyFile(ctx context.Context, dst, src *Archive, id string, f File, pol resilience.Policy) error {
	return resilience.Retry(ctx, pol, func(context.Context) error {
		data, err := src.Fetch(id, f.Path)
		if err != nil {
			return err
		}
		digest, err := dst.blobs.Put(data)
		if err != nil {
			return err
		}
		if digest != f.Digest {
			// Cannot happen unless Fetch's fixity check is broken; keep
			// the invariant explicit — and permanent.
			return resilience.MarkPermanent(
				fmt.Errorf("archive: replica digest drift for %s in %s", f.Path, id))
		}
		return nil
	})
}

// CopyPackage copies a package (metadata and payload) into dst with the
// default retry policy. Content addressing makes the copy self-verifying:
// every blob is fixity-checked on read, and the package keeps its ID.
// Copying a package that already exists in dst is a no-op.
func CopyPackage(dst, src *Archive, id string) error {
	return CopyPackageCtx(context.Background(), dst, src, id, DefaultReplicationPolicy())
}

// CopyPackageCtx is CopyPackage under a caller-supplied context and retry
// policy.
func CopyPackageCtx(ctx context.Context, dst, src *Archive, id string, pol resilience.Policy) error {
	pkg, ok := src.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPackage, id)
	}
	if _, exists := dst.Get(id); exists {
		return nil
	}
	cp := &Package{Metadata: pkg.Metadata, Files: append([]File(nil), pkg.Files...)}
	for _, f := range pkg.Files {
		if err := copyFile(ctx, dst, src, id, f, pol); err != nil {
			return fmt.Errorf("archive: replicating %s: %w", id, err)
		}
	}
	// Concurrent copies of the same package race benignly: blob puts are
	// idempotent and exactly one adopt registers the package.
	dst.adopt(cp)
	return nil
}

// Replicate copies every package from src that dst is missing with the
// default retry policy, returning the number copied.
func Replicate(dst, src *Archive) (int, error) {
	return ReplicateCtx(context.Background(), dst, src, DefaultReplicationPolicy())
}

// ReplicateCtx is Replicate under a caller-supplied context and retry
// policy. Packages are copied one at a time in ID order, so the retry
// trace is deterministic under a seeded fault injector; ReplicateWorkers
// is the throughput-oriented parallel variant.
func ReplicateCtx(ctx context.Context, dst, src *Archive, pol resilience.Policy) (int, error) {
	copied := 0
	for _, id := range src.IDs() {
		if _, exists := dst.Get(id); exists {
			continue
		}
		if err := CopyPackageCtx(ctx, dst, src, id, pol); err != nil {
			return copied, err
		}
		copied++
	}
	return copied, nil
}

// ReplicateWorkers copies every package from src that dst is missing,
// fanning the per-package copies across the given number of workers
// (minimum 1) under the default retry policy. It returns the number of
// packages copied; on error it still reports how many completed. Blob
// traffic to the succession site is latency- and CPU-bound, so bulk
// synchronization scales with workers when the destination store's
// backend is sharded.
func ReplicateWorkers(ctx context.Context, dst, src *Archive, workers int) (int, error) {
	pol := DefaultReplicationPolicy()
	var missing []string
	for _, id := range src.IDs() {
		if _, exists := dst.Get(id); !exists {
			missing = append(missing, id)
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	if workers <= 1 {
		copied := 0
		for _, id := range missing {
			if err := CopyPackageCtx(ctx, dst, src, id, pol); err != nil {
				return copied, err
			}
			copied++
		}
		return copied, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		copied   int
		wg       sync.WaitGroup
	)
	next := make(chan string)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for id := range next {
				err := CopyPackageCtx(ctx, dst, src, id, pol)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					copied++
				}
				mu.Unlock()
			}
		}()
	}
	for _, id := range missing {
		next <- id
	}
	close(next)
	wg.Wait()
	return copied, firstErr
}

// Repair restores damaged packages in a from a healthy replica with the
// default retry policy: the disaster-recovery drill of the maturity
// table's level 5 ("routinely tested and shown to be effective"). It
// returns the repaired package IDs.
func Repair(damaged, replica *Archive) ([]string, error) {
	return RepairCtx(context.Background(), damaged, replica, DefaultReplicationPolicy())
}

// RepairCtx is Repair under a caller-supplied context and retry policy.
func RepairCtx(ctx context.Context, damaged, replica *Archive, pol resilience.Policy) ([]string, error) {
	var repaired []string
	for _, id := range damaged.IDs() {
		if damaged.VerifyPackage(id) == nil {
			continue
		}
		pkg, ok := replica.Get(id)
		if !ok {
			return repaired, resilience.MarkPermanent(
				fmt.Errorf("archive: package %s damaged and absent from replica", id))
		}
		for _, f := range pkg.Files {
			file := f
			err := resilience.Retry(ctx, pol, func(context.Context) error {
				data, err := replica.Fetch(id, file.Path)
				if err != nil {
					return err
				}
				// Drop the bad blob and restore from the replica's bytes.
				damaged.blobs.Delete(file.Digest)
				_, err = damaged.blobs.Put(data)
				return err
			})
			if err != nil {
				return repaired, fmt.Errorf("archive: repairing %s from replica: %w", id, err)
			}
		}
		// The closing audit also runs under the policy: a transient read
		// fault during verification must not fail an otherwise-successful
		// repair. Real corruption is not transient and still aborts.
		err := resilience.Retry(ctx, pol, func(context.Context) error {
			return damaged.VerifyPackage(id)
		})
		if err != nil {
			return repaired, fmt.Errorf("archive: repair of %s did not verify: %w", id, err)
		}
		repaired = append(repaired, id)
	}
	return repaired, nil
}
