package archive

import (
	"fmt"
)

// Replication: the "succession plans (e.g. an alternative data centre) are
// in place to safeguard data" requirement of the Appendix A level-5
// data-management maturity rating. CopyPackage moves one package between
// archives with end-to-end fixity; Replicate synchronizes everything and
// Repair heals a damaged archive from a healthy replica.

// CopyPackage copies a package (metadata and payload) into dst. Content
// addressing makes the copy self-verifying: every blob is fixity-checked
// on read, and the package keeps its ID. Copying a package that already
// exists in dst is a no-op.
func CopyPackage(dst, src *Archive, id string) error {
	pkg, ok := src.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPackage, id)
	}
	if _, exists := dst.packages[id]; exists {
		return nil
	}
	cp := &Package{Metadata: pkg.Metadata, Files: append([]File(nil), pkg.Files...)}
	for _, f := range pkg.Files {
		data, err := src.Fetch(id, f.Path)
		if err != nil {
			return fmt.Errorf("archive: replicating %s: %w", id, err)
		}
		digest, err := dst.blobs.Put(data)
		if err != nil {
			return err
		}
		if digest != f.Digest {
			// Cannot happen unless Fetch's fixity check is broken; keep
			// the invariant explicit.
			return fmt.Errorf("archive: replica digest drift for %s in %s", f.Path, id)
		}
	}
	dst.packages[id] = cp
	return nil
}

// Replicate copies every package from src that dst is missing, returning
// the number copied.
func Replicate(dst, src *Archive) (int, error) {
	copied := 0
	for _, id := range src.IDs() {
		if _, exists := dst.packages[id]; exists {
			continue
		}
		if err := CopyPackage(dst, src, id); err != nil {
			return copied, err
		}
		copied++
	}
	return copied, nil
}

// Repair restores damaged packages in a from a healthy replica: the
// disaster-recovery drill of the maturity table's level 5 ("routinely
// tested and shown to be effective"). It returns the repaired package IDs.
func Repair(damaged, replica *Archive) ([]string, error) {
	var repaired []string
	for _, id := range damaged.IDs() {
		if damaged.VerifyPackage(id) == nil {
			continue
		}
		pkg, ok := replica.Get(id)
		if !ok {
			return repaired, fmt.Errorf("archive: package %s damaged and absent from replica", id)
		}
		for _, f := range pkg.Files {
			data, err := replica.Fetch(id, f.Path)
			if err != nil {
				return repaired, fmt.Errorf("archive: replica of %s also damaged: %w", id, err)
			}
			// Drop the bad blob and restore from the replica's bytes.
			damaged.blobs.Delete(f.Digest)
			if _, err := damaged.blobs.Put(data); err != nil {
				return repaired, err
			}
		}
		if err := damaged.VerifyPackage(id); err != nil {
			return repaired, fmt.Errorf("archive: repair of %s did not verify: %w", id, err)
		}
		repaired = append(repaired, id)
	}
	return repaired, nil
}
