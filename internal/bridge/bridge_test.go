package bridge

import (
	"bytes"
	"context"
	"testing"
	"time"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/hist"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
	"daspos/internal/sim"
	"daspos/internal/units"

	"daspos/internal/fourvec"
)

func searchRecord() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name: "GPD_2013_DIMUON_HIGHMASS",
		Objects: []leshouches.ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}

func model(events int) recast.ModelSpec {
	return recast.ModelSpec{Process: "zprime", MassGeV: 1200, Events: events, Seed: 11}
}

func TestBridgeProcess(t *testing.T) {
	b := &RivetBackend{LuminosityPb: 20000}
	res, err := b.Process(context.Background(), model(200), searchRecord())
	if err != nil {
		t.Fatal(err)
	}
	if res.BackEnd != "rivet-bridge" {
		t.Fatalf("backend: %s", res.BackEnd)
	}
	if res.Generated != 200 {
		t.Fatalf("generated: %d", res.Generated)
	}
	// A 1.2 TeV Z' decaying to central muons passes the high-mass
	// selection most of the time at truth-smeared level.
	if res.Acceptance < 0.3 {
		t.Fatalf("bridge acceptance %v", res.Acceptance)
	}
	if res.UpperLimitXsecPb <= 0 {
		t.Fatalf("no limit: %+v", res)
	}
	if b.LastValidation() != nil {
		t.Fatal("validation data without validation analyses")
	}
}

func TestBridgeRejectsBadModel(t *testing.T) {
	b := &RivetBackend{}
	m := model(10)
	m.Process = "axion"
	if _, err := b.Process(context.Background(), m, searchRecord()); err == nil {
		t.Fatal("bad model processed")
	}
	if _, err := b.Process(context.Background(), recast.ModelSpec{Process: "zprime", MassGeV: 1000, Events: 10}, &leshouches.AnalysisRecord{Name: "x", Selection: []leshouches.Cut{{Variable: "count:ghost", Op: ">", Value: 0}}}); err == nil {
		t.Fatal("invalid record processed")
	}
}

func TestBridgeValidationAnalyses(t *testing.T) {
	b := &RivetBackend{LuminosityPb: 20000, ValidationAnalyses: []string{"DASPOS_2013_ZMUMU"}}
	if _, err := b.Process(context.Background(), model(150), searchRecord()); err != nil {
		t.Fatal(err)
	}
	data := b.LastValidation()
	if len(data) == 0 {
		t.Fatal("no validation export")
	}
	hs, err := hist.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) == 0 {
		t.Fatal("validation export empty")
	}
	b2 := &RivetBackend{ValidationAnalyses: []string{"NOPE"}}
	if _, err := b2.Process(context.Background(), model(5), searchRecord()); err == nil {
		t.Fatal("unknown validation analysis accepted")
	}
}

func TestEventFromFastObjects(t *testing.T) {
	objs := []sim.FastObject{
		{PDG: -units.PDGMuon, P: fourvec.PtEtaPhiM(50, 0.3, 0.1, 0.105)},
		{PDG: units.PDGElectron, P: fourvec.PtEtaPhiM(30, -0.5, 2.0, 0.0005)},
		{PDG: units.PDGPhoton, P: fourvec.PtEtaPhiM(20, 1.0, -1.0, 0)},
		{PDG: units.PDGPiPlus, P: fourvec.PtEtaPhiM(5, 0.31, 0.12, 0.14)},
	}
	e := EventFromFastObjects(7, objs)
	if e.Number != 7 || e.Tier != datamodel.TierAOD {
		t.Fatalf("event: %+v", e)
	}
	if len(e.CandidatesOf(datamodel.ObjMuon)) != 1 ||
		len(e.CandidatesOf(datamodel.ObjElectron)) != 1 ||
		len(e.CandidatesOf(datamodel.ObjPhoton)) != 1 ||
		len(e.CandidatesOf(datamodel.ObjTrackCandidate)) != 1 {
		t.Fatalf("object mapping wrong: %+v", e.Candidates)
	}
	mu := e.CandidatesOf(datamodel.ObjMuon)[0]
	if mu.Charge != 1 {
		t.Fatalf("anti-muon charge %v", mu.Charge)
	}
	// The nearby pion contributes to the muon isolation cone.
	if mu.Isolation < 4.9 {
		t.Fatalf("isolation %v", mu.Isolation)
	}
	if e.Missing.Pt <= 0 || e.Missing.SumEt <= 0 {
		t.Fatalf("met: %+v", e.Missing)
	}
}

func TestBridgeAgreesWithFullSim(t *testing.T) {
	// Experiment R3's shape: same request through both tiers gives
	// statistically compatible acceptances, with the bridge much faster.
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 10, 10, 1); err != nil {
		t.Fatal(err)
	}
	full := &recast.FullSimBackend{Det: det, CondDB: db, Tag: "t", Run: 1, LuminosityPb: 20000}
	light := &RivetBackend{LuminosityPb: 20000}
	m := model(150)

	t0 := time.Now()
	fullRes, err := full.Process(context.Background(), m, searchRecord())
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(t0)

	t1 := time.Now()
	lightRes, err := light.Process(context.Background(), m, searchRecord())
	if err != nil {
		t.Fatal(err)
	}
	lightDur := time.Since(t1)

	agr := CompareResults(fullRes, lightRes)
	if agr.Discrepant {
		t.Fatalf("tiers disagree: full=%v bridge=%v (%.1fσ)",
			agr.FullAcceptance, agr.BridgeAcceptance, agr.DeltaSigma)
	}
	if lightDur >= fullDur {
		t.Fatalf("bridge (%v) not faster than full sim (%v)", lightDur, fullDur)
	}
}

func TestBridgeAsRecastBackend(t *testing.T) {
	// The bridge drops into the RECAST service unchanged: the
	// interoperability the conclusions promise.
	svc := recast.NewService(&RivetBackend{LuminosityPb: 20000})
	if err := svc.Subscribe(recast.Subscription{
		Name: "GPD_2013_DIMUON_HIGHMASS", Record: searchRecord(),
	}); err != nil {
		t.Fatal(err)
	}
	req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist", "", model(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Approve(req.ID); err != nil {
		t.Fatal(err)
	}
	done, err := svc.Process(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Result.BackEnd != "rivet-bridge" {
		t.Fatalf("backend: %s", done.Result.BackEnd)
	}
}

func TestCompareResultsEdges(t *testing.T) {
	a := &recast.Result{Generated: 0, Acceptance: 0}
	agr := CompareResults(a, a)
	if agr.DeltaSigma != 0 || agr.Discrepant {
		t.Fatalf("zero-stat compare: %+v", agr)
	}
	full := &recast.Result{Generated: 1000, Acceptance: 0.8}
	brd := &recast.Result{Generated: 1000, Acceptance: 0.2}
	if agr := CompareResults(full, brd); !agr.Discrepant {
		t.Fatal("gross disagreement not flagged")
	}
}

func BenchmarkBridgeRequest(b *testing.B) {
	backend := &RivetBackend{LuminosityPb: 20000}
	rec := searchRecord()
	for i := 0; i < b.N; i++ {
		m := model(10)
		m.Seed = uint64(i)
		if _, err := backend.Process(context.Background(), m, rec); err != nil {
			b.Fatal(err)
		}
	}
}
