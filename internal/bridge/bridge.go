// Package bridge implements the DASPOS RECAST↔RIVET connection announced
// in the paper's conclusions: "It should be relatively straightforward to
// create a 'back end' for RECAST such that any analysis implemented in
// RIVET could be subject to the RECAST framework. This could offer one
// avenue towards making the advanced tools of RECAST available to RIVET
// analyses."
//
// RivetBackend satisfies recast.Backend but replaces the full experiment
// chain with the light tier: generation plus parametric fast simulation,
// with the archived analysis applied to the smeared objects. A bridged
// request costs a small fraction of a full-sim request; experiment R3
// quantifies both the cost ratio and the residual acceptance difference.
// The backend can also run registered RIVET analyses over the same sample,
// attaching truth-level histograms for validation.
package bridge

import (
	"context"
	"fmt"
	"math"

	"daspos/internal/datamodel"
	"daspos/internal/fourvec"
	"daspos/internal/generator"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
	"daspos/internal/rivet"
	"daspos/internal/sim"
	"daspos/internal/units"
)

// RivetBackend is the light-tier RECAST back end.
type RivetBackend struct {
	// LuminosityPb converts event limits to cross sections.
	LuminosityPb float64
	// ValidationAnalyses optionally names RIVET registry analyses to run
	// alongside reinterpretation; their histograms are exported for the
	// experiment's validation shelf.
	ValidationAnalyses []string
	// lastValidation holds the YODA export of the last Process call's
	// validation run, if any.
	lastValidation []byte
}

// Name implements recast.Backend.
func (*RivetBackend) Name() string { return "rivet-bridge" }

// LastValidation returns the YODA reference data produced by the last
// Process call's validation analyses (nil when none were configured).
func (b *RivetBackend) LastValidation() []byte {
	return append([]byte(nil), b.lastValidation...)
}

// ConfigDigest implements recast.ConfigDigester: the light tier's output
// is determined by the model plus luminosity and the validation set.
func (b *RivetBackend) ConfigDigest() string {
	return fmt.Sprintf("rivet-bridge|lumi=%x|val=%v",
		math.Float64bits(b.LuminosityPb), b.ValidationAnalyses)
}

// Process implements recast.Backend: generate, fast-simulate, apply the
// archived record, and extract limits. The context's deadline is checked
// between events so an expired request stops burning the generator.
func (b *RivetBackend) Process(ctx context.Context, model recast.ModelSpec, record *leshouches.AnalysisRecord) (*recast.Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	cfg := generator.DefaultConfig(model.Seed)
	gen := generator.NewZPrime(cfg, model.MassGeV)
	fast := sim.NewFastSim(model.Seed)

	var rivetRun *rivet.Run
	if len(b.ValidationAnalyses) > 0 {
		run, err := rivet.NewRun(b.ValidationAnalyses...)
		if err != nil {
			return nil, fmt.Errorf("bridge: validation analyses: %w", err)
		}
		rivetRun = run
	}

	events := make([]*datamodel.Event, 0, model.Events)
	for i := 0; i < model.Events; i++ {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bridge: abandoned after %d/%d events: %w", i, model.Events, err)
			}
		}
		ev := gen.Generate()
		if rivetRun != nil {
			if err := rivetRun.Process(ev); err != nil {
				return nil, err
			}
		}
		events = append(events, EventFromFastObjects(uint64(ev.Number), fast.Simulate(ev)))
	}
	if rivetRun != nil {
		if err := rivetRun.Finalize(); err != nil {
			return nil, err
		}
		data, err := rivetRun.ExportYODA()
		if err != nil {
			return nil, err
		}
		b.lastValidation = data
	}

	flow, err := record.CutFlow(events)
	if err != nil {
		return nil, err
	}
	rei, err := leshouches.Reinterpret(record, events, b.LuminosityPb)
	if err != nil {
		return nil, err
	}
	res := &recast.Result{
		Analysis: record.Name, BackEnd: "rivet-bridge",
		Generated: rei.Generated, Selected: rei.Selected,
		Acceptance: rei.Acceptance, CutFlow: flow,
		UpperLimitEvents: rei.UpperLimitEvents,
		UpperLimitXsecPb: rei.UpperLimitXsecPb,
	}
	res.ApplyExclusion(model, b.LuminosityPb)
	return res, nil
}

// EventFromFastObjects converts fast-simulation output into an AOD-tier
// event so archived Les Houches records apply identically to both tiers.
func EventFromFastObjects(number uint64, objs []sim.FastObject) *datamodel.Event {
	e := &datamodel.Event{Number: number, Tier: datamodel.TierAOD}
	for i, o := range objs {
		var typ datamodel.ObjectType
		switch {
		case abs(o.PDG) == units.PDGElectron:
			typ = datamodel.ObjElectron
		case abs(o.PDG) == units.PDGMuon:
			typ = datamodel.ObjMuon
		case o.PDG == units.PDGPhoton:
			typ = datamodel.ObjPhoton
		default:
			typ = datamodel.ObjTrackCandidate
		}
		e.Candidates = append(e.Candidates, datamodel.Candidate{
			Type: typ, P: o.P, Charge: units.Charge(o.PDG),
			Quality:   0.95,
			Isolation: coneActivity(objs, i),
		})
	}
	pt, phi := sim.MissingPt(objs)
	e.Missing = datamodel.MET{Pt: pt, Phi: phi, SumEt: scalarSum(objs)}
	return e
}

// coneActivity sums the pT of other objects within ΔR < 0.3.
func coneActivity(objs []sim.FastObject, self int) float64 {
	var iso float64
	for i, o := range objs {
		if i == self {
			continue
		}
		if fourvec.DeltaR(o.P, objs[self].P) < 0.3 {
			iso += o.P.Pt()
		}
	}
	return iso
}

func scalarSum(objs []sim.FastObject) float64 {
	s := 0.0
	for _, o := range objs {
		s += o.P.Pt()
	}
	return s
}

// Agreement compares a full-sim and a bridged result for the same model:
// the acceptance difference in units of its combined binomial uncertainty.
type Agreement struct {
	FullAcceptance   float64
	BridgeAcceptance float64
	// DeltaSigma is |Δacc| / σ(Δacc).
	DeltaSigma float64
	// CostNoteworthy marks |Δ| beyond 3σ: the detector effects the light
	// tier cannot model matter for this analysis.
	Discrepant bool
}

// CompareResults quantifies full-vs-bridge agreement.
func CompareResults(full, bridged *recast.Result) Agreement {
	a := Agreement{FullAcceptance: full.Acceptance, BridgeAcceptance: bridged.Acceptance}
	sigma2 := binomialVar(full) + binomialVar(bridged)
	if sigma2 > 0 {
		a.DeltaSigma = math.Abs(full.Acceptance-bridged.Acceptance) / math.Sqrt(sigma2)
	}
	a.Discrepant = a.DeltaSigma > 3
	return a
}

func binomialVar(r *recast.Result) float64 {
	if r.Generated == 0 {
		return 0
	}
	p := r.Acceptance
	return p * (1 - p) / float64(r.Generated)
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
