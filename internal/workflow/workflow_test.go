package workflow

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"daspos/internal/provenance"
)

// passthrough returns a StepFunc copying one input to one output with a
// marker appended, and recording the given external deps.
func passthrough(in, out, tier string, deps ...string) StepFunc {
	return func(ctx *Context) error {
		a, err := ctx.Input(in)
		if err != nil {
			return err
		}
		for _, d := range deps {
			ctx.External(d)
		}
		data := append(append([]byte(nil), a.Data...), []byte("+"+out)...)
		return ctx.Output(out, tier, a.Events, data)
	}
}

func twoStep() *Workflow {
	return &Workflow{
		Name:          "chain",
		ConditionsTag: "v1",
		PrimaryInputs: []string{"raw"},
		Steps: []Step{
			{
				Name: "reco", Software: "daspos-reco", Version: "3.2.1",
				Config:  map[string]string{"minpt": "0.3", "jets": "cone0.4"},
				Inputs:  []string{"raw"},
				Outputs: []string{"reco-out"},
				Run:     passthrough("raw", "reco-out", "RECO", "calo/ecal_scale", "beam/spot", "calo/ecal_scale"),
			},
			{
				Name: "slim", Software: "daspos-skim", Version: "1.0",
				Inputs:  []string{"reco-out"},
				Outputs: []string{"aod"},
				Run:     passthrough("reco-out", "aod", "AOD"),
			},
		},
	}
}

func rawInput() map[string]*Artifact {
	return map[string]*Artifact{
		"raw": {Name: "raw", Tier: "RAW", Events: 10, Data: []byte("rawdata")},
	}
}

func TestValidateAcceptsChain(t *testing.T) {
	if err := twoStep().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	mutate := func(f func(*Workflow)) error {
		w := twoStep()
		f(w)
		return w.Validate()
	}
	if err := mutate(func(w *Workflow) { w.Name = "" }); err == nil {
		t.Error("empty workflow name accepted")
	}
	if err := mutate(func(w *Workflow) { w.Steps[1].Name = "reco" }); err == nil {
		t.Error("duplicate step accepted")
	}
	if err := mutate(func(w *Workflow) { w.Steps[0].Name = "" }); err == nil {
		t.Error("unnamed step accepted")
	}
	if err := mutate(func(w *Workflow) { w.Steps[1].Inputs = []string{"nonexistent"} }); err == nil {
		t.Error("unsatisfied input accepted")
	}
	if err := mutate(func(w *Workflow) { w.Steps[1].Outputs = []string{"raw"} }); err == nil {
		t.Error("output shadowing primary input accepted")
	}
	if err := mutate(func(w *Workflow) { w.Steps[0].Outputs = nil }); err == nil {
		t.Error("outputless step accepted")
	}
	// Step order matters: consuming a later step's output is invalid.
	if err := mutate(func(w *Workflow) { w.Steps[0], w.Steps[1] = w.Steps[1], w.Steps[0] }); err == nil {
		t.Error("out-of-order chain accepted")
	}
}

func TestExecuteProducesArtifactsAndProvenance(t *testing.T) {
	w := twoStep()
	prov := provenance.NewStore()
	res, err := w.Execute(context.Background(), rawInput(), prov)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Artifacts["aod"].Data) != "rawdata+reco-out+aod" {
		t.Fatalf("aod content: %q", res.Artifacts["aod"].Data)
	}
	// Three records: primary input + two step outputs.
	if prov.Len() != 3 {
		t.Fatalf("provenance records: %d", prov.Len())
	}
	lin, err := prov.Lineage(res.RecordIDs["aod"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 3 {
		t.Fatalf("aod lineage depth %d", len(lin))
	}
	if lin[2].Producer.Step != "primary-input" {
		t.Fatalf("chain root: %+v", lin[2].Producer)
	}
	if rep := prov.Audit(); rep.CompleteFraction() != 1 {
		t.Fatalf("incomplete provenance after run: %+v", rep)
	}
}

func TestExternalDependencyCensus(t *testing.T) {
	w := twoStep()
	prov := provenance.NewStore()
	res, err := w.Execute(context.Background(), rawInput(), prov)
	if err != nil {
		t.Fatal(err)
	}
	// The reco step resolved two distinct folders (one twice).
	if got := res.Reports[0].ExternalDeps; len(got) != 2 || got[0] != "beam/spot" || got[1] != "calo/ecal_scale" {
		t.Fatalf("reco deps: %v", got)
	}
	// The slim step resolved none — the paper's "dependencies become much
	// weaker" after reconstruction.
	if got := res.Reports[1].ExternalDeps; len(got) != 0 {
		t.Fatalf("slim deps: %v", got)
	}
	rec, _ := prov.Get(res.RecordIDs["reco-out"])
	if len(rec.ExternalDeps) != 2 {
		t.Fatalf("provenance deps: %v", rec.ExternalDeps)
	}
	if rec.ConditionsTag != "v1" {
		t.Fatalf("conditions tag: %q", rec.ConditionsTag)
	}
}

func TestExecuteFailures(t *testing.T) {
	// Missing primary input.
	w := twoStep()
	if _, err := w.Execute(context.Background(), map[string]*Artifact{}, provenance.NewStore()); err == nil {
		t.Fatal("missing input accepted")
	}
	// Unbound implementation.
	w2 := twoStep()
	w2.Steps[1].Run = nil
	if _, err := w2.Execute(context.Background(), rawInput(), provenance.NewStore()); err == nil {
		t.Fatal("unbound step ran")
	}
	// Step fails.
	w3 := twoStep()
	w3.Steps[0].Run = func(ctx *Context) error { return fmt.Errorf("boom") }
	if _, err := w3.Execute(context.Background(), rawInput(), provenance.NewStore()); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("step failure not propagated: %v", err)
	}
	// Step forgets to produce a declared output.
	w4 := twoStep()
	w4.Steps[0].Run = func(ctx *Context) error { return nil }
	if _, err := w4.Execute(context.Background(), rawInput(), provenance.NewStore()); err == nil {
		t.Fatal("missing output accepted")
	}
}

func TestContextEnforcesDeclarations(t *testing.T) {
	w := &Workflow{
		Name:          "strict",
		PrimaryInputs: []string{"in"},
		Steps: []Step{{
			Name: "s", Outputs: []string{"out"}, Inputs: []string{"in"},
			Run: func(ctx *Context) error {
				if _, err := ctx.Input("undeclared"); err == nil {
					return fmt.Errorf("undeclared input allowed")
				}
				if err := ctx.Output("undeclared-out", "X", 0, nil); err == nil {
					return fmt.Errorf("undeclared output allowed")
				}
				if err := ctx.Output("out", "X", 0, []byte("x")); err != nil {
					return err
				}
				if err := ctx.Output("out", "X", 0, []byte("y")); err == nil {
					return fmt.Errorf("double output allowed")
				}
				return nil
			},
		}},
	}
	if _, err := w.Execute(context.Background(), map[string]*Artifact{"in": {Name: "in"}}, provenance.NewStore()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDigestStability(t *testing.T) {
	a := Step{Config: map[string]string{"x": "1", "y": "2"}}
	b := Step{Config: map[string]string{"y": "2", "x": "1"}}
	if a.ConfigDigest() != b.ConfigDigest() {
		t.Fatal("digest depends on map order")
	}
	c := Step{Config: map[string]string{"x": "1", "y": "3"}}
	if a.ConfigDigest() == c.ConfigDigest() {
		t.Fatal("digest insensitive to values")
	}
}

func TestConfigChangesProvenance(t *testing.T) {
	// Reprocessing with a different configuration must yield different
	// record IDs — that is how provenance distinguishes processings.
	run := func(minpt string) string {
		w := twoStep()
		w.Steps[0].Config["minpt"] = minpt
		prov := provenance.NewStore()
		res, err := w.Execute(context.Background(), rawInput(), prov)
		if err != nil {
			t.Fatal(err)
		}
		return res.RecordIDs["reco-out"]
	}
	if run("0.3") == run("0.5") {
		t.Fatal("config change invisible in provenance")
	}
}

func TestDescriptionRoundTrip(t *testing.T) {
	w := twoStep()
	desc, err := w.Description()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(desc), `"conditions_tag": "v1"`) {
		t.Fatalf("description incomplete:\n%s", desc)
	}
	got, err := FromDescription(desc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Steps) != 2 || got.Steps[0].Config["minpt"] != "0.3" {
		t.Fatalf("round trip: %+v", got)
	}
	// Implementations are not serialized; execution must fail until bound.
	if _, err := got.Execute(context.Background(), rawInput(), provenance.NewStore()); err == nil {
		t.Fatal("deserialized workflow ran without binding")
	}
	if err := got.BindImpl("reco", passthrough("raw", "reco-out", "RECO")); err != nil {
		t.Fatal(err)
	}
	if err := got.BindImpl("slim", passthrough("reco-out", "aod", "AOD")); err != nil {
		t.Fatal(err)
	}
	if err := got.BindImpl("nope", nil); err == nil {
		t.Fatal("bound to phantom step")
	}
	res, err := got.Execute(context.Background(), rawInput(), provenance.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Artifacts["aod"].Data) != "rawdata+reco-out+aod" {
		t.Fatal("re-bound workflow produced different output")
	}
}

func TestFromDescriptionRejectsInvalid(t *testing.T) {
	if _, err := FromDescription([]byte("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := FromDescription([]byte(`{"name":"x","steps":[{"name":"s","inputs":["ghost"],"outputs":["o"]}]}`)); err == nil {
		t.Fatal("invalid wiring accepted")
	}
}

func TestReproducibleExecution(t *testing.T) {
	// Same workflow + same inputs → identical artifact digests and record
	// IDs: the core preservation guarantee.
	runIDs := func() map[string]string {
		w := twoStep()
		prov := provenance.NewStore()
		res, err := w.Execute(context.Background(), rawInput(), prov)
		if err != nil {
			t.Fatal(err)
		}
		return res.RecordIDs
	}
	a, b := runIDs(), runIDs()
	if len(a) != len(b) {
		t.Fatal("different record sets")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("record ID for %q differs between identical runs", k)
		}
	}
}

func TestArtifactDigest(t *testing.T) {
	a := &Artifact{Data: []byte("hello")}
	b := &Artifact{Data: []byte("hello")}
	if a.Digest() != b.Digest() {
		t.Fatal("digest not content-determined")
	}
	var buf bytes.Buffer
	buf.WriteString("x")
	c := &Artifact{Data: buf.Bytes()}
	if c.Digest() == a.Digest() {
		t.Fatal("different content, same digest")
	}
}

func TestValidateDuplicateStepNamesError(t *testing.T) {
	w := twoStep()
	w.Steps[1].Name = "reco"
	w.Steps[1].Outputs = []string{"other"}
	err := w.Validate()
	if err == nil {
		t.Fatal("duplicate step names accepted")
	}
	if !strings.Contains(err.Error(), `"reco"`) {
		t.Fatalf("error does not name the duplicated step: %v", err)
	}
}

func TestValidateOutputDeclaredTwiceNamesBothSteps(t *testing.T) {
	// Two different steps declaring the same output: the error must name
	// both the offending step and the original producer, not just the
	// artifact.
	w := twoStep()
	w.Steps[1].Outputs = []string{"reco-out"}
	w.Steps[1].Inputs = []string{"raw"}
	err := w.Validate()
	if err == nil {
		t.Fatal("twice-declared output accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"slim"`) || !strings.Contains(msg, `"reco"`) {
		t.Fatalf("error does not name both producing steps: %v", err)
	}
	// Shadowing a primary input points at the primary input instead.
	w2 := twoStep()
	w2.Steps[1].Outputs = []string{"raw"}
	err = w2.Validate()
	if err == nil {
		t.Fatal("primary-input shadowing accepted")
	}
	if !strings.Contains(err.Error(), "primary input") {
		t.Fatalf("error does not identify the primary input: %v", err)
	}
}

func TestValidateRejectsThreeStepCycle(t *testing.T) {
	// a → b → c → a. No step order makes this chain well-founded, so
	// whichever comes first consumes an artifact nothing earlier produced.
	w := &Workflow{
		Name: "cyclic",
		Steps: []Step{
			{Name: "a", Inputs: []string{"c-out"}, Outputs: []string{"a-out"}},
			{Name: "b", Inputs: []string{"a-out"}, Outputs: []string{"b-out"}},
			{Name: "c", Inputs: []string{"b-out"}, Outputs: []string{"c-out"}},
		},
	}
	err := w.Validate()
	if err == nil {
		t.Fatal("cyclic workflow accepted")
	}
	if !strings.Contains(err.Error(), `"c-out"`) {
		t.Fatalf("error does not name the unsatisfiable input: %v", err)
	}
	// Every rotation of the cycle is equally invalid.
	for rot := 1; rot < 3; rot++ {
		w.Steps = append(w.Steps[1:], w.Steps[0])
		if err := w.Validate(); err == nil {
			t.Fatalf("rotation %d of the cycle accepted", rot)
		}
	}
}

func TestStreamOutputHashesOnTheFly(t *testing.T) {
	w := &Workflow{
		Name:          "stream",
		PrimaryInputs: []string{"in"},
		Steps: []Step{{
			Name: "s", Inputs: []string{"in"}, Outputs: []string{"out"},
			Run: func(ctx *Context) error {
				r, err := ctx.InputReader("in")
				if err != nil {
					return err
				}
				aw, err := ctx.StreamOutput("out", "RECO")
				if err != nil {
					return err
				}
				// Stream in small chunks, as a pipeline sink would.
				if _, err := io.CopyBuffer(aw, r, make([]byte, 3)); err != nil {
					return err
				}
				if _, err := io.WriteString(aw, "-streamed"); err != nil {
					return err
				}
				return aw.Commit(10)
			},
		}},
	}
	prov := provenance.NewStore()
	res, err := w.Execute(context.Background(), map[string]*Artifact{"in": {Name: "in", Data: []byte("payload")}}, prov)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifacts["out"]
	if string(a.Data) != "payload-streamed" {
		t.Fatalf("streamed content: %q", a.Data)
	}
	if a.Events != 10 {
		t.Fatalf("events: %d", a.Events)
	}
	// The digest accumulated during writing must equal the one a plain
	// artifact computes over the same bytes.
	want := (&Artifact{Data: []byte("payload-streamed")}).Digest()
	if a.Digest() != want {
		t.Fatalf("on-the-fly digest %s != recomputed %s", a.Digest(), want)
	}
}

func TestStreamOutputMisuse(t *testing.T) {
	w := &Workflow{
		Name:          "misuse",
		PrimaryInputs: []string{"in"},
		Steps: []Step{{
			Name: "s", Inputs: []string{"in"}, Outputs: []string{"out"},
			Run: func(ctx *Context) error {
				if _, err := ctx.StreamOutput("undeclared", "X"); err == nil {
					return fmt.Errorf("undeclared stream output allowed")
				}
				if _, err := ctx.InputReader("undeclared"); err == nil {
					return fmt.Errorf("undeclared input reader allowed")
				}
				aw, err := ctx.StreamOutput("out", "RECO")
				if err != nil {
					return err
				}
				if _, err := io.WriteString(aw, "x"); err != nil {
					return err
				}
				if err := aw.Commit(1); err != nil {
					return err
				}
				if _, err := aw.Write([]byte("late")); err == nil {
					return fmt.Errorf("write after Commit allowed")
				}
				if err := aw.Commit(1); err == nil {
					return fmt.Errorf("double Commit allowed")
				}
				// Opening the output again after it was committed fails too.
				if _, err := ctx.StreamOutput("out", "RECO"); err == nil {
					return fmt.Errorf("re-opening committed output allowed")
				}
				return nil
			},
		}},
	}
	if _, err := w.Execute(context.Background(), map[string]*Artifact{"in": {Name: "in"}}, provenance.NewStore()); err != nil {
		t.Fatal(err)
	}
}

// TestArtifactWriterSealedStateImmutable pins down that a sealed writer
// is inert: the rejected late Write and double Commit must not leak into
// the published artifact's bytes, digest, or event count.
func TestArtifactWriterSealedStateImmutable(t *testing.T) {
	w := &Workflow{
		Name:          "sealed",
		PrimaryInputs: []string{"in"},
		Steps: []Step{{
			Name: "s", Inputs: []string{"in"}, Outputs: []string{"out"},
			Run: func(ctx *Context) error {
				aw, err := ctx.StreamOutput("out", "AOD")
				if err != nil {
					return err
				}
				if _, err := io.WriteString(aw, "committed bytes"); err != nil {
					return err
				}
				if err := aw.Commit(7); err != nil {
					return err
				}
				if n, err := aw.Write([]byte("tail that must not land")); err == nil || n != 0 {
					return fmt.Errorf("write after Commit: n=%d err=%v", n, err)
				}
				if err := aw.Commit(99); err == nil {
					return fmt.Errorf("double Commit accepted")
				}
				return nil
			},
		}},
	}
	res, err := w.Execute(context.Background(), map[string]*Artifact{"in": {Name: "in"}}, provenance.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifacts["out"]
	if string(a.Data) != "committed bytes" {
		t.Fatalf("sealed artifact mutated: %q", a.Data)
	}
	if a.Events != 7 {
		t.Fatalf("events overwritten by rejected Commit: %d", a.Events)
	}
	if want := (&Artifact{Data: []byte("committed bytes")}).Digest(); a.Digest() != want {
		t.Fatalf("digest drifted: %s != %s", a.Digest(), want)
	}
}

func BenchmarkExecuteTwoStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := twoStep()
		if _, err := w.Execute(context.Background(), rawInput(), provenance.NewStore()); err != nil {
			b.Fatal(err)
		}
	}
}
